package main

import "testing"

func TestRunSmallComparison(t *testing.T) {
	err := run([]string{
		"-n", "1", "-lambda", "0.01", "-static", "-t", "2",
		"-batches", "2000", "-exact",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithDynamics(t *testing.T) {
	err := run([]string{"-n", "2", "-lambda", "0.01", "-t", "1", "-batches", "1000"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-n", "0", "-batches", "10"}); err == nil {
		t.Fatal("expected validation error")
	}
}
