// Command ahs-compare runs the three unsafety estimators of this library —
// naive Monte-Carlo, importance sampling (failure forcing with exact
// likelihood ratios) and fixed-effort multilevel splitting — on one AHS
// scenario, and optionally the exact CTMC solution when the configuration
// is small enough, so their precision per unit of work can be compared.
//
// Example:
//
//	ahs-compare -n 1 -lambda 1e-3 -static -t 8 -batches 30000 -exact
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ahs"
	"ahs/internal/ctmc"
	"ahs/internal/rare"
	"ahs/internal/report"
	"ahs/internal/san"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ahs-compare:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ahs-compare", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 10, "maximum vehicles per platoon")
		lambda  = fs.Float64("lambda", 1e-4, "base failure rate λ per hour")
		horizon = fs.Float64("t", 10, "trip duration in hours")
		batches = fs.Uint64("batches", 20000, "batches for the Monte-Carlo estimators")
		seed    = fs.Uint64("seed", 1, "random seed")
		static  = fs.Bool("static", false, "disable dynamicity (joins/leaves/changes)")
		exact   = fs.Bool("exact", false, "also solve the exact CTMC (small configurations only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := ahs.DefaultParams()
	p.N = *n
	p.Lambda = *lambda
	if *static {
		p.JoinRate, p.LeaveRate, p.ChangeRate = 0, 0, 0
	}
	if *exact {
		p.TrackOutcomes = false // keep the state space finite
	}
	sys, err := ahs.New(p)
	if err != nil {
		return err
	}

	header := []string{"method", "estimate", "ci_lo", "ci_hi", "rel_halfwidth", "elapsed"}
	var rows [][]string
	addRow := func(method string, iv ahs.Interval, elapsed time.Duration) {
		rel := "n/a"
		if iv.Point > 0 {
			rel = fmt.Sprintf("%.0f%%", 100*iv.RelativeHalfWidth())
		}
		rows = append(rows, []string{
			method,
			report.FormatProb(iv.Point),
			report.FormatProb(iv.Lo),
			report.FormatProb(iv.Hi),
			rel,
			elapsed.Round(time.Millisecond).String(),
		})
	}

	// Naive Monte-Carlo.
	start := time.Now()
	naive, err := sys.Unsafety(*horizon, ahs.EvalOptions{Seed: *seed, MaxBatches: *batches})
	if err != nil {
		return err
	}
	addRow("naive MC", naive, time.Since(start))

	// Importance sampling with the calibrated forcing factor.
	bias := sys.SuggestedFailureBias(*horizon)
	start = time.Now()
	forced, err := sys.Unsafety(*horizon, ahs.EvalOptions{
		Seed: *seed, MaxBatches: *batches, FailureBias: bias,
	})
	if err != nil {
		return err
	}
	addRow(fmt.Sprintf("importance sampling (x%.0f)", bias), forced, time.Since(start))

	// Multilevel splitting over the active-failure count.
	effort := int(*batches / 10)
	if effort < 100 {
		effort = 100
	}
	sp := &rare.Splitting{
		Model:   sys.Model,
		MaxTime: *horizon,
		Target:  sys.Unsafe,
		Level: func(mk *san.Marking) int {
			nA, nB, nC := sys.ActiveFailures(mk)
			return nA + nB + nC
		},
		Thresholds:   []int{1},
		Effort:       effort,
		Replications: 10,
		Seed:         *seed,
	}
	start = time.Now()
	splitRes, err := sp.Estimate()
	if err != nil {
		return err
	}
	addRow(fmt.Sprintf("splitting (%d/stage x10)", effort), splitRes.Interval, time.Since(start))

	// Exact solution when requested.
	if *exact {
		start = time.Now()
		g, err := ctmc.Explore(sys.Model, ctmc.ExploreOptions{Absorb: sys.Unsafe, MaxStates: 2_000_000})
		if err != nil {
			return fmt.Errorf("exact solution infeasible: %w (try -static and small -n)", err)
		}
		s, err := g.TransientProbability(*horizon, sys.Unsafe)
		if err != nil {
			return err
		}
		addRow(fmt.Sprintf("exact CTMC (%d states)", g.NumStates()),
			ahs.Interval{Point: s, Lo: s, Hi: s, Confidence: 1}, time.Since(start))
	}

	fmt.Printf("S(%gh) for n=%d λ=%g/hr %s dynamics=%v\n",
		*horizon, p.N, p.Lambda, p.Strategy, !*static)
	fmt.Print(report.Table(header, rows))
	return nil
}
