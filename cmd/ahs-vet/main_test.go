package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles ahs-vet into a temp dir once per test run and returns
// its path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ahs-vet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building ahs-vet: %v\n%s", err, out)
	}
	return bin
}

func TestVersionLine(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatal(err)
	}
	// cmd/go's toolID parser requires "<progname> version <...>" and, for a
	// devel version, a trailing buildID= field.
	fields := strings.Fields(strings.TrimSpace(string(out)))
	if len(fields) < 3 || fields[0] != "ahs-vet" || fields[1] != "version" {
		t.Fatalf("malformed -V=full line: %q", out)
	}
	if fields[2] == "devel" && !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Fatalf("devel version line must carry a buildID: %q", out)
	}
}

func TestFlagsJSON(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatal(err)
	}
	var defs []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &defs); err != nil {
		t.Fatalf("-flags output is not the JSON array cmd/go expects: %v\n%s", err, out)
	}
	want := map[string]bool{"ahsrand": false, "ctxloop": false, "floateq": false, "locklabel": false, "json": false}
	for _, d := range defs {
		if _, ok := want[d.Name]; ok {
			want[d.Name] = true
			if !d.Bool {
				t.Errorf("flag %s must be boolean for cmd/go argument splitting", d.Name)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("-flags output missing %s", name)
		}
	}
}

func TestRejectsDirectInvocation(t *testing.T) {
	bin := buildTool(t)
	err := exec.Command(bin, "./...").Run()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 1 {
		t.Fatalf("want exit 1 on non-cfg argument, got %v", err)
	}
}

// TestRepoPassesOwnVet is the acceptance gate: the standard toolchain drives
// ahs-vet over this entire module via the unit-checker protocol and finds
// nothing.
func TestRepoPassesOwnVet(t *testing.T) {
	if testing.Short() {
		t.Skip("vets the whole module; skipped in -short")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=ahs-vet ./... failed: %v\n%s", err, out)
	}
}

// TestVetFindsSeededViolations runs the toolchain-driven suite over a scratch
// module seeded with one violation per analyzer and asserts each fires.
func TestVetFindsSeededViolations(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.21\n")
	// A fake instrumentation package: its import-path suffix matches the
	// locklabel exemption, so the variable label inside it must NOT fire.
	write("internal/telemetry/telemetry.go", `package telemetry

type Sink interface {
	Count(metric, label string)
	Observe(metric, label string, v float64)
}

type fan struct{ sinks []Sink }

func (f *fan) Count(metric, label string) {
	for _, s := range f.sinks {
		s.Count(metric, label)
	}
}
`)
	write("bad.go", `package scratch

import (
	"context"
	"math/rand"

	"scratch/internal/telemetry"
)

func Roll() int { return rand.Intn(6) }

func Burn(ctx context.Context, work func()) {
	for i := 0; i < 1000000; i++ {
		work()
	}
}

func Same(a, b float64) bool { return a == b }

func Fine(p float64) bool { return p == 0 } //ahsvet:ignore floateq (not needed: constant comparand)

func Leak(s telemetry.Sink, jobID string) {
	s.Count("jobs", jobID)
}

func Bounded(s telemetry.Sink, strategy string) {
	s.Count("runs", strategy) //ahsvet:ignore locklabel strategy ranges over the four paper codes
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected findings to fail the vet run:\n%s", out)
	}
	for _, want := range []string{"ahsrand", "ctxloop", "floateq", "locklabel"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("vet output missing %s finding:\n%s", want, out)
		}
	}
	if strings.Count(string(out), "floateq") != 1 {
		t.Errorf("want exactly one floateq finding (constant comparand exempt):\n%s", out)
	}
	// Exactly one locklabel finding: the suppressed site and the exempt
	// telemetry package must stay quiet.
	if strings.Count(string(out), "locklabel:") != 1 {
		t.Errorf("want exactly one locklabel finding (directive and telemetry package exempt):\n%s", out)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd))
}
