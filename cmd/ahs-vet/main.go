// Command ahs-vet is a `go vet` vettool carrying this repository's custom
// analyzers: ahsrand (math/rand outside internal/rng), ctxloop (loops that
// ignore an in-scope context.Context) and floateq (==/!= between computed
// floats). See docs/linting.md for the check catalogue.
//
// It speaks the vet unit-checker protocol, so it is not run directly:
//
//	go build -o bin/ahs-vet ./cmd/ahs-vet
//	go vet -vettool=$(pwd)/bin/ahs-vet ./...
//
// Individual checks can be selected the usual way, e.g.
// `go vet -vettool=... -floateq=false ./...`.
package main

import "ahs/internal/analysis"

func main() {
	analysis.VetMain(analysis.Analyzers()...)
}
