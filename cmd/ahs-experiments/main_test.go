package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Fatal("expected error for unknown figure")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("expected flag error")
	}
}

func TestRunSingleFigureWithCSV(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-fig", "14", "-batches", "20", "-csv", dir})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig14.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty csv written")
	}
}

func TestRunAcceptsFigPrefix(t *testing.T) {
	if err := run([]string{"-fig", "fig15", "-batches", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesSVG(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-fig", "14", "-batches", "20", "-svg", dir, "-chart"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig14.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty svg")
	}
}

func TestRunWritesHTML(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.html")
	if err := run([]string{"-fig", "15", "-batches", "20", "-html", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty html")
	}
}

func TestRunWithConvergenceAndNoBias(t *testing.T) {
	// The paper stop rule requires 10000 batches minimum; cap below it so
	// the test stays fast while exercising the flag plumbing.
	if err := run([]string{"-fig", "14", "-batches", "30", "-converge", "-no-bias"}); err != nil {
		t.Fatal(err)
	}
}
