// Command ahs-experiments regenerates the figures of the paper's evaluation
// section (Figures 10-15) and prints each as a table, optionally writing
// CSV files.
//
// Quick look (about a minute):
//
//	ahs-experiments -fig all
//
// Paper-quality run (tens of minutes):
//
//	ahs-experiments -fig all -batches 20000 -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ahs"
	"ahs/internal/experiments"
	"ahs/internal/profiling"
	"ahs/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ahs-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("ahs-experiments", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", `figure to reproduce: "10".."15", "fig10".."fig15" or "all"`)
		batches  = fs.Uint64("batches", 4000, "maximum simulation batches per estimated curve/point")
		seed     = fs.Uint64("seed", 1, "random seed")
		workers  = fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		csvDir   = fs.String("csv", "", "directory to write one CSV per figure (created if missing)")
		chart    = fs.Bool("chart", false, "also render each figure as an ASCII log-scale chart")
		svgDir   = fs.String("svg", "", "directory to write one SVG chart per figure (created if missing)")
		htmlPath = fs.String("html", "", "write all figures (inline charts + tables) to one self-contained HTML page")
		noBias   = fs.Bool("no-bias", false, "disable rare-event importance sampling (only sane for large λ)")
		converge = fs.Bool("converge", false, "apply the paper's §4.1 convergence rule per curve")
	)
	prof := profiling.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if prof.Enabled() {
		stopProf, perr := prof.Start()
		if perr != nil {
			return perr
		}
		defer func() {
			if perr := stopProf(); perr != nil && err == nil {
				err = perr
			}
		}()
	}

	cfg := experiments.Config{
		Seed:       *seed,
		MaxBatches: *batches,
		Workers:    *workers,
		NoBias:     *noBias,
	}
	if *converge {
		cfg.StopRule = ahs.PaperStopRule()
	}

	var results []*experiments.Result
	if *fig == "all" {
		all, err := experiments.All(cfg)
		if err != nil {
			return err
		}
		results = all
	} else {
		id := *fig
		if len(id) == 2 {
			id = "fig" + id
		}
		runner, ok := experiments.Registry()[id]
		if !ok {
			return fmt.Errorf("unknown figure %q (have %v)", *fig, experiments.IDs())
		}
		res, err := runner(cfg)
		if err != nil {
			return err
		}
		results = append(results, res)
	}

	for _, res := range results {
		fmt.Println(report.RenderResult(res))
		if *chart {
			fmt.Println(report.Chart(res, 64, 16))
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res); err != nil {
				return err
			}
		}
		if *svgDir != "" {
			if err := writeSVG(*svgDir, res); err != nil {
				return err
			}
		}
	}
	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *htmlPath, err)
		}
		if err := report.WriteHTML(f, "AHS safety reproduction — Figures 10-15", results); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", *htmlPath, err)
		}
		fmt.Println("wrote", *htmlPath)
	}
	return nil
}

func writeCSV(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create csv dir: %w", err)
	}
	path := filepath.Join(dir, res.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	if err := report.WriteResultCSV(f, res); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	fmt.Println("wrote", path)
	return nil
}

func writeSVG(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create svg dir: %w", err)
	}
	path := filepath.Join(dir, res.ID+".svg")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	if err := report.WriteSVG(f, res); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", path, err)
	}
	fmt.Println("wrote", path)
	return nil
}
