package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"ahs/internal/cluster"
	"ahs/internal/config"
	"ahs/internal/service"
)

const clusterScenarioJSON = `{
	"name": "cmd-cluster",
	"n": 2,
	"lambdaPerHour": 0.01,
	"tripHours": [0.5, 1],
	"batches": 4000,
	"seed": 9
}`

// TestServeClusterMode boots the real server in -cluster mode, joins one
// in-process worker, and checks that an evaluation round-trips through the
// distributed backend with the same answer the local backend gives.
func TestServeClusterMode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-cluster"}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-runErr:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	defer func() {
		cancel()
		select {
		case err := <-runErr:
			if err != nil {
				t.Errorf("run returned %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("graceful shutdown hung")
		}
	}()

	// One worker joins through the same public address the API serves on.
	wctx, wcancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		w := &cluster.Worker{Coordinator: base, ID: "cmd-w0", SimWorkers: 1, Poll: 10 * time.Millisecond}
		if err := w.Run(wctx); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	defer func() {
		wcancel()
		<-workerDone
	}()

	getJSON := func(path string, v any) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode
	}

	// healthz reports the cluster backend once the worker registers.
	var health struct {
		Backend service.BackendHealth `json:"backend"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := getJSON("/healthz", &health); code != http.StatusOK {
			t.Fatalf("healthz: HTTP %d", code)
		}
		if health.Backend.WorkersLive >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never showed up in /healthz: %+v", health.Backend)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if health.Backend.Mode != "cluster" || !health.Backend.Ready {
		t.Fatalf("backend health %+v", health.Backend)
	}

	// Evaluate through the cluster and compare with the local pipeline.
	resp, err := http.Post(base+"/v1/evaluate", "application/json", strings.NewReader(clusterScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.ID == "" {
		t.Fatalf("no job id in response (HTTP %d)", resp.StatusCode)
	}

	var res service.Result
	deadline = time.Now().Add(60 * time.Second)
	for {
		code := getJSON("/v1/results/"+ack.ID, &res)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished (last HTTP %d)", ack.ID, code)
		}
		time.Sleep(20 * time.Millisecond)
	}

	sc, err := config.Load(strings.NewReader(clusterScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	want, err := service.Evaluate(context.Background(), sc, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != want.Batches {
		t.Fatalf("Batches = %d, want %d", res.Batches, want.Batches)
	}
	for i := range want.Unsafety {
		if res.Unsafety[i] != want.Unsafety[i] {
			t.Fatalf("Unsafety[%d] = %b, want %b (not bit-identical)", i, res.Unsafety[i], want.Unsafety[i])
		}
	}

	// The shared registry exposes the cluster families on /metrics.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	families, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(families), "ahs_cluster_chunks_completed_total") {
		t.Fatal("cluster metrics missing from /metrics")
	}
}

// TestServeJournalMode boots the server with -cluster -journal-dir,
// evaluates through the journaled coordinator, and checks that the journal
// materializes on disk, its metric families are exported, and shutdown
// drains cleanly (the drain syncs and closes the journal).
func TestServeJournalMode(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-cluster", "-journal-dir", dir}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-runErr:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	defer func() {
		cancel()
		select {
		case err := <-runErr:
			if err != nil {
				t.Errorf("run returned %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("graceful shutdown hung")
		}
	}()

	// No workers join: the journaled coordinator must still complete the
	// job through its local-rescue path (the no-journal fast path is
	// disabled so every round is durable).
	resp, err := http.Post(base+"/v1/evaluate", "application/json", strings.NewReader(clusterScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.ID == "" {
		t.Fatalf("no job id in response (HTTP %d)", resp.StatusCode)
	}
	var res service.Result
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(base + "/v1/results/" + ack.ID)
		if err != nil {
			t.Fatal(err)
		}
		code := r.StatusCode
		if code == http.StatusOK {
			if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			break
		}
		r.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished (last HTTP %d)", ack.ID, code)
		}
		time.Sleep(20 * time.Millisecond)
	}

	sc, err := config.Load(strings.NewReader(clusterScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	want, err := service.Evaluate(context.Background(), sc, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Unsafety {
		if res.Unsafety[i] != want.Unsafety[i] {
			t.Fatalf("Unsafety[%d] = %b, want %b (not bit-identical)", i, res.Unsafety[i], want.Unsafety[i])
		}
	}

	// The journal wrote real frames and its metrics are exported.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("journal directory is empty after a journaled evaluation")
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	families, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ahs_journal_records_total", "ahs_journal_fsyncs_total", "ahs_journal_live_jobs"} {
		if !strings.Contains(string(families), name) {
			t.Errorf("journal metric %s missing from /metrics", name)
		}
	}
}
