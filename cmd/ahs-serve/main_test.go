package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ahs/internal/telemetry"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":  {"-definitely-not-a-flag"},
		"zero workers":  {"-workers", "0"},
		"zero queue":    {"-queue", "0"},
		"stray arg":     {"positional"},
		"unparseable":   {"-workers", "two"},
		"bad duration":  {"-job-timeout", "soon"},
		"bad address":   {"-addr", "definitely:not:an:addr"},
		"taken address": {"-addr", "256.0.0.1:1"},
	}
	for name, args := range cases {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := run(ctx, args, nil); err == nil {
			t.Errorf("%s: expected error for %v", name, args)
		}
		cancel()
	}
}

// TestServeEndToEnd drives the acceptance path against a real server:
// evaluate → poll → result, a second identical submission answered from
// cache (observed on /debug/vars), and a huge job cancelled mid-estimation.
func TestServeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-debug"}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-runErr:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	defer func() {
		cancel()
		select {
		case err := <-runErr:
			if err != nil {
				t.Errorf("run returned %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("graceful shutdown hung")
		}
	}()

	post := func(body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(base+"/v1/evaluate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}
	get := func(path string, v any) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if v != nil {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	var health map[string]any
	if code := get("/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz %d %v", code, health)
	}

	// 1. Submit a small scenario and poll it to completion.
	scenario := `{"n":2,"lambdaPerHour":0.01,"tripHours":[0.5,1],"batches":200,"seed":3}`
	code, ack := post(scenario)
	if code != http.StatusAccepted {
		t.Fatalf("evaluate status %d (%v)", code, ack)
	}
	id := ack["id"].(string)
	deadline := time.Now().Add(60 * time.Second)
	for {
		var job map[string]any
		get("/v1/jobs/"+id, &job)
		if s := job["status"]; s == "done" {
			break
		} else if s == "failed" || s == "cancelled" {
			t.Fatalf("job %v", job)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	var result struct {
		Unsafety []float64 `json:"unsafety"`
		Batches  uint64    `json:"batches"`
	}
	if code := get("/v1/results/"+id, &result); code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	if result.Batches != 200 || len(result.Unsafety) != 2 {
		t.Fatalf("result %+v", result)
	}

	// 2. Identical scenario again: answered from cache, visible in vars.
	code, ack2 := post(scenario)
	if code != http.StatusOK || ack2["cached"] != true {
		t.Fatalf("second submission not a cache hit: %d %v", code, ack2)
	}
	var vars struct {
		AhsServe struct {
			CacheHits int64 `json:"cacheHits"`
		} `json:"ahs_serve"`
	}
	get("/debug/vars", &vars)
	if vars.AhsServe.CacheHits != 1 {
		t.Fatalf("cacheHits = %d, want 1", vars.AhsServe.CacheHits)
	}

	// 3. Scrape /metrics: the exposition must be valid Prometheus text and
	// carry the simulation's per-strategy first-passage histogram, the
	// per-endpoint latency histograms and the migrated service counters.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("metrics content type %q", ct)
	}
	exposition := string(metricsBody)
	if err := telemetry.ValidateText(strings.NewReader(exposition)); err != nil {
		t.Fatalf("metrics exposition invalid: %v\n%s", err, exposition)
	}
	for _, want := range []string{
		`ahs_sim_time_to_ko_hours_bucket{strategy="DD",le="+Inf"}`,
		`ahs_sim_trajectories_total{strategy="DD"} 200`,
		`ahs_http_request_duration_seconds_bucket{endpoint="POST /v1/evaluate",le="+Inf"}`,
		`ahs_http_request_duration_seconds_bucket{endpoint="GET /v1/jobs/{id}",le="+Inf"}`,
		"ahs_service_completed_total 1",
		"ahs_service_cache_hits_total 1",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, exposition)
		}
	}

	// 4. -debug mounts the pprof endpoints.
	if code := get("/debug/pprof/cmdline", nil); code != http.StatusOK {
		t.Fatalf("pprof cmdline status %d, want 200 under -debug", code)
	}

	// 5. A job far too big to finish is cancelled mid-estimation.
	big := `{"n":6,"lambdaPerHour":1e-5,"tripHours":[5,10],"batches":50000000,"seed":4}`
	if code, ack = post(big); code != http.StatusAccepted {
		t.Fatalf("big evaluate status %d", code)
	}
	bigID := ack["id"].(string)
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+bigID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	cancelled := time.Now()
	for {
		var job map[string]any
		get("/v1/jobs/"+bigID, &job)
		if job["status"] == "cancelled" {
			break
		}
		if time.Since(cancelled) > 30*time.Second {
			t.Fatalf("cancellation did not stop the estimation: %v", job)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code := get("/v1/results/"+bigID, nil); code != http.StatusGone {
		t.Fatalf("cancelled result status %d, want 410", code)
	}
}

func TestRunStopsCleanlyWhenIdle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0"}, ready)
	}()
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("idle shutdown hung")
	}
}
