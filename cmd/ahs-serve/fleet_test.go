package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The fleet failover e2e: two real ahs-serve processes (re-exec'd test
// binary) share one -store-dir under -fleet. The writer is SIGKILLed —
// no cleanup, no flush, the kernel drops the flock — and the follower
// must promote under a new fencing epoch, keep serving everything the
// dead writer evaluated bit-identically, and reject stale-epoch result
// puts. Exactly-once is asserted through metrics: the two instances'
// completed counters sum to the scenario count, never more.

// Child-process environment keys (see TestMain in store_test.go).
const (
	fleetEnvAddr = "AHS_FLEET_E2E_ADDR"
	fleetEnvDir  = "AHS_FLEET_E2E_DIR"
)

// runFleetChild is one fleet member: the real run() with -fleet on the
// inherited address and shared store directory. Writer-vs-follower is
// not scripted — whoever wins the store flock is the writer, the loser
// falls back to follower, exactly as in production.
func runFleetChild() int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	addr := os.Getenv(fleetEnvAddr)
	err := run(ctx, []string{
		"-addr", addr,
		"-workers", "2",
		"-store-dir", os.Getenv(fleetEnvDir),
		"-fleet",
		"-advertise-url", "http://" + addr,
		"-fleet-heartbeat", "50ms",
	}, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "[fleet child %d] run: %v\n", os.Getpid(), err)
		return 1
	}
	return 0
}

// childProc wraps one re-exec'd server process with the signal plumbing
// the failover choreography needs.
type childProc struct {
	t    *testing.T
	cmd  *exec.Cmd
	base string
	done bool
}

func spawnFleetChild(t *testing.T, addr, dir string) *childProc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), fleetEnvAddr+"="+addr, fleetEnvDir+"="+dir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start fleet child: %v", err)
	}
	return &childProc{t: t, cmd: cmd, base: "http://" + addr}
}

// stop is the deferred safety net; no-op once the child was reaped.
func (c *childProc) stop() {
	if c.done {
		return
	}
	c.cmd.Process.Kill()
	c.cmd.Wait()
	c.done = true
}

// kill9 delivers SIGKILL — the crash under test.
func (c *childProc) kill9() {
	if err := c.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		c.t.Fatalf("SIGKILL child: %v", err)
	}
	c.cmd.Wait()
	c.done = true
}

// term asks for a graceful shutdown and requires a clean exit.
func (c *childProc) term() {
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		c.t.Fatal(err)
	}
	if err := c.cmd.Wait(); err != nil {
		c.t.Errorf("child exited uncleanly: %v", err)
	}
	c.done = true
}

// reserveAddr picks a free loopback address; the tiny reuse window
// before the child binds it is harmless in a test namespace.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// fleetHealth reads the "fleet" section of GET /healthz.
func fleetHealth(t *testing.T, base string) map[string]any {
	t.Helper()
	code, data := getBody(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	var body struct {
		Fleet map[string]any `json:"fleet"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if body.Fleet == nil {
		t.Fatalf("healthz carries no fleet section: %s", data)
	}
	return body.Fleet
}

// waitFleetRole polls until the instance reports the role.
func waitFleetRole(t *testing.T, base, role string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		h := fleetHealth(t, base)
		if h["role"] == role {
			return h
		}
		if time.Now().After(deadline) {
			t.Fatalf("instance at %s never reached role %q (last: %v)", base, role, h)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// metricValue scrapes one un-labeled series from GET /metrics; absent
// series read as 0.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	code, data := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	return 0
}

var fleetScenarios = []string{
	`{"name":"fleet-e2e-a","n":2,"lambdaPerHour":0.0123456789,"tripHours":[0.37,1.41],"batches":300,"seed":21}`,
	`{"name":"fleet-e2e-b","n":3,"lambdaPerHour":0.031415926,"tripHours":[0.5,0.75,2.25],"batches":300,"seed":22}`,
	`{"name":"fleet-e2e-c","n":2,"lambdaPerHour":0.0072973525,"tripHours":[1.0,3.0],"batches":300,"seed":23}`,
	`{"name":"fleet-e2e-d","n":2,"lambdaPerHour":0.0166,"tripHours":[0.25,1.75],"batches":300,"seed":24}`,
	`{"name":"fleet-e2e-e","n":3,"lambdaPerHour":0.0052,"tripHours":[0.6,1.2,2.4],"batches":300,"seed":25}`,
}

// TestServeFleetWriterFailover is the acceptance e2e for the fleet:
//
//  1. two instances come up on one directory; exactly one is the
//     writer, the other a follower (the lock-contention fallback).
//  2. work lands on both: the writer evaluates directly, the follower
//     evaluates its own submissions and forwards results to the writer.
//  3. the writer is SIGKILLed mid-fleet; the follower promotes under a
//     higher epoch (ahs_fleet_promotions_total 0→1).
//  4. everything the dead writer evaluated is served by the survivor
//     from the shared store, byte-identical, with zero re-evaluations
//     (completed counters across both generations sum to the scenario
//     count).
//  5. a result put stamped with the dead writer's epoch is fenced with
//     409 and counted in ahs_fleet_fenced_writes_total.
func TestServeFleetWriterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server subprocesses")
	}
	dir := t.TempDir()
	addrA, addrB := reserveAddr(t), reserveAddr(t)

	childA := spawnFleetChild(t, addrA, dir)
	defer childA.stop()
	waitHealthy(t, childA.base)
	waitFleetRole(t, childA.base, "writer")

	childB := spawnFleetChild(t, addrB, dir)
	defer childB.stop()
	waitHealthy(t, childB.base)
	followerView := waitFleetRole(t, childB.base, "follower")
	if w, ok := followerView["writer"].(map[string]any); !ok || w["url"] != childA.base {
		t.Fatalf("follower's writer view %v, want url %s", followerView["writer"], childA.base)
	}

	// Spread the work: three scenarios on the writer, two on the
	// follower. The follower's results travel the forward path (claim →
	// evaluate → POST /fleet/v1/results on the writer).
	want := make(map[string][]byte, len(fleetScenarios))
	for i, sc := range fleetScenarios {
		base := childA.base
		if i >= 3 {
			base = childB.base
		}
		want[sc] = evaluateToDone(t, base, sc)
	}
	deadline := time.Now().Add(20 * time.Second)
	for metricValue(t, childA.base, "ahs_fleet_ingested_results_total") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("writer never ingested the follower's %d forwarded results", 2)
		}
		time.Sleep(25 * time.Millisecond)
	}
	completedA := metricValue(t, childA.base, "ahs_service_completed_total")
	epochBefore := metricValue(t, childB.base, "ahs_fleet_epoch")

	// kill -9 the writer: no flush, no release; the kernel drops the
	// flock and the heartbeat goes stale.
	childA.kill9()
	t.Logf("killed writer pid %d; follower must promote", childA.cmd.Process.Pid)

	promoted := waitFleetRole(t, childB.base, "writer")
	epochAfter := metricValue(t, childB.base, "ahs_fleet_epoch")
	if epochAfter < 2 || epochAfter <= epochBefore {
		t.Fatalf("post-failover epoch %v (was %v), want a strictly higher epoch ≥ 2", epochAfter, epochBefore)
	}
	if got := metricValue(t, childB.base, "ahs_fleet_promotions_total"); got != 1 {
		t.Fatalf("ahs_fleet_promotions_total = %v, want 1", got)
	}
	if promoted["epoch"] == nil {
		t.Fatalf("promoted healthz carries no epoch: %v", promoted)
	}

	// Everything the dead writer computed is served from the shared
	// store by the survivor — bit-identical, no re-evaluation.
	for _, sc := range fleetScenarios {
		code, ack := postEvaluate(t, childB.base, sc)
		if code != http.StatusOK || ack["cached"] != true {
			t.Fatalf("survivor did not serve %s from a cache tier: HTTP %d %v", sc, code, ack)
		}
		id := ack["id"].(string)
		codeR, body := getBody(t, childB.base+"/v1/results/"+id)
		if codeR != http.StatusOK {
			t.Fatalf("survivor result: HTTP %d", codeR)
		}
		if string(body) != string(want[sc]) {
			t.Errorf("survivor's result for %s diverged from the original:\ngot:\n%s\nwant:\n%s", sc, body, want[sc])
		}
	}

	// Exactly-once fleet-wide: the writer's completions plus the
	// survivor's account for every scenario; the re-submissions above
	// were store hits, not evaluations.
	completedB := metricValue(t, childB.base, "ahs_service_completed_total")
	if total := completedA + completedB; total != float64(len(fleetScenarios)) {
		t.Errorf("completed jobs across the fleet = %v + %v = %v, want exactly %d",
			completedA, completedB, total, len(fleetScenarios))
	}

	// The promoted writer still evaluates fresh work.
	fresh := evaluateToDone(t, childB.base,
		`{"name":"fleet-e2e-fresh","n":2,"lambdaPerHour":0.02,"tripHours":[0.5,1.5],"batches":300,"seed":26}`)
	if len(fresh) == 0 {
		t.Fatal("promoted writer returned an empty result")
	}

	// Fencing: a put stamped with the dead writer's epoch must bounce
	// with 409 and be counted.
	fencedBefore := metricValue(t, childB.base, "ahs_fleet_fenced_writes_total")
	req, err := http.NewRequest("POST", childB.base+"/fleet/v1/results?hash=stale-e2e-hash",
		strings.NewReader(`{"stale":true}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-AHS-Fleet-Epoch", "1") // the first writer's epoch
	req.Header.Set("X-AHS-Fleet-Owner", "ghost-of-writer-a")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-epoch put: HTTP %d, want 409", resp.StatusCode)
	}
	if got := metricValue(t, childB.base, "ahs_fleet_fenced_writes_total"); got != fencedBefore+1 {
		t.Fatalf("ahs_fleet_fenced_writes_total = %v, want %v", got, fencedBefore+1)
	}

	// The survivor still shuts down gracefully after living through a
	// failover.
	childB.term()
}
