package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The persistent-store e2e suite. The kill -9 test re-execs this test
// binary as a real ahs-serve process (TestMain reroutes children), fills
// the store, SIGKILLs the server mid-flight cleanup-free, restarts it on
// the same -store-dir, and requires every result to come back from the
// store tier byte-identical with zero re-evaluations. The follower test
// runs two in-process instances sharing one directory.

// Child-process environment keys.
const (
	storeEnvAddr = "AHS_STORE_E2E_ADDR"
	storeEnvDir  = "AHS_STORE_E2E_DIR"
)

// TestMain reroutes re-exec'd children into the server role; normal
// invocations run the test suite. The fleet e2e (fleet_test.go) has its
// own child flavor — one TestMain dispatches both.
func TestMain(m *testing.M) {
	if os.Getenv(fleetEnvDir) != "" {
		os.Exit(runFleetChild())
	}
	if os.Getenv(storeEnvDir) != "" {
		os.Exit(runStoreChild())
	}
	os.Exit(m.Run())
}

// runStoreChild is the server process: the real run() on the inherited
// address and store directory. SIGTERM shuts it down gracefully; SIGKILL
// can land anywhere — that is the test.
func runStoreChild() int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, []string{
		"-addr", os.Getenv(storeEnvAddr),
		"-workers", "2",
		"-store-dir", os.Getenv(storeEnvDir),
	}, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "[child %d] run: %v\n", os.Getpid(), err)
		return 1
	}
	return 0
}

// Scenarios with awkward float parameters so bit-identity is a real claim,
// not an artifact of round numbers.
var storeScenarios = []string{
	`{"name":"store-e2e-a","n":2,"lambdaPerHour":0.0123456789,"tripHours":[0.37,1.41],"batches":300,"seed":11}`,
	`{"name":"store-e2e-b","n":3,"lambdaPerHour":0.031415926,"tripHours":[0.5,0.75,2.25],"batches":300,"seed":12}`,
	`{"name":"store-e2e-c","n":2,"lambdaPerHour":0.0072973525,"tripHours":[1.0,3.0],"batches":300,"seed":13}`,
}

func spawnServeChild(t *testing.T, addr, dir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), storeEnvAddr+"="+addr, storeEnvDir+"="+dir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start server child: %v", err)
	}
	return cmd
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server at %s never became healthy: %v", base, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// postEvaluate submits a scenario and returns the HTTP status and ack.
func postEvaluate(t *testing.T, base, scenario string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/evaluate", "application/json", strings.NewReader(scenario))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, ack
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// evaluateToDone submits a scenario, waits for the job to finish, and
// returns the raw result body. The server marshals floats canonically, so
// byte-equal bodies mean bit-identical curves.
func evaluateToDone(t *testing.T, base, scenario string) []byte {
	t.Helper()
	code, ack := postEvaluate(t, base, scenario)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("evaluate: HTTP %d (%v)", code, ack)
	}
	id := ack["id"].(string)
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, data := getBody(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("job %s: HTTP %d", id, code)
		}
		var view map[string]any
		if err := json.Unmarshal(data, &view); err != nil {
			t.Fatal(err)
		}
		switch view["status"] {
		case "done":
			code, body := getBody(t, base+"/v1/results/"+id)
			if code != http.StatusOK {
				t.Fatalf("result %s: HTTP %d", id, code)
			}
			return body
		case "failed", "cancelled":
			t.Fatalf("job %s finished %v", id, view)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeStoreKillMinus9Restart is the acceptance e2e: fill the store,
// SIGKILL the server (no deferred cleanup, no flush, lock released by the
// kernel), restart on the same directory, and require every scenario to be
// answered from the store tier — zero re-evaluations, byte-identical
// results.
func TestServeStoreKillMinus9Restart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server subprocesses")
	}
	dir := t.TempDir()

	// Reserve an address for both server generations. The listener is
	// closed right before the first child starts; the tiny reuse window is
	// harmless in a test namespace.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	base := "http://" + addr

	// Generation 1: evaluate every scenario for real and keep the exact
	// result bytes.
	child1 := spawnServeChild(t, addr, dir)
	killed := false
	defer func() {
		if !killed {
			child1.Process.Kill()
			child1.Wait()
		}
	}()
	waitHealthy(t, base)
	want := make(map[string][]byte, len(storeScenarios))
	for _, sc := range storeScenarios {
		want[sc] = evaluateToDone(t, base, sc)
	}

	if err := child1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL server: %v", err)
	}
	child1.Wait()
	killed = true
	t.Logf("killed server pid %d with %d results in the store", child1.Process.Pid, len(want))

	// Generation 2: same directory, fresh process, empty memory cache.
	child2 := spawnServeChild(t, addr, dir)
	child2Done := false
	defer func() {
		if !child2Done {
			child2.Process.Kill()
			child2.Wait()
		}
	}()
	waitHealthy(t, base)

	for _, sc := range storeScenarios {
		code, ack := postEvaluate(t, base, sc)
		if code != http.StatusOK || ack["cached"] != true {
			t.Fatalf("after restart, scenario not served from cache: HTTP %d %v", code, ack)
		}
		id := ack["id"].(string)
		codeV, viewData := getBody(t, base+"/v1/jobs/"+id)
		if codeV != http.StatusOK {
			t.Fatalf("job view: HTTP %d", codeV)
		}
		var view map[string]any
		if err := json.Unmarshal(viewData, &view); err != nil {
			t.Fatal(err)
		}
		if view["cacheTier"] != "store" {
			t.Fatalf("cacheTier = %v, want store (view %v)", view["cacheTier"], view)
		}
		codeR, body := getBody(t, base+"/v1/results/"+id)
		if codeR != http.StatusOK {
			t.Fatalf("result: HTTP %d", codeR)
		}
		if string(body) != string(want[sc]) {
			t.Errorf("restarted result diverged from the original:\ngot:\n%s\nwant:\n%s", body, want[sc])
		}
	}

	// Zero re-evaluations: every hit came from the store and no simulation
	// ran in this process (the per-strategy trajectory series only exist
	// after a simulation).
	codeM, metrics := getBody(t, base+"/metrics")
	if codeM != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", codeM)
	}
	exposition := string(metrics)
	if want := fmt.Sprintf("ahs_service_store_hits_total %d", len(storeScenarios)); !strings.Contains(exposition, want) {
		t.Errorf("metrics missing %q after restart", want)
	}
	if strings.Contains(exposition, "ahs_sim_trajectories_total{") {
		t.Error("restarted server simulated trajectories; store hits should have avoided all re-evaluation")
	}

	// Graceful shutdown still works after a crash recovery.
	if err := child2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := child2.Wait(); err != nil {
		t.Errorf("restarted server exited uncleanly: %v", err)
	}
	child2Done = true
}

// startServe boots an in-process server via run() and returns its base URL
// and a shutdown func.
func startServe(t *testing.T, args []string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, args, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-runErr:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	return base, func() {
		cancel()
		select {
		case err := <-runErr:
			if err != nil {
				t.Errorf("run returned %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("graceful shutdown hung")
		}
	}
}

// TestServeStoreFollowerSharedDir runs a writer and a -store-follower
// instance over one store directory: the follower serves the writer's
// results from the store tier byte-identical, stays healthy in read-only
// mode, and still evaluates scenarios the store does not have.
func TestServeStoreFollowerSharedDir(t *testing.T) {
	dir := t.TempDir()

	writer, stopWriter := startServe(t, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-store-dir", dir})
	defer stopWriter()
	want := evaluateToDone(t, writer, storeScenarios[0])

	follower, stopFollower := startServe(t, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-store-dir", dir, "-store-follower"})
	defer stopFollower()

	// healthz reports the read-only store.
	codeH, healthData := getBody(t, follower+"/healthz")
	if codeH != http.StatusOK {
		t.Fatalf("follower healthz: HTTP %d", codeH)
	}
	var health struct {
		Store struct {
			ReadOnly bool `json:"readOnly"`
			Entries  int  `json:"entries"`
		} `json:"store"`
	}
	if err := json.Unmarshal(healthData, &health); err != nil {
		t.Fatal(err)
	}
	if !health.Store.ReadOnly || health.Store.Entries != 1 {
		t.Fatalf("follower store health = %+v, want readOnly with 1 entry", health.Store)
	}

	// The writer's result is served from the shared store, byte-identical.
	code, ack := postEvaluate(t, follower, storeScenarios[0])
	if code != http.StatusOK || ack["cached"] != true {
		t.Fatalf("follower did not serve from store: HTTP %d %v", code, ack)
	}
	id := ack["id"].(string)
	codeV, viewData := getBody(t, follower+"/v1/jobs/"+id)
	if codeV != http.StatusOK {
		t.Fatalf("follower job view: HTTP %d", codeV)
	}
	var view map[string]any
	if err := json.Unmarshal(viewData, &view); err != nil {
		t.Fatal(err)
	}
	if view["cacheTier"] != "store" {
		t.Fatalf("follower cacheTier = %v, want store", view["cacheTier"])
	}
	codeR, body := getBody(t, follower+"/v1/results/"+id)
	if codeR != http.StatusOK {
		t.Fatalf("follower result: HTTP %d", codeR)
	}
	if string(body) != string(want) {
		t.Errorf("follower result diverged from the writer's:\ngot:\n%s\nwant:\n%s", body, want)
	}

	// A scenario the store has never seen still evaluates on the follower;
	// the read-only store simply cannot persist it.
	fresh := evaluateToDone(t, follower, storeScenarios[1])
	if len(fresh) == 0 {
		t.Fatal("follower evaluation returned an empty result")
	}
}
