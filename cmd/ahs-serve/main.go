// Command ahs-serve runs the AHS unsafety-evaluation service: an HTTP
// JSON API over internal/service's job manager, with request
// deduplication, an LRU result cache, backpressure and graceful shutdown.
//
// Start it and submit the example scenario:
//
//	ahs-serve -addr :8080 &
//	curl -d @docs/scenario-example.json localhost:8080/v1/evaluate
//	curl localhost:8080/v1/jobs/job-1
//	curl localhost:8080/v1/results/job-1
//
// With -cluster the server also mounts the coordinator API under
// /cluster/v1/ and fans each job out to registered ahs-worker processes,
// falling back to local simulation when none are registered; results are
// bit-identical either way. See docs/api.md for the endpoint reference and
// metrics names, and docs/cluster.md for the cluster protocol.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ahs/internal/cluster"
	"ahs/internal/service"
	"ahs/internal/sweep"
	"ahs/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "ahs-serve:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until ctx is cancelled; ready, when non-nil,
// receives the bound address once the listener is up (tests bind :0).
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("ahs-serve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		workers       = fs.Int("workers", 2, "jobs evaluated concurrently")
		workersPerJob = fs.Int("workers-per-job", 0, "simulation goroutines per job (0 = GOMAXPROCS/workers)")
		queueSize     = fs.Int("queue", 64, "pending-job queue bound; a full queue answers 429")
		cacheSize     = fs.Int("cache", 256, "LRU result-cache entries (negative disables)")
		jobTimeout    = fs.Duration("job-timeout", 30*time.Minute, "per-job evaluation cap (0 = unlimited)")
		drainTimeout  = fs.Duration("drain-timeout", time.Minute, "graceful-shutdown drain budget before in-flight jobs are cancelled")
		readTimeout   = fs.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout  = fs.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		debug         = fs.Bool("debug", false, "mount net/http/pprof profiling endpoints under /debug/pprof/")
		clusterMode   = fs.Bool("cluster", false, "fan jobs out to ahs-worker processes via the /cluster/v1/ API instead of simulating in-process (no workers registered = transparent local fallback)")
		leaseTTL      = fs.Duration("lease-ttl", 2*time.Minute, "cluster chunk lease duration before requeue")
		chunkBatches  = fs.Uint64("chunk-batches", 0, "cluster lease granularity in batches, rounded up to whole accumulation rounds (0 = four rounds)")
		journalDir    = fs.String("journal-dir", "", "cluster job-journal directory for crash-safe evaluation (requires -cluster; empty = no journal, jobs are lost on crash)")
		sweepInFlight = fs.Int("sweep-inflight", 4, "default per-sweep bound on concurrently submitted design points")
		sweepMaxPts   = fs.Int("sweep-max-points", 4096, "reject sweep designs expanding beyond this many points")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *workers < 1 || *queueSize < 1 {
		return fmt.Errorf("workers and queue must be positive (got %d, %d)", *workers, *queueSize)
	}

	cfg := service.Config{
		Workers:       *workers,
		WorkersPerJob: *workersPerJob,
		QueueSize:     *queueSize,
		CacheSize:     *cacheSize,
		JobTimeout:    *jobTimeout,
	}
	if *journalDir != "" && !*clusterMode {
		return fmt.Errorf("-journal-dir requires -cluster")
	}
	var coord *cluster.Coordinator
	var journal *cluster.Journal
	if *clusterMode {
		// Share one registry so ahs_cluster_* and the manager's families
		// come out of the same GET /metrics.
		cfg.Telemetry = telemetry.NewRegistry()
		if *journalDir != "" {
			var err error
			journal, err = cluster.OpenJournal(cluster.JournalConfig{
				Dir:       *journalDir,
				Telemetry: cfg.Telemetry,
				Logf:      log.Printf,
			})
			if err != nil {
				return err
			}
			defer journal.Close()
		}
		coord = cluster.New(cluster.Config{
			LeaseTTL:     *leaseTTL,
			ChunkBatches: *chunkBatches,
			Journal:      journal,
			Telemetry:    cfg.Telemetry,
			Logf:         log.Printf,
		})
		defer coord.Close()
		cfg.Eval = service.ClusterEval(coord)
		cfg.Backend = service.ClusterBackend(coord)
	}
	mgr := service.NewManager(cfg)
	// The sweep engine fans whole parameter designs out through the same
	// manager, so sweep points share the dedup table, cache and backend
	// (cluster included) with direct /v1/evaluate submissions.
	eng := sweep.NewEngine(sweep.Config{
		Manager:     mgr,
		Telemetry:   mgr.Registry(),
		MaxInFlight: *sweepInFlight,
		MaxPoints:   *sweepMaxPts,
	})
	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(mgr))
	sweepHandler := sweep.NewHandler(eng)
	mux.Handle("/v1/sweeps", sweepHandler)
	mux.Handle("/v1/sweeps/", sweepHandler)
	var handler http.Handler = mux
	if coord != nil {
		mux.Handle("/cluster/v1/", coord.Handler())
	}
	if *debug {
		// Profiling endpoints are opt-in: they expose goroutine dumps and
		// CPU profiles, which production deployments may not want public.
		// GET /metrics is always on (see service.NewHandler).
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{
		Handler:      handler,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("ahs-serve: listening on %s (workers=%d queue=%d cache=%d)",
		ln.Addr(), *workers, *queueSize, *cacheSize)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain the job
	// pool; past the drain budget, in-flight estimations are cancelled
	// (they stop within one simulation batch).
	log.Printf("ahs-serve: shutting down, draining jobs (budget %v)", *drainTimeout)
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		srv.Close()
	}
	if coord != nil {
		// Stop leasing and release in-flight cluster jobs. With a journal
		// those jobs stay durable and resume when the next ahs-serve on the
		// same -journal-dir receives the same scenario again.
		coord.Drain()
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	err = mgr.Shutdown(drainCtx)
	// Reap sweep orchestration after the manager drains: settled jobs have
	// already resolved their points, so Close only stops bookkeeping.
	closeCtx, cancelClose := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelClose()
	if cerr := eng.Close(closeCtx); cerr != nil {
		log.Printf("ahs-serve: sweep engine close: %v", cerr)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("ahs-serve: drain budget exceeded, in-flight jobs cancelled")
			return nil
		}
		return err
	}
	log.Printf("ahs-serve: drained cleanly")
	return nil
}
