// Command ahs-serve runs the AHS unsafety-evaluation service: an HTTP
// JSON API over internal/service's job manager, with request
// deduplication, an LRU result cache, backpressure and graceful shutdown.
//
// Start it and submit the example scenario:
//
//	ahs-serve -addr :8080 &
//	curl -d @docs/scenario-example.json localhost:8080/v1/evaluate
//	curl localhost:8080/v1/jobs/job-1
//	curl localhost:8080/v1/results/job-1
//
// With -cluster the server also mounts the coordinator API under
// /cluster/v1/ and fans each job out to registered ahs-worker processes,
// falling back to local simulation when none are registered; results are
// bit-identical either way. See docs/api.md for the endpoint reference and
// metrics names, and docs/cluster.md for the cluster protocol.
//
// Every request is traced: one submit yields a single distributed trace
// covering dedup, sweep expansion, chunk leases, worker execution, fault
// injections and merge, browsable at GET /debug/traces and exportable as
// Chrome trace JSON from GET /v1/jobs/{id}/trace?format=chrome (see
// docs/observability.md). Logs go through log/slog with trace_id/job
// fields; -log-format json emits one object per line for log shippers.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ahs/internal/cluster"
	"ahs/internal/config"
	"ahs/internal/fleet"
	"ahs/internal/obs"
	"ahs/internal/resultstore"
	"ahs/internal/service"
	"ahs/internal/sweep"
	"ahs/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "ahs-serve:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until ctx is cancelled; ready, when non-nil,
// receives the bound address once the listener is up (tests bind :0).
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("ahs-serve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		workers       = fs.Int("workers", 2, "jobs evaluated concurrently")
		workersPerJob = fs.Int("workers-per-job", 0, "simulation goroutines per job (0 = GOMAXPROCS/workers)")
		queueSize     = fs.Int("queue", 64, "pending-job queue bound; a full queue answers 429")
		cacheSize     = fs.Int("cache", 256, "LRU result-cache entries (negative disables)")
		jobTimeout    = fs.Duration("job-timeout", 30*time.Minute, "per-job evaluation cap (0 = unlimited)")
		drainTimeout  = fs.Duration("drain-timeout", time.Minute, "graceful-shutdown drain budget before in-flight jobs are cancelled")
		readTimeout   = fs.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout  = fs.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		debug         = fs.Bool("debug", false, "mount net/http/pprof profiling endpoints under /debug/pprof/")
		clusterMode   = fs.Bool("cluster", false, "fan jobs out to ahs-worker processes via the /cluster/v1/ API instead of simulating in-process (no workers registered = transparent local fallback)")
		leaseTTL      = fs.Duration("lease-ttl", 2*time.Minute, "cluster chunk lease duration before requeue")
		chunkBatches  = fs.Uint64("chunk-batches", 0, "cluster lease granularity in batches, rounded up to whole accumulation rounds (0 = four rounds)")
		journalDir    = fs.String("journal-dir", "", "cluster job-journal directory for crash-safe evaluation (requires -cluster; empty = no journal, jobs are lost on crash)")
		storeDir      = fs.String("store-dir", "", "persistent result-store directory; results survive restarts and are shared by every instance on the same directory (empty = memory-only cache)")
		storeFollower = fs.Bool("store-follower", false, "open -store-dir read-only: serve its results but leave writing to another instance (requires -store-dir)")
		fleetMode     = fs.Bool("fleet", false, "coordinate with peers sharing -store-dir: store-mediated work claims, writer failover and fleet-wide exactly-once evaluation (requires -store-dir and -advertise-url)")
		advertiseURL  = fs.String("advertise-url", "", "this instance's base URL (scheme://host:port) as reachable by fleet peers; work claims and the writer heartbeat carry it (requires -fleet)")
		fleetHB       = fs.Duration("fleet-heartbeat", 500*time.Millisecond, "fleet writer-heartbeat and claim-renewal interval; a writer quiet for four intervals is presumed dead and followers promote")
		fleetClaimTTL = fs.Duration("fleet-claim-ttl", 0, "fleet work-claim expiry before survivors may adopt a dead node's unfinished scenarios (0 = 8x -fleet-heartbeat)")
		defaultTenant = fs.String("default-tenant", "", "tenant attributed to requests without an X-AHS-Tenant header (empty = \"default\")")
		tenantQuota   = fs.Int("tenant-quota", 0, "per-tenant queued-job cap; a tenant at its quota gets 429 while others keep submitting (0 = no per-tenant cap)")
		sweepInFlight = fs.Int("sweep-inflight", 4, "default per-sweep bound on concurrently submitted design points")
		sweepMaxPts   = fs.Int("sweep-max-points", 4096, "reject sweep designs expanding beyond this many points")
		logFormat     = fs.String("log-format", "text", "log output format: text or json (one slog object per line)")
		traceSample   = fs.Int("trace-sample", 1, "record every Nth trace (1 = all, 0 = tracing disabled)")
		traceMaxTr    = fs.Int("trace-max-traces", 256, "finished traces kept in the in-memory ring for GET /debug/traces")
		traceMaxSpans = fs.Int("trace-max-spans", 512, "span cap per trace; spans past it are counted as dropped")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *workers < 1 || *queueSize < 1 {
		return fmt.Errorf("workers and queue must be positive (got %d, %d)", *workers, *queueSize)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		return err
	}
	logf := obs.Logf(context.Background(), logger)

	// One registry for everything this process exports — service, sweep,
	// cluster, tracing and runtime families all come out of GET /metrics.
	registry := telemetry.NewRegistry()
	telemetry.RegisterRuntime(registry)
	var tracer *obs.Tracer
	if *traceSample > 0 {
		tracer = obs.NewTracer(obs.Config{
			SampleEvery: *traceSample,
			MaxTraces:   *traceMaxTr,
			MaxSpans:    *traceMaxSpans,
			Telemetry:   registry,
			Logger:      logger,
		})
	}

	cfg := service.Config{
		Workers:       *workers,
		WorkersPerJob: *workersPerJob,
		QueueSize:     *queueSize,
		CacheSize:     *cacheSize,
		JobTimeout:    *jobTimeout,
		Telemetry:     registry,
		Tracer:        tracer,
		Logf:          logf,
		DefaultTenant: *defaultTenant,
		TenantQuota:   *tenantQuota,
	}
	if *journalDir != "" && !*clusterMode {
		return fmt.Errorf("-journal-dir requires -cluster")
	}
	if *storeFollower && *storeDir == "" {
		return fmt.Errorf("-store-follower requires -store-dir")
	}
	if *fleetMode && *storeDir == "" {
		return fmt.Errorf("-fleet requires -store-dir")
	}
	if *fleetMode && *advertiseURL == "" {
		return fmt.Errorf("-fleet requires -advertise-url")
	}
	if !*fleetMode && *advertiseURL != "" {
		return fmt.Errorf("-advertise-url requires -fleet")
	}
	fleetOwner := fmt.Sprintf("serve-%d", os.Getpid())
	var store *resultstore.Store
	if *storeDir != "" {
		storeCfg := resultstore.Config{
			Dir:       *storeDir,
			ReadOnly:  *storeFollower,
			Telemetry: registry,
			Logf:      logf,
		}
		if *fleetMode {
			storeCfg.Owner = fleetOwner
		}
		store, err = resultstore.Open(storeCfg)
		if *fleetMode && !*storeFollower && errors.Is(err, resultstore.ErrLocked) {
			// A peer already holds the writer flock: join as a follower and
			// let failover promote this instance if the writer dies.
			var held *resultstore.LockHeldError
			if errors.As(err, &held) {
				logger.Info("ahs-serve: store writer lock held, joining fleet as follower",
					slog.String("holder", held.HolderOwner),
					slog.Int("holderPid", held.HolderPID))
			}
			storeCfg.ReadOnly = true
			store, err = resultstore.Open(storeCfg)
		}
		if err != nil {
			return err
		}
		defer store.Close()
		cfg.Store = store
		st := store.Stats()
		logger.Info("ahs-serve: result store open",
			slog.String("dir", st.Dir),
			slog.Bool("follower", st.ReadOnly),
			slog.Int("entries", st.Entries),
			slog.Int64("segmentBytes", st.SegmentBytes))
	}
	var coord *cluster.Coordinator
	var journal *cluster.Journal
	if *clusterMode {
		if *journalDir != "" {
			journal, err = cluster.OpenJournal(cluster.JournalConfig{
				Dir:       *journalDir,
				Telemetry: registry,
				Logf:      logf,
			})
			if err != nil {
				return err
			}
			defer journal.Close()
		}
		clusterCfg := cluster.Config{
			LeaseTTL:     *leaseTTL,
			ChunkBatches: *chunkBatches,
			Journal:      journal,
			Telemetry:    registry,
			Tracer:       tracer,
			Logf:         logf,
		}
		if store != nil {
			// Journal-restored jobs whose curve the store already holds are
			// dropped at startup instead of re-simulated — re-submissions are
			// served from the store before they ever reach the cluster.
			clusterCfg.HasResult = store.Has
		}
		coord = cluster.New(clusterCfg)
		defer coord.Close()
		cfg.Eval = service.ClusterEval(coord)
		cfg.Backend = service.ClusterBackend(coord)
	}
	// The fleet node is created before the manager (the manager's submit
	// path consults it for claims) but its adoption path submits back into
	// the manager; mgr is assigned before the node's Run loop starts, so
	// the closure never observes it nil.
	var mgr *service.Manager
	var fleetNode *fleet.Node
	if *fleetMode {
		fleetNode, err = fleet.New(fleet.Config{
			Dir:       *storeDir,
			Owner:     fleetOwner,
			URL:       *advertiseURL,
			Store:     store,
			Heartbeat: *fleetHB,
			ClaimTTL:  *fleetClaimTTL,
			Telemetry: registry,
			Logf:      logf,
			Submit: func(raw json.RawMessage) {
				var sc config.Scenario
				if err := json.Unmarshal(raw, &sc); err != nil {
					logf("ahs-serve: adopted scenario undecodable: %v", err)
					return
				}
				if _, err := mgr.Submit(&sc); err != nil {
					logf("ahs-serve: adopted scenario submit failed: %v", err)
				}
			},
		})
		if err != nil {
			return err
		}
		defer fleetNode.Close()
		cfg.Fleet = fleetNode
		logger.Info("ahs-serve: fleet member",
			slog.String("owner", fleetOwner),
			slog.String("role", fleetNode.Role()),
			slog.Uint64("epoch", fleetNode.Epoch()),
			slog.String("advertise", *advertiseURL))
	}
	if journal != nil || store != nil {
		// Surface durability in GET /healthz: operators watching a
		// crash-safe deployment can see the journal directory, live-job
		// count, last compaction outcome, the result store's segment
		// state and this node's fleet role without reading logs.
		cfg.ExtraHealth = func() map[string]any {
			extra := make(map[string]any, 3)
			if journal != nil {
				extra["journal"] = journal.Stats()
			}
			if store != nil {
				extra["store"] = store.Stats()
			}
			if fleetNode != nil {
				extra["fleet"] = fleetNode.Health()
			}
			return extra
		}
	}
	mgr = service.NewManager(cfg)
	// The sweep engine fans whole parameter designs out through the same
	// manager, so sweep points share the dedup table, cache and backend
	// (cluster included) with direct /v1/evaluate submissions.
	eng := sweep.NewEngine(sweep.Config{
		Manager:     mgr,
		Telemetry:   mgr.Registry(),
		MaxInFlight: *sweepInFlight,
		MaxPoints:   *sweepMaxPts,
		Tracer:      tracer,
	})
	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(mgr))
	sweepHandler := sweep.NewHandler(eng)
	mux.Handle("/v1/sweeps", sweepHandler)
	mux.Handle("/v1/sweeps/", sweepHandler)
	var handler http.Handler = mux
	if coord != nil {
		mux.Handle("/cluster/v1/", coord.Handler())
	}
	if fleetNode != nil {
		mux.Handle("/fleet/v1/", fleetNode.Handler())
	}
	if *debug {
		// Profiling endpoints are opt-in: they expose goroutine dumps and
		// CPU profiles, which production deployments may not want public.
		// GET /metrics is always on (see service.NewHandler).
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{
		Handler:      handler,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("ahs-serve: listening",
		slog.String("addr", ln.Addr().String()),
		slog.Int("workers", *workers),
		slog.Int("queue", *queueSize),
		slog.Int("cache", *cacheSize),
		slog.Bool("cluster", *clusterMode),
		slog.Bool("tracing", tracer != nil))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	if fleetNode != nil {
		// Heartbeats, claim renewal, failover detection and pending-put
		// retries; ctx cancellation releases this node's claims on the way
		// out so peers pick unfinished work up immediately.
		go fleetNode.Run(ctx)
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain the job
	// pool; past the drain budget, in-flight estimations are cancelled
	// (they stop within one simulation batch).
	logger.Info("ahs-serve: shutting down, draining jobs", slog.Duration("budget", *drainTimeout))
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		srv.Close()
	}
	if coord != nil {
		// Stop leasing and release in-flight cluster jobs. With a journal
		// those jobs stay durable and resume when the next ahs-serve on the
		// same -journal-dir receives the same scenario again.
		coord.Drain()
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	err = mgr.Shutdown(drainCtx)
	// Reap sweep orchestration after the manager drains: settled jobs have
	// already resolved their points, so Close only stops bookkeeping.
	closeCtx, cancelClose := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelClose()
	if cerr := eng.Close(closeCtx); cerr != nil {
		logger.Error("ahs-serve: sweep engine close failed", slog.Any("err", cerr))
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("ahs-serve: drain budget exceeded, in-flight jobs cancelled")
			return nil
		}
		return err
	}
	logger.Info("ahs-serve: drained cleanly")
	return nil
}
