package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"ahs"
	"ahs/internal/core"
	"ahs/internal/sanlint"
	"ahs/internal/structural"
)

// TestPaperModelsLintClean is the acceptance gate of the static
// verification layer: every coordination strategy of Table 3, built through
// the single audited core.Build path, produces zero findings — errors or
// warnings — on the reduced configuration the exact solver uses.
func TestPaperModelsLintClean(t *testing.T) {
	base := core.DefaultParams().WithPlatoonSize(1)
	base.TrackOutcomes = false
	systems, err := core.BuildVariants(base, ahs.AllStrategies())
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range systems {
		rep, err := sanlint.Run(sys.Model, sanlint.Config{
			MaxStates: 50_000,
			Observed:  sys.ObservablePlaces(),
			Goals:     sys.GoalPlaces(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Truncated {
			t.Fatalf("%s: exploration truncated; raise MaxStates", rep.Model)
		}
		if !rep.Clean() {
			t.Errorf("%s: expected zero findings, got:\n%s", rep.Model, rep.Text())
		}
	}
}

// TestPhasedVariantLintsClean covers the phased-maneuver model variant,
// which adds the coordination activity and phase place usage.
func TestPhasedVariantLintsClean(t *testing.T) {
	if err := run([]string{"-strategy", "CC", "-phased"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllStrategiesText(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, code := range []string{"DD", "DC", "CD", "CC"} {
		if !strings.Contains(text, "strategy="+code) {
			t.Errorf("output missing strategy %s:\n%s", code, text)
		}
	}
	if !strings.Contains(text, ": ok") {
		t.Errorf("expected clean reports, got:\n%s", text)
	}
}

func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-strategy", "DD", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var reports []sanlint.Report
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("invalid JSON output: %v\n%s", err, out.String())
	}
	if len(reports) != 1 || len(reports[0].Diagnostics) != 0 {
		t.Fatalf("expected one clean report, got %+v", reports)
	}
}

func TestRunChecksCatalogue(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-checks"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, c := range sanlint.Catalog() {
		if !strings.Contains(out.String(), string(c.ID)) {
			t.Errorf("catalogue output missing %s", c.ID)
		}
	}
}

func TestRunRejectsBadStrategy(t *testing.T) {
	if err := run([]string{"-strategy", "QQ"}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected strategy parse error")
	}
}

// TestTruncationExitsZeroWithoutStrict asserts a truncated exploration (a
// warning, not an error) does not fail the lint run unless -strict.
func TestTruncationExitsZeroWithoutStrict(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-strategy", "DD", "-max-states", "50"}, &out); err != nil {
		t.Fatalf("warnings should not fail without -strict: %v", err)
	}
	if err := run([]string{"-strategy", "DD", "-max-states", "50", "-strict"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-strict should fail on warnings")
	}
}

// TestFactsGolden pins the certified structural facts of all four paper
// models. A diff here means either an intended model change (regenerate with
// `go run ./cmd/ahs-lint -facts > cmd/ahs-lint/testdata/facts.golden`) or a
// regression in the structural analyzer.
func TestFactsGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-facts"}, &out); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/facts.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("facts output differs from testdata/facts.golden (regenerate if the change is intended)\ngot %d bytes, want %d", out.Len(), len(want))
	}
	// The golden must cover every strategy and be certified.
	var facts []structural.ModelFacts
	if err := json.Unmarshal(want, &facts); err != nil {
		t.Fatalf("golden is not a facts array: %v", err)
	}
	if len(facts) != 4 {
		t.Fatalf("golden has %d models, want 4", len(facts))
	}
	for _, f := range facts {
		if !f.Exhaustive {
			t.Errorf("%s: golden facts not exhaustive", f.Model)
		}
		if f.StateBound() <= 0 {
			t.Errorf("%s: no certified state bound", f.Model)
		}
	}
}
