// Command ahs-lint statically verifies the structure of the AHS SAN models
// before any simulation budget is spent on them: case-weight normalization,
// dead or stuck places, activities that can never enable, instantaneous
// conflicts, and reachability of the absorbing KO_total place — each
// reported under a stable SAN0xx check ID (see docs/linting.md).
//
// By default it lints a reduced configuration (small n, as in
// ahs-statespace) of every coordination strategy of Table 3, because the
// bounded marking-graph exploration behind the whole-model checks must
// cover the reachable space exhaustively.
//
// Examples:
//
//	ahs-lint                      # lint DD, DC, CD and CC at n=1
//	ahs-lint -strategy CC -n 2    # one strategy, larger reduced model
//	ahs-lint -json                # machine-readable diagnostics
//	ahs-lint -checks              # print the check catalogue
//	ahs-lint -facts               # certified structural facts as JSON
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"ahs"
	"ahs/internal/core"
	"ahs/internal/san"
	"ahs/internal/sanlint"
	"ahs/internal/structural"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case errors.Is(err, errFindings):
		os.Exit(1)
	case err != nil:
		fmt.Fprintln(os.Stderr, "ahs-lint:", err)
		os.Exit(2)
	}
}

// errFindings distinguishes "the linter worked and found defects" from
// operational failures, so main can use distinct exit codes (1 vs 2).
var errFindings = errors.New("ahs-lint: findings reported")

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ahs-lint", flag.ContinueOnError)
	var (
		strategy  = fs.String("strategy", "all", "coordination strategy to lint: all, DD, DC, CD or CC")
		n         = fs.Int("n", 1, "maximum vehicles per platoon of the linted reduced model (keep small: whole-model checks need exhaustive exploration)")
		lanes     = fs.Int("lanes", 2, "number of lanes")
		phased    = fs.Bool("phased", false, "lint the phased-maneuver (coordination + execution) variant")
		maxStates = fs.Int("max-states", 50_000, "bound on explored stable markings; hitting it suppresses absence checks")
		jsonOut   = fs.Bool("json", false, "emit machine-readable JSON diagnostics")
		strict    = fs.Bool("strict", false, "exit non-zero on warnings too, not only errors")
		checks    = fs.Bool("checks", false, "print the check catalogue and exit")
		factsOut  = fs.Bool("facts", false, "emit certified structural model facts as JSON (cross-validated against the linter's exploration)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *checks {
		for _, c := range sanlint.Catalog() {
			fmt.Fprintf(out, "%s  %-7s  %s\n", c.ID, c.Severity, c.Title)
		}
		return nil
	}

	strategies := ahs.AllStrategies()
	if *strategy != "all" {
		s, err := ahs.ParseStrategy(*strategy)
		if err != nil {
			return err
		}
		strategies = strategies[:0]
		strategies = append(strategies, s)
	}

	base := core.DefaultParams().WithPlatoonSize(*n)
	base.Lanes = *lanes
	base.PhasedManeuvers = *phased
	// Cumulative outcome counters grow without bound and would truncate the
	// exploration immediately; lint the same reduced form the exact CTMC
	// solver uses.
	base.TrackOutcomes = false

	systems, err := core.BuildVariants(base, strategies)
	if err != nil {
		return err
	}

	if *factsOut {
		return emitFacts(out, systems, *maxStates)
	}

	reports := make([]*sanlint.Report, 0, len(systems))
	failed := false
	for _, sys := range systems {
		rep, err := sanlint.Run(sys.Model, sanlint.Config{
			MaxStates: *maxStates,
			Observed:  sys.ObservablePlaces(),
			Goals:     sys.GoalPlaces(),
		})
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		if rep.HasErrors() || (*strict && !rep.Clean()) {
			failed = true
		}
		if !*jsonOut {
			fmt.Fprint(out, rep.Text())
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	}
	if failed {
		return errFindings
	}
	return nil
}

// emitFacts computes structural model facts for every system, cross-validates
// them against the linter's own exhaustive exploration (a bound or invariant
// the exploration contradicts is a bug in one of the two engines), and emits
// them as a deterministic JSON array.
func emitFacts(out io.Writer, systems []*core.AHS, maxStates int) error {
	all := make([]*structural.ModelFacts, 0, len(systems))
	for _, sys := range systems {
		// Absorb exactly where the linter does: any goal place marked.
		var goalIDs []san.PlaceID
		for _, name := range sys.GoalPlaces() {
			id, ok := sys.Model.PlaceByName(name)
			if !ok {
				return fmt.Errorf("goal place %q not in model %q", name, sys.Model.Name())
			}
			goalIDs = append(goalIDs, id)
		}
		absorb := func(mk *san.Marking) bool {
			for _, id := range goalIDs {
				if mk.Tokens(id) > 0 {
					return true
				}
			}
			return false
		}
		facts, err := structural.Analyze(sys.Model, structural.Options{
			MaxStates: maxStates,
			Absorb:    absorb,
		})
		if err != nil {
			return err
		}
		rep, err := sanlint.Run(sys.Model, sanlint.Config{
			MaxStates: maxStates,
			Observed:  sys.ObservablePlaces(),
			Goals:     sys.GoalPlaces(),
			Facts:     facts,
		})
		if err != nil {
			return err
		}
		for _, d := range rep.Diagnostics {
			if d.Check == sanlint.CheckBoundViolation || d.Check == sanlint.CheckNonConservative {
				return fmt.Errorf("facts for %s contradicted by exploration: %s", sys.Model.Name(), d)
			}
		}
		all = append(all, facts)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(all)
}
