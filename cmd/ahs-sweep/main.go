// Command ahs-sweep submits a parameter-sweep spec (internal/sweep JSON
// schema, see docs/sweep-example.json and docs/api.md) and writes the
// per-point result table once every design point has settled.
//
// Two execution modes share the same spec and outputs:
//
//	ahs-sweep -spec docs/sweep-example.json                  # in-process
//	ahs-sweep -spec design.json -server http://host:8080     # live ahs-serve
//
// Against a server the whole design fans out through the service job
// manager — and through the cluster when the server runs -cluster — with
// deduplication by canonical scenario hash; either way each point's curve
// is bit-identical to evaluating that scenario alone. -csv and -html add a
// machine-readable table and the response-surface report.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ahs/internal/report"
	"ahs/internal/service"
	"ahs/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ahs-sweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ahs-sweep", flag.ContinueOnError)
	var (
		specPath     = fs.String("spec", "", "sweep spec file (required)")
		server       = fs.String("server", "", "ahs-serve base URL; empty runs the sweep in-process")
		workers      = fs.Int("workers", 2, "in-process mode: jobs evaluated concurrently")
		inFlight     = fs.Int("inflight", 4, "default per-sweep bound on concurrently submitted points")
		poll         = fs.Duration("poll", 500*time.Millisecond, "server mode: status polling interval when the SSE stream is unavailable")
		timeout      = fs.Duration("timeout", 0, "overall deadline (0 = none)")
		csvPath      = fs.String("csv", "", "also write the result table as CSV to this file")
		htmlPath     = fs.String("html", "", "also write the response-surface HTML report to this file")
		allowPartial = fs.Bool("allow-partial", false, "exit 0 even when some points failed or were cancelled")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}
	sp, err := sweep.LoadFile(*specPath)
	if err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var results []sweep.PointResult
	var view sweep.View
	if *server != "" {
		view, results, err = runRemote(ctx, *server, *specPath, *poll, *htmlPath)
	} else {
		view, results, err = runLocal(ctx, sp, *workers, *inFlight)
	}
	if err != nil {
		return err
	}

	header, rows := sweep.ResultRows(sp, results)
	fmt.Fprintf(out, "sweep %s: %s — %d points (%d unique, %d deduped), %d completed, %d failed, %d cancelled\n",
		view.ID, view.Status, view.Points, view.UniquePoints, view.Deduped,
		view.Completed, view.Failed, view.Cancelled)
	fmt.Fprint(out, report.Table(header, rows))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := report.WriteCSV(f, header, rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *htmlPath != "" && *server == "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			return err
		}
		if err := sweep.WriteReport(f, sp, results); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if !*allowPartial && view.Status != sweep.StatusDone {
		return fmt.Errorf("sweep finished %s: %d failed, %d cancelled", view.Status, view.Failed, view.Cancelled)
	}
	return nil
}

// runLocal evaluates the design in-process through a private job manager.
func runLocal(ctx context.Context, sp *sweep.Spec, workers, inFlight int) (sweep.View, []sweep.PointResult, error) {
	mgr := service.NewManager(service.Config{Workers: workers})
	defer func() {
		sdCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = mgr.Shutdown(sdCtx)
	}()
	eng := sweep.NewEngine(sweep.Config{Manager: mgr, MaxInFlight: inFlight})
	defer func() {
		clCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = eng.Close(clCtx)
	}()

	view, err := eng.Submit(sp)
	if err != nil {
		return sweep.View{}, nil, err
	}
	if view, err = eng.Wait(ctx, view.ID); err != nil {
		return sweep.View{}, nil, err
	}
	results, err := eng.Results(view.ID)
	return view, results, err
}

// runRemote submits the spec file to a live ahs-serve and follows the
// sweep's SSE stream for live progress, polling at -poll intervals when
// the server (or a proxy in between) cannot stream; htmlPath, when set,
// downloads the server-rendered report.
func runRemote(ctx context.Context, server, specPath string, poll time.Duration, htmlPath string) (sweep.View, []sweep.PointResult, error) {
	raw, err := os.ReadFile(specPath)
	if err != nil {
		return sweep.View{}, nil, err
	}
	var ack struct {
		ID         string `json:"id"`
		StatusURL  string `json:"statusUrl"`
		ResultsURL string `json:"resultsUrl"`
		ReportURL  string `json:"reportUrl"`
		Error      string `json:"error"`
	}
	if err := doJSON(ctx, http.MethodPost, server+"/v1/sweeps", raw, &ack); err != nil {
		return sweep.View{}, nil, err
	}
	if ack.Error != "" {
		return sweep.View{}, nil, fmt.Errorf("server rejected spec: %s", ack.Error)
	}

	view, streamed := streamView(ctx, server+ack.StatusURL+"/stream", os.Stderr)
	if !streamed {
		// Polling is idempotent, so a stream that broke mid-sweep simply
		// resumes here from the current status.
		for {
			if err := doJSON(ctx, http.MethodGet, server+ack.StatusURL, nil, &view); err != nil {
				return sweep.View{}, nil, err
			}
			if view.Status.Terminal() {
				break
			}
			select {
			case <-time.After(poll):
			case <-ctx.Done():
				return sweep.View{}, nil, ctx.Err()
			}
		}
	}

	var results []sweep.PointResult
	if err := doJSON(ctx, http.MethodGet, server+ack.ResultsURL, nil, &results); err != nil {
		return sweep.View{}, nil, err
	}
	if htmlPath != "" {
		page, err := doRaw(ctx, server+ack.ReportURL)
		if err != nil {
			return sweep.View{}, nil, err
		}
		if err := os.WriteFile(htmlPath, page, 0o644); err != nil {
			return sweep.View{}, nil, err
		}
	}
	return view, results, nil
}

// streamView follows a sweep's SSE stream, printing one progress line per
// event to progressOut, and returns the terminal view from the closing
// "sweep" event. A false second return means streaming was unavailable or
// broke before the terminal event; the caller falls back to polling.
func streamView(ctx context.Context, url string, progressOut io.Writer) (sweep.View, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return sweep.View{}, false
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return sweep.View{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK ||
		!strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		return sweep.View{}, false
	}

	r := bufio.NewReader(resp.Body)
	var name string
	var data []byte
	for ctx.Err() == nil {
		line, err := r.ReadString('\n')
		if err != nil {
			return sweep.View{}, false
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && name != "":
			var view sweep.View
			if err := json.Unmarshal(data, &view); err != nil {
				return sweep.View{}, false
			}
			switch name {
			case "sweep":
				return view, true
			case "progress":
				fmt.Fprintf(progressOut, "sweep %s: %d/%d completed, %d failed, %d cancelled (batches %d/%d)\n",
					view.ID, view.Completed, view.Points, view.Failed, view.Cancelled,
					view.Progress.BatchesDone, view.Progress.MaxBatches)
			}
			name, data = "", nil
		}
	}
	return sweep.View{}, false
}

func doJSON(ctx context.Context, method, url string, body []byte, v any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("%s %s: %s: %s", method, url, resp.Status, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, v)
}

func doRaw(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 64<<20))
}
