package main

import "testing"

func TestRunReducedModel(t *testing.T) {
	if err := run([]string{"-n", "1", "-lambda", "0.01", "-horizon", "4", "-points", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithDynamics(t *testing.T) {
	err := run([]string{
		"-n", "1", "-lambda", "0.02", "-join", "4", "-leave", "2", "-change", "1",
		"-horizon", "2", "-points", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-strategy", "QQ"}); err == nil {
		t.Fatal("expected strategy error")
	}
	if err := run([]string{"-lambda", "0"}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestRunStateSpaceCapEnforced(t *testing.T) {
	// n=2 with dynamics exceeds a tiny cap.
	err := run([]string{"-n", "2", "-lambda", "0.01", "-join", "6", "-leave", "2", "-max-states", "10"})
	if err == nil {
		t.Fatal("expected state-space cap error")
	}
}
