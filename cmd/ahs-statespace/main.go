// Command ahs-statespace generates the exact continuous-time Markov chain
// underlying a (reduced) AHS configuration and solves the unsafety measure
// numerically by uniformization — the exact counterpart of the Monte-Carlo
// estimation, feasible for small platoons.
//
// Example:
//
//	ahs-statespace -n 1 -lambda 1e-3 -horizon 8 -points 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"

	"ahs"
	"ahs/internal/core"
	"ahs/internal/ctmc"
	"ahs/internal/report"
	"ahs/internal/structural"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ahs-statespace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ahs-statespace", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 1, "maximum vehicles per platoon (keep small: the state space is exponential)")
		lambda    = fs.Float64("lambda", 1e-3, "base failure rate λ per hour")
		strategy  = fs.String("strategy", "DD", "coordination strategy: DD, DC, CD or CC")
		join      = fs.Float64("join", 0, "vehicle join rate per hour (0 disables)")
		leave     = fs.Float64("leave", 0, "vehicle leave rate per hour (0 disables)")
		change    = fs.Float64("change", 0, "platoon change rate per hour (0 disables)")
		horizon   = fs.Float64("horizon", 8, "longest trip duration in hours")
		points    = fs.Int("points", 4, "number of evenly spaced time points")
		maxStates = fs.Int("max-states", 500000, "abort if the reachable state space exceeds this")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	strat, err := ahs.ParseStrategy(*strategy)
	if err != nil {
		return err
	}

	p := core.DefaultParams()
	p.N = *n
	p.Lambda = *lambda
	p.Strategy = strat
	p.JoinRate = *join
	p.LeaveRate = *leave
	p.ChangeRate = *change
	p.TrackOutcomes = false // cumulative counters would make the chain infinite

	sys, err := core.Build(p)
	if err != nil {
		return err
	}

	// A cheap structural pass first: when it certifies a state-space bound
	// (exhaustive walk of the same absorbed graph), reachability analysis
	// pre-sizes its state maps from it and asserts it never explores more.
	exploreOpts := ctmc.ExploreOptions{
		Absorb:    sys.Unsafe,
		MaxStates: *maxStates,
	}
	facts, err := structural.Analyze(sys.Model, structural.Options{
		MaxStates: *maxStates,
		Absorb:    sys.Unsafe,
	})
	if err != nil {
		return err
	}
	if bound := facts.StateBound(); bound > 0 {
		exploreOpts.ExpectedStates = bound
		exploreOpts.StateBound = bound
	}

	g, err := ctmc.Explore(sys.Model, exploreOpts)
	if err != nil {
		return err
	}
	if err := g.CheckGeneratorConsistency(); err != nil {
		return err
	}
	unsafe := g.StatesWhere(sys.Unsafe)
	fmt.Printf("model: %s\n", sys.Model.Name())
	if exploreOpts.StateBound > 0 {
		fmt.Printf("certified state bound: %d (stiffness spread %.3g)\n",
			exploreOpts.StateBound, facts.Stiffness.Spread)
	}
	fmt.Printf("states: %d (unsafe: %d), transitions: %d\n",
		g.NumStates(), len(unsafe), g.NumTransitions())

	rows := make([][]string, 0, *points)
	for i := 1; i <= *points; i++ {
		t := *horizon * float64(i) / float64(*points)
		s, err := g.TransientProbability(t, sys.Unsafe)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			strconv.FormatFloat(t, 'g', -1, 64),
			report.FormatProb(s),
		})
	}
	fmt.Print(report.Table([]string{"t (h)", "exact S(t)"}, rows))

	// Long-run characteristics of the catastrophe.
	pAbs, err := g.AbsorptionProbability(sys.Unsafe, 0, 0)
	if err != nil {
		return err
	}
	fmt.Printf("eventual catastrophe probability: %s\n", report.FormatProb(pAbs))
	mttc, err := g.MeanTimeTo(sys.Unsafe, 0, 0)
	switch {
	case errors.Is(err, ctmc.ErrUnreachableTarget):
		fmt.Println("mean time to catastrophe: unreachable")
	case err != nil:
		return err
	case math.IsInf(mttc, 1):
		fmt.Println("mean time to catastrophe: infinite (the system can drain safely first)")
	default:
		fmt.Printf("mean time to catastrophe: %.6g hours\n", mttc)
	}
	return nil
}
