// Command ahs-worker is the compute node of the distributed unsafety
// evaluator: it registers with an ahs-serve coordinator (started with
// -cluster), pulls chunk leases, simulates them through the exact pipeline
// a single process would use, and reports sufficient statistics back. Any
// number of workers may join and leave at any time; the merged results stay
// bit-identical to a single-process evaluation.
//
//	ahs-serve -cluster -addr :8080 &
//	ahs-worker -coordinator http://localhost:8080 &
//	ahs-worker -coordinator http://localhost:8080 &
//	curl -d @docs/scenario-example.json localhost:8080/v1/evaluate
//
// Shutdown is two-phase: the first SIGTERM/SIGINT drains — the worker
// finishes and reports the chunk it is simulating, deregisters, and exits,
// so no completed work is lost. A second signal (or the -drain-grace
// deadline) aborts immediately; the abandoned lease simply expires back
// onto the coordinator's queue. See docs/cluster.md for the protocol and
// deployment recipe.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ahs/internal/cluster"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ahs-worker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ahs-worker", flag.ContinueOnError)
	var (
		coordinator = fs.String("coordinator", "http://localhost:8080", "base URL of the ahs-serve -cluster coordinator")
		id          = fs.String("id", "", "stable worker identity (default: a random one)")
		simWorkers  = fs.Int("sim-workers", 0, "simulation goroutines per chunk (0 = GOMAXPROCS)")
		poll        = fs.Duration("poll", 0, "idle poll interval override (0 = coordinator's suggestion)")
		healthAddr  = fs.String("health-addr", "", "serve GET /healthz on this address and advertise it for coordinator liveness probes (empty = disabled)")
		drainGrace  = fs.Duration("drain-grace", 10*time.Minute, "after the first SIGTERM/SIGINT, how long the in-flight chunk may keep running before it is aborted (0 = abort immediately)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	// Two-phase shutdown wiring: the first signal cancels the soft
	// context (stop taking leases, finish the one in flight); the second
	// signal — or the drain-grace deadline — cancels the hard context
	// (abort everything now).
	soft, softCancel := context.WithCancel(context.Background())
	defer softCancel()
	hard, hardCancel := context.WithCancel(context.Background())
	defer hardCancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	grace := *drainGrace
	go func() {
		<-sigc
		if grace <= 0 {
			log.Printf("ahs-worker: signal received, aborting immediately (-drain-grace 0)")
			hardCancel()
			softCancel()
			return
		}
		log.Printf("ahs-worker: signal received, draining (finishing in-flight chunk; again to abort, grace %v)", grace)
		softCancel()
		select {
		case <-sigc:
			log.Printf("ahs-worker: second signal, aborting in-flight chunk")
		case <-time.After(grace):
			log.Printf("ahs-worker: drain grace %v exceeded, aborting in-flight chunk", grace)
		case <-hard.Done():
		}
		hardCancel()
	}()

	w := &cluster.Worker{
		Coordinator: *coordinator,
		ID:          *id,
		SimWorkers:  *simWorkers,
		Poll:        *poll,
		HardContext: hard,
		Logf:        log.Printf,
	}

	if *healthAddr != "" {
		ln, err := net.Listen("tcp", *healthAddr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
			rw.WriteHeader(http.StatusOK)
			fmt.Fprintln(rw, `{"status":"ok"}`)
		})
		hs := &http.Server{Handler: mux, ReadTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second}
		go hs.Serve(ln)
		defer hs.Close()
		// Advertise a URL the coordinator can reach. A wildcard listen
		// address is advertised via the machine's hostname.
		host, port, _ := net.SplitHostPort(ln.Addr().String())
		if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
			if h, err := os.Hostname(); err == nil {
				host = h
			}
		}
		w.HealthURL = fmt.Sprintf("http://%s/healthz", net.JoinHostPort(host, port))
		log.Printf("ahs-worker: health endpoint on %s", w.HealthURL)
	}

	log.Printf("ahs-worker: joining %s", *coordinator)
	return w.Run(soft)
}
