// Command ahs-worker is the compute node of the distributed unsafety
// evaluator: it registers with an ahs-serve coordinator (started with
// -cluster), pulls chunk leases, simulates them through the exact pipeline
// a single process would use, and reports sufficient statistics back. Any
// number of workers may join and leave at any time; the merged results stay
// bit-identical to a single-process evaluation.
//
//	ahs-serve -cluster -addr :8080 &
//	ahs-worker -coordinator http://localhost:8080 &
//	ahs-worker -coordinator http://localhost:8080 &
//	curl -d @docs/scenario-example.json localhost:8080/v1/evaluate
//
// Shutdown is two-phase: the first SIGTERM/SIGINT drains — the worker
// finishes and reports the chunk it is simulating, deregisters, and exits,
// so no completed work is lost. A second signal (or the -drain-grace
// deadline) aborts immediately; the abandoned lease simply expires back
// onto the coordinator's queue. See docs/cluster.md for the protocol and
// deployment recipe.
//
// Each leased chunk runs inside a span parented to the coordinator's lease
// span (W3C traceparent on the lease), so worker-side execution appears in
// the job's distributed trace; with -health-addr the worker also serves
// GET /metrics (runtime + trace families) and GET /debug/traces alongside
// /healthz. Logs go through log/slog; -log-format json for log shippers.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ahs/internal/cluster"
	"ahs/internal/obs"
	"ahs/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ahs-worker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ahs-worker", flag.ContinueOnError)
	var (
		coordinator = fs.String("coordinator", "http://localhost:8080", "base URL of the ahs-serve -cluster coordinator")
		id          = fs.String("id", "", "stable worker identity (default: a random one)")
		simWorkers  = fs.Int("sim-workers", 0, "simulation goroutines per chunk (0 = GOMAXPROCS)")
		poll        = fs.Duration("poll", 0, "idle poll interval override (0 = coordinator's suggestion)")
		healthAddr  = fs.String("health-addr", "", "serve GET /healthz, /metrics and /debug/traces on this address and advertise it for coordinator liveness probes (empty = disabled)")
		drainGrace  = fs.Duration("drain-grace", 10*time.Minute, "after the first SIGTERM/SIGINT, how long the in-flight chunk may keep running before it is aborted (0 = abort immediately)")
		logFormat   = fs.String("log-format", "text", "log output format: text or json (one slog object per line)")
		traceSample = fs.Int("trace-sample", 1, "record every Nth locally rooted trace (1 = all, 0 = tracing disabled); coordinator-parented chunk spans always follow the coordinator's sampling decision")
		traceMaxTr  = fs.Int("trace-max-traces", 256, "finished traces kept in the in-memory ring for GET /debug/traces")
		traceMaxSp  = fs.Int("trace-max-spans", 512, "span cap per trace; spans past it are counted as dropped")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		return err
	}

	registry := telemetry.NewRegistry()
	telemetry.RegisterRuntime(registry)
	var tracer *obs.Tracer
	if *traceSample > 0 {
		tracer = obs.NewTracer(obs.Config{
			SampleEvery: *traceSample,
			MaxTraces:   *traceMaxTr,
			MaxSpans:    *traceMaxSp,
			Telemetry:   registry,
			Logger:      logger,
		})
	}

	// Two-phase shutdown wiring: the first signal cancels the soft
	// context (stop taking leases, finish the one in flight); the second
	// signal — or the drain-grace deadline — cancels the hard context
	// (abort everything now).
	soft, softCancel := context.WithCancel(context.Background())
	defer softCancel()
	hard, hardCancel := context.WithCancel(context.Background())
	defer hardCancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	grace := *drainGrace
	go func() {
		<-sigc
		if grace <= 0 {
			logger.Info("ahs-worker: signal received, aborting immediately (-drain-grace 0)")
			hardCancel()
			softCancel()
			return
		}
		logger.Info("ahs-worker: signal received, draining (finishing in-flight chunk; again to abort)",
			slog.Duration("grace", grace))
		softCancel()
		select {
		case <-sigc:
			logger.Info("ahs-worker: second signal, aborting in-flight chunk")
		case <-time.After(grace):
			logger.Warn("ahs-worker: drain grace exceeded, aborting in-flight chunk", slog.Duration("grace", grace))
		case <-hard.Done():
		}
		hardCancel()
	}()

	w := &cluster.Worker{
		Coordinator: *coordinator,
		ID:          *id,
		SimWorkers:  *simWorkers,
		Poll:        *poll,
		HardContext: hard,
		Logf:        obs.Logf(context.Background(), logger),
		Tracer:      tracer,
	}

	if *healthAddr != "" {
		ln, err := net.Listen("tcp", *healthAddr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
			rw.WriteHeader(http.StatusOK)
			fmt.Fprintln(rw, `{"status":"ok"}`)
		})
		mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = registry.WriteText(rw)
		})
		mux.Handle("GET /debug/traces", obs.DebugHandler(tracer, "/debug/traces"))
		mux.Handle("GET /debug/traces/{id...}", obs.DebugHandler(tracer, "/debug/traces"))
		hs := &http.Server{Handler: mux, ReadTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second}
		go hs.Serve(ln)
		defer hs.Close()
		// Advertise a URL the coordinator can reach. A wildcard listen
		// address is advertised via the machine's hostname.
		host, port, _ := net.SplitHostPort(ln.Addr().String())
		if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
			if h, err := os.Hostname(); err == nil {
				host = h
			}
		}
		w.HealthURL = fmt.Sprintf("http://%s/healthz", net.JoinHostPort(host, port))
		logger.Info("ahs-worker: health endpoint up", slog.String("url", w.HealthURL))
	}

	logger.Info("ahs-worker: joining coordinator", slog.String("coordinator", *coordinator))
	return w.Run(soft)
}
