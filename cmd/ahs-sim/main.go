// Command ahs-sim estimates the unsafety curve S(t) of one AHS
// configuration and prints it as a table.
//
// Example (the paper's base case, Figure 10's n=10 series):
//
//	ahs-sim -n 10 -lambda 1e-5 -strategy DD -horizon 10 -points 5 -batches 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"ahs"
	"ahs/internal/config"
	"ahs/internal/core"
	"ahs/internal/platoon"
	"ahs/internal/profiling"
	"ahs/internal/report"
	"ahs/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ahs-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("ahs-sim", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "JSON scenario file (overrides all model flags; see internal/config)")

		n         = fs.Int("n", 10, "maximum vehicles per platoon")
		lanes     = fs.Int("lanes", 2, "number of lanes (one platoon per lane)")
		lambda    = fs.Float64("lambda", 1e-5, "base failure rate λ per hour")
		strategy  = fs.String("strategy", "DD", "coordination strategy: DD, DC, CD or CC")
		join      = fs.Float64("join", 12, "vehicle join rate per hour")
		leave     = fs.Float64("leave", 4, "vehicle leave rate per hour")
		change    = fs.Float64("change", 6, "platoon change rate per hour")
		horizon   = fs.Float64("horizon", 10, "longest trip duration in hours")
		points    = fs.Int("points", 5, "number of evenly spaced time points")
		batches   = fs.Uint64("batches", 20000, "maximum simulation batches")
		seed      = fs.Uint64("seed", 1, "random seed")
		noBias    = fs.Bool("no-bias", false, "disable rare-event importance sampling")
		converge  = fs.Bool("converge", false, "stop early with the paper's §4.1 rule (95% CI, 0.1 relative)")
		breakdown = fs.Bool("breakdown", false, "decompose S(horizon) by catastrophic situation (Table 2)")

		chromeTrace = fs.String("chrome-trace", "", "simulate ONE trajectory and write it as Chrome trace-event JSON to this file (open in ui.perfetto.dev), instead of estimating S(t)")
	)
	prof := profiling.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if prof.Enabled() {
		stopProf, perr := prof.Start()
		if perr != nil {
			return perr
		}
		defer func() {
			if perr := stopProf(); perr != nil && err == nil {
				err = perr
			}
		}()
	}
	if *configPath != "" {
		return runScenario(*configPath)
	}
	if *points < 1 {
		return fmt.Errorf("points must be >= 1, got %d", *points)
	}
	if *horizon <= 0 {
		return fmt.Errorf("horizon must be positive, got %v", *horizon)
	}

	strat, err := ahs.ParseStrategy(*strategy)
	if err != nil {
		return err
	}
	p := ahs.DefaultParams()
	p.N = *n
	p.Lanes = *lanes
	p.Lambda = *lambda
	p.Strategy = strat
	p.JoinRate = *join
	p.LeaveRate = *leave
	p.ChangeRate = *change

	sys, err := ahs.New(p)
	if err != nil {
		return err
	}

	if *chromeTrace != "" {
		bias := 1.0
		if !*noBias {
			bias = sys.SuggestedFailureBias(*horizon)
		}
		return exportChromeTrace(sys, *chromeTrace, *horizon, *seed, bias)
	}

	times := make([]float64, *points)
	for i := range times {
		times[i] = *horizon * float64(i+1) / float64(*points)
	}
	opts := ahs.EvalOptions{
		Times:      times,
		Seed:       *seed,
		MaxBatches: *batches,
	}
	if !*noBias {
		opts.FailureBias = sys.SuggestedFailureBias(*horizon)
	}
	if *converge {
		opts.StopRule = ahs.PaperStopRule()
	}

	curve, err := sys.UnsafetyCurve(opts)
	if err != nil {
		return err
	}

	fmt.Printf("AHS unsafety, n=%d lanes=%d λ=%g/hr strategy=%s join=%g leave=%g change=%g\n",
		p.N, p.Lanes, p.Lambda, p.Strategy, p.JoinRate, p.LeaveRate, p.ChangeRate)
	if opts.FailureBias > 1 {
		fmt.Printf("importance sampling: failure rates forced x%.1f (exact reweighting)\n", opts.FailureBias)
	}
	rows := make([][]string, len(curve.Times))
	for i, t := range curve.Times {
		rows[i] = []string{
			strconv.FormatFloat(t, 'g', -1, 64),
			report.FormatProb(curve.Mean[i]),
			report.FormatProb(curve.Intervals[i].Lo),
			report.FormatProb(curve.Intervals[i].Hi),
		}
	}
	fmt.Print(report.Table([]string{"t (h)", "S(t)", "ci_lo", "ci_hi"}, rows))
	fmt.Printf("batches: %d, converged: %v\n", curve.Batches, curve.Converged)

	if *breakdown {
		bd, err := sys.UnsafetyBreakdown(*horizon, core.EvalOptions{
			Seed:        *seed,
			MaxBatches:  *batches,
			FailureBias: opts.FailureBias,
		})
		if err != nil {
			return err
		}
		fmt.Printf("\nS(%gh) by catastrophic situation:\n", *horizon)
		brows := make([][]string, 0, 3)
		for _, s := range []platoon.Situation{platoon.ST1, platoon.ST2, platoon.ST3} {
			iv := bd.BySituation[s]
			share := "n/a"
			if bd.Total.Point > 0 {
				share = fmt.Sprintf("%.0f%%", 100*iv.Point/bd.Total.Point)
			}
			brows = append(brows, []string{s.String(), report.FormatProb(iv.Point), share})
		}
		fmt.Print(report.Table([]string{"situation", "contribution", "share"}, brows))
	}
	return nil
}

// exportChromeTrace records one trajectory and writes it in the Chrome
// trace-event JSON format, one Perfetto timeline row per collapsed activity.
func exportChromeTrace(sys *ahs.System, path string, horizon float64, seed uint64, bias float64) error {
	events, res, err := sys.RecordTrajectory(horizon, seed, bias)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f, events, trace.ChromeTraceOptions{Collapse: true}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	outcome := fmt.Sprintf("survived to %gh", res.End)
	if res.Stopped {
		outcome = fmt.Sprintf("KO_total at %.4gh", res.StopTime)
	}
	if bias > 1 {
		outcome += fmt.Sprintf(" (failures forced x%.1f)", bias)
	}
	fmt.Printf("wrote %s: %d events, %s — open in ui.perfetto.dev\n", path, len(events), outcome)
	return nil
}

// runScenario evaluates a JSON scenario file.
func runScenario(path string) error {
	scenario, err := config.LoadFile(path)
	if err != nil {
		return err
	}
	p, err := scenario.Params()
	if err != nil {
		return err
	}
	sys, err := ahs.New(p)
	if err != nil {
		return err
	}
	opts := scenario.EvalOptions(sys)
	curve, err := sys.UnsafetyCurve(opts)
	if err != nil {
		return err
	}
	name := scenario.Name
	if name == "" {
		name = path
	}
	fmt.Printf("scenario %q: n=%d λ=%g/hr strategy=%s\n", name, p.N, p.Lambda, p.Strategy)
	if opts.FailureBias > 1 {
		fmt.Printf("importance sampling: failure rates forced x%.1f (exact reweighting)\n", opts.FailureBias)
	}
	rows := make([][]string, len(curve.Times))
	for i, t := range curve.Times {
		rows[i] = []string{
			strconv.FormatFloat(t, 'g', -1, 64),
			report.FormatProb(curve.Mean[i]),
			report.FormatProb(curve.Intervals[i].Lo),
			report.FormatProb(curve.Intervals[i].Hi),
		}
	}
	fmt.Print(report.Table([]string{"t (h)", "S(t)", "ci_lo", "ci_hi"}, rows))
	fmt.Printf("batches: %d, converged: %v\n", curve.Batches, curve.Converged)
	return nil
}
