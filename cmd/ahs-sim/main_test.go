package main

import (
	"os"
	"path/filepath"
	"testing"

	"ahs/internal/trace"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"bad strategy":  {"-strategy", "XY"},
		"zero points":   {"-points", "0"},
		"zero horizon":  {"-horizon", "0"},
		"unknown flag":  {"-definitely-not-a-flag"},
		"bad lambda":    {"-lambda", "0", "-batches", "10"},
		"negative join": {"-join", "-1", "-batches", "10"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: expected error for %v", name, args)
		}
	}
}

func TestRunSmallScenario(t *testing.T) {
	err := run([]string{
		"-n", "2", "-lambda", "0.01", "-horizon", "2",
		"-points", "2", "-batches", "50", "-seed", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithConvergenceRuleAndNoBias(t *testing.T) {
	err := run([]string{
		"-n", "2", "-lambda", "0.05", "-horizon", "1",
		"-points", "1", "-batches", "100", "-no-bias", "-converge",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	raw := `{"name":"test","n":2,"lambdaPerHour":0.01,"tripHours":[1,2],"batches":50}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("expected error for missing config")
	}
}

func TestRunWithBreakdown(t *testing.T) {
	err := run([]string{
		"-n", "2", "-lambda", "0.05", "-horizon", "2",
		"-points", "1", "-batches", "200", "-breakdown",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	rt := filepath.Join(dir, "rt.out")
	err := run([]string{
		"-n", "2", "-lambda", "0.01", "-horizon", "1",
		"-points", "1", "-batches", "50",
		"-cpuprofile", cpu, "-memprofile", mem, "-runtimetrace", rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem, rt} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (%v)", p, err)
		}
	}
	if err := run([]string{"-batches", "10", "-cpuprofile", dir}); err == nil {
		t.Error("expected error for unwritable cpuprofile path")
	}
}

func TestRunChromeTraceExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traj.json")
	err := run([]string{
		"-n", "2", "-lambda", "0.05", "-horizon", "5", "-seed", "7",
		"-chrome-trace", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.ValidateChromeTrace(f); err != nil {
		t.Fatalf("exported trajectory invalid: %v", err)
	}
}

func TestRunMultiLane(t *testing.T) {
	err := run([]string{
		"-n", "2", "-lanes", "3", "-lambda", "0.02", "-horizon", "1",
		"-points", "1", "-batches", "100",
	})
	if err != nil {
		t.Fatal(err)
	}
}
