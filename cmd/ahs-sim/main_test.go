package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"bad strategy":  {"-strategy", "XY"},
		"zero points":   {"-points", "0"},
		"zero horizon":  {"-horizon", "0"},
		"unknown flag":  {"-definitely-not-a-flag"},
		"bad lambda":    {"-lambda", "0", "-batches", "10"},
		"negative join": {"-join", "-1", "-batches", "10"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: expected error for %v", name, args)
		}
	}
}

func TestRunSmallScenario(t *testing.T) {
	err := run([]string{
		"-n", "2", "-lambda", "0.01", "-horizon", "2",
		"-points", "2", "-batches", "50", "-seed", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithConvergenceRuleAndNoBias(t *testing.T) {
	err := run([]string{
		"-n", "2", "-lambda", "0.05", "-horizon", "1",
		"-points", "1", "-batches", "100", "-no-bias", "-converge",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	raw := `{"name":"test","n":2,"lambdaPerHour":0.01,"tripHours":[1,2],"batches":50}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("expected error for missing config")
	}
}

func TestRunWithBreakdown(t *testing.T) {
	err := run([]string{
		"-n", "2", "-lambda", "0.05", "-horizon", "2",
		"-points", "1", "-batches", "200", "-breakdown",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiLane(t *testing.T) {
	err := run([]string{
		"-n", "2", "-lanes", "3", "-lambda", "0.02", "-horizon", "1",
		"-points", "1", "-batches", "100",
	})
	if err != nil {
		t.Fatal(err)
	}
}
