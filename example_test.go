package ahs_test

import (
	"fmt"
	"log"

	"ahs"
)

// Example evaluates the unsafety of a small, very unreliable AHS
// configuration — small enough that the example runs in milliseconds while
// still exercising the full pipeline. Results are deterministic for a
// fixed seed.
func Example() {
	params := ahs.DefaultParams()
	params.N = 2        // two platoons of up to 2 vehicles
	params.Lambda = 0.1 // deliberately terrible vehicles

	sys, err := ahs.New(params)
	if err != nil {
		log.Fatal(err)
	}
	curve, err := sys.UnsafetyCurve(ahs.EvalOptions{
		Times:      []float64{2, 4},
		Seed:       1,
		MaxBatches: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, t := range curve.Times {
		fmt.Printf("S(%gh) = %.3f\n", t, curve.Mean[i])
	}
	// Output:
	// S(2h) = 0.240
	// S(4h) = 0.421
}
