package ahs_test

import (
	"testing"

	"ahs"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	params := ahs.DefaultParams()
	params.N = 4
	params.Lambda = 0.01
	sys, err := ahs.New(params)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := sys.UnsafetyCurve(ahs.EvalOptions{
		Times:      []float64{2, 6},
		Seed:       1,
		MaxBatches: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Mean) != 2 || curve.Batches != 2000 {
		t.Fatalf("unexpected curve: %+v", curve)
	}
	if curve.Mean[1] < curve.Mean[0] {
		t.Fatalf("S(t) decreasing: %v", curve.Mean)
	}
}

func TestFacadeRejectsInvalidParams(t *testing.T) {
	params := ahs.DefaultParams()
	params.N = 0
	if _, err := ahs.New(params); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestFacadeStrategyHelpers(t *testing.T) {
	if got := ahs.AllStrategies(); len(got) != 4 {
		t.Fatalf("AllStrategies returned %d entries", len(got))
	}
	s, err := ahs.ParseStrategy("cc")
	if err != nil || s != ahs.CC {
		t.Fatalf("ParseStrategy(cc) = %v, %v", s, err)
	}
	if _, err := ahs.ParseStrategy("zz"); err == nil {
		t.Fatal("expected parse error")
	}
	if ahs.DD.String() != "DD" || ahs.CD.Inter != ahs.CC.Inter {
		t.Fatal("strategy constants wired up incorrectly")
	}
}

func TestFacadePaperStopRule(t *testing.T) {
	rule := ahs.PaperStopRule()
	if rule.Confidence != 0.95 || rule.MaxRelHalfWidth != 0.1 || rule.MinSamples != 10000 {
		t.Fatalf("paper stop rule %+v", rule)
	}
}

func TestFacadeSuggestedBiasAndSingleShot(t *testing.T) {
	sys, err := ahs.New(ahs.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	bias := sys.SuggestedFailureBias(10)
	if bias <= 1 {
		t.Fatalf("expected substantial bias at λ=1e-5, got %v", bias)
	}
	iv, err := sys.Unsafety(4, ahs.EvalOptions{Seed: 2, MaxBatches: 2000, FailureBias: bias})
	if err != nil {
		t.Fatal(err)
	}
	if iv.N != 2000 {
		t.Fatalf("interval batches %d", iv.N)
	}
}
