// Benchmarks regenerating every figure of the paper's evaluation section.
//
// Each BenchmarkFigNN runs the corresponding experiment end to end (all
// series, all grid points) with a reduced batch budget, and logs the
// resulting series so `go test -bench=.` doubles as a quick reproduction
// harness. For paper-quality numbers use cmd/ahs-experiments with
// -batches 20000 or higher (see EXPERIMENTS.md).
package ahs_test

import (
	"fmt"
	"strings"
	"testing"

	"ahs"
	"ahs/internal/experiments"
)

// benchBatches keeps one benchmark iteration in the seconds range; the
// series shapes are already meaningful at this budget thanks to importance
// sampling.
const benchBatches = 1000

func benchFigure(b *testing.B, runner experiments.Runner) {
	cfg := experiments.Config{Seed: 1, MaxBatches: benchBatches}
	var last *experiments.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := runner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	logResult(b, last)
}

func logResult(b *testing.B, res *experiments.Result) {
	b.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", res.ID, res.Title)
	for _, s := range res.Series {
		fmt.Fprintf(&sb, "  %-28s", s.Label)
		for i := range s.X {
			fmt.Fprintf(&sb, " S(%g)=%.2e", s.X[i], s.Y[i])
		}
		sb.WriteByte('\n')
	}
	b.Log(sb.String())
}

// BenchmarkFig10 regenerates Figure 10: S(t) vs trip duration for platoon
// sizes n ∈ {8,10,12,14} (λ=1e-5/hr, join=12/hr, leave=4/hr, DD).
func BenchmarkFig10(b *testing.B) { benchFigure(b, experiments.Fig10) }

// BenchmarkFig11 regenerates Figure 11: S(t) vs trip duration for
// λ ∈ {1e-6,1e-5,1e-4}/hr (n=10).
func BenchmarkFig11(b *testing.B) { benchFigure(b, experiments.Fig11) }

// BenchmarkFig12 regenerates Figure 12: S(6h) vs n ∈ {10..18} for
// λ ∈ {1e-6,1e-5,1e-4}/hr.
func BenchmarkFig12(b *testing.B) { benchFigure(b, experiments.Fig12) }

// BenchmarkFig13 regenerates Figure 13: S(t) vs trip duration for loads
// ρ = join/leave ∈ {1,2} with several absolute rate pairs (n=8).
func BenchmarkFig13(b *testing.B) { benchFigure(b, experiments.Fig13) }

// BenchmarkFig14 regenerates Figure 14: S(t) vs trip duration for the four
// coordination strategies DD/DC/CD/CC (n=10).
func BenchmarkFig14(b *testing.B) { benchFigure(b, experiments.Fig14) }

// BenchmarkFig15 regenerates Figure 15: S(6h) vs n for the four
// coordination strategies.
func BenchmarkFig15(b *testing.B) { benchFigure(b, experiments.Fig15) }

// BenchmarkTrajectory measures the cost of one simulated trajectory of the
// default configuration over a 10-hour horizon (the unit of work every
// estimate above is made of).
func BenchmarkTrajectory(b *testing.B) {
	sys, err := ahs.New(ahs.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	// Reuse the curve machinery with exactly b.N batches so the per-op
	// number is per trajectory.
	_, err = sys.UnsafetyCurve(ahs.EvalOptions{
		Times:       []float64{10},
		Seed:        1,
		MaxBatches:  uint64(b.N),
		FailureBias: sys.SuggestedFailureBias(10),
	})
	if err != nil {
		b.Fatal(err)
	}
}
