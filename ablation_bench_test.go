// Ablation benchmarks for the design choices DESIGN.md calls out: each
// benchmark estimates the unsafety of an amplified configuration with one
// model mechanism removed and logs the ratio to the full model, so
// `go test -bench=Ablation` quantifies how much each mechanism contributes
// to the headline measure.
package ahs_test

import (
	"testing"

	"ahs"
	"ahs/internal/core"
)

// ablationParams is an amplified regime (unreliable vehicles) where the
// mechanisms' contributions are measurable with few batches.
func ablationParams() ahs.Params {
	p := ahs.DefaultParams()
	p.Lambda = 0.004
	return p
}

func estimateAblation(b *testing.B, p ahs.Params) float64 {
	b.Helper()
	sys, err := ahs.New(p)
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		iv, err := sys.Unsafety(8, ahs.EvalOptions{Seed: 17, MaxBatches: 4000})
		if err != nil {
			b.Fatal(err)
		}
		last = iv.Point
	}
	return last
}

func runAblation(b *testing.B, mutate func(*ahs.Params), label string) {
	full := estimateAblation(b, ablationParams())
	p := ablationParams()
	mutate(&p)
	ablated := estimateAblation(b, p)
	ratio := 0.0
	if full > 0 {
		ratio = ablated / full
	}
	b.Logf("%s: S_full(8h)=%.3e  S_ablated(8h)=%.3e  ratio=%.2f", label, full, ablated, ratio)
}

// BenchmarkAblationEscalation removes the Figure 2 degradation chain:
// failed maneuvers are retried instead of escalating towards class A.
func BenchmarkAblationEscalation(b *testing.B) {
	runAblation(b, func(p *ahs.Params) { p.DisableEscalation = true }, "no escalation chain")
}

// BenchmarkAblationRefusal removes the §2.1.2 refusal rule: maneuver
// requests are never escalated against concurrent higher-priority
// maneuvers.
func BenchmarkAblationRefusal(b *testing.B) {
	runAblation(b, func(p *ahs.Params) { p.DisableRefusal = true }, "no refusal rule")
}

// BenchmarkAblationDegradedCoupling removes the participant-health
// coupling: a degraded participant no longer lowers maneuver success.
func BenchmarkAblationDegradedCoupling(b *testing.B) {
	runAblation(b, func(p *ahs.Params) { p.DegradedPenalty = 1 }, "no degraded-participant coupling")
}

// BenchmarkAblationParticipantFailure removes per-participant coordination
// fallibility, the mechanism that differentiates Table 3's strategies.
func BenchmarkAblationParticipantFailure(b *testing.B) {
	runAblation(b, func(p *ahs.Params) { p.ParticipantFailure = 0 }, "no participant coordination failure")
}

// BenchmarkAblationDynamics freezes the Dynamicity submodel: no joins,
// leaves or platoon changes.
func BenchmarkAblationDynamics(b *testing.B) {
	runAblation(b, func(p *ahs.Params) {
		p.JoinRate, p.LeaveRate, p.ChangeRate = 0, 0, 0
	}, "no dynamicity")
}

// BenchmarkUnsafetyBreakdown measures the cost of the cause-attributed
// estimation (shared trajectories, four measures).
func BenchmarkUnsafetyBreakdown(b *testing.B) {
	sys, err := ahs.New(ablationParams())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sys.UnsafetyBreakdown(8, core.EvalOptions{Seed: 18, MaxBatches: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPhasedManeuvers swaps the single-phase maneuver model
// for the two-phase (coordination + execution) protocol variant.
func BenchmarkAblationPhasedManeuvers(b *testing.B) {
	runAblation(b, func(p *ahs.Params) { p.PhasedManeuvers = true }, "two-phase maneuver protocol")
}
