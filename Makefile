# Convenience targets for the AHS safety reproduction.

GO ?= go

.PHONY: all build vet test race serve bench figures figures-full docs clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages (mirrors CI).
race:
	$(GO) test -race ./internal/service ./internal/mc ./internal/sim

# Run the evaluation service on :8080 (see docs/api.md).
serve:
	$(GO) run ./cmd/ahs-serve -addr :8080

# Quick-look benchmark pass: regenerates every paper figure at a reduced
# batch budget and runs the micro/ablation benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Quick figures (about a minute).
figures:
	$(GO) run ./cmd/ahs-experiments -fig all

# Paper-quality figures with CSV, SVG and a self-contained HTML report
# (roughly 20 minutes on one core; deterministic for a fixed seed).
figures-full:
	$(GO) run ./cmd/ahs-experiments -fig all -batches 20000 -seed 1 \
		-csv docs/results -svg docs/svg -html docs/report.html

docs: figures-full

clean:
	$(GO) clean ./...
