# Convenience targets for the AHS safety reproduction.

GO ?= go
BIN := bin

.PHONY: all build vet test race lint tools sanlint facts-golden serve worker cluster-smoke sweep-smoke store-smoke fleet-smoke chaos fuzz bench bench-json profile figures figures-full docs clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the whole module (mirrors CI). -short skips the
# heavy Monte-Carlo statistical cross-checks, which would exceed the package
# test timeout under race instrumentation; every concurrent code path still
# runs.
race:
	$(GO) test -race -short ./...

# Build the repo's own verification tools.
tools:
	$(GO) build -o $(BIN)/ahs-vet ./cmd/ahs-vet
	$(GO) build -o $(BIN)/ahs-lint ./cmd/ahs-lint

# Lint the models: structural checks (SAN001..SAN014, docs/linting.md) over
# every coordination strategy.
sanlint: tools
	$(BIN)/ahs-lint

# Regenerate the certified structural-facts golden for the four paper
# models (cmd/ahs-lint/testdata/facts.golden). CI diffs the live output
# against the committed file; run this after an intended model change and
# review the diff like any other golden update.
facts-golden: tools
	$(BIN)/ahs-lint -facts > cmd/ahs-lint/testdata/facts.golden
	@echo "facts golden regenerated; review with: git diff cmd/ahs-lint/testdata/facts.golden"

# Full static pass: formatting, standard vet, the repo's custom analyzers
# (ahsrand, ctxloop, floateq, locklabel) via the vettool protocol,
# staticcheck when installed, and the SAN model linter.
lint: tools
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then echo "gofmt needed:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) vet -vettool=$(CURDIR)/$(BIN)/ahs-vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi
	$(BIN)/ahs-lint

# Run the evaluation service on :8080 (see docs/api.md). Add cluster mode
# with: go run ./cmd/ahs-serve -addr :8080 -cluster
serve:
	$(GO) run ./cmd/ahs-serve -addr :8080

# Run one compute worker against a local cluster coordinator
# (ahs-serve -cluster). See docs/cluster.md.
worker:
	$(GO) run ./cmd/ahs-worker -coordinator http://localhost:8080

# End-to-end check of the distributed backend: the cluster test suites
# (chunk determinism, coordinator robustness, service integration, the
# serve binary in -cluster mode) plus the runnable demo, which asserts the
# merged curve is bit-identical to a single-process evaluation.
cluster-smoke:
	$(GO) test -count=1 ./internal/cluster/ ./internal/mc/ -run 'Chunk|Cluster|Shard|Merger'
	$(GO) test -count=1 ./internal/service/ ./cmd/ahs-serve/ -run 'Cluster|Backend'
	$(GO) run ./examples/cluster

# End-to-end check of the parameter-sweep engine: the sweep test suite
# (expansion goldens, engine scheduling, per-point bit-identity against
# standalone evaluation, locally and via the cluster backend), then the
# committed example grid driven through a live ahs-serve by cmd/ahs-sweep.
# The CLI exits non-zero unless every point completes, and the smoke fails
# unless the response-surface report actually rendered.
sweep-smoke:
	$(GO) test -count=1 ./internal/sweep/
	$(GO) build -o $(BIN)/ahs-serve ./cmd/ahs-serve
	$(GO) build -o $(BIN)/ahs-sweep ./cmd/ahs-sweep
	@set -e; \
	$(BIN)/ahs-serve -addr 127.0.0.1:18099 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 100); do \
		curl -fsS http://127.0.0.1:18099/healthz >/dev/null 2>&1 && break; \
		sleep 0.1; \
	done; \
	$(BIN)/ahs-sweep -spec docs/sweep-example.json -server http://127.0.0.1:18099 \
		-poll 100ms -timeout 5m \
		-csv $(BIN)/sweep-smoke.csv -html $(BIN)/sweep-smoke.html; \
	test -s $(BIN)/sweep-smoke.csv; \
	test -s $(BIN)/sweep-smoke.html; \
	grep -q "<svg" $(BIN)/sweep-smoke.html; \
	echo "sweep-smoke: all points completed and the report rendered"

# End-to-end check of the persistent result store and multi-tenant
# serving: the resultstore suite (framing, compaction, corrupt-tail
# recovery, follower mode), the service-layer store tier / fair-share /
# streaming suites, the kill -9 server restart e2e, then a live-binary
# smoke — fill the store, restart the process on the same directory, and
# require the scenario to be answered from the store with zero
# re-evaluation (observed on /metrics).
store-smoke:
	$(GO) test -count=1 ./internal/resultstore/
	$(GO) test -count=1 -run 'Store|Tenant|FairQueue|FairShare|Stream|Snapshot' \
		./internal/service/ ./internal/sweep/ ./internal/mc/
	$(GO) test -count=1 -run 'ServeStore' ./cmd/ahs-serve/
	$(GO) build -o $(BIN)/ahs-serve ./cmd/ahs-serve
	@set -e; \
	dir=$$(mktemp -d); sc=$$dir/scenario.json; \
	printf '%s' '{"n":2,"lambdaPerHour":0.01,"tripHours":[0.5,1],"batches":500,"seed":7}' > $$sc; \
	$(BIN)/ahs-serve -addr 127.0.0.1:18098 -store-dir $$dir & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 100); do \
		curl -fsS http://127.0.0.1:18098/healthz >/dev/null 2>&1 && break; \
		sleep 0.1; \
	done; \
	curl -fsS -X POST -H 'Content-Type: application/json' -d @$$sc \
		http://127.0.0.1:18098/v1/evaluate >/dev/null; \
	for i in $$(seq 1 300); do \
		curl -fsS -X POST -H 'Content-Type: application/json' -d @$$sc \
			http://127.0.0.1:18098/v1/evaluate | grep -q '"cached": true' && break; \
		sleep 0.1; \
	done; \
	kill $$pid; wait $$pid 2>/dev/null || true; \
	$(BIN)/ahs-serve -addr 127.0.0.1:18098 -store-dir $$dir & pid=$$!; \
	for i in $$(seq 1 100); do \
		curl -fsS http://127.0.0.1:18098/healthz >/dev/null 2>&1 && break; \
		sleep 0.1; \
	done; \
	curl -fsS -X POST -H 'Content-Type: application/json' -d @$$sc \
		http://127.0.0.1:18098/v1/evaluate | grep -q '"cached": true'; \
	curl -fsS http://127.0.0.1:18098/metrics | grep -q '^ahs_service_store_hits_total 1'; \
	rm -rf $$dir; \
	echo "store-smoke: restart served from the persistent store with zero re-evaluation"

# End-to-end check of the coordinator fleet (docs/store.md "Coordinator
# fleets"): the claims-region suite (claim lifecycle, steal after TTL,
# torn-tail recovery, epoch monotonicity, lock contention, follower
# staleness bound), the fleet-node suite under race (promotion, fencing,
# forwarding, seeded chaos schedules), the service-layer exactly-once and
# redirect tests, and the two-process kill -9 writer-failover e2e, which
# asserts promotion under a new epoch, zero double evaluation across the
# fleet (metrics), and bit-identical read-back of the dead writer's work.
fleet-smoke:
	$(GO) test -count=1 ./internal/resultstore/
	$(GO) test -race -count=1 ./internal/fleet/
	$(GO) test -race -count=1 -run 'Fleet|PeerClaim|RetryAfter|ScenarioByHash|StreamResume|SharedDir' ./internal/service/
	$(GO) test -count=1 -run 'ServeFleet' ./cmd/ahs-serve/

# Crash-safety suite under the race detector: deterministic fault
# injection, seeded chaos schedules (worker kills/pauses + network
# faults), journal recovery including the truncation table, graceful
# drain, and the kill -9 coordinator e2e. A failing chaos schedule
# prints its seed; replay it with
#   go test -race -run 'ChaosSchedules/seed=NNN' ./internal/cluster/
# See docs/cluster.md "Failure model & recovery".
chaos:
	$(GO) test -race -count=1 ./internal/faultinject/
	$(GO) test -race -count=1 -run 'Chaos|Journal|Drain|Backoff|KillMinus9' -timeout 20m ./internal/cluster/

# Native Go fuzzers over the /cluster/v1/ wire decoding and the journal
# scanner, a short exploratory budget each; the committed seed corpora in
# internal/cluster/testdata/fuzz/ also run as regression inputs in every
# plain "go test".
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzJournalScan -fuzztime 20s ./internal/cluster/
	$(GO) test -run '^$$' -fuzz FuzzWireDecode -fuzztime 20s ./internal/cluster/
	$(GO) test -run '^$$' -fuzz FuzzClusterHandlers -fuzztime 20s ./internal/cluster/
	$(GO) test -run '^$$' -fuzz FuzzStoreScan -fuzztime 20s ./internal/resultstore/
	$(GO) test -run '^$$' -fuzz FuzzClaimsScan -fuzztime 20s ./internal/resultstore/

# Quick-look benchmark pass: regenerates every paper figure at a reduced
# batch budget and runs the micro/ablation benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark baseline: the key Monte-Carlo, simulation,
# cluster and tracing benchmarks as a `go test -json` event stream,
# committed as BENCH_baseline.json at the repo root. The schema (and the
# presence of each benchmark) is pinned by internal/benchjson's tests;
# regenerate and commit after an intentional performance-relevant change.
bench-json:
	$(GO) test -run '^$$' -benchmem -benchtime=100ms -json \
		-bench 'MCBaseline|MCInstrumented|PoissonTrajectory|GeneralRunnerMM1K|CoordinatorNoJournal|StartDisabled|StartSampled|AddEventDisabled|StorePut|StoreGet' \
		./internal/mc/ ./internal/sim/ ./internal/cluster/ ./internal/obs/ ./internal/resultstore/ \
		> BENCH_baseline.json
	$(GO) test -run TestCommittedBaseline -count=1 ./internal/benchjson/
	@echo "BENCH_baseline.json regenerated; review with: git diff BENCH_baseline.json"

# Profile a representative estimation run (CPU + heap + runtime trace;
# see docs/observability.md). Inspect with:
#   go tool pprof $(BIN)/cpu.prof
#   go tool pprof $(BIN)/mem.prof
#   go tool trace $(BIN)/runtime.trace
profile:
	@mkdir -p $(BIN)
	$(GO) run ./cmd/ahs-sim -n 10 -lambda 1e-5 -horizon 10 -points 5 -batches 4000 \
		-cpuprofile $(BIN)/cpu.prof -memprofile $(BIN)/mem.prof \
		-runtimetrace $(BIN)/runtime.trace
	@echo "profiles written to $(BIN)/: cpu.prof mem.prof runtime.trace"

# Quick figures (about a minute).
figures:
	$(GO) run ./cmd/ahs-experiments -fig all

# Paper-quality figures with CSV, SVG and a self-contained HTML report
# (roughly 20 minutes on one core; deterministic for a fixed seed).
figures-full:
	$(GO) run ./cmd/ahs-experiments -fig all -batches 20000 -seed 1 \
		-csv docs/results -svg docs/svg -html docs/report.html

docs: figures-full

clean:
	$(GO) clean ./...
	rm -rf $(BIN)
