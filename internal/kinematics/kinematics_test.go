package kinematics

import (
	"math"
	"testing"
	"testing/quick"

	"ahs/internal/core"
	"ahs/internal/platoon"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStopIdentities(t *testing.T) {
	// v² = 2·a·d and t = v/a for every braking maneuver.
	f := func(vRaw, aRaw uint8) bool {
		v := 5 + float64(vRaw%30)  // 5..34 m/s
		a := 0.5 + float64(aRaw%8) // 0.5..7.5 m/s²
		d := StopDistance(v, a)
		tt := StopTime(v, a)
		return almost(v*v, 2*a*d, 1e-9) && almost(tt, v/a, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLaneChangeScaling(t *testing.T) {
	base := LaneChangeTime(3.6, 1.0)
	if base <= 0 {
		t.Fatal("non-positive lane change time")
	}
	// Doubling the width scales time by sqrt(2); doubling accel by 1/sqrt(2).
	if !almost(LaneChangeTime(7.2, 1.0), base*math.Sqrt2, 1e-9) {
		t.Fatal("width scaling violated")
	}
	if !almost(LaneChangeTime(3.6, 2.0), base/math.Sqrt2, 1e-9) {
		t.Fatal("accel scaling violated")
	}
}

func TestGapOpenTimeContinuousAtBranch(t *testing.T) {
	// At g = dv²/a both formulas must agree.
	const dv, a = 2.0, 1.5
	g := dv * dv / a
	long := 2*dv/a + (g-dv*dv/a)/dv
	short := 2 * math.Sqrt(g/a)
	if !almost(long, short, 1e-9) || !almost(GapOpenTime(g, dv, a), long, 1e-9) {
		t.Fatalf("branch discontinuity: long %v short %v got %v", long, short, GapOpenTime(g, dv, a))
	}
}

func TestGapOpenAgainstProfileIntegration(t *testing.T) {
	// The gap opened by the follower equals the leader's displacement
	// (v·T) minus the follower's. Verified numerically for both branches.
	const v = 25.0
	cases := []struct{ g, dv, a float64 }{
		{43, 2, 1.5},  // long split (cruise phase)
		{1.5, 2, 1.5}, // short split (triangular)
		{10, 3, 1},
	}
	for _, c := range cases {
		p := GapOpenProfile(v, c.g, c.dv, c.a)
		T := p.Duration()
		if !almost(T, GapOpenTime(c.g, c.dv, c.a), 1e-9) {
			t.Fatalf("profile duration %v != formula %v for %+v", T, GapOpenTime(c.g, c.dv, c.a), c)
		}
		pos, vel, err := p.Integrate(1e-4)
		if err != nil {
			t.Fatal(err)
		}
		gap := v*T - pos
		if !almost(gap, c.g, 1e-2) {
			t.Fatalf("opened gap %v, want %v (case %+v)", gap, c.g, c)
		}
		if !almost(vel, v, 1e-6) {
			t.Fatalf("final speed %v, want cruise %v", vel, v)
		}
	}
}

func TestProfileClosedFormMatchesIntegration(t *testing.T) {
	f := func(v0Raw, seedA, seedB uint8) bool {
		p := Profile{
			V0: float64(v0Raw % 30),
			Segments: []Segment{
				{Duration: 1 + float64(seedA%5), Accel: float64(seedB%5) - 2},
				{Duration: 0.5, Accel: 0},
				{Duration: float64(seedB%3) + 0.25, Accel: -(float64(seedA%3) - 1)},
			},
		}
		T := p.Duration()
		pos, vel, err := p.Integrate(1e-4)
		if err != nil {
			return false
		}
		return almost(pos, p.PositionAt(T), 1e-3) && almost(vel, p.VelocityAt(T), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfileQueriesClampOutsideSpan(t *testing.T) {
	p := StopProfile(20, 2) // 10 s to rest
	if p.VelocityAt(-1) != 20 {
		t.Fatal("velocity before start must be V0")
	}
	if !almost(p.VelocityAt(100), 0, 1e-12) {
		t.Fatal("velocity after end must stay final")
	}
	if !almost(p.PositionAt(100), StopDistance(20, 2), 1e-9) {
		t.Fatal("position after end must stay final")
	}
}

func TestProfileValidation(t *testing.T) {
	bad := Profile{V0: 1, Segments: []Segment{{Duration: -1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected negative-duration error")
	}
	if _, _, err := bad.Integrate(0.01); err == nil {
		t.Fatal("Integrate must reject invalid profiles")
	}
	good := StopProfile(10, 1)
	if _, _, err := good.Integrate(0); err == nil {
		t.Fatal("Integrate must reject non-positive dt")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutate := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	bad := map[string]Config{
		"zero speed":     mutate(func(c *Config) { c.CruiseSpeed = 0 }),
		"zero gap":       mutate(func(c *Config) { c.IntraGap = 0 }),
		"neg overhead":   mutate(func(c *Config) { c.ClearingOverhead = -1 }),
		"dv over speed":  mutate(func(c *Config) { c.SplitSpeedDelta = 30 }),
		"gentle > crash": mutate(func(c *Config) { c.GentleBrake = 10 }),
	}
	for name, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
		if _, err := Timings(c); err == nil {
			t.Errorf("%s: Timings must reject invalid configs", name)
		}
	}
}

func TestTimingsMatchPaperRange(t *testing.T) {
	timings, err := Timings(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != 6 {
		t.Fatalf("expected 6 maneuvers, got %d", len(timings))
	}
	for m, timing := range timings {
		if timing.Total < 90 || timing.Total > 300 {
			t.Errorf("%v duration %.0fs outside the paper's ~2-4 minute range", m, timing.Total)
		}
		rate := timing.RatePerHour()
		if rate < 12 || rate > 40 {
			t.Errorf("%v rate %.1f/hr far from the paper's 15-30/hr", m, rate)
		}
		sum := 0.0
		for _, v := range timing.Phases {
			sum += v
		}
		if !almost(sum, timing.Total, 1e-9) {
			t.Errorf("%v phases sum %v != total %v", m, sum, timing.Total)
		}
	}
}

func TestTimingsOrderings(t *testing.T) {
	timings, err := Timings(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	get := func(m platoon.Maneuver) float64 { return timings[m].Total }
	// Escorted exit needs the most coordination of the exits.
	if !(get(platoon.TIEE) > get(platoon.TIE) && get(platoon.TIE) > get(platoon.TIEN)) {
		t.Fatalf("exit ordering violated: TIEE %v TIE %v TIEN %v",
			get(platoon.TIEE), get(platoon.TIE), get(platoon.TIEN))
	}
	// The aided stop (weak deceleration through the helper) is the slowest
	// stop; the crash stop the fastest.
	if !(get(platoon.AS) > get(platoon.GS) && get(platoon.GS) > get(platoon.CS)) {
		t.Fatalf("stop ordering violated: AS %v GS %v CS %v",
			get(platoon.AS), get(platoon.GS), get(platoon.CS))
	}
}

// TestCalibratedRatesDriveTheSafetyModel closes the loop: kinematics-derived
// rates plug into the SAN model and produce a working evaluation.
func TestCalibratedRatesDriveTheSafetyModel(t *testing.T) {
	rates, err := SuggestedManeuverRates(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.N = 3
	p.Lambda = 0.01
	p.ManeuverRates = rates
	sys, err := core.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := sys.Unsafety(4, core.EvalOptions{Seed: 5, MaxBatches: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if iv.Point < 0 || iv.Point > 1 {
		t.Fatalf("nonsense unsafety %v", iv.Point)
	}
}
