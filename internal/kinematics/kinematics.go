// Package kinematics models the physical layer beneath the paper's
// maneuver-duration parameters: vehicles cruising at highway speed with the
// intra-platoon spacing of 1–3 m and inter-platoon spacing of 30–60 m from
// §2 / Figure 1, executing the longitudinal and lateral motions that the
// six recovery maneuvers of Table 1 are built from (braking to a stop,
// opening a split gap, changing lanes, driving to the next exit).
//
// The paper takes the maneuver execution rates (15–30 per hour, i.e. 2–4
// minute durations) as givens from the PATH experiments; this package
// derives them from first principles — piecewise-constant-acceleration
// motion profiles plus explicit coordination/clearing overheads — so the
// SAN model's ManeuverRates can be calibrated from physical assumptions
// (see SuggestedManeuverRates and the maneuvertiming example).
//
// All quantities are SI: meters, seconds, m/s, m/s².
package kinematics

import (
	"errors"
	"fmt"
	"math"

	"ahs/internal/platoon"
)

// Config describes the highway and vehicle capabilities.
type Config struct {
	// CruiseSpeed is the platoon speed (default 25 m/s = 90 km/h).
	CruiseSpeed float64
	// IntraGap is the spacing inside a platoon (paper: 1–3 m; default 2).
	IntraGap float64
	// InterGap is the spacing between platoons in a lane (paper: 30–60 m;
	// default 45).
	InterGap float64
	// LaneWidth is the lateral distance of a lane change (default 3.6 m).
	LaneWidth float64
	// SplitSpeedDelta is the relative speed used to open or close a split
	// gap (default 2 m/s).
	SplitSpeedDelta float64
	// Accel is the comfortable acceleration magnitude for speed changes
	// (default 1.5 m/s²).
	Accel float64
	// GentleBrake is the Gentle Stop deceleration (default 2 m/s²).
	GentleBrake float64
	// CrashBrake is the maximum emergency deceleration (default 8 m/s²).
	CrashBrake float64
	// AidedBrake is the deceleration achievable when the vehicle ahead
	// brakes for the faulty one (default 1.2 m/s²).
	AidedBrake float64
	// LateralAccel is the comfortable lateral acceleration of a lane
	// change (default 1.0 m/s²).
	LateralAccel float64
	// ExitSpacing is the typical distance to the next off-ramp (default
	// 1500 m).
	ExitSpacing float64
	// CoordinationOverhead is the per-maneuver communication/agreement
	// time (default 30 s).
	CoordinationOverhead float64
	// ClearingOverhead is the additional time a stop maneuver blocks the
	// lane while traffic is diverted around the stopped vehicle — the
	// post-stop control laws of §2.1.1 (default 90 s).
	ClearingOverhead float64
}

// DefaultConfig returns plausible highway values consistent with the
// paper's Figure 1 spacings.
func DefaultConfig() Config {
	return Config{
		CruiseSpeed:          25,
		IntraGap:             2,
		InterGap:             45,
		LaneWidth:            3.6,
		SplitSpeedDelta:      2,
		Accel:                1.5,
		GentleBrake:          2,
		CrashBrake:           8,
		AidedBrake:           1.2,
		LateralAccel:         1.0,
		ExitSpacing:          1500,
		CoordinationOverhead: 30,
		ClearingOverhead:     90,
	}
}

// Validate checks physical consistency.
func (c Config) Validate() error {
	var errs []error
	positive := map[string]float64{
		"CruiseSpeed":     c.CruiseSpeed,
		"IntraGap":        c.IntraGap,
		"InterGap":        c.InterGap,
		"LaneWidth":       c.LaneWidth,
		"SplitSpeedDelta": c.SplitSpeedDelta,
		"Accel":           c.Accel,
		"GentleBrake":     c.GentleBrake,
		"CrashBrake":      c.CrashBrake,
		"AidedBrake":      c.AidedBrake,
		"LateralAccel":    c.LateralAccel,
		"ExitSpacing":     c.ExitSpacing,
	}
	for name, v := range positive {
		if !(v > 0) {
			errs = append(errs, fmt.Errorf("kinematics: %s must be positive, got %v", name, v))
		}
	}
	if c.CoordinationOverhead < 0 || c.ClearingOverhead < 0 {
		errs = append(errs, errors.New("kinematics: overheads must be non-negative"))
	}
	if c.SplitSpeedDelta >= c.CruiseSpeed {
		errs = append(errs, errors.New("kinematics: SplitSpeedDelta must be below CruiseSpeed"))
	}
	if c.GentleBrake > c.CrashBrake {
		errs = append(errs, errors.New("kinematics: GentleBrake cannot exceed CrashBrake"))
	}
	return errors.Join(errs...)
}

// StopTime returns the time to brake from speed v to rest at deceleration a.
func StopTime(v, a float64) float64 { return v / a }

// StopDistance returns the distance covered braking from v to rest at a.
func StopDistance(v, a float64) float64 { return v * v / (2 * a) }

// LaneChangeTime returns the duration of a bang-bang lateral lane change of
// width w at lateral acceleration a: accelerate halfway, decelerate
// halfway, zero lateral speed at both ends.
func LaneChangeTime(w, a float64) float64 { return 2 * math.Sqrt(w/a) }

// GapOpenTime returns the time for a follower to open an additional gap of
// size g by briefly dropping dv below cruise speed (comfortable accel a for
// both transitions). During each speed transition of duration dv/a the
// average speed deficit is dv/2, so the transitions themselves open dv²/a
// of gap; the remainder opens at rate dv.
func GapOpenTime(g, dv, a float64) float64 {
	transition := 2 * dv / a // decelerate dv, later accelerate back
	opened := dv * dv / a    // gap opened during the two transitions
	if opened >= g {         // short splits finish inside transitions
		return 2 * math.Sqrt(g/a) // solve g = a·t²/4 with symmetric ramps
	}
	return transition + (g-opened)/dv
}

// Timing is the derived duration of one recovery maneuver.
type Timing struct {
	Maneuver platoon.Maneuver
	// Phases decomposes the duration (seconds) by named phase.
	Phases map[string]float64
	// Total is the summed duration in seconds.
	Total float64
}

// RatePerHour converts the duration into the exponential execution rate
// used by the SAN model.
func (t Timing) RatePerHour() float64 { return 3600 / t.Total }

// Timings derives the duration of each of Table 1's maneuvers from the
// configuration:
//
//   - GS/CS: coordinate, brake to rest (gentle or emergency), then hold the
//     lane while traffic is cleared around the stopped vehicle.
//   - AS: like GS but braking is performed through the vehicle ahead at the
//     lower aided deceleration.
//   - TIE/TIE-N: coordinate, open a split gap to inter-platoon spacing,
//     change lanes, drive to the next exit.
//   - TIE-E: as TIE with a second (escort) lane change window and doubled
//     coordination (two platoons are involved).
func Timings(c Config) (map[platoon.Maneuver]Timing, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := make(map[platoon.Maneuver]Timing, 6)
	add := func(m platoon.Maneuver, phases map[string]float64) {
		total := 0.0
		for _, v := range phases {
			total += v
		}
		out[m] = Timing{Maneuver: m, Phases: phases, Total: total}
	}

	splitGap := c.InterGap - c.IntraGap // widen an intra gap to a platoon gap
	split := GapOpenTime(splitGap, c.SplitSpeedDelta, c.Accel)
	lane := LaneChangeTime(c.LaneWidth, c.LateralAccel)
	toExit := c.ExitSpacing / c.CruiseSpeed

	add(platoon.GS, map[string]float64{
		"coordination": c.CoordinationOverhead,
		"braking":      StopTime(c.CruiseSpeed, c.GentleBrake),
		"clearing":     c.ClearingOverhead,
	})
	add(platoon.CS, map[string]float64{
		"coordination": c.CoordinationOverhead / 2, // emergency: minimal agreement
		"braking":      StopTime(c.CruiseSpeed, c.CrashBrake),
		"clearing":     c.ClearingOverhead,
	})
	add(platoon.AS, map[string]float64{
		"coordination": c.CoordinationOverhead,
		"docking":      split, // the helper closes up on the faulty vehicle
		"braking":      StopTime(c.CruiseSpeed, c.AidedBrake),
		"clearing":     c.ClearingOverhead,
	})
	add(platoon.TIEN, map[string]float64{
		"coordination": c.CoordinationOverhead / 2,
		"split":        split,
		"lane_change":  lane,
		"to_exit":      toExit,
	})
	add(platoon.TIE, map[string]float64{
		"coordination": c.CoordinationOverhead,
		"split":        split,
		"lane_change":  lane,
		"to_exit":      toExit,
	})
	add(platoon.TIEE, map[string]float64{
		"coordination": 2 * c.CoordinationOverhead,
		"split":        split,
		"escort_slot":  lane, // the escorting platoon opens a slot
		"lane_change":  lane,
		"to_exit":      toExit,
	})
	return out, nil
}

// SuggestedManeuverRates converts the derived timings into the per-hour
// rate array consumed by core.Params.ManeuverRates.
func SuggestedManeuverRates(c Config) ([7]float64, error) {
	var rates [7]float64
	timings, err := Timings(c)
	if err != nil {
		return rates, err
	}
	for m, t := range timings {
		rates[m] = t.RatePerHour()
	}
	return rates, nil
}
