package kinematics

import (
	"errors"
	"fmt"
	"math"
)

// Segment is one constant-acceleration piece of a motion profile.
type Segment struct {
	Duration float64 // seconds, >= 0
	Accel    float64 // m/s², signed
}

// Profile is a piecewise-constant-acceleration longitudinal motion.
type Profile struct {
	// V0 is the initial speed.
	V0 float64
	// Segments are executed in order.
	Segments []Segment
}

// Validate rejects negative segment durations.
func (p Profile) Validate() error {
	for i, s := range p.Segments {
		if s.Duration < 0 {
			return fmt.Errorf("kinematics: segment %d has negative duration %v", i, s.Duration)
		}
	}
	return nil
}

// Duration returns the total profile duration.
func (p Profile) Duration() float64 {
	total := 0.0
	for _, s := range p.Segments {
		total += s.Duration
	}
	return total
}

// VelocityAt returns the speed at time t (clamped to the profile's span).
func (p Profile) VelocityAt(t float64) float64 {
	v := p.V0
	for _, s := range p.Segments {
		if t <= 0 {
			break
		}
		dt := s.Duration
		if t < dt {
			dt = t
		}
		v += s.Accel * dt
		t -= s.Duration
	}
	return v
}

// PositionAt returns the distance travelled by time t (closed form).
func (p Profile) PositionAt(t float64) float64 {
	x, v := 0.0, p.V0
	for _, s := range p.Segments {
		if t <= 0 {
			break
		}
		dt := s.Duration
		if t < dt {
			dt = t
		}
		x += v*dt + 0.5*s.Accel*dt*dt
		v += s.Accel * dt
		t -= s.Duration
	}
	return x
}

// Integrate advances the profile numerically with midpoint steps of size
// dt, returning the final position and velocity. It exists to cross-check
// the closed forms (and the maneuver timing formulas built on them) in
// tests.
func (p Profile) Integrate(dt float64) (pos, vel float64, err error) {
	if !(dt > 0) {
		return 0, 0, errors.New("kinematics: integration step must be positive")
	}
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	vel = p.V0
	t := 0.0
	total := p.Duration()
	for _, s := range p.Segments {
		end := t + s.Duration
		for t < end {
			step := dt
			if t+step > end {
				step = end - t
			}
			// Midpoint: position advances at the half-step velocity.
			pos += (vel + 0.5*s.Accel*step) * step
			vel += s.Accel * step
			t += step
		}
	}
	_ = total
	return pos, vel, nil
}

// StopProfile returns the profile of braking from speed v at deceleration a
// until standstill.
func StopProfile(v, a float64) Profile {
	return Profile{V0: v, Segments: []Segment{{Duration: v / a, Accel: -a}}}
}

// GapOpenProfile returns the follower's profile for opening a gap of g
// behind a leader cruising at v: decelerate by dv (or less for short
// splits), hold, and accelerate back to v. The gap opened equals the
// leader's displacement minus the follower's.
func GapOpenProfile(v, g, dv, a float64) Profile {
	opened := dv * dv / a
	if opened >= g {
		// Short split: triangular speed deficit.
		half := math.Sqrt(g / a)
		return Profile{V0: v, Segments: []Segment{
			{Duration: half, Accel: -a},
			{Duration: half, Accel: a},
		}}
	}
	transition := dv / a
	cruise := (g - opened) / dv
	return Profile{V0: v, Segments: []Segment{
		{Duration: transition, Accel: -a},
		{Duration: cruise, Accel: 0},
		{Duration: transition, Accel: a},
	}}
}
