package mc

import (
	"testing"

	"ahs/internal/san"
	"ahs/internal/sim"
	"ahs/internal/telemetry"
)

// buildFlipFlop returns a two-state repairable model whose trajectories
// alternate failures and repairs, so each benchmark batch exercises the
// per-step telemetry hook many times (~15 completions per trajectory).
func buildFlipFlop() (*san.Model, san.PlaceID) {
	b := san.NewBuilder("flipflop")
	up := b.Place("up", 1)
	down := b.Place("down", 0)
	b.Timed(san.TimedActivity{
		Name:    "fail",
		Enabled: san.HasTokens(up, 1),
		Rate:    san.ConstRate(0.5),
		Input:   san.Move(up, down, 1),
	})
	b.Timed(san.TimedActivity{
		Name:    "repair",
		Enabled: san.HasTokens(down, 1),
		Rate:    san.ConstRate(1),
		Input:   san.Move(down, up, 1),
	})
	return b.MustBuild(), down
}

// benchEstimate runs one fixed-size estimation per iteration. Workers is
// pinned to 1 so baseline and instrumented runs schedule identically and
// the comparison isolates the telemetry branch.
func benchEstimate(b *testing.B, sink telemetry.Sink) {
	m, down := buildFlipFlop()
	job := Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 10},
		Times:      []float64{1, 5, 10},
		Value:      func(mk *san.Marking) float64 { return float64(mk.Tokens(down)) },
		Seed:       42,
		MaxBatches: 500,
		Workers:    1,
		Telemetry:  sink,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateCurve(job); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCBaseline is the disabled-telemetry path: Job.Telemetry nil, so
// every hook reduces to one predictable nil-check branch. The ISSUE's
// acceptance criterion compares this against BenchmarkMCInstrumented.
func BenchmarkMCBaseline(b *testing.B) {
	benchEstimate(b, nil)
}

// BenchmarkMCInstrumented runs the same estimation with a live SimCollector
// recording activity firings, trajectory counts/lengths and first-passage
// observations into registry families.
func BenchmarkMCInstrumented(b *testing.B) {
	reg := telemetry.NewRegistry()
	benchEstimate(b, telemetry.NewSimCollector(reg, "DD", nil))
}
