package mc

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"ahs/internal/san"
	"ahs/internal/sim"
	"ahs/internal/stats"
)

func buildPureDeath(rate float64) (*san.Model, san.PlaceID) {
	b := san.NewBuilder("death")
	alive := b.Place("alive", 1)
	b.Timed(san.TimedActivity{
		Name:    "die",
		Enabled: san.HasTokens(alive, 1),
		Rate:    san.ConstRate(rate),
		Input:   san.Consume(alive, 1),
	})
	return b.MustBuild(), alive
}

func deadIndicator(alive san.PlaceID) func(*san.Marking) float64 {
	return func(mk *san.Marking) float64 {
		if mk.Tokens(alive) == 0 {
			return 1
		}
		return 0
	}
}

func TestEstimateCurveMatchesAnalytic(t *testing.T) {
	const rate = 0.5
	m, alive := buildPureDeath(rate)
	curve, err := EstimateCurve(Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 4},
		Times:      []float64{1, 2, 4},
		Value:      deadIndicator(alive),
		Seed:       1,
		MaxBatches: 40000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if curve.Batches != 40000 {
		t.Fatalf("expected exactly MaxBatches without a stop rule, ran %d", curve.Batches)
	}
	if !curve.Converged {
		t.Fatal("without a stop rule the curve must report Converged")
	}
	for i, tp := range curve.Times {
		want := 1 - math.Exp(-rate*tp)
		se := curve.Intervals[i].HalfWidth() / 1.96
		if math.Abs(curve.Mean[i]-want) > 5*se+1e-9 {
			t.Errorf("S(%v) = %v, want %v (se %v)", tp, curve.Mean[i], want, se)
		}
	}
	if curve.Final() != curve.Mean[len(curve.Mean)-1] || curve.At(0) != curve.Mean[0] {
		t.Fatal("accessors disagree with Mean slice")
	}
}

func TestStopRuleTerminatesEarly(t *testing.T) {
	const rate = 2.0 // common event: converges quickly
	m, alive := buildPureDeath(rate)
	curve, err := EstimateCurve(Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 2},
		Times:      []float64{2},
		Value:      deadIndicator(alive),
		Seed:       2,
		StopRule:   stats.RelativeStopRule{Confidence: 0.95, MaxRelHalfWidth: 0.1, MinSamples: 1000},
		MaxBatches: 1_000_000,
		CheckEvery: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !curve.Converged {
		t.Fatal("expected convergence")
	}
	if curve.Batches >= 100000 {
		t.Fatalf("stop rule failed to end early: %d batches", curve.Batches)
	}
	if curve.Batches < 1000 {
		t.Fatalf("stopped before MinSamples: %d", curve.Batches)
	}
}

func TestWorkerCountDoesNotChangeEstimate(t *testing.T) {
	const rate = 1.0
	m, alive := buildPureDeath(rate)
	base := Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 1},
		Times:      []float64{1},
		Value:      deadIndicator(alive),
		Seed:       3,
		MaxBatches: 5000,
	}
	means := make([]float64, 0, 3)
	for _, workers := range []int{1, 2, 4} {
		job := base
		job.Workers = workers
		curve, err := EstimateCurve(job)
		if err != nil {
			t.Fatal(err)
		}
		means = append(means, curve.Mean[0])
	}
	for i := 1; i < len(means); i++ {
		if means[i] != means[0] {
			t.Fatalf("worker counts produced bit-different estimates: %v", means)
		}
	}
}

func TestImportanceSamplingCurveOnRareEvent(t *testing.T) {
	// P(dead by 1) = 1 - exp(-1e-4) ~ 1e-4: naive MC with 20k batches has
	// ~70% relative error; IS with x2000 bias nails it.
	const rate = 1e-4
	m, alive := buildPureDeath(rate)
	bias := sim.NewBias()
	if err := bias.SetByName(m, "die", 2000); err != nil {
		t.Fatal(err)
	}
	curve, err := EstimateCurve(Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 1, Bias: bias},
		Times:      []float64{0.5, 1},
		Value:      deadIndicator(alive),
		Seed:       4,
		MaxBatches: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range curve.Times {
		want := 1 - math.Exp(-rate*tp)
		rel := math.Abs(curve.Mean[i]-want) / want
		if rel > 0.1 {
			t.Errorf("IS S(%v) = %v, want %v (rel err %v)", tp, curve.Mean[i], want, rel)
		}
	}
}

func TestEstimateAt(t *testing.T) {
	const rate = 1.0
	m, alive := buildPureDeath(rate)
	iv, err := EstimateAt(Job{
		Model:      m,
		Value:      deadIndicator(alive),
		Seed:       5,
		MaxBatches: 20000,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-1.0)
	if iv.Lo > want || want > iv.Hi {
		t.Fatalf("interval %v does not cover %v", iv, want)
	}
}

func TestJobValidation(t *testing.T) {
	m, alive := buildPureDeath(1)
	value := deadIndicator(alive)
	cases := []struct {
		name string
		job  Job
	}{
		{"nil model", Job{Value: value, Times: []float64{1}, Sim: sim.Options{MaxTime: 1}}},
		{"nil value", Job{Model: m, Times: []float64{1}, Sim: sim.Options{MaxTime: 1}}},
		{"empty grid", Job{Model: m, Value: value, Sim: sim.Options{MaxTime: 1}}},
		{"non-increasing grid", Job{Model: m, Value: value, Times: []float64{1, 1}, Sim: sim.Options{MaxTime: 2}}},
		{"horizon short", Job{Model: m, Value: value, Times: []float64{1, 2}, Sim: sim.Options{MaxTime: 1.5}}},
	}
	for _, c := range cases {
		if _, err := EstimateCurve(c.job); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestCurveMonotoneForAbsorbingMeasure(t *testing.T) {
	// First-passage probabilities are non-decreasing in t; within a single
	// estimation run the estimator preserves this path-wise.
	m, alive := buildPureDeath(0.8)
	curve, err := EstimateCurve(Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 5, Stop: func(mk *san.Marking) bool { return mk.Tokens(alive) == 0 }},
		Times:      []float64{1, 2, 3, 4, 5},
		Value:      deadIndicator(alive),
		Seed:       6,
		MaxBatches: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve.Mean); i++ {
		if curve.Mean[i] < curve.Mean[i-1] {
			t.Fatalf("estimated absorbing curve decreases: %v", curve.Mean)
		}
	}
}

func TestEstimateCurveMulti(t *testing.T) {
	const rate = 0.5
	m, alive := buildPureDeath(rate)
	job := Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 2},
		Times:      []float64{1, 2},
		Value:      deadIndicator(alive),
		Seed:       7,
		MaxBatches: 10000,
	}
	aliveIndicator := func(mk *san.Marking) float64 {
		return float64(mk.Tokens(alive))
	}
	main, extras, err := EstimateCurveMulti(job, map[string]func(*san.Marking) float64{
		"alive": aliveIndicator,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(extras) != 1 || extras["alive"] == nil {
		t.Fatalf("extras %v", extras)
	}
	// The two measures partition probability: dead + alive = 1 exactly,
	// batch by batch, hence also in the means.
	for i := range main.Mean {
		sum := main.Mean[i] + extras["alive"].Mean[i]
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("dead+alive = %v at %v", sum, main.Times[i])
		}
	}
	if extras["alive"].Batches != main.Batches {
		t.Fatal("extra curve ran different batches")
	}
}

func TestEstimateCurveMultiNilExtra(t *testing.T) {
	m, alive := buildPureDeath(1)
	job := Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 1},
		Times:      []float64{1},
		Value:      deadIndicator(alive),
		MaxBatches: 10,
	}
	if _, _, err := EstimateCurveMulti(job, map[string]func(*san.Marking) float64{"bad": nil}); err == nil {
		t.Fatal("expected nil-extra error")
	}
}

func TestEstimateCurveMultiMatchesSingle(t *testing.T) {
	// Adding extras must not change the main estimate (same streams).
	m, alive := buildPureDeath(0.7)
	job := Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 3},
		Times:      []float64{3},
		Value:      deadIndicator(alive),
		Seed:       8,
		MaxBatches: 5000,
	}
	single, err := EstimateCurve(job)
	if err != nil {
		t.Fatal(err)
	}
	multi, _, err := EstimateCurveMulti(job, map[string]func(*san.Marking) float64{
		"alive": func(mk *san.Marking) float64 { return float64(mk.Tokens(alive)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if single.Mean[0] != multi.Mean[0] {
		t.Fatalf("extras changed the main estimate: %v vs %v", single.Mean[0], multi.Mean[0])
	}
}

func TestCancelledContextStopsEstimationEarly(t *testing.T) {
	m, alive := buildPureDeath(1)
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	job := Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 1},
		Times:      []float64{1},
		Value:      deadIndicator(alive),
		Seed:       10,
		MaxBatches: 50_000_000, // far more than could run in the test budget
		CheckEvery: 100,
		Context:    ctx,
		Progress: func(done, max uint64) {
			calls++
			if calls == 2 {
				cancel()
			}
		},
	}
	start := time.Now()
	curve, err := EstimateCurve(job)
	if curve != nil {
		t.Fatal("cancelled estimation must not return a curve")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v, did not stop early", elapsed)
	}
	if calls < 2 {
		t.Fatalf("progress called %d times before cancellation", calls)
	}
}

func TestPreCancelledContextRunsNoBatches(t *testing.T) {
	m, alive := buildPureDeath(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EstimateCurve(Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 1},
		Times:      []float64{1},
		Value:      deadIndicator(alive),
		MaxBatches: 100,
		Context:    ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDeadlineExceededPropagates(t *testing.T) {
	m, alive := buildPureDeath(1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	_, err := EstimateCurve(Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 1},
		Times:      []float64{1},
		Value:      deadIndicator(alive),
		MaxBatches: 1_000_000,
		CheckEvery: 100,
		Context:    ctx,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestProgressReportsEveryRound(t *testing.T) {
	m, alive := buildPureDeath(1)
	var dones []uint64
	curve, err := EstimateCurve(Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 1},
		Times:      []float64{1},
		Value:      deadIndicator(alive),
		Seed:       11,
		MaxBatches: 1000,
		CheckEvery: 300,
		Progress: func(done, max uint64) {
			if max != 1000 {
				t.Errorf("maxBatches = %d, want 1000", max)
			}
			dones = append(dones, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{300, 600, 900, 1000}
	if len(dones) != len(want) {
		t.Fatalf("progress calls %v, want %v", dones, want)
	}
	for i := range want {
		if dones[i] != want[i] {
			t.Fatalf("progress calls %v, want %v", dones, want)
		}
	}
	if curve.Batches != 1000 {
		t.Fatalf("batches %d", curve.Batches)
	}
}

func buildMM1KForSteady(k int, lambda, mu float64) (*san.Model, san.PlaceID) {
	b := san.NewBuilder("mm1k-steady")
	q := b.Place("queue", 0)
	b.Timed(san.TimedActivity{
		Name:    "arrive",
		Enabled: func(m *san.Marking) bool { return m.Tokens(q) < k },
		Rate:    san.ConstRate(lambda),
		Input:   san.Produce(q, 1),
	})
	b.Timed(san.TimedActivity{
		Name:    "depart",
		Enabled: san.HasTokens(q, 1),
		Rate:    san.ConstRate(mu),
		Input:   san.Consume(q, 1),
	})
	return b.MustBuild(), q
}

func TestEstimateSteadyStateMM1K(t *testing.T) {
	// Long-run mean queue length of M/M/1/K, against the closed form
	// Σ i·π_i with π_i ∝ ρ^i.
	const k = 6
	const lambda, mu = 1.0, 2.0
	m, q := buildMM1KForSteady(k, lambda, mu)
	iv, err := EstimateSteadyState(SteadyStateJob{
		Model:   m,
		Value:   func(mk *san.Marking) float64 { return float64(mk.Tokens(q)) },
		Horizon: 4000,
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	norm, want := 0.0, 0.0
	p := 1.0
	for i := 0; i <= k; i++ {
		norm += p
		want += float64(i) * p
		p *= rho
	}
	want /= norm
	if math.Abs(iv.Point-want) > 3*iv.HalfWidth()+0.02*want {
		t.Fatalf("steady-state mean %v, want %v", iv, want)
	}
	if iv.HalfWidth() <= 0 {
		t.Fatal("degenerate steady-state interval")
	}
}

func TestEstimateSteadyStateValidation(t *testing.T) {
	m, q := buildMM1KForSteady(3, 1, 2)
	value := func(mk *san.Marking) float64 { return float64(mk.Tokens(q)) }
	cases := map[string]SteadyStateJob{
		"nil model":   {Value: value, Horizon: 10},
		"nil value":   {Model: m, Horizon: 10},
		"no horizon":  {Model: m, Value: value},
		"bad warmup":  {Model: m, Value: value, Horizon: 10, WarmupFraction: 1},
		"one batch":   {Model: m, Value: value, Horizon: 10, Batches: 1},
		"neg samples": {Model: m, Value: value, Horizon: 10, SamplesPerBatch: -1},
	}
	for name, job := range cases {
		if _, err := EstimateSteadyState(job); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
