package mc

import (
	"fmt"
	"testing"

	"ahs/internal/sim"
)

// curveBits renders the curve's floats exactly so equal strings mean
// bit-identical estimates.
func curveBits(c *Curve) string {
	return fmt.Sprintf("%b|%b|%v|%d|%v", c.Times, c.Mean, c.Intervals, c.Batches, c.Converged)
}

// TestSnapshotStreamsPartialCurves pins the Snapshot hook's contract: one
// callback per convergence round, monotone batch counts, partial rounds not
// claiming convergence, and a final snapshot bit-identical to the returned
// curve (both render the same accumulated Welford state).
func TestSnapshotStreamsPartialCurves(t *testing.T) {
	m, alive := buildPureDeath(0.5)
	var snaps []*Curve
	curve, err := EstimateCurve(Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 4},
		Times:      []float64{1, 2, 4},
		Value:      deadIndicator(alive),
		Seed:       7,
		MaxBatches: 4000,
		CheckEvery: 1000,
		Snapshot:   func(partial *Curve) { snaps = append(snaps, partial) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 4 {
		t.Fatalf("%d snapshots for 4000 batches at CheckEvery 1000, want 4", len(snaps))
	}
	var last uint64
	for i, s := range snaps {
		if s.Batches <= last {
			t.Fatalf("snapshot %d batches %d not increasing past %d", i, s.Batches, last)
		}
		last = s.Batches
		if len(s.Times) != 3 || len(s.Mean) != 3 || len(s.Intervals) != 3 {
			t.Fatalf("snapshot %d grid: %+v", i, s)
		}
		if i < len(snaps)-1 && s.Converged {
			t.Fatalf("mid-run snapshot %d claims convergence", i)
		}
	}
	if got, want := curveBits(snaps[len(snaps)-1]), curveBits(curve); got != want {
		t.Fatalf("final snapshot diverged from returned curve:\n got %s\nwant %s", got, want)
	}
}

// TestSnapshotNotCalledWhenNil guards the hot path: estimation without a
// hook behaves exactly as before (a compile-time truism, but the test
// documents that Snapshot is optional and costs nothing unset).
func TestSnapshotNotCalledWhenNil(t *testing.T) {
	m, alive := buildPureDeath(0.5)
	curve, err := EstimateCurve(Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 4},
		Times:      []float64{1, 2},
		Value:      deadIndicator(alive),
		Seed:       7,
		MaxBatches: 1000,
	})
	if err != nil || curve.Batches != 1000 {
		t.Fatalf("curve %+v err %v", curve, err)
	}
}
