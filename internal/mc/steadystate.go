package mc

import (
	"errors"
	"fmt"

	"ahs/internal/rng"
	"ahs/internal/san"
	"ahs/internal/sim"
	"ahs/internal/stats"
)

// SteadyStateJob estimates a long-run mean E[f(X_∞)] by the method of batch
// means on a single long trajectory: after a warm-up period, the horizon is
// divided into batches, the measure is sampled on a regular grid within
// each batch, and the batch means — approximately independent for batches
// much longer than the system's mixing time — feed a Student-t confidence
// interval.
type SteadyStateJob struct {
	// Model is the SAN to simulate (must not deadlock or absorb for the
	// estimate to be meaningful).
	Model *san.Model
	// Value is the measured quantity.
	Value func(mk *san.Marking) float64
	// Horizon is the total simulated time (required, > 0).
	Horizon float64
	// WarmupFraction of the horizon is discarded (default 0.2).
	WarmupFraction float64
	// Batches is the number of batch means (default 32, minimum 2).
	Batches int
	// SamplesPerBatch is the sampling grid within each batch (default 64).
	SamplesPerBatch int
	// Seed selects the random stream.
	Seed uint64
	// MaxSteps guards the trajectory length (0: simulator default).
	MaxSteps uint64
}

// EstimateSteadyState runs the batch-means estimation and returns the
// long-run mean with a 95% confidence interval over the batch means.
func EstimateSteadyState(job SteadyStateJob) (stats.Interval, error) {
	if job.Model == nil {
		return stats.Interval{}, errors.New("mc: nil model")
	}
	if job.Value == nil {
		return stats.Interval{}, errors.New("mc: nil value function")
	}
	if !(job.Horizon > 0) {
		return stats.Interval{}, fmt.Errorf("mc: horizon %v must be positive", job.Horizon)
	}
	if job.WarmupFraction == 0 {
		job.WarmupFraction = 0.2
	}
	if job.WarmupFraction < 0 || job.WarmupFraction >= 1 {
		return stats.Interval{}, fmt.Errorf("mc: warmup fraction %v outside [0,1)", job.WarmupFraction)
	}
	if job.Batches == 0 {
		job.Batches = 32
	}
	if job.Batches < 2 {
		return stats.Interval{}, fmt.Errorf("mc: need at least 2 batches, got %d", job.Batches)
	}
	if job.SamplesPerBatch == 0 {
		job.SamplesPerBatch = 64
	}
	if job.SamplesPerBatch < 1 {
		return stats.Interval{}, fmt.Errorf("mc: need at least 1 sample per batch, got %d", job.SamplesPerBatch)
	}

	warmup := job.Horizon * job.WarmupFraction
	span := job.Horizon - warmup
	total := job.Batches * job.SamplesPerBatch
	times := make([]float64, total)
	for i := range times {
		times[i] = warmup + span*(float64(i)+0.5)/float64(total)
	}

	runner, err := sim.NewRunner(job.Model, sim.Options{
		MaxTime:  job.Horizon,
		MaxSteps: job.MaxSteps,
	})
	if err != nil {
		return stats.Interval{}, err
	}
	probe := &sim.Probe{Times: times, Value: job.Value}
	if _, err := runner.Run(rng.NewSource(job.Seed).Stream(0), probe); err != nil {
		return stats.Interval{}, err
	}

	var acc stats.Welford
	for b := 0; b < job.Batches; b++ {
		sum := 0.0
		for s := 0; s < job.SamplesPerBatch; s++ {
			sum += probe.Values[b*job.SamplesPerBatch+s]
		}
		acc.Add(sum / float64(job.SamplesPerBatch))
	}
	return acc.CI(0.95), nil
}
