// Package mc runs batched Monte-Carlo estimation of transient SAN measures.
//
// It reproduces the evaluation procedure of §4.1 of the paper: every plotted
// point is the mean over simulation batches, stopped when the 95% confidence
// interval has relative half-width 0.1 (with a minimum batch count), and the
// batch budget grows as the measure gets rarer. Batches are deterministic —
// batch i always uses random stream i of the job's seed — so results do not
// depend on the number of workers.
//
// Accumulation is canonical: batch contributions are folded in ascending
// batch order into one Welford accumulator per round of CheckEvery batches,
// and round accumulators are merged in ascending round order. Every
// execution path shares this fold — the in-process parallel estimator, the
// chunked estimator (EstimateChunk) and a distributed merge of chunk states
// (Merger) — so for a fixed seed the estimate is bit-identical regardless
// of worker count, chunking, or which machine simulated which stripe. That
// property is what lets internal/cluster fan a job out to remote workers
// and still return the exact curve a single process would produce.
//
// Importance sampling is expressed through sim.Options.Bias: each batch
// contributes Value·LikelihoodRatio, which reduces to plain Value for
// unbiased runs, so naive and rare-event estimation share one code path.
package mc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ahs/internal/rng"
	"ahs/internal/san"
	"ahs/internal/sim"
	"ahs/internal/stats"
	"ahs/internal/telemetry"
)

// Job describes one curve estimation.
type Job struct {
	// Model is the SAN to simulate.
	Model *san.Model
	// Sim configures trajectory execution (MaxTime must cover Times).
	Sim sim.Options
	// Times is the ascending measurement grid.
	Times []float64
	// Value is the measured quantity (e.g. the unsafety indicator).
	Value func(mk *san.Marking) float64
	// Seed selects the random stream family.
	Seed uint64
	// StopRule is the convergence criterion, applied to the estimate at
	// the last time point (the paper's per-point criterion applied to the
	// point that converges slowest for monotone measures). Zero value
	// means "run exactly MaxBatches".
	StopRule stats.RelativeStopRule
	// MaxBatches caps the effort; 0 means 1 million.
	MaxBatches uint64
	// CheckEvery is the round size between convergence checks; 0 means
	// 2000. It is also the canonical accumulation round (see the package
	// comment): jobs that must merge bit-identically — e.g. the chunked
	// estimation behind internal/cluster — have to agree on it. The round
	// buffer costs CheckEvery·len(Times)·8 bytes per measure.
	CheckEvery uint64
	// Workers is the parallelism; 0 means GOMAXPROCS.
	Workers int
	// Context, when non-nil, cancels the estimation: every worker checks
	// it before each batch, so a cancelled job stops within one
	// trajectory and the estimation returns ctx.Err(). Nil means run to
	// completion.
	Context context.Context
	// Progress, when non-nil, is invoked after every convergence round
	// with the number of completed batches and the batch cap. It is
	// called from the coordinating goroutine only (never concurrently)
	// and must be cheap; it exists so long-running estimations can report
	// liveness to a job manager.
	Progress func(batchesDone, maxBatches uint64)
	// Snapshot, when non-nil, receives a freshly built partial Curve after
	// every convergence round: the Welford state accumulated so far,
	// rendered exactly as the final curve will be (same grid, same CI
	// confidence). Like Progress it runs on the coordinating goroutine only
	// and must be cheap; the curve it receives is the callback's to keep.
	// It exists so a job manager can stream the CI converging live (see
	// the service layer's SSE endpoints) without touching the estimator's
	// hot path — the snapshot costs one CI computation per grid point per
	// round, nothing per trajectory.
	Snapshot func(partial *Curve)
	// Telemetry, when non-nil, receives per-trajectory events: a
	// trajectories count, a trajectory-steps observation, and — for
	// trajectories ended by the stop predicate — a time-to-absorption
	// observation plus a catastrophic-cause count classified by Cause.
	// It also becomes Sim.Sink (activity firings) unless one is already
	// set. Implementations must be safe for concurrent use; workers
	// record from their own goroutines.
	Telemetry telemetry.Sink
	// Cause classifies the final marking of a stopped trajectory (e.g.
	// core's ST1/ST2/ST3 catastrophic situations). EstimateCurve uses it
	// for the Telemetry catastrophe counter (ignored when Telemetry is
	// nil); EstimateChunk additionally folds the counts into the chunk's
	// sufficient statistics so a distributed merge can reconstruct them.
	// When Cause is nil no cause counts are recorded.
	Cause func(mk *san.Marking) string
}

// Curve is the estimated measure over the time grid.
type Curve struct {
	Times     []float64
	Mean      []float64
	Intervals []stats.Interval
	// Batches is the number of simulated trajectories.
	Batches uint64
	// Converged reports whether StopRule was met (always true when no
	// rule was set).
	Converged bool
}

// At returns the estimate at the i-th grid point.
func (c *Curve) At(i int) float64 { return c.Mean[i] }

// Final returns the estimate at the last grid point.
func (c *Curve) Final() float64 { return c.Mean[len(c.Mean)-1] }

func (j *Job) validate() error {
	if j.Model == nil {
		return errors.New("mc: nil model")
	}
	if j.Value == nil {
		return errors.New("mc: nil value function")
	}
	if len(j.Times) == 0 {
		return errors.New("mc: empty time grid")
	}
	for i := 1; i < len(j.Times); i++ {
		if j.Times[i] <= j.Times[i-1] {
			return fmt.Errorf("mc: time grid not strictly increasing at index %d", i)
		}
	}
	if j.Sim.MaxTime < j.Times[len(j.Times)-1] {
		return fmt.Errorf("mc: MaxTime %v does not cover last measurement %v",
			j.Sim.MaxTime, j.Times[len(j.Times)-1])
	}
	return nil
}

// EstimateCurve runs the job and returns the estimated curve.
func EstimateCurve(job Job) (*Curve, error) {
	curve, _, err := EstimateCurveMulti(job, nil)
	return curve, err
}

// EstimateCurveMulti runs the job and simultaneously estimates additional
// measures over the same trajectories (e.g. a breakdown of the unsafety by
// catastrophic situation). The convergence rule still applies to the main
// Value; the extra curves simply ride along, sharing every batch.
func EstimateCurveMulti(job Job, extras map[string]func(mk *san.Marking) float64) (*Curve, map[string]*Curve, error) {
	if err := job.validate(); err != nil {
		return nil, nil, err
	}
	extraNames := make([]string, 0, len(extras))
	for name := range extras {
		if extras[name] == nil {
			return nil, nil, fmt.Errorf("mc: nil extra value %q", name)
		}
		extraNames = append(extraNames, name)
	}
	sort.Strings(extraNames)
	if job.MaxBatches == 0 {
		job.MaxBatches = 1_000_000
	}
	if job.CheckEvery == 0 {
		job.CheckEvery = 2000
	}
	workers := job.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if job.Telemetry != nil && job.Sim.Sink == nil {
		job.Sim.Sink = job.Telemetry
	}

	ctx := job.Context
	if ctx == nil {
		ctx = context.Background()
	}

	hasRule := job.StopRule != (stats.RelativeStopRule{})
	maxRound := job.CheckEvery
	if maxRound > job.MaxBatches {
		maxRound = job.MaxBatches
	}
	pool, err := newRunnerPool(&job, extraNames, extras, workers, maxRound, false)
	if err != nil {
		return nil, nil, err
	}
	// measures[0] is the main Value; measures[1..] the extras in name order.
	measures := len(extraNames) + 1
	accs := make([][]stats.Welford, measures)
	for mi := range accs {
		accs[mi] = make([]stats.Welford, len(job.Times))
	}

	conf := job.StopRule.Confidence
	if conf == 0 {
		conf = 0.95
	}

	var done uint64
	converged := false
	for done < job.MaxBatches && !converged {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		round := job.CheckEvery
		if rem := job.MaxBatches - done; round > rem {
			round = rem
		}
		if err := pool.runRound(ctx, done, round); err != nil {
			return nil, nil, err
		}
		roundAccs := pool.foldRound(round)
		for mi := range accs {
			for i := range accs[mi] {
				accs[mi][i].Merge(&roundAccs[mi][i])
			}
		}
		done += round
		if hasRule && job.StopRule.Satisfied(&accs[0][len(job.Times)-1]) {
			converged = true
		}
		if job.Progress != nil {
			job.Progress(done, job.MaxBatches)
		}
		if job.Snapshot != nil {
			// A snapshot is converged only once the run is: rule satisfied,
			// or (without a rule) the batch budget fully spent.
			job.Snapshot(buildCurve(job.Times, accs[0], done,
				converged || (!hasRule && done == job.MaxBatches), conf))
		}
	}

	main := buildCurve(job.Times, accs[0], done, converged || !hasRule, conf)
	var extraCurves map[string]*Curve
	if len(extraNames) > 0 {
		extraCurves = make(map[string]*Curve, len(extraNames))
		for ei, name := range extraNames {
			extraCurves[name] = buildCurve(job.Times, accs[ei+1], done, converged || !hasRule, conf)
		}
	}
	return main, extraCurves, nil
}

// buildCurve assembles a Curve from per-grid-point accumulators.
func buildCurve(times []float64, accs []stats.Welford, batches uint64, converged bool, conf float64) *Curve {
	curve := &Curve{
		Times:     append([]float64(nil), times...),
		Mean:      make([]float64, len(times)),
		Intervals: make([]stats.Interval, len(times)),
		Batches:   batches,
		Converged: converged,
	}
	for i := range accs {
		curve.Mean[i] = accs[i].Mean()
		curve.Intervals[i] = accs[i].CI(conf)
	}
	return curve
}

// runnerPool is the shared simulation engine of the estimators: a set of
// per-goroutine runners that simulate a round of batches striped across
// workers, buffering each batch's weighted contribution so the fold into
// Welford accumulators can happen in canonical (ascending batch) order
// afterwards, independent of scheduling.
type runnerPool struct {
	job      *Job
	workers  int
	points   int
	measures int
	states   []*poolWorker
	src      *rng.Source
	// vals[mi][b*points+i] is the weighted contribution of the round's
	// b-th batch to measure mi at grid point i. Workers write disjoint
	// stripes; foldRound reads after the round barrier.
	vals [][]float64
}

type poolWorker struct {
	runner *sim.Runner
	probes []*sim.Probe
	// causes counts stopped trajectories by classified cause; nil unless
	// the pool was built with cause counting.
	causes map[string]uint64
}

// newRunnerPool builds the engine for one job. maxRound bounds the round
// buffer; countCauses enables per-trajectory cause classification through
// job.Cause (used by the chunked estimator, where the classification must
// travel with the sufficient statistics instead of a telemetry sink).
func newRunnerPool(job *Job, extraNames []string, extras map[string]func(mk *san.Marking) float64, workers int, maxRound uint64, countCauses bool) (*runnerPool, error) {
	points := len(job.Times)
	p := &runnerPool{
		job:      job,
		workers:  workers,
		points:   points,
		measures: len(extraNames) + 1,
		src:      rng.NewSource(job.Seed),
	}
	p.vals = make([][]float64, p.measures)
	for mi := range p.vals {
		p.vals[mi] = make([]float64, maxRound*uint64(points))
	}
	p.states = make([]*poolWorker, workers)
	for w := range p.states {
		runner, err := sim.NewRunner(job.Model, job.Sim)
		if err != nil {
			return nil, err
		}
		pw := &poolWorker{runner: runner, probes: make([]*sim.Probe, p.measures)}
		pw.probes[0] = &sim.Probe{Times: job.Times, Value: job.Value}
		for ei, name := range extraNames {
			pw.probes[ei+1] = &sim.Probe{Times: job.Times, Value: extras[name]}
		}
		if countCauses && job.Cause != nil {
			pw.causes = make(map[string]uint64)
		}
		p.states[w] = pw
	}
	return p, nil
}

// runRound simulates batches [start, start+n) striped across the pool's
// workers: worker w runs start+w, start+w+workers, ... — deterministic
// regardless of scheduling. Contributions land in the round buffer.
func (p *runnerPool) runRound(ctx context.Context, start, n uint64) error {
	var wg sync.WaitGroup
	errs := make([]error, p.workers)
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pw := p.states[w]
			for b := uint64(w); b < n; b += uint64(p.workers) {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				stream := p.src.Stream(start + b)
				res, err := pw.runner.Run(stream, pw.probes...)
				if err != nil {
					errs[w] = err
					return
				}
				if p.job.Telemetry != nil {
					recordTrajectory(p.job, pw.runner, res)
				}
				if pw.causes != nil && res.Stopped {
					pw.causes[p.job.Cause(pw.runner.Marking())]++
				}
				base := b * uint64(p.points)
				for mi, probe := range pw.probes {
					for i := range probe.Values {
						p.vals[mi][base+uint64(i)] = probe.Values[i] * probe.Weights[i]
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// A context error outranks nothing but is outranked by simulation
	// errors, which are more specific.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			ctxErr = err
			continue
		}
		return err
	}
	return ctxErr
}

// foldRound folds the buffered round into one fresh accumulator per measure
// and grid point, adding contributions in ascending batch order. This is
// the canonical accumulation order every execution path shares (see the
// package comment), which is what makes estimates bit-identical across
// worker counts and chunkings.
func (p *runnerPool) foldRound(n uint64) [][]stats.Welford {
	accs := make([][]stats.Welford, p.measures)
	for mi := range accs {
		accs[mi] = make([]stats.Welford, p.points)
		vals := p.vals[mi]
		for b := uint64(0); b < n; b++ {
			base := b * uint64(p.points)
			for i := 0; i < p.points; i++ {
				accs[mi][i].Add(vals[base+uint64(i)])
			}
		}
	}
	return accs
}

// causeCounts merges the per-worker cause counters; nil when the pool does
// not count causes.
func (p *runnerPool) causeCounts() map[string]uint64 {
	var out map[string]uint64
	for _, pw := range p.states {
		if pw.causes == nil {
			continue
		}
		if out == nil {
			out = make(map[string]uint64)
		}
		for k, v := range pw.causes {
			out[k] += v
		}
	}
	return out
}

// recordTrajectory publishes one finished trajectory to the job's telemetry
// sink. Called from worker goroutines; the sink contract requires
// concurrency safety.
func recordTrajectory(job *Job, runner *sim.Runner, res sim.Result) {
	t := job.Telemetry
	t.Count(telemetry.MetricTrajectories, "")
	t.Observe(telemetry.MetricTrajectorySteps, "", float64(res.Steps))
	if !res.Stopped {
		return
	}
	t.Observe(telemetry.MetricTimeToKO, "", res.StopTime)
	if job.Cause != nil {
		// The runner's marking still holds the absorbing state here; the
		// worker only reuses it for the next batch after recording.
		t.Count(telemetry.MetricCatastrophes, job.Cause(runner.Marking())) //ahsvet:ignore locklabel Cause classifies into the model's fixed catastrophe-cause set
	}
}

// EstimateAt is a convenience wrapper estimating the measure at a single
// time point.
func EstimateAt(job Job, t float64) (stats.Interval, error) {
	job.Times = []float64{t}
	if job.Sim.MaxTime == 0 {
		job.Sim.MaxTime = t
	}
	curve, err := EstimateCurve(job)
	if err != nil {
		return stats.Interval{}, err
	}
	return curve.Intervals[0], nil
}
