// Package mc runs batched Monte-Carlo estimation of transient SAN measures.
//
// It reproduces the evaluation procedure of §4.1 of the paper: every plotted
// point is the mean over simulation batches, stopped when the 95% confidence
// interval has relative half-width 0.1 (with a minimum batch count), and the
// batch budget grows as the measure gets rarer. Batches are deterministic —
// batch i always uses random stream i of the job's seed — so results do not
// depend on the number of workers.
//
// Importance sampling is expressed through sim.Options.Bias: each batch
// contributes Value·LikelihoodRatio, which reduces to plain Value for
// unbiased runs, so naive and rare-event estimation share one code path.
package mc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ahs/internal/rng"
	"ahs/internal/san"
	"ahs/internal/sim"
	"ahs/internal/stats"
	"ahs/internal/telemetry"
)

// Job describes one curve estimation.
type Job struct {
	// Model is the SAN to simulate.
	Model *san.Model
	// Sim configures trajectory execution (MaxTime must cover Times).
	Sim sim.Options
	// Times is the ascending measurement grid.
	Times []float64
	// Value is the measured quantity (e.g. the unsafety indicator).
	Value func(mk *san.Marking) float64
	// Seed selects the random stream family.
	Seed uint64
	// StopRule is the convergence criterion, applied to the estimate at
	// the last time point (the paper's per-point criterion applied to the
	// point that converges slowest for monotone measures). Zero value
	// means "run exactly MaxBatches".
	StopRule stats.RelativeStopRule
	// MaxBatches caps the effort; 0 means 1 million.
	MaxBatches uint64
	// CheckEvery is the round size between convergence checks; 0 means
	// 2000.
	CheckEvery uint64
	// Workers is the parallelism; 0 means GOMAXPROCS.
	Workers int
	// Context, when non-nil, cancels the estimation: every worker checks
	// it before each batch, so a cancelled job stops within one
	// trajectory and the estimation returns ctx.Err(). Nil means run to
	// completion.
	Context context.Context
	// Progress, when non-nil, is invoked after every convergence round
	// with the number of completed batches and the batch cap. It is
	// called from the coordinating goroutine only (never concurrently)
	// and must be cheap; it exists so long-running estimations can report
	// liveness to a job manager.
	Progress func(batchesDone, maxBatches uint64)
	// Telemetry, when non-nil, receives per-trajectory events: a
	// trajectories count, a trajectory-steps observation, and — for
	// trajectories ended by the stop predicate — a time-to-absorption
	// observation plus a catastrophic-cause count classified by Cause.
	// It also becomes Sim.Sink (activity firings) unless one is already
	// set. Implementations must be safe for concurrent use; workers
	// record from their own goroutines.
	Telemetry telemetry.Sink
	// Cause classifies the final marking of a stopped trajectory (e.g.
	// core's ST1/ST2/ST3 catastrophic situations) for the Telemetry
	// catastrophe counter. Ignored when Telemetry is nil; when Cause is
	// nil no cause counts are recorded.
	Cause func(mk *san.Marking) string
}

// Curve is the estimated measure over the time grid.
type Curve struct {
	Times     []float64
	Mean      []float64
	Intervals []stats.Interval
	// Batches is the number of simulated trajectories.
	Batches uint64
	// Converged reports whether StopRule was met (always true when no
	// rule was set).
	Converged bool
}

// At returns the estimate at the i-th grid point.
func (c *Curve) At(i int) float64 { return c.Mean[i] }

// Final returns the estimate at the last grid point.
func (c *Curve) Final() float64 { return c.Mean[len(c.Mean)-1] }

func (j *Job) validate() error {
	if j.Model == nil {
		return errors.New("mc: nil model")
	}
	if j.Value == nil {
		return errors.New("mc: nil value function")
	}
	if len(j.Times) == 0 {
		return errors.New("mc: empty time grid")
	}
	for i := 1; i < len(j.Times); i++ {
		if j.Times[i] <= j.Times[i-1] {
			return fmt.Errorf("mc: time grid not strictly increasing at index %d", i)
		}
	}
	if j.Sim.MaxTime < j.Times[len(j.Times)-1] {
		return fmt.Errorf("mc: MaxTime %v does not cover last measurement %v",
			j.Sim.MaxTime, j.Times[len(j.Times)-1])
	}
	return nil
}

// EstimateCurve runs the job and returns the estimated curve.
func EstimateCurve(job Job) (*Curve, error) {
	curve, _, err := EstimateCurveMulti(job, nil)
	return curve, err
}

// EstimateCurveMulti runs the job and simultaneously estimates additional
// measures over the same trajectories (e.g. a breakdown of the unsafety by
// catastrophic situation). The convergence rule still applies to the main
// Value; the extra curves simply ride along, sharing every batch.
func EstimateCurveMulti(job Job, extras map[string]func(mk *san.Marking) float64) (*Curve, map[string]*Curve, error) {
	if err := job.validate(); err != nil {
		return nil, nil, err
	}
	extraNames := make([]string, 0, len(extras))
	for name := range extras {
		if extras[name] == nil {
			return nil, nil, fmt.Errorf("mc: nil extra value %q", name)
		}
		extraNames = append(extraNames, name)
	}
	sort.Strings(extraNames)
	if job.MaxBatches == 0 {
		job.MaxBatches = 1_000_000
	}
	if job.CheckEvery == 0 {
		job.CheckEvery = 2000
	}
	workers := job.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if job.Telemetry != nil && job.Sim.Sink == nil {
		job.Sim.Sink = job.Telemetry
	}

	ctx := job.Context
	if ctx == nil {
		ctx = context.Background()
	}

	hasRule := job.StopRule != (stats.RelativeStopRule{})
	src := rng.NewSource(job.Seed)
	// measures[0] is the main Value; measures[1..] the extras in name order.
	measures := len(extraNames) + 1
	accs := make([][]stats.Welford, measures)
	for mi := range accs {
		accs[mi] = make([]stats.Welford, len(job.Times))
	}

	type workerState struct {
		runner *sim.Runner
		probes []*sim.Probe
		accs   [][]stats.Welford
	}
	states := make([]*workerState, workers)
	for w := range states {
		runner, err := sim.NewRunner(job.Model, job.Sim)
		if err != nil {
			return nil, nil, err
		}
		st := &workerState{
			runner: runner,
			probes: make([]*sim.Probe, measures),
			accs:   make([][]stats.Welford, measures),
		}
		st.probes[0] = &sim.Probe{Times: job.Times, Value: job.Value}
		for ei, name := range extraNames {
			st.probes[ei+1] = &sim.Probe{Times: job.Times, Value: extras[name]}
		}
		for mi := range st.accs {
			st.accs[mi] = make([]stats.Welford, len(job.Times))
		}
		states[w] = st
	}

	var done uint64
	converged := false
	for done < job.MaxBatches && !converged {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		round := job.CheckEvery
		if rem := job.MaxBatches - done; round > rem {
			round = rem
		}

		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			// Batch indices are striped: worker w runs done+w,
			// done+w+workers, ... Deterministic regardless of scheduling.
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				st := states[w]
				for b := uint64(w); b < round; b += uint64(workers) {
					if err := ctx.Err(); err != nil {
						errs[w] = err
						return
					}
					stream := src.Stream(done + b)
					res, err := st.runner.Run(stream, st.probes...)
					if err != nil {
						errs[w] = err
						return
					}
					if job.Telemetry != nil {
						recordTrajectory(&job, st.runner, res)
					}
					for mi, probe := range st.probes {
						for i := range probe.Values {
							st.accs[mi][i].Add(probe.Values[i] * probe.Weights[i])
						}
					}
				}
			}(w)
		}
		wg.Wait()
		// A context error outranks nothing but is outranked by simulation
		// errors, which are more specific.
		var ctxErr error
		for _, err := range errs {
			if err == nil {
				continue
			}
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				ctxErr = err
				continue
			}
			return nil, nil, err
		}
		if ctxErr != nil {
			return nil, nil, ctxErr
		}
		for w := range states {
			for mi := range accs {
				for i := range accs[mi] {
					accs[mi][i].Merge(&states[w].accs[mi][i])
					states[w].accs[mi][i] = stats.Welford{}
				}
			}
		}
		done += round
		if hasRule && job.StopRule.Satisfied(&accs[0][len(job.Times)-1]) {
			converged = true
		}
		if job.Progress != nil {
			job.Progress(done, job.MaxBatches)
		}
	}

	conf := job.StopRule.Confidence
	if conf == 0 {
		conf = 0.95
	}
	buildCurve := func(acc []stats.Welford) *Curve {
		curve := &Curve{
			Times:     append([]float64(nil), job.Times...),
			Mean:      make([]float64, len(job.Times)),
			Intervals: make([]stats.Interval, len(job.Times)),
			Batches:   done,
			Converged: converged || !hasRule,
		}
		for i := range acc {
			curve.Mean[i] = acc[i].Mean()
			curve.Intervals[i] = acc[i].CI(conf)
		}
		return curve
	}
	main := buildCurve(accs[0])
	var extraCurves map[string]*Curve
	if len(extraNames) > 0 {
		extraCurves = make(map[string]*Curve, len(extraNames))
		for ei, name := range extraNames {
			extraCurves[name] = buildCurve(accs[ei+1])
		}
	}
	return main, extraCurves, nil
}

// recordTrajectory publishes one finished trajectory to the job's telemetry
// sink. Called from worker goroutines; the sink contract requires
// concurrency safety.
func recordTrajectory(job *Job, runner *sim.Runner, res sim.Result) {
	t := job.Telemetry
	t.Count(telemetry.MetricTrajectories, "")
	t.Observe(telemetry.MetricTrajectorySteps, "", float64(res.Steps))
	if !res.Stopped {
		return
	}
	t.Observe(telemetry.MetricTimeToKO, "", res.StopTime)
	if job.Cause != nil {
		// The runner's marking still holds the absorbing state here; the
		// worker only reuses it for the next batch after recording.
		t.Count(telemetry.MetricCatastrophes, job.Cause(runner.Marking()))
	}
}

// EstimateAt is a convenience wrapper estimating the measure at a single
// time point.
func EstimateAt(job Job, t float64) (stats.Interval, error) {
	job.Times = []float64{t}
	if job.Sim.MaxTime == 0 {
		job.Sim.MaxTime = t
	}
	curve, err := EstimateCurve(job)
	if err != nil {
		return stats.Interval{}, err
	}
	return curve.Intervals[0], nil
}
