package mc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"

	"ahs/internal/stats"
)

// ChunkSpec selects the contiguous stripe of batches
// [Start, Start+Count) of a job's deterministic batch sequence. Because
// batch i always uses random stream i of the job seed, a chunk is fully
// determined by the job and the spec — whichever machine simulates it.
type ChunkSpec struct {
	Start uint64 `json:"start"`
	Count uint64 `json:"count"`
}

// End returns the first batch index past the chunk.
func (s ChunkSpec) End() uint64 { return s.Start + s.Count }

// String renders the spec as the half-open interval it covers.
func (s ChunkSpec) String() string { return fmt.Sprintf("[%d,%d)", s.Start, s.End()) }

// ChunkState is the sufficient statistic of one simulated chunk: the
// per-grid-point Welford accumulators of every accumulation round the chunk
// covers, in ascending round order, plus the catastrophic-cause counts of
// its stopped trajectories. States serialize to JSON losslessly (see
// stats.Welford's wire format), so a remote worker can ship one back to a
// coordinator whose Merger reconstructs the exact single-process curve.
type ChunkState struct {
	Spec      ChunkSpec         `json:"spec"`
	RoundSize uint64            `json:"roundSize"`
	Rounds    [][]stats.Welford `json:"rounds"`
	Causes    map[string]uint64 `json:"causes,omitempty"`
}

// RoundSize returns the job's canonical accumulation round size
// (CheckEvery with the default applied). Chunks of one logical job must all
// be estimated with this round size for their merge to be bit-identical to
// the single-process run.
func (j *Job) RoundSize() uint64 {
	if j.CheckEvery == 0 {
		return 2000
	}
	return j.CheckEvery
}

// maxBatches returns the job's effective batch budget.
func (j *Job) maxBatches() uint64 {
	if j.MaxBatches == 0 {
		return 1_000_000
	}
	return j.MaxBatches
}

// Shard splits the job's batch budget [0, MaxBatches) into contiguous
// chunks of at most chunkBatches batches each, rounded up to a whole number
// of accumulation rounds so every chunk starts on a round boundary (the
// alignment EstimateChunk and Merger require). chunkBatches 0 means four
// rounds per chunk. The final chunk absorbs the remainder.
func (j *Job) Shard(chunkBatches uint64) []ChunkSpec {
	r := j.RoundSize()
	total := j.maxBatches()
	if chunkBatches == 0 {
		chunkBatches = 4 * r
	}
	if rem := chunkBatches % r; rem != 0 {
		chunkBatches += r - rem
	}
	specs := make([]ChunkSpec, 0, (total+chunkBatches-1)/chunkBatches)
	for start := uint64(0); start < total; start += chunkBatches {
		n := chunkBatches
		if rem := total - start; n > rem {
			n = rem
		}
		specs = append(specs, ChunkSpec{Start: start, Count: n})
	}
	return specs
}

// EstimateChunk simulates exactly the batches [spec.Start, spec.End()) of
// the job and returns their sufficient statistics. The job's StopRule and
// MaxBatches are ignored — convergence is the merger's decision — while
// CheckEvery fixes the accumulation round size, which must match across
// every chunk of one logical job (and the single-process run being
// reproduced) for the merged curve to be bit-identical. spec.Start must lie
// on a round boundary for the same reason.
//
// Chunks estimate the main Value only; Workers parallelises within the
// chunk, Context cancels it, and Cause (when set) is folded into the
// returned state's cause counters.
func EstimateChunk(job Job, spec ChunkSpec) (*ChunkState, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	if spec.Count == 0 {
		return nil, errors.New("mc: empty chunk")
	}
	roundSize := job.RoundSize()
	if spec.Start%roundSize != 0 {
		return nil, fmt.Errorf("mc: chunk start %d not aligned to round size %d", spec.Start, roundSize)
	}
	workers := job.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if job.Telemetry != nil && job.Sim.Sink == nil {
		job.Sim.Sink = job.Telemetry
	}
	ctx := job.Context
	if ctx == nil {
		ctx = context.Background()
	}
	maxRound := roundSize
	if maxRound > spec.Count {
		maxRound = spec.Count
	}
	pool, err := newRunnerPool(&job, nil, nil, workers, maxRound, true)
	if err != nil {
		return nil, err
	}
	state := &ChunkState{
		Spec:      spec,
		RoundSize: roundSize,
		Rounds:    make([][]stats.Welford, 0, (spec.Count+roundSize-1)/roundSize),
	}
	for off := uint64(0); off < spec.Count; off += roundSize {
		n := roundSize
		if rem := spec.Count - off; n > rem {
			n = rem
		}
		if err := pool.runRound(ctx, spec.Start+off, n); err != nil {
			return nil, err
		}
		state.Rounds = append(state.Rounds, pool.foldRound(n)[0])
	}
	state.Causes = pool.causeCounts()
	return state, nil
}

// Merger folds chunk states into the curve a single process would produce
// for the same job. Chunks may be added in any order; rounds are folded in
// ascending batch order as the contiguous prefix extends, and — when the
// job has a stop rule — convergence is evaluated at every round boundary
// exactly like EstimateCurve does, so the merged curve (mean, intervals,
// batch count and convergence flag) is bit-identical to the single-process
// result. Chunks past the convergence boundary are discarded.
//
// Merger is not safe for concurrent use; callers serialize Add.
type Merger struct {
	times     []float64
	roundSize uint64
	target    uint64
	rule      stats.RelativeStopRule
	hasRule   bool

	accs      []stats.Welford
	pending   map[uint64]*ChunkState // keyed by chunk start, not yet folded
	added     map[uint64]uint64      // chunk start → end, for overlap checks
	next      uint64                 // batches folded so far (contiguous prefix)
	converged bool
	causes    map[string]uint64
}

// NewMerger prepares a merger for the given job; the job must be the one
// the chunks were (or will be) estimated from.
func NewMerger(job Job) (*Merger, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	return &Merger{
		times:     append([]float64(nil), job.Times...),
		roundSize: job.RoundSize(),
		target:    job.maxBatches(),
		rule:      job.StopRule,
		hasRule:   job.StopRule != (stats.RelativeStopRule{}),
		accs:      make([]stats.Welford, len(job.Times)),
		pending:   make(map[uint64]*ChunkState),
		added:     make(map[uint64]uint64),
		causes:    make(map[string]uint64),
	}, nil
}

// Add folds one chunk state. It validates the state's shape against the
// job — round size, alignment, grid width, per-round batch counts — and
// rejects duplicate or overlapping chunks, so a buggy or malicious worker
// cannot double-count a stripe. Adding after convergence is a no-op: the
// chunk is speculative work past the stopping boundary.
func (m *Merger) Add(state *ChunkState) error {
	if state == nil {
		return errors.New("mc: nil chunk state")
	}
	if m.converged {
		return nil
	}
	sp := state.Spec
	if state.RoundSize != m.roundSize {
		return fmt.Errorf("mc: chunk %s round size %d, merger expects %d", sp, state.RoundSize, m.roundSize)
	}
	if sp.Count == 0 {
		return fmt.Errorf("mc: empty chunk %s", sp)
	}
	if sp.Start%m.roundSize != 0 {
		return fmt.Errorf("mc: chunk start %d not aligned to round size %d", sp.Start, m.roundSize)
	}
	if sp.End() > m.target {
		return fmt.Errorf("mc: chunk %s exceeds batch budget %d", sp, m.target)
	}
	if sp.End() != m.target && sp.Count%m.roundSize != 0 {
		return fmt.Errorf("mc: non-final chunk %s is not a whole number of rounds of %d", sp, m.roundSize)
	}
	for start, end := range m.added {
		if sp.Start < end && start < sp.End() {
			return fmt.Errorf("mc: chunk %s overlaps already-added chunk [%d,%d)", sp, start, end)
		}
	}
	wantRounds := int((sp.Count + m.roundSize - 1) / m.roundSize)
	if len(state.Rounds) != wantRounds {
		return fmt.Errorf("mc: chunk %s carries %d rounds, want %d", sp, len(state.Rounds), wantRounds)
	}
	for ri, round := range state.Rounds {
		if len(round) != len(m.times) {
			return fmt.Errorf("mc: chunk %s round %d has %d grid points, want %d", sp, ri, len(round), len(m.times))
		}
		n := m.roundSize
		if rem := sp.Count - uint64(ri)*m.roundSize; n > rem {
			n = rem
		}
		for pi := range round {
			if round[pi].N() != n {
				return fmt.Errorf("mc: chunk %s round %d point %d holds %d observations, want %d", sp, ri, pi, round[pi].N(), n)
			}
		}
	}

	m.pending[sp.Start] = state
	m.added[sp.Start] = sp.End()
	m.fold()
	return nil
}

// fold advances the contiguous prefix over any pending chunks, checking the
// stop rule at every round boundary like the single-process estimator.
func (m *Merger) fold() {
	for !m.converged {
		state, ok := m.pending[m.next]
		if !ok {
			return
		}
		delete(m.pending, m.next)
		for k, v := range state.Causes {
			m.causes[k] += v
		}
		for _, round := range state.Rounds {
			n := m.roundSize
			if rem := state.Spec.End() - m.next; n > rem {
				n = rem
			}
			for i := range m.accs {
				m.accs[i].Merge(&round[i])
			}
			m.next += n
			if m.hasRule && m.rule.Satisfied(&m.accs[len(m.accs)-1]) {
				m.converged = true
				break
			}
		}
	}
}

// Covered reports whether the batch range of spec is already accounted for
// by an added chunk — exactly, as a duplicate of a previous Add. Recovery
// paths (journal replay) use it to skip re-applying chunks idempotently
// instead of tripping the overlap rejection.
func (m *Merger) Covered(spec ChunkSpec) bool {
	end, ok := m.added[spec.Start]
	return ok && end == spec.End()
}

// Added returns the specs of every added chunk in ascending start order,
// including chunks still pending (not yet part of the contiguous folded
// prefix). Restores use it to compute which shards still need simulating.
func (m *Merger) Added() []ChunkSpec {
	specs := make([]ChunkSpec, 0, len(m.added))
	for start, end := range m.added {
		specs = append(specs, ChunkSpec{Start: start, Count: end - start})
	}
	sort.Slice(specs, func(a, b int) bool { return specs[a].Start < specs[b].Start })
	return specs
}

// Done returns the number of batches folded into the contiguous prefix.
func (m *Merger) Done() uint64 { return m.next }

// Target returns the job's batch budget.
func (m *Merger) Target() uint64 { return m.target }

// Converged reports whether the stop rule was met at a folded boundary.
func (m *Merger) Converged() bool { return m.converged }

// Complete reports whether the merge can produce the final curve: either
// the whole budget folded, or the stop rule ended the job early.
func (m *Merger) Complete() bool { return m.converged || m.next == m.target }

// Causes returns the merged catastrophic-cause counts of the folded chunks.
// The map is live; callers must not mutate it while adding chunks.
func (m *Merger) Causes() map[string]uint64 { return m.causes }

// Curve builds the final curve. It fails unless the merge is complete.
func (m *Merger) Curve() (*Curve, error) {
	if !m.Complete() {
		return nil, fmt.Errorf("mc: merge incomplete: %d of %d batches folded", m.next, m.target)
	}
	conf := m.rule.Confidence
	if conf == 0 {
		conf = 0.95
	}
	return buildCurve(m.times, m.accs, m.next, m.converged || !m.hasRule, conf), nil
}
