package mc

import (
	"sync"
	"testing"

	"ahs/internal/san"
	"ahs/internal/sim"
	"ahs/internal/telemetry"
)

// memSink records Sink events under a lock, for exact assertions.
type memSink struct {
	mu       sync.Mutex
	counts   map[string]uint64 // metric \xff label -> n
	observed map[string]int    // metric -> number of observations
}

func newMemSink() *memSink {
	return &memSink{counts: map[string]uint64{}, observed: map[string]int{}}
}

func (s *memSink) Count(metric, label string) {
	s.mu.Lock()
	s.counts[metric+"\xff"+label]++
	s.mu.Unlock()
}

func (s *memSink) Observe(metric, _ string, _ float64) {
	s.mu.Lock()
	s.observed[metric]++
	s.mu.Unlock()
}

func (s *memSink) count(metric, label string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[metric+"\xff"+label]
}

func (s *memSink) observations(metric string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.observed[metric]
}

func TestEstimateCurveRecordsTelemetry(t *testing.T) {
	const batches = 300
	m, alive := buildPureDeath(2)
	sink := newMemSink()
	dead := func(mk *san.Marking) bool { return mk.Tokens(alive) == 0 }
	_, err := EstimateCurve(Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 1, Stop: dead},
		Times:      []float64{0.5, 1},
		Value:      deadIndicator(alive),
		Seed:       7,
		MaxBatches: batches,
		Workers:    3,
		Telemetry:  sink,
		Cause: func(mk *san.Marking) string {
			if mk.Tokens(alive) == 0 {
				return "ST1"
			}
			return "none"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sink.count(telemetry.MetricTrajectories, ""); got != batches {
		t.Fatalf("trajectories = %d, want %d", got, batches)
	}
	if got := sink.observations(telemetry.MetricTrajectorySteps); got != batches {
		t.Fatalf("step observations = %d, want %d", got, batches)
	}
	// With rate 2 over a unit horizon most trajectories absorb; each stopped
	// one contributes a first-passage observation, one cause count and one
	// "die" firing via the propagated Sim.Sink.
	stopped := sink.observations(telemetry.MetricTimeToKO)
	if stopped == 0 || stopped > batches {
		t.Fatalf("time-to-KO observations = %d, want in [1, %d]", stopped, batches)
	}
	if got := sink.count(telemetry.MetricCatastrophes, "ST1"); got != uint64(stopped) {
		t.Fatalf("ST1 causes = %d, want %d (one per stopped trajectory)", got, stopped)
	}
	if got := sink.count(telemetry.MetricActivityFirings, "die"); got != uint64(stopped) {
		t.Fatalf("die firings = %d, want %d", got, stopped)
	}
}

// TestTelemetryNilIsInert pins the disabled contract: a nil sink must not
// change estimates (it is the same code path, just branch-skipped).
func TestTelemetryNilIsInert(t *testing.T) {
	m, alive := buildPureDeath(0.5)
	job := Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 2},
		Times:      []float64{1, 2},
		Value:      deadIndicator(alive),
		Seed:       11,
		MaxBatches: 500,
		Workers:    2,
	}
	base, err := EstimateCurve(job)
	if err != nil {
		t.Fatal(err)
	}
	job.Telemetry = newMemSink()
	instr, err := EstimateCurve(job)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Mean {
		if base.Mean[i] != instr.Mean[i] { //ahsvet:ignore floateq identical deterministic batches must agree bit-for-bit
			t.Fatalf("estimate changed under telemetry at %d: %v vs %v", i, base.Mean[i], instr.Mean[i])
		}
	}
}
