package mc

import (
	"encoding/json"
	"strings"
	"testing"

	"ahs/internal/sim"
	"ahs/internal/stats"
)

// mergeChunks estimates every spec and folds the states through a fresh
// merger, shipping each state through its JSON wire format on the way — the
// exact round trip a remote worker's result takes.
func mergeChunks(t *testing.T, job Job, specs []ChunkSpec) *Curve {
	t.Helper()
	m, err := NewMerger(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		state, err := EstimateChunk(job, spec)
		if err != nil {
			t.Fatalf("chunk %s: %v", spec, err)
		}
		b, err := json.Marshal(state)
		if err != nil {
			t.Fatalf("chunk %s marshal: %v", spec, err)
		}
		var wire ChunkState
		if err := json.Unmarshal(b, &wire); err != nil {
			t.Fatalf("chunk %s unmarshal: %v", spec, err)
		}
		if err := m.Add(&wire); err != nil {
			t.Fatalf("chunk %s add: %v", spec, err)
		}
	}
	if !m.Complete() {
		t.Fatalf("merge incomplete: %d of %d batches", m.Done(), m.Target())
	}
	curve, err := m.Curve()
	if err != nil {
		t.Fatal(err)
	}
	return curve
}

func curvesBitIdentical(t *testing.T, got, want *Curve) {
	t.Helper()
	if got.Batches != want.Batches {
		t.Fatalf("Batches = %d, want %d", got.Batches, want.Batches)
	}
	if got.Converged != want.Converged {
		t.Fatalf("Converged = %v, want %v", got.Converged, want.Converged)
	}
	for i := range want.Times {
		if got.Times[i] != want.Times[i] {
			t.Fatalf("Times[%d] = %v, want %v", i, got.Times[i], want.Times[i])
		}
		if got.Mean[i] != want.Mean[i] {
			t.Fatalf("Mean[%d] = %b, want %b (not bit-identical)", i, got.Mean[i], want.Mean[i])
		}
		if got.Intervals[i] != want.Intervals[i] {
			t.Fatalf("Intervals[%d] = %+v, want %+v", i, got.Intervals[i], want.Intervals[i])
		}
	}
}

func TestChunkMergeMatchesSingleProcess(t *testing.T) {
	const rate = 1.0
	m, alive := buildPureDeath(rate)
	job := Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 2},
		Times:      []float64{1, 2},
		Value:      deadIndicator(alive),
		Seed:       7,
		MaxBatches: 4000,
		CheckEvery: 500,
	}
	want, err := EstimateCurve(job)
	if err != nil {
		t.Fatal(err)
	}

	// Several split layouts: [0,k)+[k,N) for round-aligned k, a ragged
	// final chunk, single-chunk, and per-round chunks delivered in
	// reverse order.
	splits := [][]ChunkSpec{
		{{0, 500}, {500, 3500}},
		{{0, 2000}, {2000, 2000}},
		{{0, 3500}, {3500, 500}},
		{{0, 1000}, {1000, 1000}, {2000, 1000}, {3000, 1000}},
		{{0, 4000}},
		{{3500, 500}, {3000, 500}, {2500, 500}, {2000, 500}, {1500, 500}, {1000, 500}, {500, 500}, {0, 500}},
	}
	for _, specs := range splits {
		got := mergeChunks(t, job, specs)
		curvesBitIdentical(t, got, want)
	}
}

func TestChunkMergeMatchesSingleProcessWithImportanceSampling(t *testing.T) {
	const rate = 1e-4
	m, alive := buildPureDeath(rate)
	bias := sim.NewBias()
	if err := bias.SetByName(m, "die", 2000); err != nil {
		t.Fatal(err)
	}
	job := Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 1, Bias: bias},
		Times:      []float64{0.5, 1},
		Value:      deadIndicator(alive),
		Seed:       4,
		MaxBatches: 3000,
		CheckEvery: 600,
	}
	want, err := EstimateCurve(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, specs := range [][]ChunkSpec{
		{{0, 600}, {600, 2400}},
		{{0, 1200}, {1200, 1800}},
		{{0, 1800}, {1800, 600}, {2400, 600}},
	} {
		got := mergeChunks(t, job, specs)
		curvesBitIdentical(t, got, want)
	}
}

func TestChunkMergeReproducesStopRuleDecision(t *testing.T) {
	const rate = 2.0 // common event: converges before the budget
	m, alive := buildPureDeath(rate)
	job := Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 2},
		Times:      []float64{2},
		Value:      deadIndicator(alive),
		Seed:       2,
		StopRule:   stats.RelativeStopRule{Confidence: 0.95, MaxRelHalfWidth: 0.1, MinSamples: 1000},
		MaxBatches: 100000,
		CheckEvery: 1000,
	}
	want, err := EstimateCurve(job)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Converged || want.Batches == job.MaxBatches {
		t.Fatalf("fixture must converge early, got %d/%d", want.Batches, job.MaxBatches)
	}

	// Chunk the full budget; the merger must stop folding at the same
	// boundary and discard the speculative tail.
	merger, err := NewMerger(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range job.Shard(2000) {
		state, err := EstimateChunk(job, spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := merger.Add(state); err != nil {
			t.Fatal(err)
		}
		if merger.Converged() {
			break
		}
	}
	got, err := merger.Curve()
	if err != nil {
		t.Fatal(err)
	}
	curvesBitIdentical(t, got, want)
}

func TestChunkWorkerCountDoesNotChangeState(t *testing.T) {
	const rate = 1.0
	m, alive := buildPureDeath(rate)
	base := Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 1},
		Times:      []float64{0.5, 1},
		Value:      deadIndicator(alive),
		Seed:       9,
		MaxBatches: 2000,
		CheckEvery: 500,
	}
	var want *ChunkState
	for _, workers := range []int{1, 2, 4} {
		job := base
		job.Workers = workers
		state, err := EstimateChunk(job, ChunkSpec{Start: 500, Count: 1500})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = state
			continue
		}
		for ri := range want.Rounds {
			for pi := range want.Rounds[ri] {
				if state.Rounds[ri][pi] != want.Rounds[ri][pi] {
					t.Fatalf("workers=%d round %d point %d differs from workers=1", workers, ri, pi)
				}
			}
		}
	}
}

func TestShardAlignsChunksToRounds(t *testing.T) {
	job := Job{CheckEvery: 500, MaxBatches: 4200}
	cases := []struct {
		chunk uint64
		want  []ChunkSpec
	}{
		// 1200 rounds up to 1500 (next multiple of 500).
		{1200, []ChunkSpec{{0, 1500}, {1500, 1500}, {3000, 1200}}},
		{4200, []ChunkSpec{{0, 4200}}},
		{100000, []ChunkSpec{{0, 4200}}},
		// 0 means four rounds per chunk.
		{0, []ChunkSpec{{0, 2000}, {2000, 2000}, {4000, 200}}},
	}
	for _, tc := range cases {
		got := job.Shard(tc.chunk)
		if len(got) != len(tc.want) {
			t.Fatalf("Shard(%d) = %v, want %v", tc.chunk, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("Shard(%d) = %v, want %v", tc.chunk, got, tc.want)
			}
		}
	}
}

func TestMergerRejectsMalformedChunks(t *testing.T) {
	const rate = 1.0
	m, alive := buildPureDeath(rate)
	job := Job{
		Model:      m,
		Sim:        sim.Options{MaxTime: 1},
		Times:      []float64{1},
		Value:      deadIndicator(alive),
		Seed:       11,
		MaxBatches: 2000,
		CheckEvery: 500,
	}
	good, err := EstimateChunk(job, ChunkSpec{Start: 0, Count: 1000})
	if err != nil {
		t.Fatal(err)
	}

	newMerger := func() *Merger {
		mg, err := NewMerger(job)
		if err != nil {
			t.Fatal(err)
		}
		return mg
	}
	mutate := func(f func(*ChunkState)) *ChunkState {
		c := *good
		c.Rounds = make([][]stats.Welford, len(good.Rounds))
		for i := range good.Rounds {
			c.Rounds[i] = append([]stats.Welford(nil), good.Rounds[i]...)
		}
		f(&c)
		return &c
	}

	cases := map[string]struct {
		state *ChunkState
		want  string
	}{
		"nil state":        {nil, "nil chunk state"},
		"wrong round size": {mutate(func(c *ChunkState) { c.RoundSize = 250 }), "round size"},
		"misaligned start": {mutate(func(c *ChunkState) { c.Spec.Start = 250 }), "not aligned"},
		"past budget":      {mutate(func(c *ChunkState) { c.Spec.Start = 1500; c.Spec.Count = 1000 }), "exceeds batch budget"},
		"ragged non-final": {mutate(func(c *ChunkState) { c.Spec.Count = 750 }), "whole number of rounds"},
		"missing rounds":   {mutate(func(c *ChunkState) { c.Rounds = c.Rounds[:1] }), "carries 1 rounds"},
		"wrong grid width": {mutate(func(c *ChunkState) { c.Rounds[0] = c.Rounds[0][:0] }), "grid points"},
		"short round": {mutate(func(c *ChunkState) {
			var w stats.Welford
			w.Add(1)
			c.Rounds[1][0] = w
		}), "observations"},
	}
	for name, tc := range cases {
		err := newMerger().Add(tc.state)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Add() error = %v, want containing %q", name, err, tc.want)
		}
	}

	// Duplicate and overlapping chunks are rejected only once a valid
	// copy is in.
	mg := newMerger()
	if err := mg.Add(good); err != nil {
		t.Fatal(err)
	}
	if err := mg.Add(good); err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Errorf("duplicate chunk: Add() error = %v", err)
	}
	overlap := mutate(func(c *ChunkState) { c.Spec.Start = 500 })
	if err := mg.Add(overlap); err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Errorf("overlapping chunk: Add() error = %v", err)
	}

	// An incomplete merge refuses to produce a curve.
	if _, err := mg.Curve(); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("incomplete Curve() error = %v", err)
	}
}
