package platoon

import "testing"

// FuzzParseStrategy checks that arbitrary input never panics and that
// accepted codes round-trip through String.
func FuzzParseStrategy(f *testing.F) {
	for _, seed := range []string{"DD", "DC", "CD", "CC", "dd", "xx", "", "D", "DDD", "C\x00"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, code string) {
		s, err := ParseStrategy(code)
		if err != nil {
			return
		}
		if s.Inter != Centralized && s.Inter != Decentralized {
			t.Fatalf("accepted %q with invalid inter %v", code, s.Inter)
		}
		if s.Intra != Centralized && s.Intra != Decentralized {
			t.Fatalf("accepted %q with invalid intra %v", code, s.Intra)
		}
		rt, err := ParseStrategy(s.String())
		if err != nil || rt != s {
			t.Fatalf("round trip failed for %q: %v, %v", code, rt, err)
		}
	})
}
