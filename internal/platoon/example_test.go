package platoon_test

import (
	"fmt"
	"sort"

	"ahs/internal/platoon"
)

// ExampleParticipants reproduces the paper's §2.2.1 example: the escorted
// exit (TIE-E) of a faulty vehicle involves far fewer vehicles under
// decentralized inter-platoon coordination than under centralized.
func ExampleParticipants() {
	view := platoon.View{
		Platoons: [][]int{
			{1, 2, 3, 4, 5}, // platoon 1, vehicle 4 will be the faulty one
			{6, 7},          // neighbouring platoon
		},
		Operational: func(int) bool { return true },
	}
	for _, strategy := range []platoon.Strategy{platoon.DD, platoon.CD} {
		parts, err := platoon.Participants(view, 4, platoon.TIEE, strategy)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		sort.Ints(parts)
		fmt.Printf("%s inter-platoon: %v\n", strategy.Inter, parts)
	}
	// Output:
	// decentralized inter-platoon: [1 3 5 6]
	// centralized inter-platoon: [1 2 3 5 6]
}

// ExampleClassifySituation evaluates the catastrophic situations of
// Table 2.
func ExampleClassifySituation() {
	fmt.Println(platoon.ClassifySituation(2, 0, 0)) // two class A failures
	fmt.Println(platoon.ClassifySituation(1, 1, 1)) // A + B + C
	fmt.Println(platoon.ClassifySituation(0, 2, 2)) // four class B/C
	fmt.Println(platoon.ClassifySituation(1, 1, 0)) // survivable
	// Output:
	// ST1
	// ST2
	// ST3
	// none
}

// ExampleFailureMode_Escalate walks the degradation chain of Figure 2.
func ExampleFailureMode_Escalate() {
	f := platoon.FM6
	fmt.Printf("%v -> %v", f, f.Maneuver())
	for {
		next, ok := f.Escalate()
		if !ok {
			fmt.Println(" -> v_KO")
			return
		}
		f = next
		fmt.Printf(" | %v -> %v", f, f.Maneuver())
	}
	// Output:
	// FM6 -> TIE-N | FM5 -> TIE | FM4 -> TIE-E | FM3 -> GS | FM2 -> CS | FM1 -> AS -> v_KO
}
