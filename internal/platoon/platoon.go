// Package platoon implements the AHS domain model of the paper's Section 2:
// the failure-mode / severity / maneuver taxonomy of Table 1, the
// catastrophic situations of Table 2, the coordination strategies of
// Table 3, and the computation of which vehicles participate in each
// recovery maneuver under each strategy (§2.2).
//
// The package is pure domain logic over plain values; internal/core adapts
// it onto Stochastic Activity Network markings.
package platoon

import (
	"fmt"
)

// FailureMode is one of the six single-vehicle failure modes of Table 1.
type FailureMode int

// Failure modes FM1..FM6, ordered as in Table 1 (decreasing severity).
const (
	FM1             FailureMode = iota + 1 // no brakes                          -> A3, Aided Stop
	FM2                                    // cannot detect adjacent vehicles    -> A2, Crash Stop
	FM3                                    // inter-vehicle communication failure-> A1, Gentle Stop
	FM4                                    // transmission failure               -> B2, TIE-Escorted
	FM5                                    // reduced steering capability        -> B1, TIE
	FM6                                    // single failure in redundant sensors-> C,  TIE-Normal
	numFailureModes = 6
)

// AllFailureModes lists FM1..FM6 in Table 1 order.
func AllFailureModes() []FailureMode {
	return []FailureMode{FM1, FM2, FM3, FM4, FM5, FM6}
}

// Valid reports whether f is one of FM1..FM6.
func (f FailureMode) Valid() bool { return f >= FM1 && f <= FM6 }

// String returns the paper's failure-mode label.
func (f FailureMode) String() string {
	if !f.Valid() {
		return fmt.Sprintf("FM?(%d)", int(f))
	}
	return fmt.Sprintf("FM%d", int(f))
}

// Severity is a failure-mode severity sub-class (Table 1). Class A gathers
// the failures requiring the vehicle to stop on the highway; classes B and C
// can be recovered by exiting without stopping traffic.
type Severity int

// Severity sub-classes in increasing criticality order.
const (
	SeverityC Severity = iota + 1
	SeverityB1
	SeverityB2
	SeverityA1
	SeverityA2
	SeverityA3
)

// String returns the paper's severity label.
func (s Severity) String() string {
	switch s {
	case SeverityC:
		return "C"
	case SeverityB1:
		return "B1"
	case SeverityB2:
		return "B2"
	case SeverityA1:
		return "A1"
	case SeverityA2:
		return "A2"
	case SeverityA3:
		return "A3"
	default:
		return fmt.Sprintf("Severity?(%d)", int(s))
	}
}

// Class is the coarse severity class used by the catastrophic situations of
// Table 2.
type Class int

// Coarse severity classes.
const (
	ClassC Class = iota + 1
	ClassB
	ClassA
)

// String returns "A", "B" or "C".
func (c Class) String() string {
	switch c {
	case ClassA:
		return "A"
	case ClassB:
		return "B"
	case ClassC:
		return "C"
	default:
		return fmt.Sprintf("Class?(%d)", int(c))
	}
}

// Class returns the coarse class of a severity sub-class.
func (s Severity) Class() Class {
	switch s {
	case SeverityA1, SeverityA2, SeverityA3:
		return ClassA
	case SeverityB1, SeverityB2:
		return ClassB
	default:
		return ClassC
	}
}

// Maneuver is one of the six recovery maneuvers of Table 1.
type Maneuver int

// Maneuvers in ascending priority order. Per §2.1.1, within class A,
// AS > CS > GS; TIE and TIE-E share class-B priority; TIE-N has the lowest.
const (
	TIEN Maneuver = iota + 1 // Take Immediate Exit - Normal
	TIE                      // Take Immediate Exit
	TIEE                     // Take Immediate Exit - Escorted
	GS                       // Gentle Stop
	CS                       // Crash Stop
	AS                       // Aided Stop
)

// AllManeuvers lists the maneuvers in ascending priority order.
func AllManeuvers() []Maneuver { return []Maneuver{TIEN, TIE, TIEE, GS, CS, AS} }

// Valid reports whether m is a defined maneuver.
func (m Maneuver) Valid() bool { return m >= TIEN && m <= AS }

// String returns the paper's maneuver abbreviation.
func (m Maneuver) String() string {
	switch m {
	case TIEN:
		return "TIE-N"
	case TIE:
		return "TIE"
	case TIEE:
		return "TIE-E"
	case GS:
		return "GS"
	case CS:
		return "CS"
	case AS:
		return "AS"
	default:
		return fmt.Sprintf("Maneuver?(%d)", int(m))
	}
}

// PriorityLevel returns the maneuver's priority for the refusal rule of
// §2.1.2. Higher is more urgent. TIE and TIE-E share a level because B1 and
// B2 have equal priority.
func (m Maneuver) PriorityLevel() int {
	switch m {
	case TIEN:
		return 1
	case TIE, TIEE:
		return 2
	case GS:
		return 3
	case CS:
		return 4
	case AS:
		return 5
	default:
		return 0
	}
}

// Severity returns the failure-mode severity of Table 1.
func (f FailureMode) Severity() Severity {
	switch f {
	case FM1:
		return SeverityA3
	case FM2:
		return SeverityA2
	case FM3:
		return SeverityA1
	case FM4:
		return SeverityB2
	case FM5:
		return SeverityB1
	default:
		return SeverityC
	}
}

// Class returns the failure mode's coarse severity class.
func (f FailureMode) Class() Class { return f.Severity().Class() }

// Maneuver returns the recovery maneuver associated with the failure mode
// in Table 1.
func (f FailureMode) Maneuver() Maneuver {
	switch f {
	case FM1:
		return AS
	case FM2:
		return CS
	case FM3:
		return GS
	case FM4:
		return TIEE
	case FM5:
		return TIE
	default:
		return TIEN
	}
}

// RateMultiplier returns the failure rate of the mode in units of the base
// rate λ (§4.1: λ6=4λ, λ5=3λ, λ4=λ3=λ2=2λ, λ1=λ).
func (f FailureMode) RateMultiplier() float64 {
	switch f {
	case FM1:
		return 1
	case FM2, FM3, FM4:
		return 2
	case FM5:
		return 3
	case FM6:
		return 4
	default:
		return 0
	}
}

// Escalate returns the more degraded failure mode the vehicle evolves to
// when its current maneuver fails (§2.1.2, Figure 2). The chain follows
// ascending maneuver priority: FM6→FM5→FM4→FM3→FM2→FM1. After FM1 (whose
// Aided Stop is the highest-priority maneuver), ok is false: the vehicle
// reaches v_KO and becomes a free agent.
func (f FailureMode) Escalate() (FailureMode, bool) {
	if f <= FM1 || !f.Valid() {
		return f, false
	}
	return f - 1, true
}

// ModeForManeuverLevel returns the least-degraded failure mode whose
// maneuver priority level is at least level, walking the escalation chain.
func ModeForManeuverLevel(f FailureMode, level int) FailureMode {
	for f.Maneuver().PriorityLevel() < level {
		next, ok := f.Escalate()
		if !ok {
			return f
		}
		f = next
	}
	return f
}

// ManeuverForMode implements the refusal rule of §2.1.2 on the maneuver
// alone: a vehicle with failure mode f whose natural maneuver is refused
// because a maneuver of priority floorLevel is already executing asks for
// maneuvers of increasing priority until one is accepted (equal priority is
// accepted). The failure mode itself — and hence its severity class — is
// unchanged by refusal; only actual maneuver failures degrade the mode.
//
// When the floor pushes a vehicle into class-B territory, FM4 keeps its
// escorted exit (TIE-E) and every other mode uses the unassisted TIE.
func ManeuverForMode(f FailureMode, floorLevel int) Maneuver {
	m := f.Maneuver()
	if m.PriorityLevel() >= floorLevel {
		return m
	}
	switch floorLevel {
	case 2:
		if f == FM4 {
			return TIEE
		}
		return TIE
	case 3:
		return GS
	case 4:
		return CS
	default:
		return AS
	}
}

// Situation identifies a catastrophic situation of Table 2.
type Situation int

// Catastrophic situations; SituationNone means the combination of active
// failures is survivable.
const (
	SituationNone Situation = iota
	ST1
	ST2
	ST3
)

// String names the situation.
func (s Situation) String() string {
	switch s {
	case ST1:
		return "ST1"
	case ST2:
		return "ST2"
	case ST3:
		return "ST3"
	default:
		return "none"
	}
}

// ClassifySituation evaluates Table 2 on the numbers of concurrently active
// class A, B and C failure modes and returns the first matching situation
// (ST1 before ST2 before ST3), or SituationNone.
func ClassifySituation(nA, nB, nC int) Situation {
	switch {
	case nA >= 2:
		return ST1
	case nA >= 1 && (nB >= 2 || (nB >= 1 && nC >= 1) || nC >= 3):
		return ST2
	case nB+nC >= 4:
		return ST3
	default:
		return SituationNone
	}
}

// Catastrophic reports whether the active failure counts form any of the
// catastrophic situations of Table 2.
func Catastrophic(nA, nB, nC int) bool {
	return ClassifySituation(nA, nB, nC) != SituationNone
}

// Coordination selects centralized or decentralized coordination (§2.2).
type Coordination int

// Coordination models.
const (
	Decentralized Coordination = iota + 1
	Centralized
)

// String returns "centralized" or "decentralized".
func (c Coordination) String() string {
	switch c {
	case Centralized:
		return "centralized"
	case Decentralized:
		return "decentralized"
	default:
		return fmt.Sprintf("Coordination?(%d)", int(c))
	}
}

// Strategy pairs the inter- and intra-platoon coordination models (Table 3).
type Strategy struct {
	Inter Coordination
	Intra Coordination
}

// The four strategies of Table 3.
var (
	DD = Strategy{Inter: Decentralized, Intra: Decentralized}
	DC = Strategy{Inter: Decentralized, Intra: Centralized}
	CD = Strategy{Inter: Centralized, Intra: Decentralized}
	CC = Strategy{Inter: Centralized, Intra: Centralized}
)

// AllStrategies lists the four strategies in Table 3 order.
func AllStrategies() []Strategy { return []Strategy{DD, DC, CD, CC} }

// String returns the paper's two-letter strategy code (inter then intra).
func (s Strategy) String() string {
	letter := func(c Coordination) string {
		if c == Centralized {
			return "C"
		}
		return "D"
	}
	return letter(s.Inter) + letter(s.Intra)
}

// ParseStrategy parses a two-letter code ("DD", "DC", "CD", "CC").
func ParseStrategy(code string) (Strategy, error) {
	if len(code) != 2 {
		return Strategy{}, fmt.Errorf("platoon: invalid strategy %q", code)
	}
	parse := func(b byte) (Coordination, error) {
		switch b {
		case 'D', 'd':
			return Decentralized, nil
		case 'C', 'c':
			return Centralized, nil
		default:
			return 0, fmt.Errorf("platoon: invalid coordination letter %q", string(b))
		}
	}
	inter, err := parse(code[0])
	if err != nil {
		return Strategy{}, err
	}
	intra, err := parse(code[1])
	if err != nil {
		return Strategy{}, err
	}
	return Strategy{Inter: inter, Intra: intra}, nil
}

// View is a read-only snapshot of the highway used to compute maneuver
// participants: the ordered vehicle ids of each lane's platoon (index 0 is
// the leader position) and each vehicle's health. The paper's case study
// has two lanes; the model extends to more, with lane 0 adjacent to the
// highway exits (the paper's "larger number of platoons" future work).
type View struct {
	// Platoons holds each lane's member ids in front-to-back order,
	// ordered by lane (lane 0 borders the exits).
	Platoons [][]int
	// Operational reports whether a vehicle currently has no active
	// failure mode. It must accept any id present in Platoons.
	Operational func(id int) bool
}

// Locate returns the platoon index and position of a vehicle, or ok=false.
func (v View) Locate(id int) (platoonIdx, pos int, ok bool) {
	for pi, members := range v.Platoons {
		for i, m := range members {
			if m == id {
				return pi, i, true
			}
		}
	}
	return 0, 0, false
}

// Leader returns the id in the leader position of platoon pi, or ok=false
// for an empty platoon. The leader is the front vehicle whether or not it
// is degraded; a degraded leader hampers coordination (its participation
// makes maneuvers more likely to fail) until it exits, and the next vehicle
// takes the position, which models the paper's leader re-election maneuvers.
func (v View) Leader(pi int) (int, bool) {
	if len(v.Platoons[pi]) == 0 {
		return 0, false
	}
	return v.Platoons[pi][0], true
}

// Participants returns the set of vehicles (other than the faulty vehicle
// itself) that must cooperate for the given maneuver under the given
// strategy, per §2.2.
//
// The exit maneuvers (TIE-N, TIE, TIE-E) take the faulty vehicle across or
// out of the highway and are inter-platoon coordinated (the Figure 3
// scenario: exits are arbitrated between lanes, through the road-side SAP
// when coordination is centralized):
//
//   - TIE-E centralized: all vehicles in front of the faulty vehicle
//     (including the leader), the vehicle just behind it, and the leader of
//     the neighbouring platoon — the paper's §2.2.1 example, verbatim.
//   - TIE-E decentralized: only the two platoon leaders and the vehicles
//     immediately in front of and behind the faulty vehicle — also §2.2.1.
//   - TIE / TIE-N with centralized inter: the physical split partners
//     (vehicle ahead and/or behind) plus both platoon leaders, through
//     which the SAP arbitrates the exit.
//   - TIE / TIE-N with decentralized inter: only the physical split
//     partners; the vehicle's onboard knowledge base replaces the SAP
//     round-trip. Centralized intra additionally involves the own platoon
//     leader, which calculates and orders the split (§2.2.2).
//
// The stop maneuvers (GS, CS, AS) keep the faulty vehicle in its lane and
// are intra-platoon coordinated: decentralized involves only the immediate
// neighbours of the split (the vehicle ahead for GS/AS — the AS stopper —
// and the vehicle behind in all cases); centralized adds the platoon
// leader, which calculates and orders the spacing changes (§2.2.2).
//
// When the faulty vehicle occupies the leader position, the "leader"
// participant is the vehicle that will take over the position (position 1).
// Referenced vehicles that do not exist (no vehicle ahead/behind, empty
// neighbouring platoon) are simply absent from the set. The returned ids
// are unique and in no particular order.
func Participants(v View, vehicle int, m Maneuver, s Strategy) ([]int, error) {
	if !m.Valid() {
		return nil, fmt.Errorf("platoon: invalid maneuver %d", int(m))
	}
	pi, pos, ok := v.Locate(vehicle)
	if !ok {
		return nil, fmt.Errorf("platoon: vehicle %d not in any platoon", vehicle)
	}
	members := v.Platoons[pi]
	// The neighbouring platoon is the one in the adjacent lane; exits lead
	// towards lane 0, so that side is preferred when both exist.
	var other []int
	switch {
	case pi > 0:
		other = v.Platoons[pi-1]
	case len(v.Platoons) > 1:
		other = v.Platoons[pi+1]
	}

	set := make(map[int]bool)
	addID := func(id int) {
		if id != vehicle {
			set[id] = true
		}
	}
	addAt := func(list []int, idx int) {
		if idx >= 0 && idx < len(list) {
			addID(list[idx])
		}
	}
	ownLeader := func() {
		// The faulty vehicle never counts as its own coordinator; if it
		// holds the leader position, the successor coordinates.
		if pos == 0 {
			addAt(members, 1)
		} else {
			addAt(members, 0)
		}
	}
	neighbourLeader := func() { addAt(other, 0) }
	ahead := func() { addAt(members, pos-1) }
	behind := func() { addAt(members, pos+1) }

	switch m {
	case TIEE:
		behind()
		neighbourLeader()
		if s.Inter == Centralized {
			for i := 0; i < pos; i++ {
				addAt(members, i)
			}
		} else {
			ahead()
			ownLeader()
		}
	case TIE, TIEN:
		if m == TIE {
			ahead()
		}
		behind()
		if s.Intra == Centralized {
			// §2.2.2: under centralized intra-platoon coordination the
			// leader calculates and orders the split that precedes the
			// faulty vehicle's exit.
			ownLeader()
		}
		if s.Inter == Centralized {
			ownLeader()
			neighbourLeader()
		}
	case GS, AS:
		ahead()
		behind()
		if s.Intra == Centralized {
			ownLeader()
		}
	case CS:
		behind()
		if s.Intra == Centralized {
			ownLeader()
		}
	}

	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out, nil
}

// DegradedParticipants returns how many of the maneuver's participants are
// currently not operational. Maneuver success probability decreases in this
// count (see internal/core), which is what couples nearby failures and makes
// larger coordination sets — i.e. centralized strategies — less safe.
func DegradedParticipants(v View, vehicle int, m Maneuver, s Strategy) (int, error) {
	parts, err := Participants(v, vehicle, m, s)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range parts {
		if !v.Operational(id) {
			n++
		}
	}
	return n, nil
}
