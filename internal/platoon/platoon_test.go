package platoon

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTable1Taxonomy(t *testing.T) {
	cases := []struct {
		fm   FailureMode
		sev  Severity
		cls  Class
		man  Maneuver
		mult float64
	}{
		{FM1, SeverityA3, ClassA, AS, 1},
		{FM2, SeverityA2, ClassA, CS, 2},
		{FM3, SeverityA1, ClassA, GS, 2},
		{FM4, SeverityB2, ClassB, TIEE, 2},
		{FM5, SeverityB1, ClassB, TIE, 3},
		{FM6, SeverityC, ClassC, TIEN, 4},
	}
	for _, c := range cases {
		if c.fm.Severity() != c.sev {
			t.Errorf("%v severity %v, want %v", c.fm, c.fm.Severity(), c.sev)
		}
		if c.fm.Class() != c.cls {
			t.Errorf("%v class %v, want %v", c.fm, c.fm.Class(), c.cls)
		}
		if c.fm.Maneuver() != c.man {
			t.Errorf("%v maneuver %v, want %v", c.fm, c.fm.Maneuver(), c.man)
		}
		if c.fm.RateMultiplier() != c.mult {
			t.Errorf("%v rate multiplier %v, want %v", c.fm, c.fm.RateMultiplier(), c.mult)
		}
		if !c.fm.Valid() {
			t.Errorf("%v must be valid", c.fm)
		}
	}
	if FailureMode(0).Valid() || FailureMode(7).Valid() {
		t.Error("out-of-range failure modes must be invalid")
	}
	if len(AllFailureModes()) != 6 {
		t.Error("AllFailureModes must list six modes")
	}
}

func TestManeuverPriorityOrdering(t *testing.T) {
	// §2.1.1: AS > CS > GS (class A); B1 = B2; C lowest.
	if !(AS.PriorityLevel() > CS.PriorityLevel()) {
		t.Error("AS must outrank CS")
	}
	if !(CS.PriorityLevel() > GS.PriorityLevel()) {
		t.Error("CS must outrank GS")
	}
	if !(GS.PriorityLevel() > TIE.PriorityLevel()) {
		t.Error("class A must outrank class B")
	}
	if TIE.PriorityLevel() != TIEE.PriorityLevel() {
		t.Error("TIE and TIE-E share priority (B1 = B2)")
	}
	if !(TIE.PriorityLevel() > TIEN.PriorityLevel()) {
		t.Error("class B must outrank class C")
	}
	if Maneuver(0).PriorityLevel() != 0 {
		t.Error("invalid maneuver must have level 0")
	}
}

func TestEscalationChain(t *testing.T) {
	// FM6 escalates stepwise to FM1, then terminates (v_KO).
	want := []FailureMode{FM5, FM4, FM3, FM2, FM1}
	f := FM6
	for _, w := range want {
		next, ok := f.Escalate()
		if !ok || next != w {
			t.Fatalf("escalate(%v) = %v,%v; want %v,true", f, next, ok, w)
		}
		f = next
	}
	if _, ok := FM1.Escalate(); ok {
		t.Fatal("FM1 must not escalate (v_KO)")
	}
}

func TestEscalationStrictlyIncreasesPriority(t *testing.T) {
	for _, f := range AllFailureModes() {
		next, ok := f.Escalate()
		if !ok {
			continue
		}
		if next.Maneuver().PriorityLevel() < f.Maneuver().PriorityLevel() {
			t.Errorf("escalation %v -> %v decreases maneuver priority", f, next)
		}
	}
}

func TestModeForManeuverLevel(t *testing.T) {
	// FM6 refused until class-A level 4 must escalate to FM2 (CS).
	got := ModeForManeuverLevel(FM6, CS.PriorityLevel())
	if got != FM2 {
		t.Fatalf("ModeForManeuverLevel(FM6, CS) = %v, want FM2", got)
	}
	// Already sufficient: unchanged.
	if got := ModeForManeuverLevel(FM1, 1); got != FM1 {
		t.Fatalf("FM1 at level 1 = %v", got)
	}
	// Level above AS: saturates at FM1.
	if got := ModeForManeuverLevel(FM6, 99); got != FM1 {
		t.Fatalf("saturation = %v, want FM1", got)
	}
	// TIE (B1, FM5) refused at level 2 stays: equal priority is accepted.
	if got := ModeForManeuverLevel(FM5, 2); got != FM5 {
		t.Fatalf("equal level must be accepted, got %v", got)
	}
}

func TestManeuverForMode(t *testing.T) {
	cases := []struct {
		fm    FailureMode
		floor int
		want  Maneuver
	}{
		{FM6, 0, TIEN}, // no refusal: natural maneuver
		{FM6, 1, TIEN}, // equal priority accepted
		{FM6, 2, TIE},  // pushed to class B: unassisted exit
		{FM4, 2, TIEE}, // FM4 keeps its escorted exit
		{FM6, 3, GS},   // pushed to class A
		{FM5, 4, CS},   //
		{FM6, 5, AS},   // top of the chain
		{FM1, 3, AS},   // natural already above the floor
		{FM3, 2, GS},   // natural GS outranks floor 2
		{FM4, 99, AS},  // floor saturates at AS
	}
	for _, c := range cases {
		if got := ManeuverForMode(c.fm, c.floor); got != c.want {
			t.Errorf("ManeuverForMode(%v, %d) = %v, want %v", c.fm, c.floor, got, c.want)
		}
	}
}

func TestManeuverForModeNeverBelowNatural(t *testing.T) {
	for _, f := range AllFailureModes() {
		for floor := 0; floor <= 6; floor++ {
			got := ManeuverForMode(f, floor)
			if got.PriorityLevel() < f.Maneuver().PriorityLevel() {
				t.Errorf("ManeuverForMode(%v, %d) = %v below natural %v", f, floor, got, f.Maneuver())
			}
			if floor <= 5 && got.PriorityLevel() < floor {
				t.Errorf("ManeuverForMode(%v, %d) = %v below floor", f, floor, got)
			}
		}
	}
}

func TestClassifySituationTable2(t *testing.T) {
	cases := []struct {
		nA, nB, nC int
		want       Situation
	}{
		{0, 0, 0, SituationNone},
		{1, 0, 0, SituationNone},
		{2, 0, 0, ST1},
		{3, 1, 1, ST1},
		{1, 2, 0, ST2},
		{1, 1, 1, ST2},
		{1, 0, 3, ST2},
		{1, 1, 0, SituationNone},
		{1, 0, 2, SituationNone},
		{0, 4, 0, ST3},
		{0, 2, 2, ST3},
		{0, 0, 4, ST3},
		{0, 3, 0, SituationNone},
		{0, 1, 2, SituationNone},
	}
	for _, c := range cases {
		got := ClassifySituation(c.nA, c.nB, c.nC)
		if got != c.want {
			t.Errorf("ClassifySituation(%d,%d,%d) = %v, want %v", c.nA, c.nB, c.nC, got, c.want)
		}
		if Catastrophic(c.nA, c.nB, c.nC) != (c.want != SituationNone) {
			t.Errorf("Catastrophic(%d,%d,%d) inconsistent with classification", c.nA, c.nB, c.nC)
		}
	}
}

func TestCatastrophicMonotoneProperty(t *testing.T) {
	// Adding failures can never make a catastrophic combination safe.
	f := func(a, b, c, da, db, dc uint8) bool {
		nA, nB, nC := int(a%4), int(b%6), int(c%6)
		if !Catastrophic(nA, nB, nC) {
			return true
		}
		return Catastrophic(nA+int(da%3), nB+int(db%3), nC+int(dc%3))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyCodes(t *testing.T) {
	if DD.String() != "DD" || DC.String() != "DC" || CD.String() != "CD" || CC.String() != "CC" {
		t.Fatalf("strategy codes: %v %v %v %v", DD, DC, CD, CC)
	}
	for _, code := range []string{"DD", "dc", "Cd", "CC"} {
		s, err := ParseStrategy(code)
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", code, err)
		}
		if len(AllStrategies()) != 4 {
			t.Fatal("AllStrategies must have 4 entries")
		}
		_ = s
	}
	for _, code := range []string{"", "D", "DDD", "XX", "D1"} {
		if _, err := ParseStrategy(code); err == nil {
			t.Errorf("ParseStrategy(%q) should fail", code)
		}
	}
	rt, err := ParseStrategy("CD")
	if err != nil || rt != CD {
		t.Fatalf("round trip CD got %v, %v", rt, err)
	}
}

// testView builds a View over two platoons where the given ids are degraded.
func testView(p1, p2 []int, degraded ...int) View {
	bad := make(map[int]bool, len(degraded))
	for _, id := range degraded {
		bad[id] = true
	}
	return View{
		Platoons:    [][]int{p1, p2},
		Operational: func(id int) bool { return !bad[id] },
	}
}

func sortedParticipants(t *testing.T, v View, vehicle int, m Maneuver, s Strategy) []int {
	t.Helper()
	got, err := Participants(v, vehicle, m, s)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	return got
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLocateAndLeader(t *testing.T) {
	v := testView([]int{10, 11, 12}, []int{20})
	pi, pos, ok := v.Locate(11)
	if !ok || pi != 0 || pos != 1 {
		t.Fatalf("Locate(11) = %d,%d,%v", pi, pos, ok)
	}
	if _, _, ok := v.Locate(99); ok {
		t.Fatal("Locate of absent vehicle must fail")
	}
	if l, ok := v.Leader(0); !ok || l != 10 {
		t.Fatalf("Leader(0) = %d,%v", l, ok)
	}
	empty := testView(nil, []int{20})
	if _, ok := empty.Leader(0); ok {
		t.Fatal("Leader of empty platoon must fail")
	}
}

func TestParticipantsTIEEMatchesPaper(t *testing.T) {
	// §2.2.1's explicit example. Platoon: 10(leader) 11 12(faulty) 13 14.
	// Neighbour platoon: 20(leader) 21.
	v := testView([]int{10, 11, 12, 13, 14}, []int{20, 21})

	// Centralized inter: all vehicles in front (incl. leader) + vehicle
	// behind + neighbouring leader.
	got := sortedParticipants(t, v, 12, TIEE, CD)
	want := []int{10, 11, 13, 20}
	if !equalInts(got, want) {
		t.Fatalf("centralized TIE-E participants %v, want %v", got, want)
	}

	// Decentralized inter: the two leaders + immediate front and back.
	got = sortedParticipants(t, v, 12, TIEE, DD)
	want = []int{10, 11, 13, 20}
	// For position 2 the vehicle ahead (11) plus leader (10): same as
	// centralized in this tiny case; use a longer platoon to discriminate.
	if !equalInts(got, want) {
		t.Fatalf("decentralized TIE-E participants %v, want %v", got, want)
	}

	// Faulty vehicle further back discriminates the strategies.
	v = testView([]int{10, 11, 12, 13, 14, 15}, []int{20, 21})
	gotC := sortedParticipants(t, v, 14, TIEE, CC)
	wantC := []int{10, 11, 12, 13, 15, 20}
	if !equalInts(gotC, wantC) {
		t.Fatalf("centralized TIE-E (deep) %v, want %v", gotC, wantC)
	}
	gotD := sortedParticipants(t, v, 14, TIEE, DD)
	wantD := []int{10, 13, 15, 20}
	if !equalInts(gotD, wantD) {
		t.Fatalf("decentralized TIE-E (deep) %v, want %v", gotD, wantD)
	}
	if len(gotC) <= len(gotD) {
		t.Fatal("centralized inter must involve more vehicles than decentralized")
	}
}

func TestParticipantsStopManeuversUseIntraStrategy(t *testing.T) {
	v := testView([]int{10, 11, 12, 13, 14}, []int{20})
	// CS (emergency stop): only the vehicle behind (plus leader if intra
	// is centralized).
	got := sortedParticipants(t, v, 12, CS, DD)
	if !equalInts(got, []int{13}) {
		t.Fatalf("DD CS participants %v", got)
	}
	got = sortedParticipants(t, v, 12, CS, DC)
	if !equalInts(got, []int{10, 13}) {
		t.Fatalf("DC CS participants %v", got)
	}
	// AS/GS: the vehicle immediately ahead cooperates (for AS it performs
	// the stop).
	got = sortedParticipants(t, v, 12, AS, DD)
	if !equalInts(got, []int{11, 13}) {
		t.Fatalf("DD AS participants %v", got)
	}
	got = sortedParticipants(t, v, 12, GS, DC)
	if !equalInts(got, []int{10, 11, 13}) {
		t.Fatalf("DC GS participants %v", got)
	}
	// Inter strategy is irrelevant for stops.
	if !equalInts(sortedParticipants(t, v, 12, CS, CD), sortedParticipants(t, v, 12, CS, DD)) {
		t.Fatal("CS participants must not depend on the inter strategy")
	}
}

func TestParticipantsExitManeuversUseInterStrategy(t *testing.T) {
	v := testView([]int{10, 11, 12, 13, 14}, []int{20, 21})
	// Decentralized inter: TIE involves only the physical split partners.
	got := sortedParticipants(t, v, 12, TIE, DD)
	if !equalInts(got, []int{11, 13}) {
		t.Fatalf("DD TIE participants %v", got)
	}
	// Centralized intra adds the own leader, who coordinates the split
	// (§2.2.2).
	got = sortedParticipants(t, v, 12, TIE, DC)
	if !equalInts(got, []int{10, 11, 13}) {
		t.Fatalf("DC TIE participants %v", got)
	}
	// Centralized inter: the SAP arbitration adds both platoon leaders.
	got = sortedParticipants(t, v, 12, TIE, CD)
	if !equalInts(got, []int{10, 11, 13, 20}) {
		t.Fatalf("CD TIE participants %v", got)
	}
	// TIE-N: no vehicle ahead is needed.
	got = sortedParticipants(t, v, 12, TIEN, DD)
	if !equalInts(got, []int{13}) {
		t.Fatalf("DD TIE-N participants %v", got)
	}
	got = sortedParticipants(t, v, 12, TIEN, CC)
	if !equalInts(got, []int{10, 13, 20}) {
		t.Fatalf("CC TIE-N participants %v", got)
	}
}

func TestParticipantsCentralizedSupersetProperty(t *testing.T) {
	// For every maneuver and position, the centralized participant set
	// contains the decentralized one — the structural reason centralized
	// coordination is less safe (§2.2.1, Figures 14/15).
	p1 := []int{10, 11, 12, 13, 14, 15}
	p2 := []int{20, 21, 22}
	v := testView(p1, p2)
	for _, vehicle := range p1 {
		for _, m := range AllManeuvers() {
			dec, err := Participants(v, vehicle, m, DD)
			if err != nil {
				t.Fatal(err)
			}
			cen, err := Participants(v, vehicle, m, CC)
			if err != nil {
				t.Fatal(err)
			}
			cenSet := make(map[int]bool, len(cen))
			for _, id := range cen {
				cenSet[id] = true
			}
			for _, id := range dec {
				if !cenSet[id] {
					t.Errorf("vehicle %d maneuver %v: decentralized participant %d missing from centralized set",
						vehicle, m, id)
				}
			}
		}
	}
}

func TestParticipantsExcludeSelfAndExist(t *testing.T) {
	p1 := []int{10, 11, 12}
	p2 := []int{20}
	v := testView(p1, p2)
	known := map[int]bool{10: true, 11: true, 12: true, 20: true}
	for _, vehicle := range p1 {
		for _, m := range AllManeuvers() {
			for _, s := range AllStrategies() {
				parts, err := Participants(v, vehicle, m, s)
				if err != nil {
					t.Fatal(err)
				}
				seen := map[int]bool{}
				for _, id := range parts {
					if id == vehicle {
						t.Fatalf("vehicle %d is its own participant for %v/%v", vehicle, m, s)
					}
					if !known[id] {
						t.Fatalf("participant %d does not exist", id)
					}
					if seen[id] {
						t.Fatalf("duplicate participant %d", id)
					}
					seen[id] = true
				}
			}
		}
	}
}

func TestParticipantsLeaderFaultUsesSuccessor(t *testing.T) {
	v := testView([]int{10, 11, 12}, []int{20})
	// Faulty leader: the would-be new leader (11) coordinates under
	// centralized intra.
	got := sortedParticipants(t, v, 10, CS, DC)
	if !equalInts(got, []int{11}) {
		t.Fatalf("leader-fault CS participants %v, want [11]", got)
	}
	// TIE-E by the leader, decentralized: successor + behind + neighbour
	// leader.
	got = sortedParticipants(t, v, 10, TIEE, DD)
	if !equalInts(got, []int{11, 20}) {
		t.Fatalf("leader-fault TIE-E participants %v, want [11 20]", got)
	}
}

func TestParticipantsEdgeSingletons(t *testing.T) {
	// A free agent (single-vehicle platoon) has no intra participants.
	v := testView([]int{10}, []int{20, 21})
	got := sortedParticipants(t, v, 10, AS, CC)
	if len(got) != 0 {
		t.Fatalf("free agent AS participants %v, want none", got)
	}
	// Its TIE-E still involves the neighbouring leader.
	got = sortedParticipants(t, v, 10, TIEE, DD)
	if !equalInts(got, []int{20}) {
		t.Fatalf("free agent TIE-E participants %v, want [20]", got)
	}
	// Empty neighbour platoon: no neighbour leader to involve.
	v = testView([]int{10, 11}, nil)
	got = sortedParticipants(t, v, 11, TIEE, CC)
	if !equalInts(got, []int{10}) {
		t.Fatalf("no-neighbour TIE-E participants %v, want [10]", got)
	}
}

func TestParticipantsErrors(t *testing.T) {
	v := testView([]int{10}, nil)
	if _, err := Participants(v, 99, TIE, DD); err == nil {
		t.Fatal("expected error for unknown vehicle")
	}
	if _, err := Participants(v, 10, Maneuver(0), DD); err == nil {
		t.Fatal("expected error for invalid maneuver")
	}
}

func TestDegradedParticipants(t *testing.T) {
	v := testView([]int{10, 11, 12, 13}, []int{20}, 11, 13)
	n, err := DegradedParticipants(v, 12, TIE, DD)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("degraded participants %d, want 2 (11 and 13)", n)
	}
	n, err = DegradedParticipants(v, 12, CS, DD)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("degraded participants %d, want 1 (13)", n)
	}
}

func TestStringMethods(t *testing.T) {
	if FM3.String() != "FM3" || FailureMode(9).String() == "FM9" {
		t.Error("FailureMode.String")
	}
	if SeverityA3.String() != "A3" || SeverityB1.String() != "B1" || SeverityC.String() != "C" {
		t.Error("Severity.String")
	}
	if ClassA.String() != "A" || ClassB.String() != "B" || ClassC.String() != "C" {
		t.Error("Class.String")
	}
	if TIEE.String() != "TIE-E" || AS.String() != "AS" {
		t.Error("Maneuver.String")
	}
	if Centralized.String() != "centralized" || Decentralized.String() != "decentralized" {
		t.Error("Coordination.String")
	}
	if ST1.String() != "ST1" || SituationNone.String() != "none" {
		t.Error("Situation.String")
	}
}
