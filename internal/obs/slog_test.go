package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestLogHandlerInjectsTraceFields(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "json")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(Config{})
	ctx, span := tr.Start(context.Background(), "submit")
	ctx = WithLogAttrs(ctx, slog.String("job", "j-1"))
	ctx = WithLogAttrs(ctx, slog.String("chunk", "3"))

	logger.InfoContext(ctx, "leased chunk", "worker", "w-1")
	span.End()

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.String())
	}
	sc := span.Context()
	if rec["trace_id"] != sc.TraceID.String() {
		t.Fatalf("trace_id = %v, want %s", rec["trace_id"], sc.TraceID)
	}
	if rec["span_id"] != sc.SpanID.String() {
		t.Fatalf("span_id = %v, want %s", rec["span_id"], sc.SpanID)
	}
	if rec["job"] != "j-1" || rec["chunk"] != "3" || rec["worker"] != "w-1" {
		t.Fatalf("log attrs = %v", rec)
	}
	if rec["msg"] != "leased chunk" {
		t.Fatalf("msg = %v", rec["msg"])
	}
}

func TestLogHandlerNoContextPassThrough(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "json")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("plain line")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := rec["trace_id"]; ok {
		t.Fatal("untraced line carries trace_id")
	}
}

func TestLogHandlerTextFormat(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "text")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(Config{})
	ctx, span := tr.Start(context.Background(), "root")
	logger.InfoContext(ctx, "hello")
	span.End()
	if !strings.Contains(buf.String(), "trace_id="+span.Context().TraceID.String()) {
		t.Fatalf("text line missing trace_id: %s", buf.String())
	}

	// Default format is text.
	if _, err := NewLogger(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLogger(&buf, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestLogHandlerWithAttrsAndGroup(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "json")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(Config{})
	ctx, span := tr.Start(context.Background(), "root")
	defer span.End()
	// WithAttrs/WithGroup must preserve the trace-aware wrapper.
	logger.With("component", "coordinator").WithGroup("g").InfoContext(ctx, "msg", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["component"] != "coordinator" {
		t.Fatalf("component missing: %v", rec)
	}
	g, _ := rec["g"].(map[string]any)
	if g == nil || g["k"] != "v" {
		t.Fatalf("group attrs = %v", rec)
	}
	// trace_id is added at Handle time, inside the open group — either
	// placement is fine as long as it is present somewhere.
	if _, ok := rec["trace_id"]; !ok {
		if _, ok := g["trace_id"]; !ok {
			t.Fatalf("trace_id missing entirely: %v", rec)
		}
	}
}

func TestLogfAdapter(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "json")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(Config{})
	ctx, span := tr.Start(context.Background(), "root")
	defer span.End()
	logf := Logf(ctx, logger)
	logf("worker %s drained %d leases", "w-1", 3)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["msg"] != "worker w-1 drained 3 leases" {
		t.Fatalf("msg = %v", rec["msg"])
	}
	if rec["trace_id"] != span.Context().TraceID.String() {
		t.Fatalf("logf line missing trace: %v", rec)
	}
}
