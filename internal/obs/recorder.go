package obs

import (
	"sort"
	"time"
)

// TraceData is one recorded trace: every span filed so far, sorted by
// start time (ties by span ID so the order is deterministic).
type TraceData struct {
	TraceID string     `json:"traceId"`
	Root    string     `json:"root,omitempty"`
	Start   time.Time  `json:"start"`
	Spans   []SpanData `json:"spans"`
	// Dropped counts spans lost to the per-trace cap.
	Dropped int `json:"dropped,omitempty"`
}

// TraceSummary is the listing row of GET /debug/traces.
type TraceSummary struct {
	TraceID string    `json:"traceId"`
	Root    string    `json:"root,omitempty"`
	Start   time.Time `json:"start"`
	Spans   int       `json:"spans"`
	Dropped int       `json:"dropped,omitempty"`
}

// Trace returns a copy of the recorded trace, or false if the ID is
// unknown (never sampled, or already evicted). Works on in-flight traces:
// spans that have not Ended yet are simply absent.
func (t *Tracer) Trace(id string) (TraceData, bool) {
	if t == nil {
		return TraceData{}, false
	}
	t.mu.Lock()
	var key TraceID
	found := false
	for tid := range t.traces {
		if tid.String() == id {
			key, found = tid, true
			break
		}
	}
	if !found {
		t.mu.Unlock()
		return TraceData{}, false
	}
	buf := t.traces[key]
	td := TraceData{
		TraceID: key.String(),
		Root:    buf.root,
		Start:   buf.start,
		Spans:   append([]SpanData(nil), buf.spans...),
		Dropped: buf.dropped,
	}
	t.mu.Unlock()
	sort.SliceStable(td.Spans, func(i, j int) bool {
		if !td.Spans[i].Start.Equal(td.Spans[j].Start) {
			return td.Spans[i].Start.Before(td.Spans[j].Start)
		}
		return td.Spans[i].SpanID < td.Spans[j].SpanID
	})
	return td, true
}

// Traces lists the recorded traces, newest first.
func (t *Tracer) Traces() []TraceSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSummary, 0, len(t.order))
	for i := len(t.order) - 1; i >= 0; i-- {
		id := t.order[i]
		buf, ok := t.traces[id]
		if !ok {
			continue
		}
		out = append(out, TraceSummary{
			TraceID: id.String(),
			Root:    buf.root,
			Start:   buf.start,
			Spans:   len(buf.spans),
			Dropped: buf.dropped,
		})
	}
	return out
}
