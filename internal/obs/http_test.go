package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ahs/internal/trace"
)

func TestMiddlewareAndTransportPropagate(t *testing.T) {
	// Two "processes", each with its own tracer, joined by the traceparent
	// header: client starts a span, Transport stamps the request, server
	// Middleware adopts the remote context.
	serverTr := NewTracer(Config{})
	var serverTrace string
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serverTrace = TraceIDFromContext(r.Context())
		AddEvent(r.Context(), "handled")
		w.WriteHeader(http.StatusAccepted)
	})
	srv := httptest.NewServer(Middleware(serverTr, "POST /cluster/v1/complete", inner))
	defer srv.Close()

	clientTr := NewTracer(Config{})
	ctx, span := clientTr.Start(context.Background(), "chunk")
	client := &http.Client{Transport: Transport(nil)}
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL, nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	span.End()

	want := span.Context().TraceID.String()
	if serverTrace != want {
		t.Fatalf("server saw trace %q, want %q", serverTrace, want)
	}
	// The server recorded its span under the client's trace ID.
	td, ok := serverTr.Trace(want)
	if !ok || len(td.Spans) != 1 {
		t.Fatalf("server trace = %+v ok=%v", td, ok)
	}
	sd := td.Spans[0]
	if sd.Name != "POST /cluster/v1/complete" {
		t.Fatalf("server span name = %q", sd.Name)
	}
	if sd.Parent != span.Context().SpanID.String() {
		t.Fatal("server span not parented to client span")
	}
	var status, method string
	for _, a := range sd.Attrs {
		switch a.Key {
		case "http.status":
			status = a.Value
		case "http.method":
			method = a.Value
		}
	}
	if status != "202" || method != "POST" {
		t.Fatalf("server span attrs = %+v", sd.Attrs)
	}
	if len(sd.Events) != 1 || sd.Events[0].Name != "handled" {
		t.Fatalf("server span events = %+v", sd.Events)
	}
}

func TestMiddlewareAccessLog(t *testing.T) {
	// With Config.Logger set, every request emits one access line logged
	// under the traced context, so the trace-aware handler stamps it with
	// the same trace_id the recorder files the server span under.
	var buf strings.Builder
	logger, err := NewLogger(&buf, "json")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(Config{Logger: logger})
	h := Middleware(tr, "GET /v1/jobs/{id}", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/job-1", nil))

	var line struct {
		Msg     string `json:"msg"`
		Method  string `json:"method"`
		Route   string `json:"route"`
		Status  int    `json:"status"`
		TraceID string `json:"trace_id"`
		SpanID  string `json:"span_id"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &line); err != nil {
		t.Fatalf("access line not JSON: %v\n%s", err, buf.String())
	}
	if line.Msg != "http request" || line.Method != "GET" || line.Route != "GET /v1/jobs/{id}" || line.Status != 200 {
		t.Fatalf("access line = %+v", line)
	}
	if line.TraceID == "" || line.SpanID == "" {
		t.Fatalf("access line missing trace correlation: %+v", line)
	}
	if _, ok := tr.Trace(line.TraceID); !ok {
		t.Fatalf("access line trace_id %q not in recorder", line.TraceID)
	}
}

func TestMiddlewareNilTracerPassThrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if TraceIDFromContext(r.Context()) != "" {
			t.Error("nil-tracer middleware injected a trace")
		}
	})
	h := Middleware(nil, "GET /x", inner)
	// Must be the same handler, not a wrapper.
	if _, ok := h.(http.HandlerFunc); !ok {
		t.Fatal("nil tracer should return next unchanged")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
}

func TestTransportSkipsUntracedRequests(t *testing.T) {
	var gotHeader string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader = r.Header.Get(TraceParentHeader)
	}))
	defer srv.Close()
	client := &http.Client{Transport: Transport(nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gotHeader != "" {
		t.Fatalf("untraced request carried traceparent %q", gotHeader)
	}
}

func TestDebugHandler(t *testing.T) {
	tr := NewTracer(Config{})
	ctx, root := tr.Start(context.Background(), "job")
	_, c := tr.Start(ctx, "chunk")
	c.End()
	root.End()
	id := root.Context().TraceID.String()

	h := DebugHandler(tr, "/debug/traces")

	// Listing.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	var sums []TraceSummary
	if err := json.NewDecoder(rec.Body).Decode(&sums); err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0].TraceID != id || sums[0].Spans != 2 {
		t.Fatalf("listing = %+v", sums)
	}

	// One trace, JSON form.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/"+id, nil))
	var td TraceData
	if err := json.NewDecoder(rec.Body).Decode(&td); err != nil {
		t.Fatal(err)
	}
	if td.TraceID != id || len(td.Spans) != 2 {
		t.Fatalf("trace body = %+v", td)
	}

	// Chrome form validates.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/"+id+"?format=chrome", nil))
	if err := trace.ValidateChromeTrace(rec.Body); err != nil {
		t.Fatalf("chrome export: %v", err)
	}

	// Unknown ID.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/ffff", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d", rec.Code)
	}

	// Wrong method.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/traces", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d", rec.Code)
	}

	// Disabled tracing.
	rec = httptest.NewRecorder()
	DebugHandler(nil, "/debug/traces").ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("nil tracer listing: status %d", rec.Code)
	}
}

func TestServeTraceBody(t *testing.T) {
	tr := NewTracer(Config{})
	_, root := tr.Start(context.Background(), "job")
	root.End()
	id := root.Context().TraceID.String()
	rec := httptest.NewRecorder()
	ServeTrace(tr, id)(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/x/trace", nil))
	if !strings.Contains(rec.Body.String(), id) {
		t.Fatalf("trace body missing ID: %s", rec.Body.String())
	}
}
