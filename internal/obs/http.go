package obs

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Middleware wraps an HTTP handler in a server span named after route,
// extracting an inbound traceparent header so cross-process traces stay
// joined. When the tracer's Config.Logger is set, every request also emits
// one access line logged under the traced context, so the trace-aware
// LogHandler stamps it with trace_id/span_id. With a nil tracer it returns
// next unchanged, so mounting code never branches on whether tracing is
// configured.
func Middleware(t *Tracer, route string, next http.Handler) http.Handler {
	if t == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if tp := r.Header.Get(TraceParentHeader); tp != "" {
			if sc, err := ParseTraceParent(tp); err == nil {
				ctx = ContextWithRemote(ctx, t, sc)
			}
		}
		ctx, span := t.Start(ctx, route,
			String("http.method", r.Method),
			String("http.path", r.URL.Path),
		)
		defer span.End()
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		span.SetAttr("http.status", strconv.Itoa(status))
		if lg := t.cfg.Logger; lg != nil {
			lg.LogAttrs(ctx, slog.LevelInfo, "http request",
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.Int("status", status),
				slog.Duration("duration", time.Since(start)),
			)
		}
	})
}

// statusWriter captures the response status for the server span.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the wrapped writer so http.ResponseController reaches
// the underlying Flusher/deadline methods through the middleware —
// without it, streaming handlers (SSE) cannot flush on traced routes.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Transport returns a RoundTripper that stamps outgoing requests with the
// traceparent of the active span (or remote link) in the request context.
// A nil next uses http.DefaultTransport.
func Transport(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return transport{next: next}
}

type transport struct{ next http.RoundTripper }

func (t transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if sc, ok := ContextSpanContext(req.Context()); ok && sc.Sampled {
		// Per RoundTripper contract the request must not be mutated;
		// shallow-clone with a copied header map.
		clone := req.Clone(req.Context())
		clone.Header.Set(TraceParentHeader, sc.TraceParent())
		req = clone
	}
	return t.next.RoundTrip(req)
}

// DebugHandler serves the recorder over HTTP:
//
//	GET <prefix>          — JSON list of recorded traces, newest first
//	GET <prefix>/{id}     — one trace as a JSON span log or Chrome trace
//	                        (?format=chrome for Perfetto)
//
// Mount it at /debug/traces. A nil tracer serves 404s.
func DebugHandler(t *Tracer, prefix string) http.Handler {
	prefix = strings.TrimSuffix(prefix, "/")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rest := strings.Trim(strings.TrimPrefix(r.URL.Path, prefix), "/")
		if rest == "" {
			if t == nil {
				http.Error(w, "tracing disabled", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(t.Traces())
			return
		}
		ServeTrace(t, rest)(w, r)
	})
}

// ServeTrace returns a handler serving one recorded trace by hex ID:
// JSON TraceData by default, Chrome-trace JSON with ?format=chrome. It
// backs both /debug/traces/{id} and the service's /v1/jobs/{id}/trace.
func ServeTrace(t *Tracer, id string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		td, ok := t.Trace(id)
		if !ok {
			http.Error(w, "trace not found (unsampled, evicted, or tracing disabled)", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			if err := WriteChromeTrace(w, td); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(td)
	}
}
