// Package obs is the stdlib-only distributed-tracing and structured-logging
// layer of the evaluation stack. It gives every submission one trace: a tree
// of spans (trace ID, span ID, parent, wall-clock interval, attributes,
// events) carried through context.Context inside a process and as a
// W3C-style `traceparent` header across HTTP hops — service API, cluster
// pull protocol, worker health probes — so a single sweep submission can be
// followed through expansion, dedup, chunk leases and requeues, journal
// adoption, fault injection and merge.
//
// Design constraints, in order:
//
//   - The disabled path costs nothing. obs.Start on a context with no
//     tracer is one context lookup, no allocation, and every method of the
//     returned nil *Span is a nil-check (benchmarked in bench_test.go).
//   - Overhead is bounded. Head sampling decides at the root whether a
//     trace records at all, a hard per-trace span cap stops runaway trees,
//     and finished traces live in a fixed-size ring (oldest evicted).
//   - Everything is observable through the existing surfaces: spans export
//     through the internal/trace Chrome-trace writer (viewable in
//     Perfetto) and a JSON span log; counts surface as ahs_trace_*
//     telemetry families; trace/span IDs ride on log/slog lines via
//     LogHandler.
//
// The package is deliberately not OpenTelemetry: no external deps, no
// exporters, no globals. A Tracer is plumbed explicitly (service manager,
// cluster coordinator, worker) and shared via contexts.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"ahs/internal/telemetry"
)

// TraceID identifies one end-to-end trace (16 bytes, hex on the wire).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, hex on the wire).
type SpanID [8]byte

// String renders the ID as lowercase hex.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as lowercase hex.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports an all-zero (invalid) trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports an all-zero (invalid) span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// SpanContext is the propagated identity of a span: enough to parent remote
// children and to correlate log lines, no more.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled reports whether the trace records spans. Unsampled contexts
	// still correlate logs but children are not recorded.
	Sampled bool
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Attr is one key/value attribute on a span or event. Values are strings;
// callers format numbers themselves (this keeps the hot path allocation
// behavior obvious).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds an Attr.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Event is a point-in-time annotation on a span (a fault injection, a
// requeue decision, a cache verdict).
type Event struct {
	Time  time.Time `json:"time"`
	Name  string    `json:"name"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Config tunes a Tracer. The zero value records everything with bounded
// buffers.
type Config struct {
	// SampleEvery head-samples root spans: every Nth root starts a
	// recorded trace (1 = record all, the default). Sampling is decided
	// once at the root; children inherit the decision, so a trace is
	// always complete or absent, never ragged.
	SampleEvery int
	// MaxTraces bounds the finished-trace ring (default 256); the oldest
	// trace is evicted when a new one starts past the cap.
	MaxTraces int
	// MaxSpans caps recorded spans per trace (default 512). Spans ended
	// past the cap are counted as dropped, not recorded.
	MaxSpans int
	// Telemetry, when non-nil, receives the ahs_trace_* families.
	Telemetry *telemetry.Registry
	// Logger, when non-nil, receives one access line per request served
	// through Middleware, logged under the request's traced context so a
	// LogHandler-wrapped logger stamps it with trace_id/span_id.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	if c.MaxTraces <= 0 {
		c.MaxTraces = 256
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 512
	}
	return c
}

// Tracer creates spans and records finished ones in a bounded in-memory
// ring, served by cmd/ahs-serve at GET /debug/traces. All methods are safe
// for concurrent use. A nil *Tracer is valid and records nothing.
type Tracer struct {
	cfg  Config
	seq  atomic.Uint64 // root-span counter driving head sampling
	mets *traceMetrics

	mu     sync.Mutex
	traces map[TraceID]*traceBuf
	order  []TraceID // insertion order, for ring eviction
}

// traceBuf accumulates the recorded spans of one trace.
type traceBuf struct {
	start   time.Time
	root    string // root span name, filled when the root ends
	spans   []SpanData
	dropped int
}

// NewTracer builds a tracer from cfg.
func NewTracer(cfg Config) *Tracer {
	t := &Tracer{
		cfg:    cfg.withDefaults(),
		traces: make(map[TraceID]*traceBuf),
	}
	t.mets = newTraceMetrics(t.cfg.Telemetry, t)
	return t
}

// ids fills a fresh random trace ID and/or span ID. Randomness is
// deliberately not internal/rng: IDs must be unique across processes, not
// reproducible — the same reason cluster worker IDs use crypto/rand.
func randomIDs(trace *TraceID, span *SpanID) {
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the OS entropy source is gone; fall
		// back to a time-derived ID rather than panicking mid-request.
		binary.LittleEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
		binary.LittleEndian.PutUint64(b[8:16], uint64(time.Now().UnixNano())>>1|1)
		binary.LittleEndian.PutUint64(b[16:24], uint64(time.Now().UnixNano())<<1|1)
	}
	if trace != nil {
		copy(trace[:], b[:16])
	}
	if span != nil {
		copy(span[:], b[16:24])
		if span.IsZero() {
			span[7] = 1
		}
	}
	if trace != nil && trace.IsZero() {
		trace[15] = 1
	}
}

// Start begins a span. If ctx already carries a span (local or remote
// link), the new span is its child in the same trace; otherwise it is the
// root of a new trace, subject to the head-sampling decision. The returned
// context carries the span; the returned *Span is nil when the trace is
// unsampled (all its methods are no-ops). Call End exactly once.
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return Start(ctx, name, attrs...)
	}
	if parent := SpanFromContext(ctx); parent != nil {
		return parent.startChild(ctx, name, attrs)
	}
	if link, ok := linkFromContext(ctx); ok && link.Valid() {
		if !link.Sampled {
			return ctx, nil
		}
		s := t.newSpan(link.TraceID, link.SpanID, name, attrs)
		return ContextWithSpan(ctx, s), s
	}
	// Root: head-sampling decision. An unsampled root still stamps the
	// context with an unsampled identity so log lines correlate and
	// descendants don't masquerade as fresh roots.
	var traceID TraceID
	if (t.seq.Add(1)-1)%uint64(t.cfg.SampleEvery) != 0 {
		var sc SpanContext
		randomIDs(&sc.TraceID, &sc.SpanID)
		return ContextWithRemote(ctx, t, sc), nil
	}
	randomIDs(&traceID, nil)
	s := t.newSpan(traceID, SpanID{}, name, attrs)
	t.mets.sampled()
	return ContextWithSpan(ctx, s), s
}

// newSpan allocates a live span in the given trace.
func (t *Tracer) newSpan(traceID TraceID, parent SpanID, name string, attrs []Attr) *Span {
	s := &Span{
		tracer: t,
		sc:     SpanContext{TraceID: traceID, Sampled: true},
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
	randomIDs(nil, &s.sc.SpanID)
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	return s
}

// record files one finished span into its trace buffer, creating the
// buffer on first use and evicting the oldest trace past the ring cap.
func (t *Tracer) record(sd SpanData, traceID TraceID, start time.Time, root bool, name string) {
	evictions, droppedSpan, recorded := 0, false, false
	t.mu.Lock()
	buf, ok := t.traces[traceID]
	if !ok {
		buf = &traceBuf{start: start}
		t.traces[traceID] = buf
		t.order = append(t.order, traceID)
		for len(t.order) > t.cfg.MaxTraces {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
			evictions++
		}
	}
	if root {
		buf.root = name
	}
	if buf.start.After(start) {
		buf.start = start
	}
	if len(buf.spans) >= t.cfg.MaxSpans {
		buf.dropped++
		droppedSpan = true
	} else {
		buf.spans = append(buf.spans, sd)
		recorded = true
	}
	t.mu.Unlock()

	for i := 0; i < evictions; i++ {
		t.mets.evicted()
	}
	if droppedSpan {
		t.mets.dropped()
	}
	if recorded {
		t.mets.recorded()
	}
}

// traceMetrics holds the ahs_trace_* families; nil (no registry) disables
// recording.
type traceMetrics struct {
	spansC   *telemetry.Counter
	droppedC *telemetry.Counter
	sampledC *telemetry.Counter
	evictedC *telemetry.Counter
}

func newTraceMetrics(reg *telemetry.Registry, t *Tracer) *traceMetrics {
	if reg == nil {
		return nil
	}
	m := &traceMetrics{
		spansC: reg.Counter(telemetry.Opts{
			Name: "ahs_trace_spans_total",
			Help: "Spans recorded by the tracer.",
		}),
		droppedC: reg.Counter(telemetry.Opts{
			Name: "ahs_trace_spans_dropped_total",
			Help: "Spans dropped by the per-trace span cap.",
		}),
		sampledC: reg.Counter(telemetry.Opts{
			Name: "ahs_trace_traces_sampled_total",
			Help: "Root spans admitted by head sampling.",
		}),
		evictedC: reg.Counter(telemetry.Opts{
			Name: "ahs_trace_traces_evicted_total",
			Help: "Finished traces evicted from the recorder ring.",
		}),
	}
	reg.GaugeFunc(telemetry.Opts{
		Name: "ahs_trace_traces_held",
		Help: "Traces currently held in the recorder ring.",
	}, func() float64 {
		t.mu.Lock()
		defer t.mu.Unlock()
		return float64(len(t.traces))
	})
	return m
}

func (m *traceMetrics) recorded() {
	if m != nil {
		m.spansC.Inc()
	}
}
func (m *traceMetrics) dropped() {
	if m != nil {
		m.droppedC.Inc()
	}
}
func (m *traceMetrics) sampled() {
	if m != nil {
		m.sampledC.Inc()
	}
}
func (m *traceMetrics) evicted() {
	if m != nil {
		m.evictedC.Inc()
	}
}
