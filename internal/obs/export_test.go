package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"ahs/internal/trace"
)

// buildTrace records a small three-span trace with an event and an error.
func buildTrace(t *testing.T) (*Tracer, TraceData) {
	t.Helper()
	tr := NewTracer(Config{})
	ctx, root := tr.Start(context.Background(), "evaluate", String("job", "j1"))
	cctx, lease := tr.Start(ctx, "lease", String("chunk", "0"))
	lease.Event("fault", String("mode", "drop-request"))
	lease.End()
	_, merge := tr.Start(cctx, "merge")
	merge.RecordError(errors.New("partial"))
	merge.End()
	root.End()
	td, ok := tr.Trace(root.Context().TraceID.String())
	if !ok {
		t.Fatal("trace missing")
	}
	return tr, td
}

func TestWriteChromeTraceValidates(t *testing.T) {
	_, td := buildTrace(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, td); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exported trace does not validate: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		`"evaluate"`, `"lease"`, `"merge"`,
		`"attr.job"`, `"event.fault"`, `"error"`,
		td.TraceID,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome export missing %s", want)
		}
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, TraceData{TraceID: "deadbeef"})
	if err != nil {
		t.Fatal(err)
	}
	// An empty trace still emits the process metadata event and validates.
	if err := trace.ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("empty export does not validate: %v", err)
	}
}

func TestWriteSpanLog(t *testing.T) {
	_, td := buildTrace(t)
	var buf bytes.Buffer
	if err := WriteSpanLog(&buf, td); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("span log has %d lines, want 3", len(lines))
	}
	for _, line := range lines {
		var sd SpanData
		if err := json.Unmarshal([]byte(line), &sd); err != nil {
			t.Fatalf("span log line %q: %v", line, err)
		}
		if sd.TraceID != td.TraceID {
			t.Fatalf("span log line carries trace %q, want %q", sd.TraceID, td.TraceID)
		}
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 1: "1", 9: "9", 10: "10", 123: "123", 99999: "99999"}
	for n, want := range cases {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d) = %q, want %q", n, got, want)
		}
	}
}
