package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// ctxKeyLogAttrs carries extra slog attributes (job, chunk, worker IDs)
// attached to a context with WithLogAttrs.
type ctxKeyLogAttrs struct{}

// WithLogAttrs returns a context whose log lines (through LogHandler) carry
// the given attributes in addition to any from the parent context.
func WithLogAttrs(ctx context.Context, attrs ...slog.Attr) context.Context {
	if len(attrs) == 0 {
		return ctx
	}
	prev, _ := ctx.Value(ctxKeyLogAttrs{}).([]slog.Attr)
	merged := make([]slog.Attr, 0, len(prev)+len(attrs))
	merged = append(merged, prev...)
	merged = append(merged, attrs...)
	return context.WithValue(ctx, ctxKeyLogAttrs{}, merged)
}

// LogHandler wraps a slog.Handler so every record logged with a context
// carries trace_id and span_id from the active span (or remote link) plus
// any WithLogAttrs attributes. Lines logged without trace context pass
// through untouched.
type LogHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps inner with context-aware trace/job attribute
// injection.
func NewLogHandler(inner slog.Handler) *LogHandler {
	return &LogHandler{inner: inner}
}

func (h *LogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *LogHandler) Handle(ctx context.Context, rec slog.Record) error {
	if ctx != nil {
		if sc, ok := ContextSpanContext(ctx); ok {
			rec.AddAttrs(
				slog.String("trace_id", sc.TraceID.String()),
				slog.String("span_id", sc.SpanID.String()),
			)
		}
		if attrs, ok := ctx.Value(ctxKeyLogAttrs{}).([]slog.Attr); ok {
			rec.AddAttrs(attrs...)
		}
	}
	return h.inner.Handle(ctx, rec)
}

func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &LogHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *LogHandler) WithGroup(name string) slog.Handler {
	return &LogHandler{inner: h.inner.WithGroup(name)}
}

// NewLogger builds the binaries' logger for the -log-format flag: "text"
// (default, human-readable) or "json" (one object per line for log
// shippers), both wrapped in the trace-aware LogHandler.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	var inner slog.Handler
	switch format {
	case "", "text":
		inner = slog.NewTextHandler(w, nil)
	case "json":
		inner = slog.NewJSONHandler(w, nil)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(NewLogHandler(inner)), nil
}

// Logf adapts a context-bound slog.Logger to the Logf func(format, args...)
// hooks used across the cluster package, preserving trace and job fields
// captured in ctx at adaptation time.
func Logf(ctx context.Context, logger *slog.Logger) func(format string, args ...any) {
	return func(format string, args ...any) {
		logger.InfoContext(ctx, fmt.Sprintf(format, args...))
	}
}
