package obs

import (
	"context"
	"testing"
)

// BenchmarkStartDisabled measures the no-tracer path every request pays when
// tracing is off: obs.Start on a bare context. The acceptance bar for the
// observability layer is that this is a context lookup and nothing else —
// zero allocations.
func BenchmarkStartDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := Start(ctx, "noop")
		s.SetAttr("k", "v")
		s.Event("e")
		s.End()
	}
}

// BenchmarkStartUnsampled measures a tracer that head-samples this root out:
// the cost of the sampling decision without recording.
func BenchmarkStartUnsampled(b *testing.B) {
	tr := NewTracer(Config{SampleEvery: 1 << 30})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := tr.Start(ctx, "root")
		s.End()
	}
}

// BenchmarkStartSampled is the recorded path: root span created, filed, and
// ring-managed. This is the price of -trace-sample=1.
func BenchmarkStartSampled(b *testing.B) {
	tr := NewTracer(Config{MaxTraces: 64})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := tr.Start(ctx, "root")
		s.End()
	}
}

// BenchmarkChildSpan measures adding one child to a live trace — the
// per-chunk cost inside a sampled job.
func BenchmarkChildSpan(b *testing.B) {
	tr := NewTracer(Config{MaxSpans: 1 << 30})
	ctx, root := tr.Start(context.Background(), "job")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, s := tr.Start(ctx, "chunk")
		s.End()
	}
}

// BenchmarkAddEventDisabled is the no-op cost of annotating without a span
// in context (fault-injection sites pay this on every request when tracing
// is off).
func BenchmarkAddEventDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AddEvent(ctx, "fault", String("mode", "delay"))
	}
}
