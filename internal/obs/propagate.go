package obs

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceParentHeader is the HTTP header carrying the trace context across
// hops, in the W3C Trace Context format.
const TraceParentHeader = "traceparent"

// TraceParent renders the context in the W3C traceparent format:
// version "00", 32 hex trace-id, 16 hex parent-id, 2 hex flags (bit 0 =
// sampled). Invalid contexts render as "".
func (sc SpanContext) TraceParent() string {
	if !sc.Valid() {
		return ""
	}
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceParent parses a W3C traceparent value. Unknown versions are
// accepted if the fixed-width 00-version layout holds (per the spec,
// forward compatibility); all-zero trace or span IDs are rejected.
func ParseTraceParent(s string) (SpanContext, error) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: want version-traceid-spanid-flags", s)
	}
	if len(parts[0]) != 2 {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: bad version field", s)
	}
	if parts[0] == "ff" {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: forbidden version ff", s)
	}
	var sc SpanContext
	if len(parts[1]) != 2*len(sc.TraceID) {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: trace ID must be %d hex chars", s, 2*len(sc.TraceID))
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(parts[1])); err != nil {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: trace ID: %w", s, err)
	}
	if len(parts[2]) != 2*len(sc.SpanID) {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: span ID must be %d hex chars", s, 2*len(sc.SpanID))
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(parts[2])); err != nil {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: span ID: %w", s, err)
	}
	if len(parts[3]) != 2 {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: bad flags field", s)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(parts[3])); err != nil {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: flags: %w", s, err)
	}
	sc.Sampled = flags[0]&1 == 1
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: all-zero trace or span ID", s)
	}
	return sc, nil
}
