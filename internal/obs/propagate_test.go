package obs

import (
	"strings"
	"testing"
)

func TestTraceParentRoundTrip(t *testing.T) {
	var sc SpanContext
	randomIDs(&sc.TraceID, &sc.SpanID)
	sc.Sampled = true

	tp := sc.TraceParent()
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent %q missing version/flags framing", tp)
	}
	got, err := ParseTraceParent(tp)
	if err != nil {
		t.Fatal(err)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v, want %+v", got, sc)
	}

	sc.Sampled = false
	got, err = ParseTraceParent(sc.TraceParent())
	if err != nil {
		t.Fatal(err)
	}
	if got.Sampled {
		t.Fatal("flags 00 parsed as sampled")
	}
}

func TestTraceParentInvalid(t *testing.T) {
	if got := (SpanContext{}).TraceParent(); got != "" {
		t.Fatalf("invalid context rendered %q", got)
	}
	cases := map[string]string{
		"empty":          "",
		"too few parts":  "00-abc",
		"bad version":    "0-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"version ff":     "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"short trace":    "00-0af7651916cd43dd-b7ad6b7169203331-01",
		"non-hex trace":  "00-0af7651916cd43dd8448eb211c8031zz-b7ad6b7169203331-01",
		"short span":     "00-0af7651916cd43dd8448eb211c80319c-b7ad-01",
		"non-hex span":   "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033zz-01",
		"bad flags":      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-1",
		"non-hex flags":  "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz",
		"all-zero trace": "00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"all-zero span":  "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
	}
	for name, in := range cases {
		if _, err := ParseTraceParent(in); err == nil {
			t.Errorf("%s: ParseTraceParent(%q) accepted", name, in)
		}
	}
}

func TestTraceParentForwardCompatible(t *testing.T) {
	// Future versions may append extra dash-separated fields; the fixed
	// prefix must still parse (W3C forward-compatibility rule).
	in := "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extrafield"
	sc, err := ParseTraceParent(in)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Valid() || !sc.Sampled {
		t.Fatalf("parsed %+v", sc)
	}
}
