package obs

import (
	"encoding/json"
	"io"

	"ahs/internal/trace"
)

// WriteChromeTrace exports one recorded trace through the shared
// Chrome-trace/Perfetto writer: every span becomes a complete ("X") event
// on the track of its span name, timestamped in microseconds relative to
// the trace start, with trace/span/parent IDs, attributes, events and the
// error outcome in the Perfetto args pane. The output passes
// trace.ValidateChromeTrace.
func WriteChromeTrace(w io.Writer, td TraceData) error {
	spans := make([]trace.ChromeSpan, 0, len(td.Spans))
	for _, sd := range td.Spans {
		args := map[string]any{
			"traceId": sd.TraceID,
			"spanId":  sd.SpanID,
		}
		if sd.Parent != "" {
			args["parent"] = sd.Parent
		}
		if sd.Error != "" {
			args["error"] = sd.Error
		}
		for _, a := range sd.Attrs {
			args["attr."+a.Key] = a.Value
		}
		for i, ev := range sd.Events {
			key := "event." + ev.Name
			if i > 0 {
				// Perfetto args are a flat map; disambiguate repeats.
				key = key + "#" + itoa(i)
			}
			args[key] = ev.Time.Sub(td.Start).String()
		}
		start := sd.Start.Sub(td.Start).Seconds() * 1e6
		end := sd.End.Sub(td.Start).Seconds() * 1e6
		if start < 0 {
			start = 0
		}
		if end < start {
			end = start
		}
		spans = append(spans, trace.ChromeSpan{
			Name:  sd.Name,
			Track: sd.Name,
			Start: start,
			End:   end,
			Args:  args,
		})
	}
	name := "ahs trace " + td.TraceID
	if td.Root != "" {
		name = td.Root + " " + td.TraceID
	}
	return trace.WriteChromeSpans(w, name, spans)
}

// WriteSpanLog exports the trace as a JSON span log: one SpanData object
// per line, in recorded (start-time) order — the grep-friendly counterpart
// of the Perfetto view.
func WriteSpanLog(w io.Writer, td TraceData) error {
	enc := json.NewEncoder(w)
	for _, sd := range td.Spans {
		if err := enc.Encode(sd); err != nil {
			return err
		}
	}
	return nil
}

// itoa is strconv.Itoa for the tiny non-negative ints used in event keys,
// saving the strconv import in this hot-ish path.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
