package obs

import (
	"context"
	"sync"
	"time"
)

// Span is one live node of a trace. A nil *Span is the unsampled /
// tracing-disabled span: every method is a no-op nil-check, so call sites
// never branch on whether tracing is on. Spans are safe for concurrent use
// (fault injectors add events from other goroutines).
type Span struct {
	tracer *Tracer
	sc     SpanContext
	parent SpanID
	name   string
	start  time.Time

	mu     sync.Mutex
	attrs  []Attr
	events []Event
	status string // non-empty = error outcome
	ended  bool
}

// SpanData is the immutable exported form of a finished span, as recorded
// by the tracer and serialized into the JSON span log.
type SpanData struct {
	TraceID string    `json:"traceId"`
	SpanID  string    `json:"spanId"`
	Parent  string    `json:"parent,omitempty"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	Error   string    `json:"error,omitempty"`
	Attrs   []Attr    `json:"attrs,omitempty"`
	Events  []Event   `json:"events,omitempty"`
}

// Context returns the span's propagated identity; the zero SpanContext for
// a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr attaches (or appends) an attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Event records a point-in-time annotation on the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	ev := Event{Time: time.Now(), Name: name}
	if len(attrs) > 0 {
		ev.Attrs = append(ev.Attrs, attrs...)
	}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// RecordError marks the span's outcome as failed. A nil err is ignored, so
// call sites can pass their return error unconditionally.
func (s *Span) RecordError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.status = err.Error()
	s.mu.Unlock()
}

// End finishes the span and files it with the tracer. Ending twice is a
// harmless no-op (defensive: both a deferred End and an explicit error-path
// End may run).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	sd := SpanData{
		TraceID: s.sc.TraceID.String(),
		SpanID:  s.sc.SpanID.String(),
		Name:    s.name,
		Start:   s.start,
		End:     time.Now(),
		Error:   s.status,
		Attrs:   s.attrs,
		Events:  s.events,
	}
	if !s.parent.IsZero() {
		sd.Parent = s.parent.String()
	}
	s.mu.Unlock()
	s.tracer.record(sd, s.sc.TraceID, s.start, s.parent.IsZero(), s.name)
}

// startChild creates a child span in the same trace.
func (s *Span) startChild(ctx context.Context, name string, attrs []Attr) (context.Context, *Span) {
	child := s.tracer.newSpan(s.sc.TraceID, s.sc.SpanID, name, attrs)
	return ContextWithSpan(ctx, child), child
}

// ctxKey* are private context key types; one per payload kind.
type (
	ctxKeySpan struct{}
	ctxKeyLink struct{}
)

// ContextWithSpan returns a context carrying the span as the active one.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKeySpan{}, s)
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKeySpan{}).(*Span)
	return s
}

// link ties a remote parent (extracted from a traceparent header or a
// journaled trace ID) to the tracer that should record its children.
type link struct {
	tracer *Tracer
	sc     SpanContext
}

// ContextWithRemote returns a context under which the next Start becomes a
// child of the remote span sc, recorded by t. Used where a trace crosses a
// process or detaches from the request lifetime (worker chunks, manager
// jobs outliving their submit request).
func ContextWithRemote(ctx context.Context, t *Tracer, sc SpanContext) context.Context {
	if t == nil || !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKeyLink{}, link{tracer: t, sc: sc})
}

func linkFromContext(ctx context.Context) (SpanContext, bool) {
	l, ok := ctx.Value(ctxKeyLink{}).(link)
	return l.sc, ok
}

// Start begins a child span of whatever the context carries: the active
// span, or a remote link. With neither — tracing disabled or the trace
// unsampled — it returns the context unchanged and a nil span, at the cost
// of two context lookups and zero allocations.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if s := SpanFromContext(ctx); s != nil {
		return s.startChild(ctx, name, attrs)
	}
	if l, ok := ctx.Value(ctxKeyLink{}).(link); ok && l.sc.Valid() && l.sc.Sampled {
		child := l.tracer.newSpan(l.sc.TraceID, l.sc.SpanID, name, attrs)
		return ContextWithSpan(ctx, child), child
	}
	return ctx, nil
}

// AddEvent annotates the active span, if any. The no-span path is one
// context lookup.
func AddEvent(ctx context.Context, name string, attrs ...Attr) {
	if s := SpanFromContext(ctx); s != nil {
		s.Event(name, attrs...)
	}
}

// ContextSpanContext returns the propagated identity of the active span or
// remote link in ctx, if any — the value log lines and journal records tag
// themselves with.
func ContextSpanContext(ctx context.Context) (SpanContext, bool) {
	if s := SpanFromContext(ctx); s != nil {
		return s.sc, true
	}
	if l, ok := ctx.Value(ctxKeyLink{}).(link); ok && l.sc.Valid() {
		return l.sc, true
	}
	return SpanContext{}, false
}

// TraceIDFromContext returns the hex trace ID in ctx, or "".
func TraceIDFromContext(ctx context.Context) string {
	if sc, ok := ContextSpanContext(ctx); ok {
		return sc.TraceID.String()
	}
	return ""
}
