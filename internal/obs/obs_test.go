package obs

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ahs/internal/telemetry"
)

func TestSpanTreeRecorded(t *testing.T) {
	tr := NewTracer(Config{})
	ctx, root := tr.Start(context.Background(), "submit", String("scenario", "abc"))
	if root == nil {
		t.Fatal("root span not sampled with SampleEvery=1")
	}
	rootSC := root.Context()
	if !rootSC.Valid() || !rootSC.Sampled {
		t.Fatalf("root span context invalid: %+v", rootSC)
	}

	cctx, child := tr.Start(ctx, "chunk")
	if child.Context().TraceID != rootSC.TraceID {
		t.Fatal("child not in parent's trace")
	}
	child.Event("requeue", String("reason", "lease-expired"))
	child.RecordError(errors.New("boom"))
	child.End()
	child.End() // idempotent

	_, grand := tr.Start(cctx, "merge")
	grand.End()
	root.End()

	td, ok := tr.Trace(rootSC.TraceID.String())
	if !ok {
		t.Fatal("trace not recorded")
	}
	if len(td.Spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(td.Spans))
	}
	if td.Root != "submit" {
		t.Fatalf("root name = %q, want submit", td.Root)
	}
	// Sorted by start time: root first.
	if td.Spans[0].Name != "submit" || td.Spans[0].Parent != "" {
		t.Fatalf("first span = %+v, want parentless submit", td.Spans[0])
	}
	byName := map[string]SpanData{}
	for _, sd := range td.Spans {
		byName[sd.Name] = sd
	}
	if byName["chunk"].Parent != byName["submit"].SpanID {
		t.Fatal("chunk span not parented to submit")
	}
	if byName["merge"].Parent != byName["chunk"].SpanID {
		t.Fatal("merge span not parented to chunk")
	}
	if byName["chunk"].Error != "boom" {
		t.Fatalf("chunk error = %q", byName["chunk"].Error)
	}
	if len(byName["chunk"].Events) != 1 || byName["chunk"].Events[0].Name != "requeue" {
		t.Fatalf("chunk events = %+v", byName["chunk"].Events)
	}
	if got := byName["submit"].Attrs; len(got) != 1 || got[0] != String("scenario", "abc") {
		t.Fatalf("submit attrs = %+v", got)
	}
}

func TestHeadSampling(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 3})
	sampled := 0
	for i := 0; i < 9; i++ {
		_, s := tr.Start(context.Background(), "root")
		if s != nil {
			sampled++
			s.End()
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 roots with SampleEvery=3, want 3", sampled)
	}
	if got := len(tr.Traces()); got != 3 {
		t.Fatalf("recorder holds %d traces, want 3", got)
	}
}

func TestUnsampledRootPropagatesNothing(t *testing.T) {
	tr := NewTracer(Config{SampleEvery: 2})
	_, first := tr.Start(context.Background(), "a") // sampled
	first.End()
	ctx, second := tr.Start(context.Background(), "b") // unsampled
	if second != nil {
		t.Fatal("second root should be unsampled")
	}
	// Children of an unsampled root do not record either.
	_, child := tr.Start(ctx, "child")
	if child != nil {
		t.Fatal("child of unsampled root recorded")
	}
	// The unsampled context still carries a correlation ID for log lines.
	AddEvent(ctx, "noop")
	if TraceIDFromContext(ctx) == "" {
		t.Fatal("unsampled root should still stamp a correlation trace ID")
	}
	if got := len(tr.Traces()); got != 1 {
		t.Fatalf("recorder holds %d traces, want only the sampled one", got)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(Config{MaxTraces: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		_, s := tr.Start(context.Background(), "root")
		ids = append(ids, s.Context().TraceID.String())
		s.End()
	}
	if _, ok := tr.Trace(ids[0]); ok {
		t.Fatal("oldest trace should have been evicted")
	}
	for _, id := range ids[1:] {
		if _, ok := tr.Trace(id); !ok {
			t.Fatalf("trace %s missing from ring", id)
		}
	}
	sums := tr.Traces()
	if len(sums) != 2 || sums[0].TraceID != ids[2] {
		t.Fatalf("Traces() = %+v, want newest first", sums)
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTracer(Config{MaxSpans: 2})
	ctx, root := tr.Start(context.Background(), "root")
	for i := 0; i < 4; i++ {
		_, s := tr.Start(ctx, "child")
		s.End()
	}
	root.End()
	td, ok := tr.Trace(root.Context().TraceID.String())
	if !ok {
		t.Fatal("trace missing")
	}
	if len(td.Spans) != 2 || td.Dropped != 3 {
		t.Fatalf("got %d spans, %d dropped; want 2 spans, 3 dropped", len(td.Spans), td.Dropped)
	}
}

func TestRemoteLink(t *testing.T) {
	tr := NewTracer(Config{})
	remote := SpanContext{Sampled: true}
	randomIDs(&remote.TraceID, &remote.SpanID)

	ctx := ContextWithRemote(context.Background(), tr, remote)
	if got := TraceIDFromContext(ctx); got != remote.TraceID.String() {
		t.Fatalf("remote link trace ID = %q, want %q", got, remote.TraceID)
	}
	_, s := tr.Start(ctx, "adopted")
	if s == nil {
		t.Fatal("child of sampled remote link not recorded")
	}
	if s.Context().TraceID != remote.TraceID {
		t.Fatal("child did not join the remote trace")
	}
	s.End()
	td, ok := tr.Trace(remote.TraceID.String())
	if !ok || td.Spans[0].Parent != remote.SpanID.String() {
		t.Fatalf("adopted span not parented to remote: %+v ok=%v", td, ok)
	}

	// Unsampled remote link: correlate but do not record.
	unsampled := remote
	unsampled.Sampled = false
	randomIDs(&unsampled.TraceID, nil)
	uctx := ContextWithRemote(context.Background(), tr, unsampled)
	if _, s := tr.Start(uctx, "quiet"); s != nil {
		t.Fatal("child of unsampled remote link recorded")
	}
	if TraceIDFromContext(uctx) != unsampled.TraceID.String() {
		t.Fatal("unsampled link should still correlate logs")
	}
}

func TestNilTracerAndNilSpan(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.Start(context.Background(), "root")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	// All nil-span methods are no-ops.
	s.SetAttr("k", "v")
	s.Event("e")
	s.RecordError(errors.New("x"))
	s.End()
	if s.Name() != "" || s.Context().Valid() {
		t.Fatal("nil span leaked identity")
	}
	if _, ok := tr.Trace("00"); ok {
		t.Fatal("nil tracer returned a trace")
	}
	if tr.Traces() != nil {
		t.Fatal("nil tracer returned summaries")
	}
	if _, s := Start(ctx, "child"); s != nil {
		t.Fatal("span started from empty context")
	}
}

func TestTelemetryFamilies(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := NewTracer(Config{MaxTraces: 1, MaxSpans: 1, Telemetry: reg})
	for i := 0; i < 2; i++ {
		ctx, root := tr.Start(context.Background(), "root")
		_, c := tr.Start(ctx, "child")
		c.End()
		root.End()
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"ahs_trace_spans_total 2",
		"ahs_trace_spans_dropped_total 2",
		"ahs_trace_traces_sampled_total 2",
		"ahs_trace_traces_evicted_total 1",
		"ahs_trace_traces_held 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("telemetry output missing %q:\n%s", want, out)
		}
	}
	if err := telemetry.ValidateText(strings.NewReader(out)); err != nil {
		t.Fatalf("invalid telemetry text: %v", err)
	}
}

func TestInFlightTraceVisible(t *testing.T) {
	tr := NewTracer(Config{})
	ctx, root := tr.Start(context.Background(), "long-job")
	_, c := tr.Start(ctx, "chunk-0")
	c.End()
	// Root still open: the trace is queryable with the finished child only.
	td, ok := tr.Trace(root.Context().TraceID.String())
	if !ok || len(td.Spans) != 1 || td.Spans[0].Name != "chunk-0" {
		t.Fatalf("in-flight trace = %+v ok=%v", td, ok)
	}
	root.End()
}
