// Package stats provides streaming estimators and confidence intervals for
// Monte-Carlo output analysis.
//
// The paper (§4.1) stops simulation when each point estimate has converged
// "within 95% probability in a 0.1 relative interval"; RelativeStopRule
// implements exactly that criterion on top of a Welford accumulator.
package stats

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Welford accumulates mean and variance in a single numerically stable pass.
// The zero value is an empty accumulator ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddN folds n identical observations into the accumulator. This is the
// common case for Bernoulli outputs where most trajectories contribute zero.
func (w *Welford) AddN(x float64, n uint64) {
	if n == 0 {
		return
	}
	other := Welford{n: n, mean: x}
	w.Merge(&other)
}

// Merge folds another accumulator into w (parallel Welford / Chan et al.).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	w.n = n
}

// welfordJSON is the wire form of a Welford snapshot: the three sufficient
// statistics, spelled out. encoding/json renders float64 values with the
// shortest representation that round-trips exactly, so decode(encode(w)) is
// bit-identical to w and merging a decoded snapshot behaves exactly like
// merging the original — the property the distributed estimator relies on.
type welfordJSON struct {
	N    uint64  `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// MarshalJSON encodes the accumulator as {"n":..,"mean":..,"m2":..}.
func (w Welford) MarshalJSON() ([]byte, error) {
	return json.Marshal(welfordJSON{N: w.n, Mean: w.mean, M2: w.m2})
}

// UnmarshalJSON decodes a snapshot produced by MarshalJSON. It rejects
// snapshots that no accumulation could have produced (negative second
// moment, statistics without observations, non-finite values), so corrupted
// wire data fails loudly instead of poisoning a merged estimate.
func (w *Welford) UnmarshalJSON(b []byte) error {
	var wire welfordJSON
	if err := json.Unmarshal(b, &wire); err != nil {
		return fmt.Errorf("stats: decode welford: %w", err)
	}
	if math.IsNaN(wire.Mean) || math.IsInf(wire.Mean, 0) ||
		math.IsNaN(wire.M2) || math.IsInf(wire.M2, 0) {
		return errors.New("stats: decode welford: non-finite statistic")
	}
	if wire.M2 < 0 {
		return fmt.Errorf("stats: decode welford: negative m2 %v", wire.M2)
	}
	if wire.N == 0 && (wire.Mean != 0 || wire.M2 != 0) {
		return errors.New("stats: decode welford: statistics without observations")
	}
	w.n, w.mean, w.m2 = wire.N, wire.Mean, wire.M2
	return nil
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean (0 when empty).
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Point      float64
	Lo, Hi     float64
	Confidence float64
	N          uint64
}

// HalfWidth returns the half-width of the interval.
func (iv Interval) HalfWidth() float64 { return (iv.Hi - iv.Lo) / 2 }

// RelativeHalfWidth returns half-width / |point|, or +Inf when the point
// estimate is zero (no relative precision can be claimed yet).
func (iv Interval) RelativeHalfWidth() float64 {
	if iv.Point == 0 {
		return math.Inf(1)
	}
	return iv.HalfWidth() / math.Abs(iv.Point)
}

// String renders the interval as "p ∈ [lo, hi] (c% CI, n=N)".
func (iv Interval) String() string {
	return fmt.Sprintf("%.6g in [%.6g, %.6g] (%.0f%% CI, n=%d)",
		iv.Point, iv.Lo, iv.Hi, iv.Confidence*100, iv.N)
}

// CI returns the confidence interval for the mean at the given confidence
// level using the Student-t critical value for n-1 degrees of freedom
// (normal critical value for large n). For n < 2 the interval is the point.
func (w *Welford) CI(confidence float64) Interval {
	iv := Interval{Point: w.mean, Lo: w.mean, Hi: w.mean, Confidence: confidence, N: w.n}
	if w.n < 2 {
		return iv
	}
	t := tCritical(confidence, w.n-1)
	h := t * w.StdErr()
	iv.Lo, iv.Hi = w.mean-h, w.mean+h
	return iv
}

// NormalQuantile returns the p-quantile of the standard normal distribution
// using the Acklam rational approximation (|error| < 1.15e-9).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p == 0 {
			return math.Inf(-1)
		}
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Coefficients for the central and tail regions.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// tCritical returns the two-sided Student-t critical value for the given
// confidence level and degrees of freedom. For df >= 200 it falls back to
// the normal quantile; below that it refines the normal quantile with the
// Cornish-Fisher expansion, which is accurate to ~1e-3 for df >= 3 and
// adequate for stopping rules.
func tCritical(confidence float64, df uint64) float64 {
	alpha := 1 - confidence
	z := NormalQuantile(1 - alpha/2)
	if df >= 200 {
		return z
	}
	if df == 0 {
		return math.Inf(1)
	}
	// Cornish-Fisher expansion of the t quantile in terms of z.
	v := float64(df)
	z3 := z * z * z
	z5 := z3 * z * z
	z7 := z5 * z * z
	g1 := (z3 + z) / 4
	g2 := (5*z5 + 16*z3 + 3*z) / 96
	g3 := (3*z7 + 19*z5 + 17*z3 - 15*z) / 384
	t := z + g1/v + g2/(v*v) + g3/(v*v*v)
	// Small-df guardrails: the expansion under-estimates for df <= 2.
	if df == 1 {
		return math.Tan(math.Pi / 2 * confidence)
	}
	if df == 2 {
		p := 1 - alpha/2
		return (2*p - 1) * math.Sqrt(2/(1-(2*p-1)*(2*p-1)))
	}
	return t
}

// RelativeStopRule is the paper's convergence criterion: stop when the
// confidence interval at the configured level has relative half-width below
// MaxRelHalfWidth, after at least MinSamples observations.
type RelativeStopRule struct {
	Confidence      float64 // e.g. 0.95
	MaxRelHalfWidth float64 // e.g. 0.1
	MinSamples      uint64  // e.g. 10000
}

// PaperStopRule returns the criterion used in §4.1 of the paper: 95%
// confidence, 0.1 relative interval, at least 10000 batches.
func PaperStopRule() RelativeStopRule {
	return RelativeStopRule{Confidence: 0.95, MaxRelHalfWidth: 0.1, MinSamples: 10000}
}

// Satisfied reports whether the accumulator meets the stopping criterion.
func (r RelativeStopRule) Satisfied(w *Welford) bool {
	if w.N() < r.MinSamples || w.N() < 2 {
		return false
	}
	return w.CI(r.Confidence).RelativeHalfWidth() <= r.MaxRelHalfWidth
}

// Histogram accumulates observations into fixed-width bins over [Lo, Hi).
// Observations outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi      float64
	Counts      []uint64
	Under, Over uint64
	total       uint64
}

// NewHistogram returns a histogram with the given number of bins over
// [lo, hi). It returns an error for invalid ranges or bin counts.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: invalid histogram range [%v, %v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Counts) { // rounding at the upper edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() uint64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// Quantile returns the q-quantile (0 <= q <= 1) of a sorted copy of xs using
// linear interpolation. It returns an error when xs is empty or q is out of
// range.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i == len(sorted)-1 {
		return sorted[i], nil
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac, nil
}
