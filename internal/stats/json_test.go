package stats

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"ahs/internal/rng"
)

// buildWelford folds the raw observations (scaled to avoid overflow) into a
// fresh accumulator.
func buildWelford(raw []int16) Welford {
	var w Welford
	for _, v := range raw {
		w.Add(float64(v) / 100)
	}
	return w
}

func roundTrip(t *testing.T, w Welford) Welford {
	t.Helper()
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Welford
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	return got
}

func TestWelfordJSONRoundTripIsExact(t *testing.T) {
	f := func(raw []int16) bool {
		w := buildWelford(raw)
		got := roundTrip(t, w)
		return got == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWelfordJSONMergePropertyHolds is the wire-format contract of the
// distributed estimator: a decoded snapshot must merge bit-identically to
// the original, in both directions and under further Adds.
func TestWelfordJSONMergePropertyHolds(t *testing.T) {
	f := func(rawA, rawB []int16, seed uint64) bool {
		a, b := buildWelford(rawA), buildWelford(rawB)
		decoded := roundTrip(t, a)

		// decoded.Merge(b) == a.Merge(b), bit for bit.
		m1, m2 := a, decoded
		m1.Merge(&b)
		m2.Merge(&b)
		if m1 != m2 {
			return false
		}

		// Merging *into* another accumulator is equally unaffected.
		o1, o2 := b, b
		o1.Merge(&a)
		o2.Merge(&decoded)
		if o1 != o2 {
			return false
		}

		// A decoded snapshot keeps accumulating exactly like the original.
		s := rng.NewStream(seed)
		c1, c2 := a, decoded
		for i := 0; i < 16; i++ {
			x := s.Uniform(-5, 5)
			c1.Add(x)
			c2.Add(x)
		}
		return c1 == c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordJSONRejectsCorruptSnapshots(t *testing.T) {
	cases := map[string]string{
		"negative m2":       `{"n":3,"mean":1,"m2":-0.5}`,
		"stats without obs": `{"n":0,"mean":1,"m2":0}`,
		"mean overflow":     `{"n":1,"mean":1e999,"m2":0}`,
		"not an object":     `[1,2,3]`,
		"garbage":           `{`,
	}
	for name, in := range cases {
		var w Welford
		if err := json.Unmarshal([]byte(in), &w); err == nil {
			t.Errorf("%s: decode accepted %s", name, in)
		}
	}
}

func TestWelfordJSONZeroValue(t *testing.T) {
	var w Welford
	got := roundTrip(t, w)
	if got != w {
		t.Fatalf("zero value round-trip: %+v", got)
	}
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"n":0,"mean":0,"m2":0}` {
		t.Fatalf("zero-value encoding %s", b)
	}
}
