package stats

import (
	"math"
	"testing"
	"testing/quick"

	"ahs/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestWelfordMatchesNaiveMoments(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		sum, sumsq := 0.0, 0.0
		for _, v := range raw {
			x := float64(v) / 100
			w.Add(x)
			sum += x
			sumsq += x * x
		}
		n := float64(len(raw))
		mean := sum / n
		variance := (sumsq - n*mean*mean) / (n - 1)
		if variance < 0 {
			variance = 0
		}
		return almostEqual(w.Mean(), mean, 1e-9) && almostEqual(w.Variance(), variance, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	f := func(a, b []int16) bool {
		var whole, left, right Welford
		for _, v := range a {
			x := float64(v)
			whole.Add(x)
			left.Add(x)
		}
		for _, v := range b {
			x := float64(v)
			whole.Add(x)
			right.Add(x)
		}
		left.Merge(&right)
		return left.N() == whole.N() &&
			almostEqual(left.Mean(), whole.Mean(), 1e-9) &&
			almostEqual(left.Variance(), whole.Variance(), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordAddNEqualsRepeatedAdd(t *testing.T) {
	var a, b Welford
	a.Add(2)
	a.AddN(0, 5)
	a.Add(3)
	b.Add(2)
	for i := 0; i < 5; i++ {
		b.Add(0)
	}
	b.Add(3)
	if a.N() != b.N() || !almostEqual(a.Mean(), b.Mean(), 1e-12) || !almostEqual(a.Variance(), b.Variance(), 1e-12) {
		t.Fatalf("AddN mismatch: (%v,%v,%v) vs (%v,%v,%v)",
			a.N(), a.Mean(), a.Variance(), b.N(), b.Mean(), b.Variance())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Fatal("empty accumulator must report zeros")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Fatalf("single observation: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.841344746, 1.0},
		{0.025, -1.959964},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileSymmetryProperty(t *testing.T) {
	f := func(u uint16) bool {
		p := (float64(u) + 1) / 65537 // strictly inside (0,1)
		return math.Abs(NormalQuantile(p)+NormalQuantile(1-p)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("quantile edges must be infinite")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Fatal("out-of-range p must be NaN")
	}
}

func TestTCriticalKnownValues(t *testing.T) {
	// Reference values for two-sided 95% critical points.
	cases := []struct {
		df   uint64
		want float64
		tol  float64
	}{
		{1, 12.706, 0.05},
		{2, 4.303, 0.05},
		{5, 2.571, 0.02},
		{10, 2.228, 0.01},
		{30, 2.042, 0.01},
		{100, 1.984, 0.01},
		{1000, 1.962, 0.01},
	}
	for _, c := range cases {
		got := tCritical(0.95, c.df)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("tCritical(0.95, %d) = %v, want %v±%v", c.df, got, c.want, c.tol)
		}
	}
}

func TestCICoverageOnBernoulli(t *testing.T) {
	// Estimate coverage of the 95% CI over repeated experiments.
	src := rng.NewSource(99)
	const p = 0.2
	const experiments = 400
	const samples = 500
	covered := 0
	for e := 0; e < experiments; e++ {
		r := src.Stream(uint64(e))
		var w Welford
		for i := 0; i < samples; i++ {
			if r.Bernoulli(p) {
				w.Add(1)
			} else {
				w.Add(0)
			}
		}
		iv := w.CI(0.95)
		if iv.Lo <= p && p <= iv.Hi {
			covered++
		}
	}
	coverage := float64(covered) / experiments
	if coverage < 0.90 || coverage > 0.99 {
		t.Fatalf("95%% CI empirical coverage %v outside [0.90, 0.99]", coverage)
	}
}

func TestIntervalRelativeHalfWidth(t *testing.T) {
	iv := Interval{Point: 2, Lo: 1.8, Hi: 2.2}
	if !almostEqual(iv.HalfWidth(), 0.2, 1e-12) {
		t.Fatalf("half width %v", iv.HalfWidth())
	}
	if !almostEqual(iv.RelativeHalfWidth(), 0.1, 1e-9) {
		t.Fatalf("relative half width %v", iv.RelativeHalfWidth())
	}
	zero := Interval{Point: 0, Lo: -1, Hi: 1}
	if !math.IsInf(zero.RelativeHalfWidth(), 1) {
		t.Fatal("zero point estimate must give infinite relative half width")
	}
}

func TestRelativeStopRule(t *testing.T) {
	rule := RelativeStopRule{Confidence: 0.95, MaxRelHalfWidth: 0.1, MinSamples: 100}
	var w Welford
	// Constant observations converge immediately after MinSamples.
	for i := 0; i < 99; i++ {
		w.Add(1)
	}
	if rule.Satisfied(&w) {
		t.Fatal("rule satisfied before MinSamples")
	}
	w.Add(1)
	if !rule.Satisfied(&w) {
		t.Fatal("rule not satisfied for constant data after MinSamples")
	}
}

func TestRelativeStopRuleNeedsPrecision(t *testing.T) {
	rule := RelativeStopRule{Confidence: 0.95, MaxRelHalfWidth: 0.01, MinSamples: 10}
	r := rng.NewStream(5)
	var w Welford
	for i := 0; i < 50; i++ {
		w.Add(r.Float64())
	}
	if rule.Satisfied(&w) {
		t.Fatal("rule should not be satisfied at 1% precision with 50 uniform samples")
	}
}

func TestPaperStopRuleParameters(t *testing.T) {
	r := PaperStopRule()
	if r.Confidence != 0.95 || r.MaxRelHalfWidth != 0.1 || r.MinSamples != 10000 {
		t.Fatalf("paper stop rule mismatch: %+v", r)
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-1)  // under
	h.Add(0)   // bin 0
	h.Add(1.9) // bin 0
	h.Add(2)   // bin 1
	h.Add(9.9) // bin 4
	h.Add(10)  // over
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	want := []uint64{2, 1, 0, 0, 1}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("bin %d = %d, want %d", i, h.Counts[i], c)
		}
	}
	if h.Total() != 6 {
		t.Fatalf("total %d", h.Total())
	}
	if !almostEqual(h.BinCenter(0), 1, 1e-12) || !almostEqual(h.BinCenter(4), 9, 1e-12) {
		t.Fatalf("bin centers %v %v", h.BinCenter(0), h.BinCenter(4))
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("expected error for zero bins")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("expected error for empty range")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	med, _ := Quantile(xs, 0.5)
	if q0 != 1 || q1 != 4 {
		t.Fatalf("extremes %v %v", q0, q1)
	}
	if !almostEqual(med, 2.5, 1e-12) {
		t.Fatalf("median %v", med)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("expected error for out-of-range q")
	}
}

func TestQuantileSingleElement(t *testing.T) {
	v, err := Quantile([]float64{7}, 0.3)
	if err != nil || v != 7 {
		t.Fatalf("got %v, %v", v, err)
	}
}

func TestIntervalString(t *testing.T) {
	iv := Interval{Point: 0.5, Lo: 0.4, Hi: 0.6, Confidence: 0.95, N: 100}
	s := iv.String()
	if s == "" || len(s) < 10 {
		t.Fatalf("interval string %q", s)
	}
}
