package sim

import (
	"fmt"

	"ahs/internal/des"
	"ahs/internal/rng"
	"ahs/internal/san"
	"ahs/internal/telemetry"
)

// GeneralRunner executes SAN trajectories with event-queue semantics,
// supporting arbitrary firing-delay distributions (san.Distribution) in
// addition to exponential rates.
//
// Reactivation policy ("restart"): an activity samples its completion time
// when it becomes enabled; if it is disabled before completing, the sampled
// clock is discarded, and a fresh delay is drawn on the next enabling. For
// marking-dependent exponential rates the rate is frozen at scheduling time
// (unlike the race-semantics Runner, which re-reads rates in every marking;
// the two coincide for constant rates, which is verified against the exact
// CTMC solver in the tests).
//
// Importance sampling is not supported here — likelihood ratios for general
// distributions are not available in closed form — so Options.Bias must be
// nil. A GeneralRunner is not safe for concurrent use.
type GeneralRunner struct {
	model    *san.Model
	opts     Options
	instants *instantEngine

	queue     *des.Queue
	scheduled []*des.Event // per timed-activity pending completion
	marking   *san.Marking
	initial   *san.Marking
}

// NewGeneralRunner validates options and returns an event-queue executor.
func NewGeneralRunner(model *san.Model, opts Options) (*GeneralRunner, error) {
	if !(opts.MaxTime > 0) {
		return nil, fmt.Errorf("sim: MaxTime must be positive, got %v", opts.MaxTime)
	}
	if !opts.Bias.IsNeutral() {
		return nil, fmt.Errorf("sim: importance sampling requires the race-semantics Runner (exponential models)")
	}
	opts.Bias = nil
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 50_000_000
	}
	if opts.MaxInstantFirings == 0 {
		opts.MaxInstantFirings = 100_000
	}
	g := &GeneralRunner{
		model:     model,
		opts:      opts,
		instants:  newInstantEngine(model, opts.MaxInstantFirings),
		queue:     des.NewQueue(),
		scheduled: make([]*des.Event, model.NumTimed()),
		initial:   model.InitialMarking(),
	}
	g.marking = g.initial.Clone()
	return g, nil
}

// Model returns the model being executed.
func (g *GeneralRunner) Model() *san.Model { return g.model }

// syncSchedule reconciles the event queue with the current marking: newly
// enabled activities sample and schedule a completion; disabled activities
// lose their pending event.
func (g *GeneralRunner) syncSchedule(now float64, stream *rng.Stream) error {
	for i := 0; i < g.model.NumTimed(); i++ {
		act := g.model.Timed(i)
		enabled := act.EnabledIn(g.marking)
		switch {
		case enabled && g.scheduled[i] == nil:
			var delay float64
			if act.Exponential() {
				rate, err := act.RateIn(g.marking)
				if err != nil {
					return err
				}
				delay = stream.Exp(rate)
			} else {
				delay = act.Delay.Sample(stream)
				if !(delay >= 0) {
					return fmt.Errorf("sim: activity %q sampled negative delay %v", act.Name, delay)
				}
			}
			g.scheduled[i] = g.queue.Schedule(now+delay, i)
		case !enabled && g.scheduled[i] != nil:
			g.queue.Cancel(g.scheduled[i])
			g.scheduled[i] = nil
		}
	}
	return nil
}

// Run executes one trajectory from the model's initial marking, filling the
// probes' Values (Weights are always 1: no importance sampling here).
func (g *GeneralRunner) Run(stream *rng.Stream, probes ...*Probe) (Result, error) {
	var res Result
	g.marking.CopyFrom(g.initial)
	g.queue.Clear()
	for i := range g.scheduled {
		g.scheduled[i] = nil
	}
	for _, p := range probes {
		if err := p.reset(); err != nil {
			return res, err
		}
		if n := len(p.Times); n > 0 && p.Times[n-1] > g.opts.MaxTime {
			return res, fmt.Errorf("sim: probe time %v beyond MaxTime %v", p.Times[n-1], g.opts.MaxTime)
		}
	}
	next := make([]int, len(probes))
	var clock des.Clock

	if err := g.instants.fireAll(g.marking, stream, &res); err != nil {
		return res, err
	}
	if g.opts.Stop != nil && g.opts.Stop(g.marking) {
		g.finish(&res, clock.Now(), probes, next, true)
		return res, nil
	}

	for {
		if err := g.syncSchedule(clock.Now(), stream); err != nil {
			return res, err
		}
		ev := g.queue.Pop()
		if ev == nil {
			g.fillUpTo(probes, next, g.opts.MaxTime, true)
			res.End = clock.Now()
			res.Deadlocked = true
			return res, nil
		}
		if ev.Time >= g.opts.MaxTime {
			g.fillUpTo(probes, next, g.opts.MaxTime, true)
			res.End = g.opts.MaxTime
			return res, nil
		}
		g.fillUpTo(probes, next, ev.Time, false)
		if err := clock.AdvanceTo(ev.Time); err != nil {
			return res, err
		}

		idx, ok := ev.Payload.(int)
		if !ok {
			return res, fmt.Errorf("sim: corrupt event payload %T", ev.Payload)
		}
		g.scheduled[idx] = nil
		act := g.model.Timed(idx)
		caseIdx, err := g.instants.chooseCase(act.Name, act.Cases, g.marking, stream)
		if err != nil {
			return res, err
		}
		san.FireTimed(act, caseIdx, g.marking)
		res.Steps++
		if g.opts.Sink != nil {
			g.opts.Sink.Count(telemetry.MetricActivityFirings, act.Name) //ahsvet:ignore locklabel activity names are fixed at model build time
		}
		if g.opts.Observer != nil {
			g.opts.Observer.OnEvent(clock.Now(), act.Name, g.marking)
		}
		if err := g.instants.fireAll(g.marking, stream, &res); err != nil {
			return res, err
		}
		if g.opts.Stop != nil && g.opts.Stop(g.marking) {
			g.finish(&res, clock.Now(), probes, next, true)
			return res, nil
		}
		if res.Steps >= g.opts.MaxSteps {
			return res, fmt.Errorf("%w (%d steps at t=%v)", ErrStepLimit, res.Steps, clock.Now())
		}
	}
}

// fillUpTo records unsampled probe times below horizon ([.., horizon] when
// inclusive) against the current marking with unit weight.
func (g *GeneralRunner) fillUpTo(probes []*Probe, next []int, horizon float64, inclusive bool) {
	for pi, p := range probes {
		for next[pi] < len(p.Times) {
			tp := p.Times[next[pi]]
			if tp > horizon || (tp == horizon && !inclusive) { //ahsvet:ignore floateq probe grid deliberately matches the horizon bit-for-bit
				break
			}
			p.Values[next[pi]] = p.Value(g.marking)
			p.Weights[next[pi]] = 1
			next[pi]++
		}
	}
}

// finish handles stop-predicate termination.
func (g *GeneralRunner) finish(res *Result, t float64, probes []*Probe, next []int, stopped bool) {
	res.Stopped = stopped
	res.StopTime = t
	res.StopWeight = 1
	res.End = t
	for pi, p := range probes {
		v := p.Value(g.marking)
		for ; next[pi] < len(p.Times); next[pi]++ {
			p.Values[next[pi]] = v
			p.Weights[next[pi]] = 1
		}
	}
}
