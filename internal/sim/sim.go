// Package sim executes Stochastic Activity Network trajectories.
//
// All timed activities in the paper's models are exponentially distributed
// (§4.1), so the executor uses race semantics with memoryless resampling:
// in each marking it computes the enabled activities' rates, samples the
// holding time from the total rate and picks the completing activity
// proportionally to its rate. This is stochastically identical to
// maintaining per-activity residual clocks for exponential activities, and
// it makes importance sampling exact: biasing an activity's rate by a
// constant factor yields a per-step likelihood ratio
//
//	(λ_k/λ'_k) · exp((Λ' − Λ)·τ)
//
// where λ_k is the completing activity's rate, Λ the total enabled rate,
// primes denote biased quantities and τ the sampled holding time. The
// executor accumulates the log likelihood ratio along the trajectory so
// rare-event measures (the paper's unsafety at λ = 1e-6/hr and below) can
// be estimated without the astronomically many batches naive simulation
// would need.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ahs/internal/rng"
	"ahs/internal/san"
	"ahs/internal/telemetry"
)

// ErrLivelock is returned when instantaneous activities keep firing without
// reaching a stable marking.
var ErrLivelock = errors.New("sim: instantaneous activity livelock")

// ErrStepLimit is returned when a trajectory exceeds Options.MaxSteps.
var ErrStepLimit = errors.New("sim: step limit exceeded")

// Observer receives trajectory events. Implementations must not retain the
// marking across calls.
type Observer interface {
	// OnEvent is called after each activity completion with the simulation
	// time, the completed activity's name and the resulting marking.
	OnEvent(t float64, activity string, mk *san.Marking)
}

// FactorFn returns a marking-dependent bias multiplier. It must return
// strictly positive finite values; returning 1 leaves the rate unchanged.
type FactorFn func(mk *san.Marking) float64

// Bias specifies importance-sampling rate multipliers per timed activity,
// either constant or marking-dependent (adaptive forcing, e.g. "force
// failures only while fewer than two are active"). The zero value (or nil
// pointer) means no biasing.
//
// Marking-dependent factors are sound because the executor recomputes both
// the original and the biased total rate in every visited marking and
// accumulates the per-step likelihood ratio accordingly.
type Bias struct {
	factors map[int]float64  // timed activity index -> constant multiplier
	fns     map[int]FactorFn // timed activity index -> adaptive multiplier
}

// NewBias returns an empty bias specification.
func NewBias() *Bias {
	return &Bias{factors: make(map[int]float64), fns: make(map[int]FactorFn)}
}

// SetByName sets the multiplier for the named timed activity. It returns an
// error if the activity does not exist in the model or the factor is not
// strictly positive and finite.
func (b *Bias) SetByName(m *san.Model, name string, factor float64) error {
	idx := m.TimedIndex(name)
	if idx < 0 {
		return fmt.Errorf("sim: no timed activity %q", name)
	}
	return b.Set(idx, factor)
}

// Set sets the multiplier for the timed activity with the given index.
func (b *Bias) Set(index int, factor float64) error {
	if !(factor > 0) || math.IsInf(factor, 1) {
		return fmt.Errorf("sim: invalid bias factor %v", factor)
	}
	b.factors[index] = factor
	delete(b.fns, index)
	return nil
}

// SetFn installs a marking-dependent multiplier for the timed activity with
// the given index, replacing any constant factor.
func (b *Bias) SetFn(index int, fn FactorFn) error {
	if fn == nil {
		return fmt.Errorf("sim: nil bias factor function")
	}
	b.fns[index] = fn
	delete(b.factors, index)
	return nil
}

// SetFnByName installs a marking-dependent multiplier for the named timed
// activity.
func (b *Bias) SetFnByName(m *san.Model, name string, fn FactorFn) error {
	idx := m.TimedIndex(name)
	if idx < 0 {
		return fmt.Errorf("sim: no timed activity %q", name)
	}
	return b.SetFn(idx, fn)
}

// Factor returns the constant multiplier for a timed activity index
// (1 by default or when the activity uses an adaptive factor).
func (b *Bias) Factor(index int) float64 {
	if b == nil || b.factors == nil {
		return 1
	}
	if f, ok := b.factors[index]; ok {
		return f
	}
	return 1
}

// FactorIn returns the multiplier for a timed activity in a marking.
func (b *Bias) FactorIn(index int, mk *san.Marking) (float64, error) {
	if b == nil {
		return 1, nil
	}
	if fn, ok := b.fns[index]; ok {
		f := fn(mk)
		if !(f > 0) || math.IsInf(f, 1) {
			return 0, fmt.Errorf("sim: adaptive bias factor %v for activity %d", f, index)
		}
		return f, nil
	}
	if f, ok := b.factors[index]; ok {
		return f, nil
	}
	return 1, nil
}

// IsNeutral reports whether the bias can be statically proven to change no
// rates (adaptive factors are conservatively treated as non-neutral).
func (b *Bias) IsNeutral() bool {
	if b == nil {
		return true
	}
	if len(b.fns) > 0 {
		return false
	}
	for _, f := range b.factors {
		if f != 1 {
			return false
		}
	}
	return true
}

// Probe samples a marking-valued function at fixed time points along a
// trajectory. After Run, Values[i] holds the sampled value at Times[i] and
// Weights[i] the trajectory's likelihood ratio there (1 without biasing).
type Probe struct {
	// Times are the sampling instants; they must be sorted ascending and
	// non-negative.
	Times []float64
	// Value evaluates the measured quantity in a marking.
	Value func(mk *san.Marking) float64
	// Values and Weights are outputs, (re)allocated by Run.
	Values  []float64
	Weights []float64
}

// Options configures trajectory execution.
type Options struct {
	// MaxTime ends the trajectory (required, > 0).
	MaxTime float64
	// MaxSteps guards against runaway models; 0 means 50 million.
	MaxSteps uint64
	// MaxInstantFirings guards against instantaneous livelock per event
	// epoch; 0 means 100000.
	MaxInstantFirings int
	// Stop, when non-nil, ends the trajectory as soon as the predicate
	// holds (checked after initialisation and after every completion).
	// Probe times not yet reached are then filled with the value of the
	// stopped marking and the likelihood ratio frozen at the stopping
	// time; this is the standard unbiased first-passage estimator for
	// absorbing measures.
	Stop san.Predicate
	// Bias applies importance sampling to timed-activity rates.
	Bias *Bias
	// Observer, when non-nil, receives every completion event.
	Observer Observer
	// Sink, when non-nil, counts every timed-activity completion under
	// telemetry.MetricActivityFirings. Unlike Observer it sees only the
	// activity name, which keeps the disabled path to a single nil check
	// and the enabled path allocation-free.
	Sink telemetry.Sink
	// ConstantGates maps timed-activity names to statically certified
	// constant enabling-predicate values (typically structural
	// ModelFacts.ConstantTimedGates). Listed activities skip the predicate
	// call on every scan: true means always enabled, false means the
	// activity is dropped from the race entirely. Certification is the
	// caller's burden — a wrong entry silently changes trajectories.
	// Names that are not timed activities of the model are rejected by
	// NewRunner.
	ConstantGates map[string]bool
}

// Result summarises one executed trajectory.
type Result struct {
	// End is the time at which execution stopped (MaxTime, the stop
	// predicate instant, or the deadlock instant).
	End float64
	// Steps counts timed-activity completions.
	Steps uint64
	// InstantFirings counts instantaneous-activity completions.
	InstantFirings uint64
	// Stopped reports whether the stop predicate ended the run.
	Stopped bool
	// StopTime is the first-passage time (valid when Stopped).
	StopTime float64
	// StopWeight is the likelihood ratio at StopTime (1 without biasing).
	StopWeight float64
	// Deadlocked reports that no timed activity was enabled before MaxTime.
	Deadlocked bool
}

// instantEngine fires enabled instantaneous activities in priority order,
// shared by the race-semantics Runner and the event-queue GeneralRunner.
type instantEngine struct {
	model      *san.Model
	order      []int // instantaneous activity indices sorted by priority
	maxFirings int
	weights    []float64
}

func newInstantEngine(model *san.Model, maxFirings int) *instantEngine {
	e := &instantEngine{model: model, maxFirings: maxFirings}
	e.order = make([]int, model.NumInstant())
	for i := range e.order {
		e.order[i] = i
	}
	sort.SliceStable(e.order, func(a, b int) bool {
		return model.Instant(e.order[a]).Priority < model.Instant(e.order[b]).Priority
	})
	return e
}

// fireAll fires enabled instantaneous activities until none is enabled.
func (e *instantEngine) fireAll(mk *san.Marking, stream *rng.Stream, res *Result) error {
	firings := 0
	for {
		fired := false
		for _, idx := range e.order {
			act := e.model.Instant(idx)
			if !act.EnabledIn(mk) {
				continue
			}
			caseIdx, err := e.chooseCase(act.Name, act.Cases, mk, stream)
			if err != nil {
				return err
			}
			san.FireInstant(act, caseIdx, mk)
			res.InstantFirings++
			firings++
			if firings > e.maxFirings {
				return fmt.Errorf("%w after %d firings (last %q)", ErrLivelock, firings, act.Name)
			}
			fired = true
			break // restart the priority scan from the top
		}
		if !fired {
			return nil
		}
	}
}

func (e *instantEngine) chooseCase(activity string, cases []san.Case, mk *san.Marking, stream *rng.Stream) (int, error) {
	ws, err := san.CaseWeightsFor(activity, cases, mk, e.weights)
	if err != nil {
		return 0, err
	}
	e.weights = ws
	if len(ws) == 1 {
		return 0, nil
	}
	return stream.Choice(ws), nil
}

// Runner executes trajectories of one model. A Runner is not safe for
// concurrent use; create one per goroutine.
type Runner struct {
	model    *san.Model
	opts     Options
	instants *instantEngine

	rates   []float64
	biased  []float64
	enabled []int
	marking *san.Marking
	initial *san.Marking

	// gates[i] tells scanTimed how to treat timed activity i's predicate.
	gates []gateMode
}

type gateMode int8

const (
	gateDynamic   gateMode = iota // evaluate EnabledIn as usual
	gateAlwaysOn                  // certified constant true: skip the call
	gateAlwaysOff                 // certified constant false: skip the activity
)

// NewRunner validates options and returns a Runner for the model.
func NewRunner(model *san.Model, opts Options) (*Runner, error) {
	if !(opts.MaxTime > 0) {
		return nil, fmt.Errorf("sim: MaxTime must be positive, got %v", opts.MaxTime)
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 50_000_000
	}
	if opts.MaxInstantFirings == 0 {
		opts.MaxInstantFirings = 100_000
	}
	for i := 0; i < model.NumTimed(); i++ {
		if act := model.Timed(i); !act.Exponential() {
			return nil, fmt.Errorf("sim: activity %q has a general delay distribution; use NewGeneralRunner", act.Name)
		}
	}
	r := &Runner{
		model:    model,
		opts:     opts,
		initial:  model.InitialMarking(),
		instants: newInstantEngine(model, opts.MaxInstantFirings),
	}
	if len(opts.ConstantGates) > 0 {
		r.gates = make([]gateMode, model.NumTimed())
		matched := 0
		for i := 0; i < model.NumTimed(); i++ {
			v, ok := opts.ConstantGates[model.Timed(i).Name]
			if !ok {
				continue
			}
			matched++
			if v {
				r.gates[i] = gateAlwaysOn
			} else {
				r.gates[i] = gateAlwaysOff
			}
		}
		if matched != len(opts.ConstantGates) {
			for name := range opts.ConstantGates {
				if !hasTimed(model, name) {
					return nil, fmt.Errorf("sim: ConstantGates names unknown timed activity %q", name)
				}
			}
		}
	}
	r.marking = r.initial.Clone()
	return r, nil
}

func hasTimed(model *san.Model, name string) bool {
	for i := 0; i < model.NumTimed(); i++ {
		if model.Timed(i).Name == name {
			return true
		}
	}
	return false
}

// Model returns the model being executed.
func (r *Runner) Model() *san.Model { return r.model }

// scanTimed fills r.enabled/r.rates/r.biased for the current marking and
// returns the original and biased total rates.
func (r *Runner) scanTimed() (total, biasedTotal float64, err error) {
	r.enabled = r.enabled[:0]
	r.rates = r.rates[:0]
	r.biased = r.biased[:0]
	for i := 0; i < r.model.NumTimed(); i++ {
		act := r.model.Timed(i)
		if r.gates != nil {
			switch r.gates[i] {
			case gateAlwaysOff:
				continue
			case gateAlwaysOn:
				// certified enabled: skip the predicate call
			default:
				if !act.EnabledIn(r.marking) {
					continue
				}
			}
		} else if !act.EnabledIn(r.marking) {
			continue
		}
		rate, rerr := act.RateIn(r.marking)
		if rerr != nil {
			return 0, 0, rerr
		}
		factor, rerr := r.opts.Bias.FactorIn(i, r.marking)
		if rerr != nil {
			return 0, 0, rerr
		}
		b := rate * factor
		r.enabled = append(r.enabled, i)
		r.rates = append(r.rates, rate)
		r.biased = append(r.biased, b)
		total += rate
		biasedTotal += b
	}
	return total, biasedTotal, nil
}

// Run executes one trajectory from the model's initial marking using the
// given random stream, filling the probes' Values/Weights.
func (r *Runner) Run(stream *rng.Stream, probes ...*Probe) (Result, error) {
	return r.RunFrom(nil, 0, stream, probes...)
}

// Marking returns the runner's current marking — the final state of the
// most recent Run/RunFrom. The returned marking aliases runner state; clone
// it before the next run if it must be retained (rare-event splitting uses
// this to capture level-entry states).
func (r *Runner) Marking() *san.Marking { return r.marking }

// RunFrom executes one trajectory starting from the given marking at time
// t0 (start == nil means the model's initial marking; t0 must be in
// [0, MaxTime)). Because every activity is exponential, restarting from a
// captured marking is distribution-exact. Probe times earlier than t0 are
// left at their defaults (value 0, weight 1).
func (r *Runner) RunFrom(start *san.Marking, t0 float64, stream *rng.Stream, probes ...*Probe) (Result, error) {
	var res Result
	if t0 < 0 || t0 >= r.opts.MaxTime {
		return res, fmt.Errorf("sim: start time %v outside [0, MaxTime)", t0)
	}
	if start == nil {
		r.marking.CopyFrom(r.initial)
	} else {
		r.marking.CopyFrom(start)
	}
	for _, p := range probes {
		if err := p.reset(); err != nil {
			return res, err
		}
		if n := len(p.Times); n > 0 && p.Times[n-1] > r.opts.MaxTime {
			return res, fmt.Errorf("sim: probe time %v beyond MaxTime %v", p.Times[n-1], r.opts.MaxTime)
		}
	}
	next := make([]int, len(probes)) // next unfilled time index per probe

	t := t0
	logLR := 0.0

	if err := r.instants.fireAll(r.marking, stream, &res); err != nil {
		return res, err
	}
	if r.opts.Stop != nil && r.opts.Stop(r.marking) {
		r.finishStopped(&res, t, logLR, probes, next)
		return res, nil
	}

	for {
		total, biasedTotal, err := r.scanTimed()
		if err != nil {
			return res, err
		}
		if len(r.enabled) == 0 {
			// Deadlock: the marking no longer changes; sample all
			// remaining probe points from it. With no enabled activities
			// the original and biased survival probabilities both equal
			// one, so the likelihood ratio stays frozen.
			r.fillProbes(probes, next, r.opts.MaxTime, true, t, logLR, 0, 0)
			res.End = t
			res.Deadlocked = true
			return res, nil
		}

		tau := stream.Exp(biasedTotal)
		tNext := t + tau

		if tNext >= r.opts.MaxTime {
			// No further completion before the horizon: every remaining
			// probe point sees the current marking, with the survival
			// correction applied up to its own instant.
			r.fillProbes(probes, next, r.opts.MaxTime, true, t, logLR, total, biasedTotal)
			res.End = r.opts.MaxTime
			return res, nil
		}

		// Record probe points passed strictly before the next completion.
		r.fillProbes(probes, next, tNext, false, t, logLR, total, biasedTotal)

		// Choose the completing activity under the biased measure.
		k := stream.Choice(r.biased)
		logLR += math.Log(r.rates[k]/r.biased[k]) + (biasedTotal-total)*tau

		t = tNext
		act := r.model.Timed(r.enabled[k])
		caseIdx, err := r.instants.chooseCase(act.Name, act.Cases, r.marking, stream)
		if err != nil {
			return res, err
		}
		san.FireTimed(act, caseIdx, r.marking)
		res.Steps++
		if r.opts.Sink != nil {
			r.opts.Sink.Count(telemetry.MetricActivityFirings, act.Name) //ahsvet:ignore locklabel activity names are fixed at model build time
		}
		if r.opts.Observer != nil {
			r.opts.Observer.OnEvent(t, act.Name, r.marking)
		}
		if err := r.instants.fireAll(r.marking, stream, &res); err != nil {
			return res, err
		}
		if r.opts.Stop != nil && r.opts.Stop(r.marking) {
			r.finishStopped(&res, t, logLR, probes, next)
			return res, nil
		}
		if res.Steps >= r.opts.MaxSteps {
			return res, fmt.Errorf("%w (%d steps at t=%v)", ErrStepLimit, res.Steps, t)
		}
	}
}

// fillProbes records every unsampled probe time in [t, horizon) — or
// [t, horizon] when inclusive — against the current marking. The weight at
// an intermediate time is the event-sequence LR times the survival
// correction exp((Λ'−Λ)·(tp−t)).
func (r *Runner) fillProbes(probes []*Probe, next []int, horizon float64, inclusive bool, t, logLR, total, biasedTotal float64) {
	for pi, p := range probes {
		for next[pi] < len(p.Times) {
			tp := p.Times[next[pi]]
			if tp > horizon || (tp == horizon && !inclusive) { //ahsvet:ignore floateq probe grid deliberately matches the horizon bit-for-bit
				break
			}
			if tp >= t {
				w := math.Exp(logLR + (biasedTotal-total)*(tp-t))
				p.Values[next[pi]] = p.Value(r.marking)
				p.Weights[next[pi]] = w
			}
			next[pi]++
		}
	}
}

// finishStopped handles stop-predicate termination: freeze the likelihood
// ratio at the stopping time and evaluate all outstanding probe points on
// the stopped marking.
func (r *Runner) finishStopped(res *Result, t, logLR float64, probes []*Probe, next []int) {
	w := math.Exp(logLR)
	res.Stopped = true
	res.StopTime = t
	res.StopWeight = w
	res.End = t
	for pi, p := range probes {
		v := p.Value(r.marking)
		for ; next[pi] < len(p.Times); next[pi]++ {
			p.Values[next[pi]] = v
			p.Weights[next[pi]] = w
		}
	}
}

func (p *Probe) reset() error {
	if p.Value == nil {
		return errors.New("sim: probe without Value function")
	}
	for i := 1; i < len(p.Times); i++ {
		if p.Times[i] < p.Times[i-1] {
			return fmt.Errorf("sim: probe times not sorted at index %d", i)
		}
	}
	if len(p.Times) > 0 && p.Times[0] < 0 {
		return errors.New("sim: negative probe time")
	}
	if cap(p.Values) < len(p.Times) {
		p.Values = make([]float64, len(p.Times))
		p.Weights = make([]float64, len(p.Times))
	} else {
		p.Values = p.Values[:len(p.Times)]
		p.Weights = p.Weights[:len(p.Times)]
	}
	for i := range p.Values {
		p.Values[i] = 0
		p.Weights[i] = 1
	}
	return nil
}

// TraceEvent is one entry of a recorded trajectory.
type TraceEvent struct {
	Time     float64
	Activity string
}

// Trace is an Observer that records every completion event.
type Trace struct {
	Events []TraceEvent
}

var _ Observer = (*Trace)(nil)

// OnEvent implements Observer.
func (tr *Trace) OnEvent(t float64, activity string, _ *san.Marking) {
	tr.Events = append(tr.Events, TraceEvent{Time: t, Activity: activity})
}

// Reset clears recorded events, retaining capacity.
func (tr *Trace) Reset() { tr.Events = tr.Events[:0] }
