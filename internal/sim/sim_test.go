package sim

import (
	"errors"
	"math"
	"testing"

	"ahs/internal/rng"
	"ahs/internal/san"
	"ahs/internal/stats"
)

// buildPoisson returns a model with a single always-enabled arrival activity
// incrementing a counter place.
func buildPoisson(rate float64) (*san.Model, san.PlaceID) {
	b := san.NewBuilder("poisson")
	c := b.Place("count", 0)
	b.Timed(san.TimedActivity{
		Name:  "arrive",
		Rate:  san.ConstRate(rate),
		Input: san.Produce(c, 1),
	})
	return b.MustBuild(), c
}

// buildPureDeath returns a model where a single token dies at the given rate.
func buildPureDeath(rate float64) (*san.Model, san.PlaceID) {
	b := san.NewBuilder("death")
	alive := b.Place("alive", 1)
	b.Timed(san.TimedActivity{
		Name:    "die",
		Enabled: san.HasTokens(alive, 1),
		Rate:    san.ConstRate(rate),
		Input:   san.Consume(alive, 1),
	})
	return b.MustBuild(), alive
}

func TestPoissonCountMean(t *testing.T) {
	const rate, horizon = 2.0, 5.0
	m, c := buildPoisson(rate)
	r, err := NewRunner(m, Options{MaxTime: horizon})
	if err != nil {
		t.Fatal(err)
	}
	probe := &Probe{
		Times: []float64{1, 2.5, horizon},
		Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(c)) },
	}
	src := rng.NewSource(1)
	accs := make([]stats.Welford, len(probe.Times))
	const batches = 4000
	for i := 0; i < batches; i++ {
		if _, err := r.Run(src.Stream(uint64(i)), probe); err != nil {
			t.Fatal(err)
		}
		for j, v := range probe.Values {
			if probe.Weights[j] != 1 {
				t.Fatalf("unbiased run has weight %v", probe.Weights[j])
			}
			accs[j].Add(v)
		}
	}
	for j, tp := range probe.Times {
		want := rate * tp
		got := accs[j].Mean()
		// 4 sigma of Poisson mean estimate.
		tol := 4 * math.Sqrt(want/batches)
		if math.Abs(got-want) > tol {
			t.Errorf("E[N(%v)] = %v, want %v ± %v", tp, got, want, tol)
		}
	}
}

func TestPureDeathSurvivalMatchesExponential(t *testing.T) {
	const rate, horizon = 0.7, 3.0
	m, alive := buildPureDeath(rate)
	r, err := NewRunner(m, Options{MaxTime: horizon})
	if err != nil {
		t.Fatal(err)
	}
	probe := &Probe{
		Times: []float64{0.5, 1.5, 3.0},
		Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(alive)) },
	}
	src := rng.NewSource(2)
	accs := make([]stats.Welford, len(probe.Times))
	const batches = 20000
	for i := 0; i < batches; i++ {
		if _, err := r.Run(src.Stream(uint64(i)), probe); err != nil {
			t.Fatal(err)
		}
		for j, v := range probe.Values {
			accs[j].Add(v)
		}
	}
	for j, tp := range probe.Times {
		want := math.Exp(-rate * tp)
		got := accs[j].Mean()
		tol := 4 * math.Sqrt(want*(1-want)/batches)
		if math.Abs(got-want) > tol {
			t.Errorf("P(alive at %v) = %v, want %v ± %v", tp, got, want, tol)
		}
	}
}

func TestImportanceSamplingUnbiasedOnPureDeath(t *testing.T) {
	// Bias the death rate by 10x; the weighted estimator must still
	// recover exp(-rate*t).
	const rate, horizon = 0.05, 4.0
	m, alive := buildPureDeath(rate)
	bias := NewBias()
	if err := bias.SetByName(m, "die", 10); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(m, Options{MaxTime: horizon, Bias: bias})
	if err != nil {
		t.Fatal(err)
	}
	probe := &Probe{
		Times: []float64{2, 4},
		Value: func(mk *san.Marking) float64 { return 1 - float64(mk.Tokens(alive)) }, // P(dead)
	}
	src := rng.NewSource(3)
	accs := make([]stats.Welford, len(probe.Times))
	const batches = 30000
	for i := 0; i < batches; i++ {
		if _, err := r.Run(src.Stream(uint64(i)), probe); err != nil {
			t.Fatal(err)
		}
		for j := range probe.Values {
			accs[j].Add(probe.Values[j] * probe.Weights[j])
		}
	}
	for j, tp := range probe.Times {
		want := 1 - math.Exp(-rate*tp)
		got := accs[j].Mean()
		tol := 5 * accs[j].StdErr()
		if math.Abs(got-want) > tol {
			t.Errorf("IS P(dead at %v) = %v, want %v ± %v", tp, got, want, tol)
		}
		// The whole point of IS: relative error far below naive MC's.
		if accs[j].Mean() > 0 && accs[j].StdErr()/accs[j].Mean() > 0.05 {
			t.Errorf("IS relative error at %v too large: %v", tp, accs[j].StdErr()/accs[j].Mean())
		}
	}
}

func TestImportanceSamplingAgreesWithNaiveOnStopMeasure(t *testing.T) {
	// First-passage estimate with and without bias must agree.
	const rate, horizon = 0.3, 2.0
	want := 1 - math.Exp(-rate*horizon)

	run := func(bias *Bias, seed uint64) (float64, float64) {
		m, alive := buildPureDeath(rate)
		r, err := NewRunner(m, Options{
			MaxTime: horizon,
			Bias:    bias,
			Stop:    func(mk *san.Marking) bool { return mk.Tokens(alive) == 0 },
		})
		if err != nil {
			t.Fatal(err)
		}
		src := rng.NewSource(seed)
		var acc stats.Welford
		const batches = 30000
		for i := 0; i < batches; i++ {
			res, err := r.Run(src.Stream(uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			if res.Stopped {
				acc.Add(res.StopWeight)
			} else {
				acc.Add(0)
			}
		}
		return acc.Mean(), acc.StdErr()
	}

	naive, naiveSE := run(nil, 4)
	b := NewBias()
	m, _ := buildPureDeath(rate)
	if err := b.SetByName(m, "die", 5); err != nil {
		t.Fatal(err)
	}
	biased, biasedSE := run(b, 5)

	if math.Abs(naive-want) > 5*naiveSE {
		t.Errorf("naive %v, want %v (se %v)", naive, want, naiveSE)
	}
	if math.Abs(biased-want) > 5*biasedSE {
		t.Errorf("biased %v, want %v (se %v)", biased, want, biasedSE)
	}
}

func TestStopPredicateFirstPassage(t *testing.T) {
	// First passage of a Poisson counter to 3 has Erlang(3, rate) law.
	const rate, horizon = 1.0, 100.0
	m, c := buildPoisson(rate)
	r, err := NewRunner(m, Options{
		MaxTime: horizon,
		Stop:    san.HasTokens(c, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewSource(6)
	var acc stats.Welford
	const batches = 10000
	for i := 0; i < batches; i++ {
		res, err := r.Run(src.Stream(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stopped {
			t.Fatal("trajectory did not stop before a generous horizon")
		}
		if res.StopWeight != 1 {
			t.Fatalf("unbiased stop weight %v", res.StopWeight)
		}
		if res.End != res.StopTime {
			t.Fatalf("End %v != StopTime %v", res.End, res.StopTime)
		}
		acc.Add(res.StopTime)
	}
	want := 3 / rate
	tol := 5 * acc.StdErr()
	if math.Abs(acc.Mean()-want) > tol {
		t.Errorf("mean first passage %v, want %v ± %v", acc.Mean(), want, tol)
	}
}

func TestStopFillsRemainingProbeTimes(t *testing.T) {
	m, c := buildPoisson(5)
	r, err := NewRunner(m, Options{
		MaxTime: 10,
		Stop:    san.HasTokens(c, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	probe := &Probe{
		Times: []float64{8, 9, 10},
		Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(c)) },
	}
	res, err := r.Run(rng.NewStream(7), probe)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.StopTime > 8 {
		t.Fatalf("expected early stop, got %+v", res)
	}
	for i, v := range probe.Values {
		if v != 1 || probe.Weights[i] != 1 {
			t.Fatalf("probe %d: value %v weight %v, want 1, 1", i, v, probe.Weights[i])
		}
	}
}

func TestDeadlockFillsProbes(t *testing.T) {
	m, alive := buildPureDeath(100) // dies almost immediately
	r, err := NewRunner(m, Options{MaxTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	probe := &Probe{
		Times: []float64{5, 10},
		Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(alive)) },
	}
	res, err := r.Run(rng.NewStream(8), probe)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatalf("expected deadlock, got %+v", res)
	}
	for i := range probe.Values {
		if probe.Values[i] != 0 {
			t.Fatalf("probe %d: value %v after death", i, probe.Values[i])
		}
	}
}

func TestProbeAtExactMaxTime(t *testing.T) {
	// A probe at exactly MaxTime must be filled even when no event lands
	// there.
	m, c := buildPoisson(0.001) // nearly no events
	r, err := NewRunner(m, Options{MaxTime: 2})
	if err != nil {
		t.Fatal(err)
	}
	probe := &Probe{
		Times: []float64{2},
		Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(c)) + 7 },
	}
	if _, err := r.Run(rng.NewStream(9), probe); err != nil {
		t.Fatal(err)
	}
	if probe.Values[0] < 7 {
		t.Fatalf("probe at MaxTime not filled: %v", probe.Values[0])
	}
}

func TestInstantActivitiesFireInPriorityOrder(t *testing.T) {
	b := san.NewBuilder("inst")
	start := b.Place("start", 1)
	mid := b.Place("mid", 0)
	out := b.Place("done", 0)
	order := []string{}
	// Lower priority value fires first.
	b.Instant(san.InstantActivity{
		Name:     "second",
		Priority: 2,
		Enabled:  san.HasTokens(mid, 1),
		Input: func(m *san.Marking) {
			order = append(order, "second")
			m.Add(mid, -1)
			m.Add(out, 1)
		},
	})
	b.Instant(san.InstantActivity{
		Name:     "first",
		Priority: 1,
		Enabled:  san.HasTokens(start, 1),
		Input: func(m *san.Marking) {
			order = append(order, "first")
			m.Add(start, -1)
			m.Add(mid, 1)
		},
	})
	b.Timed(san.TimedActivity{Name: "tick", Rate: san.ConstRate(1)})
	m := b.MustBuild()
	r, err := NewRunner(m, Options{MaxTime: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(rng.NewStream(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.InstantFirings != 2 {
		t.Fatalf("instant firings %d", res.InstantFirings)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("firing order %v", order)
	}
}

func TestInstantLivelockDetected(t *testing.T) {
	b := san.NewBuilder("livelock")
	p := b.Place("p", 1)
	b.Instant(san.InstantActivity{
		Name:    "loop",
		Enabled: san.HasTokens(p, 1),
		// No marking change: stays enabled forever.
	})
	b.Timed(san.TimedActivity{Name: "tick", Rate: san.ConstRate(1)})
	m := b.MustBuild()
	r, err := NewRunner(m, Options{MaxTime: 1, MaxInstantFirings: 50})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run(rng.NewStream(11))
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("expected livelock error, got %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	m, _ := buildPoisson(1000)
	r, err := NewRunner(m, Options{MaxTime: 1000, MaxSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run(rng.NewStream(12))
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("expected step-limit error, got %v", err)
	}
}

func TestCaseProbabilities(t *testing.T) {
	b := san.NewBuilder("cases")
	left := b.Place("left", 0)
	right := b.Place("right", 0)
	b.Timed(san.TimedActivity{
		Name: "branch",
		Rate: san.ConstRate(10),
		Cases: []san.Case{
			{Weight: san.ConstWeight(0.3), Output: san.Produce(left, 1)},
			{Weight: san.ConstWeight(0.7), Output: san.Produce(right, 1)},
		},
	})
	m := b.MustBuild()
	r, err := NewRunner(m, Options{MaxTime: 1000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(rng.NewStream(13))
	if err != nil {
		t.Fatal(err)
	}
	mk := m.InitialMarking()
	_ = mk
	total := float64(res.Steps)
	// Re-run with probes to read final marking via probe.
	probe := &Probe{
		Times: []float64{1000},
		Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(left)) },
	}
	probe2 := &Probe{
		Times: []float64{1000},
		Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(right)) },
	}
	res, err = r.Run(rng.NewStream(13), probe, probe2)
	if err != nil {
		t.Fatal(err)
	}
	total = probe.Values[0] + probe2.Values[0]
	frac := probe.Values[0] / total
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("case-0 fraction %v, want ~0.3 (n=%v)", frac, total)
	}
}

func TestTraceObserver(t *testing.T) {
	m, _ := buildPoisson(3)
	trace := &Trace{}
	r, err := NewRunner(m, Options{MaxTime: 2, Observer: trace})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(rng.NewStream(14))
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(trace.Events)) != res.Steps {
		t.Fatalf("trace has %d events, result has %d steps", len(trace.Events), res.Steps)
	}
	prev := 0.0
	for _, ev := range trace.Events {
		if ev.Time < prev {
			t.Fatal("trace times not monotone")
		}
		if ev.Activity != "arrive" {
			t.Fatalf("unexpected activity %q", ev.Activity)
		}
		prev = ev.Time
	}
	trace.Reset()
	if len(trace.Events) != 0 {
		t.Fatal("reset did not clear events")
	}
}

func TestRunnerValidation(t *testing.T) {
	m, _ := buildPoisson(1)
	if _, err := NewRunner(m, Options{}); err == nil {
		t.Fatal("expected error for zero MaxTime")
	}
	if _, err := NewRunner(m, Options{MaxTime: -1}); err == nil {
		t.Fatal("expected error for negative MaxTime")
	}
}

func TestProbeValidation(t *testing.T) {
	m, c := buildPoisson(1)
	r, err := NewRunner(m, Options{MaxTime: 5})
	if err != nil {
		t.Fatal(err)
	}
	value := func(mk *san.Marking) float64 { return float64(mk.Tokens(c)) }
	cases := []*Probe{
		{Times: []float64{2, 1}, Value: value},  // unsorted
		{Times: []float64{-1, 1}, Value: value}, // negative
		{Times: []float64{6}, Value: value},     // beyond MaxTime
		{Times: []float64{1}},                   // nil Value
	}
	for i, p := range cases {
		if _, err := r.Run(rng.NewStream(15), p); err == nil {
			t.Errorf("probe case %d: expected validation error", i)
		}
	}
}

func TestBiasValidation(t *testing.T) {
	m, _ := buildPoisson(1)
	b := NewBias()
	if err := b.SetByName(m, "nope", 2); err == nil {
		t.Fatal("expected unknown-activity error")
	}
	if err := b.Set(0, 0); err == nil {
		t.Fatal("expected invalid-factor error for 0")
	}
	if err := b.Set(0, math.Inf(1)); err == nil {
		t.Fatal("expected invalid-factor error for +Inf")
	}
	if !b.IsNeutral() {
		t.Fatal("bias with no successful sets must be neutral")
	}
	if err := b.Set(0, 3); err != nil {
		t.Fatal(err)
	}
	if b.IsNeutral() || b.Factor(0) != 3 || b.Factor(5) != 1 {
		t.Fatal("bias factors wrong")
	}
	var nilBias *Bias
	if nilBias.Factor(0) != 1 || !nilBias.IsNeutral() {
		t.Fatal("nil bias must be neutral")
	}
}

func TestInvalidRateSurfacesError(t *testing.T) {
	b := san.NewBuilder("badrate")
	p := b.Place("p", 1)
	b.Timed(san.TimedActivity{
		Name:    "bad",
		Enabled: san.HasTokens(p, 1),
		Rate:    san.ConstRate(-1),
	})
	m := b.MustBuild()
	r, err := NewRunner(m, Options{MaxTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(rng.NewStream(16)); err == nil {
		t.Fatal("expected invalid-rate error at runtime")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	m, c := buildPoisson(2)
	r, err := NewRunner(m, Options{MaxTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	probe := &Probe{
		Times: []float64{10},
		Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(c)) },
	}
	res1, err := r.Run(rng.NewStream(77), probe)
	if err != nil {
		t.Fatal(err)
	}
	v1 := probe.Values[0]
	res2, err := r.Run(rng.NewStream(77), probe)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Steps != res2.Steps || v1 != probe.Values[0] {
		t.Fatal("same seed produced different trajectories")
	}
}

func BenchmarkPoissonTrajectory(b *testing.B) {
	m, _ := buildPoisson(10)
	r, err := NewRunner(m, Options{MaxTime: 10})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.NewSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(src.Stream(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAdaptiveBiasUnbiasedOnErlangTarget(t *testing.T) {
	// Force arrivals only while the counter is below 1; the weighted
	// estimate of P(N(t) >= 2) must still match the Erlang(2) CDF.
	const rate, horizon = 0.2, 2.0
	m, c := buildPoisson(rate)
	bias := NewBias()
	err := bias.SetFnByName(m, "arrive", func(mk *san.Marking) float64 {
		if mk.Tokens(c) < 1 {
			return 8
		}
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(m, Options{MaxTime: horizon, Bias: bias})
	if err != nil {
		t.Fatal(err)
	}
	probe := &Probe{
		Times: []float64{horizon},
		Value: func(mk *san.Marking) float64 {
			if mk.Tokens(c) >= 2 {
				return 1
			}
			return 0
		},
	}
	src := rng.NewSource(21)
	var acc stats.Welford
	const batches = 60000
	for i := 0; i < batches; i++ {
		if _, err := r.Run(src.Stream(uint64(i)), probe); err != nil {
			t.Fatal(err)
		}
		acc.Add(probe.Values[0] * probe.Weights[0])
	}
	lt := rate * horizon
	want := 1 - math.Exp(-lt)*(1+lt)
	if math.Abs(acc.Mean()-want) > 5*acc.StdErr() {
		t.Fatalf("adaptive IS %v, want %v (se %v)", acc.Mean(), want, acc.StdErr())
	}
}

func TestAdaptiveBiasValidation(t *testing.T) {
	m, _ := buildPoisson(1)
	b := NewBias()
	if err := b.SetFn(0, nil); err == nil {
		t.Fatal("expected error for nil factor function")
	}
	if err := b.SetFnByName(m, "nope", func(*san.Marking) float64 { return 2 }); err == nil {
		t.Fatal("expected unknown-activity error")
	}
	if err := b.SetFnByName(m, "arrive", func(*san.Marking) float64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	if b.IsNeutral() {
		t.Fatal("bias with adaptive factor must not be neutral")
	}
	// The invalid (zero) factor surfaces at run time.
	r, err := NewRunner(m, Options{MaxTime: 1, Bias: b})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(rng.NewStream(1)); err == nil {
		t.Fatal("expected runtime error for zero adaptive factor")
	}
}

func TestSetFnReplacesConstantAndViceVersa(t *testing.T) {
	m, _ := buildPoisson(1)
	b := NewBias()
	if err := b.SetByName(m, "arrive", 3); err != nil {
		t.Fatal(err)
	}
	if err := b.SetFn(0, func(*san.Marking) float64 { return 5 }); err != nil {
		t.Fatal(err)
	}
	mk := m.InitialMarking()
	if f, err := b.FactorIn(0, mk); err != nil || f != 5 {
		t.Fatalf("FactorIn after SetFn = %v, %v", f, err)
	}
	if b.Factor(0) != 1 {
		t.Fatal("constant Factor must be neutral once an adaptive factor is set")
	}
	if err := b.Set(0, 2); err != nil {
		t.Fatal(err)
	}
	if f, err := b.FactorIn(0, mk); err != nil || f != 2 {
		t.Fatalf("FactorIn after Set = %v, %v", f, err)
	}
}

func TestRunFromValidation(t *testing.T) {
	m, c := buildPoisson(1)
	r, err := NewRunner(m, Options{MaxTime: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunFrom(nil, -1, rng.NewStream(1)); err == nil {
		t.Fatal("expected error for negative start time")
	}
	if _, err := r.RunFrom(nil, 5, rng.NewStream(1)); err == nil {
		t.Fatal("expected error for start time at MaxTime")
	}
	// Starting from a captured mid-trajectory state continues correctly:
	// run to 2, capture, resume from 2 and check the count only grows.
	probe := &Probe{
		Times: []float64{2},
		Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(c)) },
	}
	if _, err := r.Run(rng.NewStream(2), probe); err != nil {
		t.Fatal(err)
	}
	mid := r.Marking().Clone()
	midCount := mid.Tokens(c)
	res, err := r.RunFrom(mid, 2, rng.NewStream(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.End != 5 {
		t.Fatalf("resumed run ended at %v, want MaxTime", res.End)
	}
	if r.Marking().Tokens(c) < midCount {
		t.Fatal("counter decreased after resuming — state not restored")
	}
}

func TestRunFromProbeBeforeStartLeftAtDefault(t *testing.T) {
	m, c := buildPoisson(100)
	r, err := NewRunner(m, Options{MaxTime: 4})
	if err != nil {
		t.Fatal(err)
	}
	probe := &Probe{
		Times: []float64{1, 3},
		Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(c)) + 1 },
	}
	if _, err := r.RunFrom(nil, 2, rng.NewStream(4), probe); err != nil {
		t.Fatal(err)
	}
	if probe.Values[0] != 0 {
		t.Fatalf("probe before start time filled with %v, want default 0", probe.Values[0])
	}
	if probe.Values[1] < 1 {
		t.Fatalf("probe after start time not filled: %v", probe.Values[1])
	}
}

// buildGated returns a birth model with an always-true guard on the arrival
// activity and a never-true guard on a poison activity, both instrumented to
// count predicate evaluations.
func buildGated(alwaysCalls, neverCalls *int) (*san.Model, san.PlaceID) {
	b := san.NewBuilder("gated")
	c := b.Place("count", 0)
	b.Timed(san.TimedActivity{
		Name: "arrive",
		Enabled: func(mk *san.Marking) bool {
			*alwaysCalls++
			return true
		},
		Rate:  san.ConstRate(3),
		Input: san.Produce(c, 1),
	})
	b.Timed(san.TimedActivity{
		Name: "poison",
		Enabled: func(mk *san.Marking) bool {
			*neverCalls++
			return false
		},
		Rate:  san.ConstRate(1e9),
		Input: san.Produce(c, 1000),
	})
	return b.MustBuild(), c
}

func TestConstantGatesBitIdenticalTrajectories(t *testing.T) {
	// Skipping certified-constant gates must not perturb the trajectory:
	// same stream, same probes, bit-identical values.
	var a1, n1, a2, n2 int
	m1, c1 := buildGated(&a1, &n1)
	m2, c2 := buildGated(&a2, &n2)
	plain, err := NewRunner(m1, Options{MaxTime: 5})
	if err != nil {
		t.Fatal(err)
	}
	gated, err := NewRunner(m2, Options{
		MaxTime:       5,
		ConstantGates: map[string]bool{"arrive": true, "poison": false},
	})
	if err != nil {
		t.Fatal(err)
	}
	probeFor := func(c san.PlaceID) *Probe {
		return &Probe{
			Times: []float64{1, 2.5, 5},
			Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(c)) },
		}
	}
	src := rng.NewSource(77)
	for i := 0; i < 50; i++ {
		p1, p2 := probeFor(c1), probeFor(c2)
		r1, err := plain.Run(src.Stream(uint64(i)), p1)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := gated.Run(src.Stream(uint64(i)), p2)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Steps != r2.Steps || r1.End != r2.End {
			t.Fatalf("run %d diverged: %+v vs %+v", i, r1, r2)
		}
		for j := range p1.Values {
			if p1.Values[j] != p2.Values[j] {
				t.Fatalf("run %d probe %d: %v vs %v", i, j, p1.Values[j], p2.Values[j])
			}
		}
	}
}

func TestConstantGatesSkipPredicateCalls(t *testing.T) {
	var always, never int
	m, _ := buildGated(&always, &never)
	r, err := NewRunner(m, Options{
		MaxTime:       2,
		ConstantGates: map[string]bool{"arrive": true, "poison": false},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Builder probing during Build may have evaluated the predicates;
	// only calls made while running count.
	always, never = 0, 0
	if _, err := r.Run(rng.NewStream(9)); err != nil {
		t.Fatal(err)
	}
	if always != 0 || never != 0 {
		t.Fatalf("constant gates still evaluated: arrive=%d poison=%d", always, never)
	}
}

func TestConstantGatesUnknownActivityRejected(t *testing.T) {
	m, _ := buildPoisson(1)
	_, err := NewRunner(m, Options{
		MaxTime:       1,
		ConstantGates: map[string]bool{"no-such-activity": true},
	})
	if err == nil {
		t.Fatal("unknown ConstantGates name must be rejected")
	}
}
