package sim

import (
	"math"
	"testing"

	"ahs/internal/rng"
	"ahs/internal/san"
	"ahs/internal/stats"
)

func TestGeneralRunnerDeterministicArrivals(t *testing.T) {
	// Renewal process with fixed inter-arrival 1.0: exactly floor(5.5)
	// arrivals by t=5.5, on every run.
	b := san.NewBuilder("det")
	c := b.Place("count", 0)
	b.Timed(san.TimedActivity{
		Name:  "arrive",
		Delay: san.Deterministic{Value: 1},
		Input: san.Produce(c, 1),
	})
	m := b.MustBuild()
	g, err := NewGeneralRunner(m, Options{MaxTime: 5.5})
	if err != nil {
		t.Fatal(err)
	}
	probe := &Probe{
		Times: []float64{0.5, 2.5, 5.5},
		Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(c)) },
	}
	for seed := uint64(0); seed < 20; seed++ {
		res, err := g.Run(rng.NewStream(seed), probe)
		if err != nil {
			t.Fatal(err)
		}
		if res.Steps != 5 {
			t.Fatalf("steps %d, want 5", res.Steps)
		}
		want := []float64{0, 2, 5}
		for i := range want {
			if probe.Values[i] != want[i] {
				t.Fatalf("N(%v) = %v, want %v", probe.Times[i], probe.Values[i], want[i])
			}
		}
	}
}

func TestGeneralRunnerUniformRenewalMean(t *testing.T) {
	// Uniform(1,2) inter-arrivals: by the renewal theorem N(t)/t -> 1/1.5.
	b := san.NewBuilder("unif")
	c := b.Place("count", 0)
	b.Timed(san.TimedActivity{
		Name:  "arrive",
		Delay: san.Uniform{Lo: 1, Hi: 2},
		Input: san.Produce(c, 1),
	})
	m := b.MustBuild()
	const horizon = 300.0
	g, err := NewGeneralRunner(m, Options{MaxTime: horizon})
	if err != nil {
		t.Fatal(err)
	}
	probe := &Probe{
		Times: []float64{horizon},
		Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(c)) },
	}
	src := rng.NewSource(5)
	var acc stats.Welford
	for i := 0; i < 300; i++ {
		if _, err := g.Run(src.Stream(uint64(i)), probe); err != nil {
			t.Fatal(err)
		}
		acc.Add(probe.Values[0] / horizon)
	}
	want := 1 / 1.5
	if math.Abs(acc.Mean()-want) > 0.01 {
		t.Fatalf("renewal rate %v, want %v", acc.Mean(), want)
	}
}

func TestGeneralRunnerMatchesRaceRunnerOnExponentialModel(t *testing.T) {
	// Both executors must agree (statistically) on an exponential model.
	const k = 4
	const lambda, mu, horizon = 2.0, 1.5, 3.0
	build := func() (*san.Model, san.PlaceID) {
		b := san.NewBuilder("mm1k")
		q := b.Place("queue", 0)
		b.Timed(san.TimedActivity{
			Name:    "arrive",
			Enabled: func(m *san.Marking) bool { return m.Tokens(q) < k },
			Rate:    san.ConstRate(lambda),
			Input:   san.Produce(q, 1),
		})
		b.Timed(san.TimedActivity{
			Name:    "depart",
			Enabled: san.HasTokens(q, 1),
			Rate:    san.ConstRate(mu),
			Input:   san.Consume(q, 1),
		})
		return b.MustBuild(), q
	}

	estimate := func(run func(stream *rng.Stream, p *Probe) error, q san.PlaceID) *stats.Welford {
		probe := &Probe{
			Times: []float64{horizon},
			Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(q)) },
		}
		src := rng.NewSource(6)
		var acc stats.Welford
		for i := 0; i < 20000; i++ {
			if err := run(src.Stream(uint64(i)), probe); err != nil {
				t.Fatal(err)
			}
			acc.Add(probe.Values[0])
		}
		return &acc
	}

	m1, q1 := build()
	race, err := NewRunner(m1, Options{MaxTime: horizon})
	if err != nil {
		t.Fatal(err)
	}
	raceAcc := estimate(func(s *rng.Stream, p *Probe) error {
		_, err := race.Run(s, p)
		return err
	}, q1)

	m2, q2 := build()
	general, err := NewGeneralRunner(m2, Options{MaxTime: horizon})
	if err != nil {
		t.Fatal(err)
	}
	genAcc := estimate(func(s *rng.Stream, p *Probe) error {
		_, err := general.Run(s, p)
		return err
	}, q2)

	gap := math.Abs(raceAcc.Mean() - genAcc.Mean())
	tol := 5 * (raceAcc.StdErr() + genAcc.StdErr())
	if gap > tol {
		t.Fatalf("executors disagree: race %v vs general %v (tol %v)",
			raceAcc.Mean(), genAcc.Mean(), tol)
	}
}

func TestGeneralRunnerRestartReactivation(t *testing.T) {
	// A deterministic activity that keeps being disabled before completing
	// must never fire: a fast Exp toggles the gate off first (almost
	// always); we use a deterministic disabler to make it certain.
	b := san.NewBuilder("restart")
	gate := b.Place("gate", 1)
	fired := b.Place("fired", 0)
	cycles := b.Place("cycles", 0)
	// slow wants 2 time units of uninterrupted enabling.
	b.Timed(san.TimedActivity{
		Name:    "slow",
		Enabled: san.HasTokens(gate, 1),
		Delay:   san.Deterministic{Value: 2},
		Input:   san.Produce(fired, 1),
	})
	// The toggler closes the gate after 1 time unit, reopens 1 later.
	b.Timed(san.TimedActivity{
		Name:    "close",
		Enabled: san.HasTokens(gate, 1),
		Delay:   san.Deterministic{Value: 1},
		Input:   san.Consume(gate, 1),
	})
	b.Timed(san.TimedActivity{
		Name:    "open",
		Enabled: san.Not(san.HasTokens(gate, 1)),
		Delay:   san.Deterministic{Value: 1},
		Input:   san.Seq(san.Produce(gate, 1), san.Produce(cycles, 1)),
	})
	m := b.MustBuild()
	g, err := NewGeneralRunner(m, Options{MaxTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	probe := &Probe{
		Times: []float64{10},
		Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(fired)) },
	}
	if _, err := g.Run(rng.NewStream(9), probe); err != nil {
		t.Fatal(err)
	}
	if probe.Values[0] != 0 {
		t.Fatalf("restart policy violated: slow activity fired %v times", probe.Values[0])
	}
}

func TestGeneralRunnerStopAndDeadlock(t *testing.T) {
	b := san.NewBuilder("stopdl")
	alive := b.Place("alive", 1)
	b.Timed(san.TimedActivity{
		Name:    "die",
		Enabled: san.HasTokens(alive, 1),
		Delay:   san.Deterministic{Value: 0.5},
		Input:   san.Consume(alive, 1),
	})
	m := b.MustBuild()

	// With a stop predicate: first passage at exactly 0.5.
	g, err := NewGeneralRunner(m, Options{
		MaxTime: 10,
		Stop:    func(mk *san.Marking) bool { return mk.Tokens(alive) == 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(rng.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.StopTime != 0.5 || res.StopWeight != 1 {
		t.Fatalf("stop result %+v", res)
	}

	// Without: deadlock after the death.
	g2, err := NewGeneralRunner(m, Options{MaxTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	probe := &Probe{
		Times: []float64{5, 10},
		Value: func(mk *san.Marking) float64 { return float64(mk.Tokens(alive)) },
	}
	res, err = g2.Run(rng.NewStream(1), probe)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatalf("expected deadlock, got %+v", res)
	}
	if probe.Values[0] != 0 || probe.Values[1] != 0 {
		t.Fatalf("deadlock probes %v", probe.Values)
	}
}

func TestGeneralRunnerRejectsBias(t *testing.T) {
	m, _ := buildPoisson(1)
	b := NewBias()
	if err := b.SetByName(m, "arrive", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGeneralRunner(m, Options{MaxTime: 1, Bias: b}); err == nil {
		t.Fatal("expected bias rejection")
	}
	// A neutral bias is fine.
	if _, err := NewGeneralRunner(m, Options{MaxTime: 1, Bias: NewBias()}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralRunnerValidation(t *testing.T) {
	m, _ := buildPoisson(1)
	if _, err := NewGeneralRunner(m, Options{}); err == nil {
		t.Fatal("expected MaxTime error")
	}
}

func TestRaceRunnerRejectsGeneralDelays(t *testing.T) {
	b := san.NewBuilder("gen")
	b.Timed(san.TimedActivity{Name: "a", Delay: san.Deterministic{Value: 1}})
	m := b.MustBuild()
	if _, err := NewRunner(m, Options{MaxTime: 1}); err == nil {
		t.Fatal("race runner must reject non-exponential activities")
	}
}

func TestGeneralRunnerMixedDistributions(t *testing.T) {
	// Erlang stages feeding a deterministic drain: just exercise the mix
	// and check conservation.
	b := san.NewBuilder("mixed")
	pool := b.Place("pool", 0)
	drained := b.Place("drained", 0)
	b.Timed(san.TimedActivity{
		Name:  "produce",
		Delay: san.Erlang{K: 2, Rate: 4},
		Input: san.Produce(pool, 1),
	})
	b.Timed(san.TimedActivity{
		Name:    "drain",
		Enabled: san.HasTokens(pool, 1),
		Delay:   san.Deterministic{Value: 0.1},
		Input:   san.Move(pool, drained, 1),
	})
	m := b.MustBuild()
	g, err := NewGeneralRunner(m, Options{MaxTime: 50})
	if err != nil {
		t.Fatal(err)
	}
	probe := &Probe{
		Times: []float64{50},
		Value: func(mk *san.Marking) float64 {
			return float64(mk.Tokens(pool) + mk.Tokens(drained))
		},
	}
	res, err := g.Run(rng.NewStream(11), probe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("no events in mixed model")
	}
	// produced tokens must all be in pool or drained.
	if probe.Values[0] <= 0 {
		t.Fatal("conservation check failed")
	}
}

func BenchmarkGeneralRunnerMM1K(b *testing.B) {
	bq := san.NewBuilder("mm1k")
	q := bq.Place("queue", 0)
	bq.Timed(san.TimedActivity{
		Name:    "arrive",
		Enabled: func(m *san.Marking) bool { return m.Tokens(q) < 10 },
		Rate:    san.ConstRate(5),
		Input:   san.Produce(q, 1),
	})
	bq.Timed(san.TimedActivity{
		Name:    "depart",
		Enabled: san.HasTokens(q, 1),
		Rate:    san.ConstRate(4),
		Input:   san.Consume(q, 1),
	})
	m := bq.MustBuild()
	g, err := NewGeneralRunner(m, Options{MaxTime: 10})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.NewSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Run(src.Stream(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
