package structural

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ahs/internal/ctmc"
	"ahs/internal/san"
)

// probeObs is the san.AccessObserver installed during the probe walk.
// Writes always accumulate into the global write set; reads accumulate
// into the currently scoped per-predicate read set, and are discarded
// outside predicate evaluation (effect and rate reads are irrelevant to
// gate constancy).
type probeObs struct {
	writeP, writeE []bool
	readP, readE   []bool
}

func (o *probeObs) scope(readP, readE []bool) { o.readP, o.readE = readP, readE }

func (o *probeObs) ReadPlace(p san.PlaceID) {
	if o.readP != nil {
		o.readP[p] = true
	}
}

func (o *probeObs) ReadExtPlace(p san.ExtPlaceID) {
	if o.readE != nil {
		o.readE[p] = true
	}
}

func (o *probeObs) WritePlace(p san.PlaceID)       { o.writeP[p] = true }
func (o *probeObs) WriteExtPlace(p san.ExtPlaceID) { o.writeE[p] = true }

// column is one observed incidence column: the marking delta (over the
// simple places followed by the ext-place length pseudo-places) of one
// (activity, case) firing. An activity case observed with several distinct
// deltas yields several columns, numbered by variant in discovery order.
type column struct {
	activity string
	caseIdx  int
	variant  int
	delta    []int
}

// rateRange tracks the observed rate extremes of one exponential activity.
type rateRange struct{ min, max float64 }

type prober struct {
	model *san.Model
	opts  Options

	obs      *probeObs
	dims     int
	dimNames []string
	initVec  []int

	timedReadP, timedReadE [][]bool
	instReadP, instReadE   [][]bool
	timedEvaluated         []bool
	instEvaluated          []bool

	seen      map[string]struct{}
	queue     []*san.Marking
	truncated bool

	statesProbed int
	observedMax  []int

	cols     []column
	colIdx   map[string]int
	variants map[string]int
	fired    map[string]bool
	onTimed  []bool
	onInst   []bool

	rates map[string]*rateRange

	rep *replicaTracker
}

func newProber(model *san.Model, opts Options) *prober {
	np, ne := model.NumPlaces(), model.NumExtPlaces()
	p := &prober{
		model: model,
		opts:  opts,
		obs: &probeObs{
			writeP: make([]bool, np),
			writeE: make([]bool, ne),
		},
		dims:           np + ne,
		seen:           make(map[string]struct{}),
		colIdx:         make(map[string]int),
		variants:       make(map[string]int),
		fired:          make(map[string]bool),
		onTimed:        make([]bool, model.NumTimed()),
		onInst:         make([]bool, model.NumInstant()),
		timedEvaluated: make([]bool, model.NumTimed()),
		instEvaluated:  make([]bool, model.NumInstant()),
		rates:          make(map[string]*rateRange),
	}
	p.dimNames = make([]string, p.dims)
	for i := 0; i < np; i++ {
		p.dimNames[i] = model.PlaceName(san.PlaceID(i))
	}
	for i := 0; i < ne; i++ {
		p.dimNames[np+i] = "len(" + model.ExtPlaceName(san.ExtPlaceID(i)) + ")"
	}
	p.observedMax = make([]int, p.dims)
	p.timedReadP = make([][]bool, model.NumTimed())
	p.timedReadE = make([][]bool, model.NumTimed())
	for i := range p.timedReadP {
		p.timedReadP[i] = make([]bool, np)
		p.timedReadE[i] = make([]bool, ne)
	}
	p.instReadP = make([][]bool, model.NumInstant())
	p.instReadE = make([][]bool, model.NumInstant())
	for i := range p.instReadP {
		p.instReadP[i] = make([]bool, np)
		p.instReadE[i] = make([]bool, ne)
	}
	p.rep = newReplicaTracker(p.dimNames)
	return p
}

// vec snapshots the marking onto the analysis dimensions (token counts,
// then ext-place lengths), with the observer detached so bookkeeping reads
// never pollute the access sets.
func (p *prober) vec(mk *san.Marking) []int {
	mk.SetObserver(nil)
	v := make([]int, p.dims)
	np := p.model.NumPlaces()
	for i := 0; i < np; i++ {
		v[i] = mk.Tokens(san.PlaceID(i))
	}
	for i := 0; i < p.model.NumExtPlaces(); i++ {
		v[np+i] = mk.ExtLen(san.ExtPlaceID(i))
	}
	mk.SetObserver(p.obs)
	return v
}

// guard runs fn, converting a model-function panic into an error. The
// structural analyzer refuses to derive facts from a defective model;
// sanlint exists to diagnose those.
func (p *prober) guard(what, activity string, fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%s %q panicked during probe: %v (run sanlint to diagnose)", what, activity, r)
		}
	}()
	fn()
	return nil
}

func (p *prober) timedEnabled(i int, act *san.TimedActivity, mk *san.Marking) (bool, error) {
	if act.Enabled == nil {
		return true, nil
	}
	p.timedEvaluated[i] = true
	p.obs.scope(p.timedReadP[i], p.timedReadE[i])
	defer p.obs.scope(nil, nil)
	var on bool
	err := p.guard("enabling predicate of", act.Name, func() { on = act.EnabledIn(mk) })
	return on, err
}

func (p *prober) instEnabled(i int, act *san.InstantActivity, mk *san.Marking) (bool, error) {
	p.instEvaluated[i] = true
	p.obs.scope(p.instReadP[i], p.instReadE[i])
	defer p.obs.scope(nil, nil)
	var on bool
	err := p.guard("enabling predicate of", act.Name, func() { on = act.EnabledIn(mk) })
	return on, err
}

// observeRate records the rate of an enabled exponential activity for the
// stiffness report.
func (p *prober) observeRate(act *san.TimedActivity, mk *san.Marking) error {
	if !act.Exponential() {
		return nil
	}
	var (
		r    float64
		rerr error
	)
	if err := p.guard("rate function of", act.Name, func() { r, rerr = act.RateIn(mk) }); err != nil {
		return err
	}
	if rerr != nil {
		return rerr
	}
	rr := p.rates[act.Name]
	if rr == nil {
		p.rates[act.Name] = &rateRange{min: r, max: r}
		return nil
	}
	if r < rr.min {
		rr.min = r
	}
	if r > rr.max {
		rr.max = r
	}
	return nil
}

func (p *prober) caseWeights(name string, cases []san.Case, mk *san.Marking) ([]float64, error) {
	if len(cases) == 0 {
		return nil, nil
	}
	var (
		ws   []float64
		werr error
	)
	if err := p.guard("case weights of", name, func() { ws, werr = san.CaseWeightsFor(name, cases, mk, nil) }); err != nil {
		return nil, err
	}
	if werr != nil {
		return nil, werr
	}
	return ws, nil
}

// recordColumn registers the delta of one atomic firing as an incidence
// column. Zero deltas record the firing (for dead-arc facts) but add no
// column: they constrain no invariant.
func (p *prober) recordColumn(activity string, caseIdx int, before, after []int) {
	ac := activity + "|" + strconv.Itoa(caseIdx)
	p.fired[ac] = true
	delta := make([]int, p.dims)
	zero := true
	for i := range delta {
		delta[i] = after[i] - before[i]
		if delta[i] != 0 {
			zero = false
		}
	}
	if zero {
		return
	}
	var b strings.Builder
	b.WriteString(ac)
	for _, d := range delta {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(d))
	}
	key := b.String()
	if _, ok := p.colIdx[key]; ok {
		return
	}
	variant := p.variants[ac]
	p.variants[ac] = variant + 1
	p.colIdx[key] = len(p.cols)
	p.cols = append(p.cols, column{activity: activity, caseIdx: caseIdx, variant: variant, delta: delta})
}

// intern registers a stable marking, reporting whether it was fresh and
// whether it is absorbing. Freshly interned markings are measured
// (observed maxima, replica projections).
func (p *prober) intern(mk *san.Marking) (fresh, absorbing bool) {
	mk.SetObserver(nil)
	key := ctmc.MarkingKey(mk)
	if p.opts.Absorb != nil && p.opts.Absorb(mk) {
		absorbing = true
	}
	mk.SetObserver(p.obs)
	if _, ok := p.seen[key]; ok {
		return false, absorbing
	}
	if len(p.seen) >= p.opts.MaxStates {
		p.truncated = true
		return false, absorbing
	}
	p.seen[key] = struct{}{}
	p.statesProbed++
	v := p.vec(mk)
	for i, x := range v {
		if x > p.observedMax[i] {
			p.observedMax[i] = x
		}
	}
	if p.rep != nil {
		p.rep.project(v)
	}
	return true, absorbing
}

// stabilize resolves the instantaneous closure of mk into the stable
// markings reachable through zero-time firings, recording each atomic
// instantaneous firing as an incidence column. Priority ties are resolved
// deterministically by registration order, exactly as the executors do.
func (p *prober) stabilize(mk *san.Marking) ([]*san.Marking, error) {
	var out []*san.Marking
	var walk func(m *san.Marking, depth int) error
	walk = func(m *san.Marking, depth int) error {
		if depth > p.opts.MaxInstantDepth {
			return fmt.Errorf("instantaneous closure exceeded depth %d (livelock; run sanlint to diagnose)", p.opts.MaxInstantDepth)
		}
		best := -1
		for i := 0; i < p.model.NumInstant(); i++ {
			act := p.model.Instant(i)
			on, err := p.instEnabled(i, act, m)
			if err != nil {
				return err
			}
			if !on {
				continue
			}
			p.onInst[i] = true
			if best < 0 || act.Priority < p.model.Instant(best).Priority {
				best = i
			}
		}
		if best < 0 {
			out = append(out, m)
			return nil
		}
		act := p.model.Instant(best)
		ws, err := p.caseWeights(act.Name, act.Cases, m)
		if err != nil {
			return err
		}
		ncases := len(act.Cases)
		if ncases == 0 {
			ncases = 1
		}
		before := p.vec(m)
		for ci := 0; ci < ncases; ci++ {
			if ws != nil && ci < len(ws) && ws[ci] == 0 {
				continue
			}
			next := m.Clone()
			if err := p.guard("effect of", act.Name, func() { san.FireInstant(act, ci, next) }); err != nil {
				return err
			}
			p.recordColumn(act.Name, ci, before, p.vec(next))
			if err := walk(next, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(mk, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// walk runs the deterministic bounded BFS over the stable marking graph.
func (p *prober) walk() error {
	init := p.model.InitialMarking()
	init.SetObserver(p.obs)
	p.initVec = p.vec(init)

	stable, err := p.stabilize(init)
	if err != nil {
		return err
	}
	for _, st := range stable {
		if fresh, absorbing := p.intern(st); fresh && !absorbing {
			p.queue = append(p.queue, st)
		}
	}

	for len(p.queue) > 0 {
		mk := p.queue[0]
		p.queue = p.queue[1:]
		for i := 0; i < p.model.NumTimed(); i++ {
			act := p.model.Timed(i)
			on, err := p.timedEnabled(i, act, mk)
			if err != nil {
				return err
			}
			if !on {
				continue
			}
			p.onTimed[i] = true
			if err := p.observeRate(act, mk); err != nil {
				return err
			}
			ws, err := p.caseWeights(act.Name, act.Cases, mk)
			if err != nil {
				return err
			}
			ncases := len(act.Cases)
			if ncases == 0 {
				ncases = 1
			}
			before := p.vec(mk)
			for ci := 0; ci < ncases; ci++ {
				if ws != nil && ci < len(ws) && ws[ci] == 0 {
					continue
				}
				succ := mk.Clone()
				if err := p.guard("effect of", act.Name, func() { san.FireTimed(act, ci, succ) }); err != nil {
					return err
				}
				p.recordColumn(act.Name, ci, before, p.vec(succ))
				stable, err := p.stabilize(succ)
				if err != nil {
					return err
				}
				for _, st := range stable {
					if fresh, absorbing := p.intern(st); fresh && !absorbing {
						p.queue = append(p.queue, st)
					}
				}
			}
		}
	}
	return nil
}

// colLabel names a column for T-semiflow terms: "activity/case", plus a
// "#variant" suffix when the case was observed with several deltas.
func (p *prober) colLabel(c column) string {
	label := c.activity + "/" + strconv.Itoa(c.caseIdx)
	if p.variants[c.activity+"|"+strconv.Itoa(c.caseIdx)] > 1 {
		label += "#" + strconv.Itoa(c.variant)
	}
	return label
}

// facts assembles the ModelFacts artifact from the finished walk.
func (p *prober) facts() *ModelFacts {
	exhaustive := !p.truncated
	f := &ModelFacts{
		Model:             p.model.Name(),
		Exhaustive:        exhaustive,
		StatesProbed:      p.statesProbed,
		TransitionColumns: len(p.cols),
		StateSpaceBound:   "unknown",
	}
	if exhaustive {
		f.StateSpaceBound = strconv.Itoa(p.statesProbed)
	}

	semis := pSemiflows(p.cols, p.dims, p.opts)
	bounds := semiflowBounds(semis, p.initVec, p.dims)
	f.Invariants = renderInvariants(semis, p.initVec, p.dimNames, p.opts.MaxSemiflows)
	f.TSemiflows = tSemiflowFacts(p, p.opts)

	f.Places = make([]PlaceFact, p.dims)
	for i := 0; i < p.dims; i++ {
		// Only an exhaustive walk certifies anything: the observed
		// supremum is then exact, and the semiflow bound (complete
		// incidence columns) can only confirm it.
		certified := -1
		if exhaustive {
			certified = p.observedMax[i]
			if b := bounds[i]; b >= 0 && b < certified {
				certified = b
			}
		}
		f.Places[i] = PlaceFact{
			Name:           p.dimNames[i],
			Initial:        p.initVec[i],
			ObservedMax:    p.observedMax[i],
			CertifiedBound: certified,
			InvariantBound: bounds[i],
		}
	}

	f.Stiffness = p.stiffness()
	f.Replicas = p.rep.facts(p, exhaustive)
	if exhaustive {
		f.ConstantGates = p.constantGates()
		f.DeadArcs = p.deadArcs()
	}
	return f
}

func (p *prober) stiffness() StiffnessFact {
	var s StiffnessFact
	names := make([]string, 0, len(p.rates))
	for name := range p.rates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rr := p.rates[name]
		if s.MinActivity == "" || rr.min < s.MinRate {
			s.MinRate, s.MinActivity = rr.min, name
		}
		if s.MaxActivity == "" || rr.max > s.MaxRate {
			s.MaxRate, s.MaxActivity = rr.max, name
		}
	}
	if s.MinActivity != "" && s.MinRate > 0 {
		s.Spread = s.MaxRate / s.MinRate
		s.Flagged = s.Spread > p.opts.StiffnessThreshold
	}
	return s
}

// constantGates reports every enabling predicate whose accumulated read
// set is disjoint from the global effect write set. On an exhaustive walk
// the read set covers every reachable evaluation and the write set every
// reachable effect, so the predicate's value provably never changes from
// its initial evaluation.
func (p *prober) constantGates() []GateFact {
	disjoint := func(readP, readE []bool) bool {
		for i, r := range readP {
			if r && p.obs.writeP[i] {
				return false
			}
		}
		for i, r := range readE {
			if r && p.obs.writeE[i] {
				return false
			}
		}
		return true
	}
	init := p.model.InitialMarking()
	var out []GateFact
	for i := 0; i < p.model.NumTimed(); i++ {
		act := p.model.Timed(i)
		if act.Enabled == nil || !p.timedEvaluated[i] || !disjoint(p.timedReadP[i], p.timedReadE[i]) {
			continue
		}
		var on bool
		if p.guard("enabling predicate of", act.Name, func() { on = act.EnabledIn(init) }) != nil {
			continue
		}
		out = append(out, GateFact{Activity: act.Name, Kind: "timed", Enabled: on})
	}
	for i := 0; i < p.model.NumInstant(); i++ {
		act := p.model.Instant(i)
		if !p.instEvaluated[i] || !disjoint(p.instReadP[i], p.instReadE[i]) {
			continue
		}
		var on bool
		if p.guard("enabling predicate of", act.Name, func() { on = act.EnabledIn(init) }) != nil {
			continue
		}
		out = append(out, GateFact{Activity: act.Name, Kind: "instant", Enabled: on})
	}
	return out
}

// deadArcs reports activity cases that never fired during the exhaustive
// walk. Case -1 covers a whole activity that was never enabled.
func (p *prober) deadArcs() []DeadArcFact {
	var out []DeadArcFact
	perActivity := func(name string, ncases int, enabled bool, kind string) {
		if !enabled {
			out = append(out, DeadArcFact{
				Activity: name,
				Case:     -1,
				Reason:   kind + " activity is enabled in no reachable marking",
			})
			return
		}
		if ncases == 0 {
			ncases = 1
		}
		for ci := 0; ci < ncases; ci++ {
			if !p.fired[name+"|"+strconv.Itoa(ci)] {
				out = append(out, DeadArcFact{
					Activity: name,
					Case:     ci,
					Reason:   "case has zero weight in every reachable marking where the activity is enabled",
				})
			}
		}
	}
	for i := 0; i < p.model.NumTimed(); i++ {
		act := p.model.Timed(i)
		perActivity(act.Name, len(act.Cases), p.onTimed[i], "timed")
	}
	for i := 0; i < p.model.NumInstant(); i++ {
		act := p.model.Instant(i)
		perActivity(act.Name, len(act.Cases), p.onInst[i], "instantaneous")
	}
	return out
}
