package structural

import (
	"fmt"
	"math/big"
	"sort"
	"strconv"
	"strings"
)

// Replica-symmetry (lumpability) detection. The core model builds its
// per-vehicle submodels through san.Builder.Rep, which names everything
// with a bracketed replica index: "vehicle[3].fm", "one_vehicle[3].L2".
// When every replica index has an identical canonical signature — same
// local places and initial markings, same observed incidence columns and
// rate ranges up to renaming "[i]" to "[*]" — swapping two replicas is an
// automorphism of the marking graph, so the chain lumps over replica
// multisets: the L^R local-state product collapses to C(L+R-1, R).
// Extended-place contents (vehicle ids stored in the platoon arrays) are
// treated as exchangeable tokens; core's deterministic slot reuse keeps
// id assignment a function of the abstract state, which is what justifies
// the exchange.

// parseIndexed splits a bracketed replica name: "vehicle[3].fm" yields
// canonical "vehicle[*].fm" and index 3.
func parseIndexed(name string) (canon string, idx int, ok bool) {
	i := strings.IndexByte(name, '[')
	if i < 0 {
		return "", 0, false
	}
	j := strings.IndexByte(name[i:], ']')
	if j < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(name[i+1 : i+j])
	if err != nil {
		return "", 0, false
	}
	return name[:i+1] + "*" + name[i+j:], n, true
}

// replicaTracker accumulates per-replica local-state projections during
// the walk and derives the symmetry facts afterwards.
type replicaTracker struct {
	indices  []int       // sorted distinct replica indices
	pos      map[int]int // replica index -> position in indices
	dimCanon []string    // per dim: canonical name ("" when unindexed)
	dimIdx   []int       // per dim: replica index, -1 when unindexed
	dimsOf   [][]int     // per position: dim ids sorted by canonical name
	proj     map[string]struct{}
}

// newReplicaTracker inspects the dimension names; it returns nil when the
// model has no bracketed replicas.
func newReplicaTracker(dimNames []string) *replicaTracker {
	t := &replicaTracker{
		pos:      make(map[int]int),
		dimCanon: make([]string, len(dimNames)),
		dimIdx:   make([]int, len(dimNames)),
		proj:     make(map[string]struct{}),
	}
	seen := make(map[int]bool)
	for d, name := range dimNames {
		t.dimIdx[d] = -1
		if canon, idx, ok := parseIndexed(name); ok {
			t.dimCanon[d] = canon
			t.dimIdx[d] = idx
			seen[idx] = true
		}
	}
	if len(seen) == 0 {
		return nil
	}
	for idx := range seen {
		t.indices = append(t.indices, idx)
	}
	sort.Ints(t.indices)
	for p, idx := range t.indices {
		t.pos[idx] = p
	}
	t.dimsOf = make([][]int, len(t.indices))
	for d, idx := range t.dimIdx {
		if idx < 0 {
			continue
		}
		p := t.pos[idx]
		t.dimsOf[p] = append(t.dimsOf[p], d)
	}
	for p := range t.dimsOf {
		dims := t.dimsOf[p]
		sort.Slice(dims, func(a, b int) bool { return t.dimCanon[dims[a]] < t.dimCanon[dims[b]] })
	}
	return t
}

// project records the local-state projection of every replica in one
// visited state vector.
func (t *replicaTracker) project(v []int) {
	var b strings.Builder
	for p := range t.dimsOf {
		b.Reset()
		for _, d := range t.dimsOf[p] {
			b.WriteString(t.dimCanon[d])
			b.WriteByte('=')
			b.WriteString(strconv.Itoa(v[d]))
			b.WriteByte(';')
		}
		t.proj[b.String()] = struct{}{}
	}
}

// signature builds the canonical structural signature of one replica
// position: its local dims with initial markings, the incidence columns of
// its activities (deltas rendered with "[i]" canonicalised away), and the
// observed rate range of each of its exponential activities.
func (t *replicaTracker) signature(p *prober, pos int) string {
	idx := t.indices[pos]
	var parts []string
	for _, d := range t.dimsOf[pos] {
		parts = append(parts, fmt.Sprintf("dim:%s=%d", t.dimCanon[d], p.initVec[d]))
	}
	canonDim := func(d int) string {
		if t.dimIdx[d] == idx {
			return t.dimCanon[d]
		}
		return p.dimNames[d] // cross-replica coupling stays literal and breaks symmetry
	}
	for _, c := range p.cols {
		canonAct, actIdx, ok := parseIndexed(c.activity)
		if !ok || actIdx != idx {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "col:%s/%d:", canonAct, c.caseIdx)
		for d, v := range c.delta {
			if v == 0 {
				continue
			}
			fmt.Fprintf(&b, "%s=%d;", canonDim(d), v)
		}
		parts = append(parts, b.String())
	}
	for name, rr := range p.rates {
		canonAct, actIdx, ok := parseIndexed(name)
		if !ok || actIdx != idx {
			continue
		}
		parts = append(parts, fmt.Sprintf("rate:%s=%v..%v", canonAct, rr.min, rr.max))
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

// facts derives the ReplicaFacts, or nil for replica-free models.
func (t *replicaTracker) facts(p *prober, exhaustive bool) *ReplicaFacts {
	if t == nil || len(t.indices) == 0 {
		return nil
	}
	famSet := make(map[string]bool)
	for d, idx := range t.dimIdx {
		if idx >= 0 {
			famSet[p.dimNames[d][:strings.IndexByte(p.dimNames[d], '[')]] = true
		}
	}
	for _, c := range p.cols {
		if _, _, ok := parseIndexed(c.activity); ok {
			famSet[c.activity[:strings.IndexByte(c.activity, '[')]] = true
		}
	}
	families := make([]string, 0, len(famSet))
	for f := range famSet {
		families = append(families, f)
	}
	sort.Strings(families)

	rf := &ReplicaFacts{
		Replicas:    len(t.indices),
		Families:    families,
		LocalStates: len(t.proj),
	}
	// Symmetry is only claimed on an exhaustive walk: a truncated one may
	// simply not have reached the states that distinguish two replicas.
	if exhaustive && len(t.indices) >= 2 {
		sig := t.signature(p, 0)
		rf.Symmetric = true
		for pos := 1; pos < len(t.indices); pos++ {
			if t.signature(p, pos) != sig {
				rf.Symmetric = false
				break
			}
		}
	}
	L := int64(rf.LocalStates)
	R := int64(rf.Replicas)
	rf.FullLocalProduct = new(big.Int).Exp(big.NewInt(L), big.NewInt(R), nil).String()
	rf.QuotientBound = new(big.Int).Binomial(L+R-1, R).String()
	return rf
}
