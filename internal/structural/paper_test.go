package structural_test

import (
	"testing"

	"ahs"
	"ahs/internal/core"
	"ahs/internal/ctmc"
	"ahs/internal/san"
	"ahs/internal/structural"
)

// paperSystems builds the four DD/DC/CD/CC Table 3 variants in the reduced
// form used by ahs-lint and the exact CTMC solver (n=1, no cumulative
// outcome counters).
func paperSystems(t *testing.T) []*core.AHS {
	t.Helper()
	base := core.DefaultParams().WithPlatoonSize(1)
	base.TrackOutcomes = false
	systems, err := core.BuildVariants(base, ahs.AllStrategies())
	if err != nil {
		t.Fatalf("building paper variants: %v", err)
	}
	return systems
}

// TestPaperModelFactsAgreeWithExploration is the ISSUE's cross-validation
// acceptance criterion: for all four paper models the certified per-place
// bounds and the state-space bound must agree with exhaustive reachability
// exploration — explored states ≤ state bound, per-place maximum tokens ≤
// certified bound.
func TestPaperModelFactsAgreeWithExploration(t *testing.T) {
	for _, sys := range paperSystems(t) {
		sys := sys
		t.Run(sys.Params.Strategy.String(), func(t *testing.T) {
			facts, err := structural.Analyze(sys.Model, structural.Options{
				MaxStates: 50_000,
				Absorb:    sys.Unsafe,
			})
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if !facts.Exhaustive {
				t.Fatal("paper-model walk must be exhaustive at 50k states")
			}

			graph, err := ctmc.Explore(sys.Model, ctmc.ExploreOptions{
				MaxStates: 50_000,
				Absorb:    sys.Unsafe,
			})
			if err != nil {
				t.Fatalf("ctmc.Explore: %v", err)
			}

			bound := facts.StateBound()
			if bound <= 0 {
				t.Fatalf("no certified state bound: %q", facts.StateSpaceBound)
			}
			if len(graph.States) > bound {
				t.Errorf("explored %d states > certified bound %d", len(graph.States), bound)
			}

			// Per-place maxima over the explored graph vs certified bounds.
			model := sys.Model
			for _, mk := range graph.States {
				for p := 0; p < model.NumPlaces(); p++ {
					name := model.PlaceName(san.PlaceID(p))
					b := facts.PlaceBound(name)
					if b < 0 {
						t.Fatalf("place %s has no certified bound on an exhaustive walk", name)
					}
					if got := mk.Tokens(san.PlaceID(p)); got > b {
						t.Errorf("place %s holds %d tokens in an explored state, certified bound %d", name, got, b)
					}
				}
				for p := 0; p < model.NumExtPlaces(); p++ {
					name := "len(" + model.ExtPlaceName(san.ExtPlaceID(p)) + ")"
					b := facts.PlaceBound(name)
					if b < 0 {
						t.Fatalf("pseudo-place %s has no certified bound on an exhaustive walk", name)
					}
					if got := mk.ExtLen(san.ExtPlaceID(p)); got > b {
						t.Errorf("%s is %d in an explored state, certified bound %d", name, got, b)
					}
				}
			}

			// The algebraic invariant bounds, where present, must confirm
			// the walk-certified ones.
			for _, pf := range facts.Places {
				if pf.InvariantBound >= 0 && pf.InvariantBound < pf.ObservedMax {
					t.Errorf("place %s: semiflow bound %d below observed max %d — unsound invariant",
						pf.Name, pf.InvariantBound, pf.ObservedMax)
				}
			}

			// Every invariant must hold in every explored marking.
			for _, inv := range facts.Invariants {
				for _, mk := range graph.States {
					got := evalInvariant(t, model, inv, mk)
					if got != inv.Value {
						t.Fatalf("invariant %+v evaluates to %d (want %d) in marking %s",
							inv, got, inv.Value, mk.Summary())
					}
				}
			}
		})
	}
}

func evalInvariant(t *testing.T, model *san.Model, inv structural.Invariant, mk *san.Marking) int {
	t.Helper()
	total := 0
	for _, term := range inv.Terms {
		if id, ok := model.PlaceByName(term.Place); ok {
			total += term.Coeff * mk.Tokens(id)
			continue
		}
		name := term.Place
		if len(name) > 5 && name[:4] == "len(" && name[len(name)-1] == ')' {
			if id, ok := model.ExtPlaceByName(name[4 : len(name)-1]); ok {
				total += term.Coeff * mk.ExtLen(id)
				continue
			}
		}
		t.Fatalf("invariant term %q names no place", term.Place)
	}
	return total
}

// TestPaperModelStiffness pins the paper's stiffness profile: the spread
// between the slowest failure rate (λ = 1e-5/hr) and the fastest maneuver
// rate (TIEN at 30/hr) is ~3e6, above the 1e6 flag threshold. This is a
// genuine property of the models — it is exactly why the paper needs
// importance sampling for the Monte Carlo study.
func TestPaperModelStiffness(t *testing.T) {
	for _, sys := range paperSystems(t) {
		facts, err := structural.Analyze(sys.Model, structural.Options{
			MaxStates: 50_000,
			Absorb:    sys.Unsafe,
		})
		if err != nil {
			t.Fatalf("%s: %v", sys.Params.Strategy, err)
		}
		s := facts.Stiffness
		if !s.Flagged {
			t.Errorf("%s: stiffness not flagged (spread %.3g); the paper models are stiff by construction",
				sys.Params.Strategy, s.Spread)
		}
		if s.Spread < 1e6 || s.Spread > 1e7 {
			t.Errorf("%s: spread %.3g outside the expected ~3e6 decade", sys.Params.Strategy, s.Spread)
		}
	}
}

// TestPaperModelReplicaFacts asserts the replica layer is recognised. At
// n=1 the reduced model still instantiates per-slot replicas (slots =
// lanes·n); symmetry across slots is reported when the observed structure
// is identical.
func TestPaperModelReplicaFacts(t *testing.T) {
	sys := paperSystems(t)[0]
	facts, err := structural.Analyze(sys.Model, structural.Options{
		MaxStates: 50_000,
		Absorb:    sys.Unsafe,
	})
	if err != nil {
		t.Fatal(err)
	}
	rf := facts.Replicas
	if rf == nil {
		t.Fatal("paper model must report replica facts")
	}
	if rf.Replicas != sys.Slots() {
		t.Errorf("Replicas = %d, want %d slots", rf.Replicas, sys.Slots())
	}
	if rf.LocalStates < 2 {
		t.Errorf("LocalStates = %d, want >= 2", rf.LocalStates)
	}
}
