package structural

import (
	"strings"
	"testing"

	"ahs/internal/san"
)

// ring builds the simplest conservative model: k tokens cycling A -> B -> A.
func ring(t *testing.T, tokens int) *san.Model {
	t.Helper()
	b := san.NewBuilder("ring")
	a := b.Place("A", tokens)
	bb := b.Place("B", 0)
	b.Timed(san.TimedActivity{
		Name:    "ab",
		Enabled: san.HasTokens(a, 1),
		Rate:    san.ConstRate(1),
		Input:   san.Move(a, bb, 1),
	})
	b.Timed(san.TimedActivity{
		Name:    "ba",
		Enabled: san.HasTokens(bb, 1),
		Rate:    san.ConstRate(2),
		Input:   san.Move(bb, a, 1),
	})
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build ring: %v", err)
	}
	return m
}

func analyze(t *testing.T, m *san.Model, opts Options) *ModelFacts {
	t.Helper()
	f, err := Analyze(m, opts)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", m.Name(), err)
	}
	return f
}

func TestRingInvariantAndBounds(t *testing.T) {
	f := analyze(t, ring(t, 2), Options{})
	if !f.Exhaustive {
		t.Fatal("ring walk should be exhaustive")
	}
	if f.StatesProbed != 3 { // (2,0) (1,1) (0,2)
		t.Errorf("StatesProbed = %d, want 3", f.StatesProbed)
	}
	if f.StateSpaceBound != "3" {
		t.Errorf("StateSpaceBound = %q, want 3", f.StateSpaceBound)
	}
	if len(f.Invariants) != 1 {
		t.Fatalf("Invariants = %+v, want exactly one (A+B=2)", f.Invariants)
	}
	inv := f.Invariants[0]
	if inv.Value != 2 || len(inv.Terms) != 2 {
		t.Errorf("invariant = %+v, want A+B = 2", inv)
	}
	for _, term := range inv.Terms {
		if term.Coeff != 1 {
			t.Errorf("invariant coefficient = %+v, want 1", term)
		}
	}
	for _, pf := range f.Places {
		if pf.CertifiedBound != 2 || pf.ObservedMax != 2 || pf.InvariantBound != 2 {
			t.Errorf("place fact %+v, want observed=certified=invariant bound 2", pf)
		}
	}
	// The ab/ba cycle is the single T-semiflow.
	if len(f.TSemiflows) != 1 || len(f.TSemiflows[0].Terms) != 2 {
		t.Errorf("TSemiflows = %+v, want the single ab/ba cycle", f.TSemiflows)
	}
}

func TestRingStiffness(t *testing.T) {
	f := analyze(t, ring(t, 1), Options{})
	s := f.Stiffness
	if s.MinRate != 1 || s.MaxRate != 2 || s.Spread != 2 {
		t.Errorf("stiffness = %+v, want min 1 (ab), max 2 (ba)", s)
	}
	if s.MinActivity != "ab" || s.MaxActivity != "ba" {
		t.Errorf("stiffness activities = %q/%q, want ab/ba", s.MinActivity, s.MaxActivity)
	}
	if s.Flagged {
		t.Error("spread 2 must not be flagged at the default 1e6 threshold")
	}
	f = analyze(t, ring(t, 1), Options{StiffnessThreshold: 1.5})
	if !f.Stiffness.Flagged {
		t.Error("spread 2 must be flagged at threshold 1.5")
	}
}

func TestTruncatedWalkCertifiesNothing(t *testing.T) {
	f := analyze(t, ring(t, 2), Options{MaxStates: 1})
	if f.Exhaustive {
		t.Fatal("MaxStates=1 walk must not be exhaustive")
	}
	if f.StateSpaceBound != "unknown" {
		t.Errorf("StateSpaceBound = %q, want unknown", f.StateSpaceBound)
	}
	for _, pf := range f.Places {
		if pf.CertifiedBound != -1 {
			t.Errorf("truncated walk certified bound %+v", pf)
		}
	}
	if len(f.ConstantGates) != 0 || len(f.DeadArcs) != 0 {
		t.Error("truncated walk must not claim gate or dead-arc facts")
	}
	if f.StateBound() != 0 {
		t.Errorf("StateBound() = %d, want 0 for unknown", f.StateBound())
	}
}

func TestConstantGateDetection(t *testing.T) {
	b := san.NewBuilder("gates")
	mode := b.Place("mode", 1) // never written: gates on it are constant
	work := b.Place("work", 1)
	done := b.Place("done", 0)
	b.Timed(san.TimedActivity{
		Name:    "run",
		Enabled: san.AllOf(san.HasTokens(mode, 1), san.HasTokens(work, 1)),
		Rate:    san.ConstRate(1),
		Input:   san.Move(work, done, 1),
	})
	b.Timed(san.TimedActivity{
		Name:    "blocked",
		Enabled: san.HasTokens(mode, 2), // constant false
		Rate:    san.ConstRate(1),
		Input:   san.Consume(mode, 1),
	})
	b.Timed(san.TimedActivity{
		Name:    "reset",
		Enabled: san.HasTokens(done, 1), // reads a written place: dynamic
		Rate:    san.ConstRate(1),
		Input:   san.Move(done, work, 1),
	})
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	f := analyze(t, m, Options{})
	if !f.Exhaustive {
		t.Fatal("walk should be exhaustive")
	}
	got := map[string]bool{}
	for _, g := range f.ConstantGates {
		if g.Kind != "timed" {
			t.Errorf("gate %+v has kind %q, want timed", g, g.Kind)
		}
		got[g.Activity] = g.Enabled
	}
	// "run" reads mode (unwritten) AND work (written): not constant.
	// "blocked" reads only mode: constant false. "reset" reads done: dynamic.
	want := map[string]bool{"blocked": false}
	if len(got) != len(want) || got["blocked"] != false {
		t.Errorf("ConstantGates = %v, want %v", got, want)
	}
	cg := f.ConstantTimedGates()
	if len(cg) != 1 || cg["blocked"] != false {
		t.Errorf("ConstantTimedGates() = %v, want map[blocked:false]", cg)
	}
	// "blocked" never fires: it is also a dead arc.
	foundDead := false
	for _, d := range f.DeadArcs {
		if d.Activity == "blocked" && d.Case == -1 {
			foundDead = true
		}
	}
	if !foundDead {
		t.Errorf("DeadArcs = %+v, want blocked reported dead", f.DeadArcs)
	}
}

func TestDeadCaseDetection(t *testing.T) {
	b := san.NewBuilder("deadcase")
	a := b.Place("A", 1)
	bb := b.Place("B", 0)
	b.Timed(san.TimedActivity{
		Name:    "go",
		Enabled: san.HasTokens(a, 1),
		Rate:    san.ConstRate(1),
		Input:   san.Consume(a, 1),
		Cases: []san.Case{
			{Weight: san.ConstWeight(1), Output: san.Produce(bb, 1)},
			{Weight: san.ConstWeight(0), Output: san.Produce(bb, 2)},
		},
	})
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	f := analyze(t, m, Options{})
	var dead []DeadArcFact
	for _, d := range f.DeadArcs {
		if d.Activity == "go" {
			dead = append(dead, d)
		}
	}
	if len(dead) != 1 || dead[0].Case != 1 {
		t.Errorf("DeadArcs = %+v, want exactly case 1 of go", f.DeadArcs)
	}
}

func TestExtPlaceLengthPseudoPlace(t *testing.T) {
	b := san.NewBuilder("ext")
	pool := b.Place("pool", 2)
	q := b.ExtPlace("queue", nil)
	b.Timed(san.TimedActivity{
		Name:    "enqueue",
		Enabled: san.HasTokens(pool, 1),
		Rate:    san.ConstRate(1),
		Input: func(mk *san.Marking) {
			mk.Add(pool, -1)
			mk.ExtAppend(q, mk.ExtLen(q))
		},
	})
	b.Timed(san.TimedActivity{
		Name: "dequeue",
		Enabled: func(mk *san.Marking) bool {
			return mk.ExtLen(q) > 0
		},
		Rate: san.ConstRate(1),
		Input: func(mk *san.Marking) {
			mk.ExtRemoveAt(q, 0)
			mk.Add(pool, 1)
		},
	})
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	f := analyze(t, m, Options{})
	if !f.Exhaustive {
		t.Fatal("walk should be exhaustive")
	}
	lenFact := findPlace(t, f, "len(queue)")
	if lenFact.ObservedMax != 2 || lenFact.CertifiedBound != 2 {
		t.Errorf("len(queue) fact = %+v, want bound 2", lenFact)
	}
	// pool + len(queue) is conserved at 2.
	found := false
	for _, inv := range f.Invariants {
		names := make([]string, 0, len(inv.Terms))
		for _, term := range inv.Terms {
			names = append(names, term.Place)
		}
		if inv.Value == 2 && len(names) == 2 &&
			strings.Join(names, "+") == "pool+len(queue)" {
			found = true
		}
	}
	if !found {
		t.Errorf("Invariants = %+v, want pool+len(queue)=2", f.Invariants)
	}
}

func findPlace(t *testing.T, f *ModelFacts, name string) PlaceFact {
	t.Helper()
	for _, pf := range f.Places {
		if pf.Name == name {
			return pf
		}
	}
	t.Fatalf("place %q not in facts", name)
	return PlaceFact{}
}

// buildReplicated builds n identical single-token replicas, optionally
// skewing one replica's rate to break symmetry.
func buildReplicated(t *testing.T, n int, skew bool) *san.Model {
	t.Helper()
	b := san.NewBuilder("reps")
	b.Rep("cell", n, func(rb *san.Builder, i int) {
		idle := rb.Place("idle", 1)
		busy := rb.Place("busy", 0)
		rate := 1.0
		if skew && i == 0 {
			rate = 5.0
		}
		rb.Timed(san.TimedActivity{
			Name:    "start",
			Enabled: san.HasTokens(idle, 1),
			Rate:    san.ConstRate(rate),
			Input:   san.Move(idle, busy, 1),
		})
		rb.Timed(san.TimedActivity{
			Name:    "stop",
			Enabled: san.HasTokens(busy, 1),
			Rate:    san.ConstRate(2),
			Input:   san.Move(busy, idle, 1),
		})
	})
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestReplicaSymmetryDetected(t *testing.T) {
	f := analyze(t, buildReplicated(t, 3, false), Options{})
	rf := f.Replicas
	if rf == nil {
		t.Fatal("replica facts missing")
	}
	if rf.Replicas != 3 || !rf.Symmetric {
		t.Fatalf("replica facts = %+v, want 3 symmetric replicas", rf)
	}
	if rf.LocalStates != 2 {
		t.Errorf("LocalStates = %d, want 2 (idle/busy)", rf.LocalStates)
	}
	if rf.FullLocalProduct != "8" { // 2^3
		t.Errorf("FullLocalProduct = %q, want 8", rf.FullLocalProduct)
	}
	if rf.QuotientBound != "4" { // C(2+3-1, 3) = C(4,3)
		t.Errorf("QuotientBound = %q, want 4", rf.QuotientBound)
	}
	if len(rf.Families) != 2 { // place family "cell" and activity family "cell"
		// Families come from both dim names and activity names; the shared
		// base "cell" dedupes to one entry.
		t.Logf("families: %v", rf.Families)
	}
}

func TestReplicaAsymmetryDetected(t *testing.T) {
	f := analyze(t, buildReplicated(t, 3, true), Options{})
	rf := f.Replicas
	if rf == nil {
		t.Fatal("replica facts missing")
	}
	if rf.Symmetric {
		t.Error("skewed rate must break replica symmetry")
	}
}

func TestAbsorbStopsExpansion(t *testing.T) {
	m := ring(t, 2)
	bID, _ := m.PlaceByName("B")
	f := analyze(t, m, Options{
		Absorb: func(mk *san.Marking) bool { return mk.Tokens(bID) >= 1 },
	})
	// (2,0) expands; (1,1) and (0,2)... (0,2) is only reachable through
	// (1,1), which is absorbing, so the walk sees exactly 2 states.
	if f.StatesProbed != 2 {
		t.Errorf("StatesProbed = %d, want 2 with absorption at B>=1", f.StatesProbed)
	}
}

func TestPanickingEffectIsAnError(t *testing.T) {
	b := san.NewBuilder("broken")
	a := b.Place("A", 1)
	b.Timed(san.TimedActivity{
		Name:    "bad",
		Enabled: san.HasTokens(a, 1),
		Rate:    san.ConstRate(1),
		Input:   san.Consume(a, 2), // drives A negative: panics
	})
	m, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := Analyze(m, Options{}); err == nil {
		t.Fatal("Analyze must fail on a panicking effect")
	} else if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error %q should name the offending activity", err)
	}
}

func TestFarkasAbandonsOnRowCap(t *testing.T) {
	f := analyze(t, ring(t, 2), Options{MaxEliminationRows: 1})
	if len(f.Invariants) != 0 {
		t.Errorf("Invariants = %+v, want none when elimination is capped", f.Invariants)
	}
	// Bounds from the exhaustive walk survive without the algebra.
	for _, pf := range f.Places {
		if pf.CertifiedBound != 2 {
			t.Errorf("walk-certified bound lost: %+v", pf)
		}
		if pf.InvariantBound != -1 {
			t.Errorf("InvariantBound = %d, want -1 when capped", pf.InvariantBound)
		}
	}
}
