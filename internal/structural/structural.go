// Package structural computes structural facts about a built san.Model
// without spending any simulation budget on it: conservation invariants
// (P-semiflows) and the per-place token bounds they certify, T-semiflows,
// a state-space size bound, a stiffness report over the exponential rate
// scales, replica-symmetry (lumpability) detection over the bracketed
// replica families, and dead-arc / constant-gate elimination facts.
//
// SAN gates in this codebase are opaque Go closures, so the incidence
// matrix cannot be read off a net description. Instead Analyze walks the
// bounded marking graph deterministically (the same reachability machinery
// as internal/ctmc, see ctmc.MarkingKey) and observes, for every activity
// case, the distinct marking-delta vectors its firing produces; each
// distinct delta is one incidence column. Extended places contribute their
// lengths as pseudo-places ("len(platoon1)"), which is how the paper's
// platoon-composition arrays enter the linear-algebraic invariants. When
// the walk reaches a fixpoint within Options.MaxStates the facts are
// certified: every reachable transition effect has been observed, so a
// P-semiflow of the observed incidence columns is a genuine conservation
// law of the model and the token bounds derived from it hold in every
// reachable marking. A truncated walk still reports facts, but they
// describe only the explored prefix (Exhaustive is false) and downstream
// consumers must not treat them as certified.
//
// The result is the serializable ModelFacts artifact consumed by
// internal/sanlint (SAN012–SAN014 cross-checks), internal/ctmc (state-map
// pre-sizing and a certified state bound), internal/sim (statically
// constant gates) and cmd/ahs-lint (-facts JSON output with committed
// goldens). See docs/linting.md for the JSON schema.
package structural

import (
	"fmt"
	"math/big"

	"ahs/internal/san"
)

// Options tunes an analysis run.
type Options struct {
	// MaxStates bounds the probed stable markings; 0 means 20000. When the
	// bound is hit the facts describe only the explored prefix and
	// Exhaustive is false.
	MaxStates int
	// MaxInstantDepth bounds the instantaneous closure; 0 means 1000.
	MaxInstantDepth int
	// StiffnessThreshold is the rate spread above which Stiffness.Flagged
	// is set; 0 means 1e6 (the spread at which uniformization and naive
	// Monte Carlo both degrade noticeably).
	StiffnessThreshold float64
	// MaxSemiflows caps the number of P- and T-semiflows kept; 0 means 64.
	MaxSemiflows int
	// MaxEliminationRows caps the working set of the Farkas elimination;
	// 0 means 4096. Hitting the cap abandons the affected semiflow family
	// (fewer invariants, never wrong ones).
	MaxEliminationRows int
	// Absorb, when non-nil, marks absorbing markings: they are recorded
	// but not expanded, mirroring ctmc.ExploreOptions.Absorb and the goal
	// places of sanlint.Config. Facts are then certified for the absorbed
	// reachable graph — the graph every consumer passing the same
	// absorption actually explores. The predicate must not mutate the
	// marking.
	Absorb func(mk *san.Marking) bool
}

func (o Options) withDefaults() Options {
	if o.MaxStates <= 0 {
		o.MaxStates = 20_000
	}
	if o.MaxInstantDepth <= 0 {
		o.MaxInstantDepth = 1000
	}
	if o.StiffnessThreshold <= 0 {
		o.StiffnessThreshold = 1e6
	}
	if o.MaxSemiflows <= 0 {
		o.MaxSemiflows = 64
	}
	if o.MaxEliminationRows <= 0 {
		o.MaxEliminationRows = 4096
	}
	return o
}

// Term is one weighted place (or transition, in a T-semiflow) of an
// invariant. Extended places appear through their length pseudo-place,
// named "len(<place>)".
type Term struct {
	Place string `json:"place"`
	Coeff int    `json:"coeff"`
}

// Invariant is one P-semiflow y ≥ 0 with y·C = 0: the weighted token sum
// over Terms equals Value (= y·M0) in every reachable marking.
type Invariant struct {
	Terms []Term `json:"terms"`
	Value int    `json:"value"`
}

// TSemiflow is one T-semiflow x ≥ 0 with C·x = 0: firing every listed
// transition the given number of times reproduces the starting marking.
// Transition labels are "<activity>/<case>" plus "#<variant>" when an
// activity case was observed with several distinct marking deltas.
type TSemiflow struct {
	Terms []Term `json:"terms"`
}

// PlaceFact is the per-place bound report.
type PlaceFact struct {
	Name    string `json:"name"`
	Initial int    `json:"initial"`
	// ObservedMax is the largest token count seen during the probe walk
	// (the exact bound when Exhaustive).
	ObservedMax int `json:"observedMax"`
	// CertifiedBound is the tightest certified token bound: the exact
	// supremum from an exhaustive walk, tightened against the semiflow
	// bound; -1 when nothing is certified (truncated walk).
	CertifiedBound int `json:"certifiedBound"`
	// InvariantBound is the bound derived purely algebraically from the
	// P-semiflows, min over covering flows y of floor(y·M0 / y_p); -1 when
	// no semiflow covers the place. It is certified only alongside
	// Exhaustive (the incidence columns are complete then) and is always
	// ≥ ObservedMax in that case.
	InvariantBound int `json:"invariantBound"`
}

// StiffnessFact reports the spread of the exponential rate scales observed
// while activities were enabled. A spread beyond the threshold degrades
// both uniformization (internal/ctmc: the Poisson truncation point grows
// with Λ·t) and naive Monte Carlo (internal/mc: rare slow events under
// many fast ones), which is why the paper's λ = 1e-5/hr study needs
// importance sampling.
type StiffnessFact struct {
	MinRate     float64 `json:"minRate"`
	MaxRate     float64 `json:"maxRate"`
	MinActivity string  `json:"minActivity"`
	MaxActivity string  `json:"maxActivity"`
	// Spread is MaxRate/MinRate (0 when no exponential activity was
	// enabled anywhere).
	Spread  float64 `json:"spread"`
	Flagged bool    `json:"flagged"`
}

// ReplicaFacts reports the index-permutation symmetry over the bracketed
// replica families ("one_vehicle[3].L2", "vehicle[3].fm", ...). When every
// replica index has an identical canonical signature — same local initial
// markings, same observed transition deltas and rate values up to renaming
// "[i]" — the model is lumpable by replica exchange and the per-replica
// local-state product L^R collapses to the multiset bound C(L+R-1, R).
// Extended-place contents (vehicle ids) are treated as exchangeable
// tokens, which core's deterministic slot reuse justifies.
type ReplicaFacts struct {
	Replicas  int      `json:"replicas"`
	Families  []string `json:"families"`
	Symmetric bool     `json:"symmetric"`
	// LocalStates counts the distinct per-replica local-state projections
	// observed (exact when Exhaustive).
	LocalStates int `json:"localStates"`
	// FullLocalProduct is L^R, the local-state product without lumping,
	// and QuotientBound the multiset bound C(L+R-1, R) it collapses to
	// when Symmetric. Decimal strings: the values overflow int64 quickly.
	FullLocalProduct string `json:"fullLocalProduct"`
	QuotientBound    string `json:"quotientBound"`
}

// GateFact records an enabling predicate whose read set is disjoint from
// every effect's write set: its value can never change, so executors may
// skip re-evaluating it (see sim.Options.ConstantGates).
type GateFact struct {
	Activity string `json:"activity"`
	Kind     string `json:"kind"` // "timed" or "instant"
	Enabled  bool   `json:"enabled"`
}

// DeadArcFact records an activity case that never fired during an
// exhaustive walk: its output arc is dead and can be eliminated.
type DeadArcFact struct {
	Activity string `json:"activity"`
	Case     int    `json:"case"`
	Reason   string `json:"reason"`
}

// ModelFacts is the serializable structural-analysis artifact. All slices
// are deterministically ordered, so the JSON encoding is reproducible and
// can be pinned by golden tests.
type ModelFacts struct {
	Model string `json:"model"`
	// Exhaustive reports that the probe walk reached a fixpoint within
	// MaxStates: every fact below is certified for the whole reachable
	// behaviour, not just an explored prefix.
	Exhaustive bool `json:"exhaustive"`
	// StatesProbed counts the stable markings visited (the exact
	// reachable-state count when Exhaustive).
	StatesProbed int `json:"statesProbed"`
	// TransitionColumns counts the distinct (activity, case, delta)
	// incidence columns observed.
	TransitionColumns int `json:"transitionColumns"`

	Places     []PlaceFact `json:"places"`
	Invariants []Invariant `json:"invariants"`
	TSemiflows []TSemiflow `json:"tSemiflows,omitempty"`

	// StateSpaceBound is a certified upper bound on the stable reachable
	// states, as a decimal string: the exact probed count when Exhaustive,
	// the product of the certified place bounds for ext-place-free models,
	// or "unknown".
	StateSpaceBound string `json:"stateSpaceBound"`

	Stiffness StiffnessFact `json:"stiffness"`
	Replicas  *ReplicaFacts `json:"replicas,omitempty"`

	ConstantGates []GateFact    `json:"constantGates,omitempty"`
	DeadArcs      []DeadArcFact `json:"deadArcs,omitempty"`
}

// PlaceBound returns the certified token bound for the named simple place
// (-1 when none is certified or the place is unknown).
func (f *ModelFacts) PlaceBound(name string) int {
	for i := range f.Places {
		if f.Places[i].Name == name {
			return f.Places[i].CertifiedBound
		}
	}
	return -1
}

// StateBound returns the certified state-space bound as an int, or 0 when
// the bound is unknown or does not fit.
func (f *ModelFacts) StateBound() int {
	n, ok := new(big.Int).SetString(f.StateSpaceBound, 10)
	if !ok || !n.IsInt64() {
		return 0
	}
	v := n.Int64()
	if v <= 0 || v > int64(int(^uint(0)>>1)) {
		return 0
	}
	return int(v)
}

// ConstantTimedGates returns the statically-constant timed gates as the
// activity-name → value map consumed by sim.Options.ConstantGates.
func (f *ModelFacts) ConstantTimedGates() map[string]bool {
	out := make(map[string]bool)
	for _, g := range f.ConstantGates {
		if g.Kind == "timed" {
			out[g.Activity] = g.Enabled
		}
	}
	return out
}

// Analyze probes the model's bounded marking graph and derives the
// structural facts. The returned error reports an unanalyzable model (a
// marking function panicking or producing invalid weights during the
// probe); use internal/sanlint to diagnose such defects.
func Analyze(model *san.Model, opts Options) (*ModelFacts, error) {
	opts = opts.withDefaults()
	p := newProber(model, opts)
	if err := p.walk(); err != nil {
		return nil, fmt.Errorf("structural: %w", err)
	}
	return p.facts(), nil
}
