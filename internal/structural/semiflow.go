package structural

import (
	"sort"
	"strconv"
	"strings"
)

// This file implements the Farkas (Martinez–Silva) algorithm for minimal
// nonnegative integer semiflows. For P-semiflows the variables are the
// analysis dimensions (places + ext-length pseudo-places) and each observed
// incidence column contributes one homogeneous constraint y·Δ = 0; for
// T-semiflows the roles swap. The working set is [lhs | rhs] rows where
// rhs starts as the identity; constraints are eliminated one at a time by
// combining opposite-sign row pairs with positive coefficients, so every
// surviving rhs is a nonnegative solution. gcd-normalisation keeps the
// integers small and the minimal-support filter yields the canonical
// generating set.

// frow is one working row of the Farkas elimination.
type frow struct {
	lhs []int // remaining constraint values
	rhs []int // candidate semiflow
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// normalize divides the row by the gcd of all its entries.
func (r *frow) normalize() {
	g := 0
	for _, v := range r.lhs {
		g = gcd(g, v)
	}
	for _, v := range r.rhs {
		g = gcd(g, v)
	}
	if g <= 1 {
		return
	}
	for i := range r.lhs {
		r.lhs[i] /= g
	}
	for i := range r.rhs {
		r.rhs[i] /= g
	}
}

func (r *frow) key() string {
	var b strings.Builder
	for _, v := range r.lhs {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, v := range r.rhs {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(',')
	}
	return b.String()
}

// farkas solves y ≥ 0, Σ_v y_v·a_v = 0 where a_v (length ncons) is the
// constraint vector of variable v. It returns the minimal-support
// generating set, or nil when the working set exceeded maxRows (facts are
// then simply absent, never wrong).
func farkas(vars [][]int, ncons, maxRows int) [][]int {
	nvars := len(vars)
	if nvars > maxRows {
		return nil
	}
	rows := make([]*frow, 0, nvars)
	for v := 0; v < nvars; v++ {
		rhs := make([]int, nvars)
		rhs[v] = 1
		rows = append(rows, &frow{lhs: append([]int(nil), vars[v]...), rhs: rhs})
	}
	for c := 0; c < ncons; c++ {
		var keep, pos, neg []*frow
		for _, r := range rows {
			switch {
			case r.lhs[c] == 0:
				keep = append(keep, r)
			case r.lhs[c] > 0:
				pos = append(pos, r)
			default:
				neg = append(neg, r)
			}
		}
		seen := make(map[string]bool, len(keep))
		for _, r := range keep {
			seen[r.key()] = true
		}
		for _, rp := range pos {
			for _, rn := range neg {
				alpha, beta := -rn.lhs[c], rp.lhs[c]
				nr := &frow{lhs: make([]int, ncons), rhs: make([]int, nvars)}
				for i := range nr.lhs {
					nr.lhs[i] = alpha*rp.lhs[i] + beta*rn.lhs[i]
				}
				for i := range nr.rhs {
					nr.rhs[i] = alpha*rp.rhs[i] + beta*rn.rhs[i]
				}
				nr.normalize()
				if k := nr.key(); !seen[k] {
					seen[k] = true
					keep = append(keep, nr)
					if len(keep) > maxRows {
						return nil
					}
				}
			}
		}
		rows = keep
	}
	sols := make([][]int, 0, len(rows))
	for _, r := range rows {
		sols = append(sols, r.rhs)
	}
	return minimalSupport(sols)
}

// minimalSupport drops solutions whose support strictly contains another
// solution's support, dedupes, and sorts deterministically.
func minimalSupport(sols [][]int) [][]int {
	support := func(y []int) []int {
		var s []int
		for i, v := range y {
			if v != 0 {
				s = append(s, i)
			}
		}
		return s
	}
	subset := func(a, b []int) bool { // a ⊆ b, both sorted
		j := 0
		for _, x := range a {
			for j < len(b) && b[j] < x {
				j++
			}
			if j >= len(b) || b[j] != x {
				return false
			}
		}
		return true
	}
	sups := make([][]int, len(sols))
	for i, y := range sols {
		sups[i] = support(y)
	}
	var out [][]int
	for i, y := range sols {
		if len(sups[i]) == 0 {
			continue
		}
		minimal := true
		for j := range sols {
			if i == j {
				continue
			}
			if len(sups[j]) < len(sups[i]) && subset(sups[j], sups[i]) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, y)
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessVec(out[i], out[j]) })
	// Equal-support duplicates survive the filter; drop exact repeats.
	dedup := out[:0]
	for i, y := range out {
		if i > 0 && equalVec(out[i-1], y) {
			continue
		}
		dedup = append(dedup, y)
	}
	return dedup
}

func lessVec(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] > b[i] // earlier dims with nonzero coeff sort first
		}
	}
	return false
}

func equalVec(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pSemiflows computes the P-semiflows of the observed incidence columns:
// y ≥ 0 with y·Δ = 0 for every column Δ.
func pSemiflows(cols []column, dims int, opts Options) [][]int {
	vars := make([][]int, dims)
	for d := 0; d < dims; d++ {
		row := make([]int, len(cols))
		for c := range cols {
			row[c] = cols[c].delta[d]
		}
		vars[d] = row
	}
	return farkas(vars, len(cols), opts.MaxEliminationRows)
}

// tSemiflows computes the T-semiflows: x ≥ 0 with Σ_c x_c·Δ_c = 0.
func tSemiflows(cols []column, dims int, opts Options) [][]int {
	vars := make([][]int, len(cols))
	for c := range cols {
		vars[c] = cols[c].delta
	}
	return farkas(vars, dims, opts.MaxEliminationRows)
}

// semiflowBounds derives the per-dimension token bound from the semiflows:
// min over covering flows y of floor(y·M0 / y_p); -1 when uncovered.
func semiflowBounds(semis [][]int, init []int, dims int) []int {
	bounds := make([]int, dims)
	for i := range bounds {
		bounds[i] = -1
	}
	for _, y := range semis {
		value := 0
		for i, c := range y {
			value += c * init[i]
		}
		for i, c := range y {
			if c <= 0 {
				continue
			}
			b := value / c
			if bounds[i] < 0 || b < bounds[i] {
				bounds[i] = b
			}
		}
	}
	return bounds
}

// renderInvariants converts P-semiflows into the serializable form, capped
// and deterministically ordered.
func renderInvariants(semis [][]int, init []int, dimNames []string, maxN int) []Invariant {
	out := make([]Invariant, 0, len(semis))
	for _, y := range semis {
		if len(out) >= maxN {
			break
		}
		inv := Invariant{}
		for i, c := range y {
			if c == 0 {
				continue
			}
			inv.Terms = append(inv.Terms, Term{Place: dimNames[i], Coeff: c})
			inv.Value += c * init[i]
		}
		out = append(out, inv)
	}
	return out
}

// tSemiflowFacts converts T-semiflows into the serializable form with
// column labels.
func tSemiflowFacts(p *prober, opts Options) []TSemiflow {
	semis := tSemiflows(p.cols, p.dims, opts)
	out := make([]TSemiflow, 0, len(semis))
	for _, x := range semis {
		if len(out) >= opts.MaxSemiflows {
			break
		}
		ts := TSemiflow{}
		for c, v := range x {
			if v == 0 {
				continue
			}
			ts.Terms = append(ts.Terms, Term{Place: p.colLabel(p.cols[c]), Coeff: v})
		}
		out = append(out, ts)
	}
	return out
}
