// Package profiling provides the shared -cpuprofile / -memprofile /
// -runtimetrace plumbing of the CLI commands: register the flags on a
// FlagSet, call Start once flags are parsed, and defer the returned stop
// function. The written files are loadable with `go tool pprof` and
// `go tool trace`.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the destinations of the three profile kinds. Empty fields
// disable the corresponding profile.
type Flags struct {
	// CPU is the CPU profile destination (-cpuprofile).
	CPU string
	// Mem is the heap profile destination (-memprofile), written on stop.
	Mem string
	// Trace is the runtime execution trace destination (-runtimetrace).
	Trace string
}

// Register declares the standard profiling flags on fs, storing the
// destinations in the returned Flags.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file on exit (go tool pprof)")
	fs.StringVar(&f.Trace, "runtimetrace", "", "write a runtime execution trace to this file (go tool trace)")
	return f
}

// Enabled reports whether any profile destination is set.
func (f *Flags) Enabled() bool {
	return f.CPU != "" || f.Mem != "" || f.Trace != ""
}

// Start begins the requested profiles and returns the function that stops
// them and writes the deferred ones. The caller must invoke stop (typically
// via defer) before exiting, or the profiles are truncated or empty; stop
// returns the first error encountered while finishing them. Start cleans up
// after itself on error, so a failed Start needs no stop call.
func (f *Flags) Start() (stop func() error, err error) {
	var (
		cpuFile   *os.File
		traceFile *os.File
	)
	fail := func(err error) (func() error, error) {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
		return nil, err
	}

	if f.CPU != "" {
		cpuFile, err = os.Create(f.CPU)
		if err != nil {
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
	}
	if f.Trace != "" {
		traceFile, err = os.Create(f.Trace)
		if err != nil {
			return fail(fmt.Errorf("runtimetrace: %w", err))
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			return fail(fmt.Errorf("runtimetrace: %w", err))
		}
	}

	memPath := f.Mem
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("runtimetrace: %w", err)
			}
		}
		if memPath != "" {
			if err := writeHeapProfile(memPath); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// writeHeapProfile garbage-collects (so the profile reflects live memory,
// matching the net/http/pprof heap endpoint) and writes the heap profile.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("memprofile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
