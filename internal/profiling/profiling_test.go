package profiling

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestRegisterDeclaresFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := Register(fs)
	if f.Enabled() {
		t.Fatal("fresh flags must be disabled")
	}
	dir := t.TempDir()
	err := fs.Parse([]string{
		"-cpuprofile", filepath.Join(dir, "cpu.out"),
		"-memprofile", filepath.Join(dir, "mem.out"),
		"-runtimetrace", filepath.Join(dir, "trace.out"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Enabled() || f.CPU == "" || f.Mem == "" || f.Trace == "" {
		t.Fatalf("parsed flags %+v", f)
	}
}

func TestStartWritesAllProfiles(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{
		CPU:   filepath.Join(dir, "cpu.out"),
		Mem:   filepath.Join(dir, "mem.out"),
		Trace: filepath.Join(dir, "trace.out"),
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	x := 0.0
	for i := 0; i < 1e6; i++ {
		x += float64(i)
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{f.CPU, f.Mem, f.Trace} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile missing: %v", err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartNoopWhenDisabled(t *testing.T) {
	stop, err := (&Flags{}).Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartRejectsBadPaths(t *testing.T) {
	for name, f := range map[string]*Flags{
		"cpu":   {CPU: "/definitely/not/a/dir/cpu.out"},
		"mem":   {Mem: "/definitely/not/a/dir/mem.out"},
		"trace": {Trace: "/definitely/not/a/dir/trace.out"},
	} {
		switch name {
		case "mem":
			// Mem is written on stop, so the failure surfaces there.
			stop, err := f.Start()
			if err != nil {
				t.Fatalf("%s: start failed early: %v", name, err)
			}
			if err := stop(); err == nil {
				t.Errorf("%s: stop accepted unwritable path", name)
			}
		default:
			if _, err := f.Start(); err == nil {
				t.Errorf("%s: Start accepted unwritable path", name)
			}
		}
	}
}
