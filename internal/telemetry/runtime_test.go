package telemetry

import (
	"bytes"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"
)

func TestRegisterRuntimeFamilies(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)

	runtime.GC() // populate the pause distribution

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"ahs_build_info{",
		`go_version="` + runtime.Version() + `"`,
		"ahs_runtime_goroutines ",
		"ahs_runtime_heap_bytes ",
		"ahs_runtime_gc_pause_p99_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
	if err := ValidateText(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}

	// Sampled values must be plausible, not zero placeholders.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "ahs_runtime_goroutines ") {
			if strings.TrimPrefix(line, "ahs_runtime_goroutines ") == "0" {
				t.Errorf("goroutine gauge reads 0: %q", line)
			}
		}
		if strings.HasPrefix(line, "ahs_runtime_heap_bytes ") {
			if strings.TrimPrefix(line, "ahs_runtime_heap_bytes ") == "0" {
				t.Errorf("heap gauge reads 0: %q", line)
			}
		}
	}
}

func TestRegisterRuntimeSkipsUnknownMetric(t *testing.T) {
	reg := NewRegistry()
	registerRuntimeSample(reg, Opts{
		Name: "ahs_runtime_bogus",
		Help: "Should never register.",
	}, "/no/such/metric:units", scalarSample)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if strings.Contains(buf.String(), "ahs_runtime_bogus") {
		t.Fatalf("unknown runtime metric was exported:\n%s", buf.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 10, 80, 10},
		Buckets: []float64{0, 1, 2, 3, 4},
	}
	if got := histogramQuantile(h, 0.5); got != 3 {
		t.Errorf("p50 = %v, want 3 (upper bound of the 80-count bucket)", got)
	}
	if got := histogramQuantile(h, 0.99); got != 4 {
		t.Errorf("p99 = %v, want 4", got)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1, 2}}
	if got := histogramQuantile(empty, 0.99); got != 0 {
		t.Errorf("empty distribution p99 = %v, want 0", got)
	}
	if got := histogramQuantile(nil, 0.99); got != 0 {
		t.Errorf("nil histogram p99 = %v, want 0", got)
	}
}
