package telemetry

import "testing"

// BenchmarkHistogramObserve is the ISSUE-mandated histogram-recording
// micro-benchmark: one Observe on a 10-bucket exponential histogram. It
// must stay allocation-free (asserted by -benchmem: 0 allocs/op).
func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram(Opts{Name: "bench_hist", Buckets: ExponentialBuckets(0.001, 2, 10)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1024) * 0.001)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter(Opts{Name: "bench_total"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkSimCollectorFiring measures the enabled per-event cost of the
// engine's hottest telemetry call: an activity-firing count routed through
// the collector's lock-free label cache.
func BenchmarkSimCollectorFiring(b *testing.B) {
	reg := NewRegistry()
	c := NewSimCollector(reg, "DD", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Count(MetricActivityFirings, "one_vehicle[3].L2")
	}
}
