// Package telemetry is the repository's stdlib-only metrics subsystem:
// counters, gauges and fixed/exponential-bucket histograms behind an
// atomic, allocation-free hot path, organised into a Registry of labeled
// families with deterministic snapshotting and Prometheus text-format
// exposition (see WriteText and Handler).
//
// The design splits instrumentation into two halves so the simulation
// engine stays observable without paying for observability:
//
//   - The engine half (internal/sim, internal/mc, internal/core) reports
//     through the tiny Sink interface. Every call site is guarded by a nil
//     check, so a disabled pipeline costs one predictable branch per event
//     — benchmarked in internal/mc (BenchmarkMCBaseline vs
//     BenchmarkMCInstrumented).
//   - The collection half (SimCollector, internal/service) maps Sink
//     events onto registry families with stable names and labels;
//     docs/observability.md is the metric catalogue.
//
// Registries are independent: tests and concurrent services each build
// their own, so nothing is process-global and registration never collides
// the way expvar.Publish does.
package telemetry

// Metric keys understood by Sink implementations. They are deliberately
// engine-level vocabulary (what happened in a trajectory), not exposition
// names; SimCollector maps them onto the ahs_sim_* families.
const (
	// MetricActivityFirings counts timed-activity completions; the label
	// is the activity name (replica-scoped, e.g. "one_vehicle[3].L2" —
	// collectors may collapse it).
	MetricActivityFirings = "activity_firings"
	// MetricManeuverAttempts counts recovery-maneuver attempts; the label
	// is the recovery type (AS, CS, GS, TIE, TIE-E, TIE-N).
	MetricManeuverAttempts = "maneuver_attempts"
	// MetricManeuverFailures counts failed attempts, same labels.
	MetricManeuverFailures = "maneuver_failures"
	// MetricCatastrophes counts trajectories absorbed in KO_total; the
	// label is the catastrophic situation (ST1, ST2, ST3).
	MetricCatastrophes = "catastrophes"
	// MetricTrajectories counts completed trajectories (no label).
	MetricTrajectories = "trajectories"
	// MetricTrajectorySteps observes timed steps per trajectory (no label).
	MetricTrajectorySteps = "trajectory_steps"
	// MetricTimeToKO observes the first-passage time to KO_total in hours
	// (no label; the collector attaches its strategy).
	MetricTimeToKO = "time_to_ko"
)

// Sink receives engine-level simulation events. Implementations must be
// safe for concurrent use: the Monte-Carlo engine calls one sink from every
// worker goroutine.
//
// Instrumented code holds a Sink-typed field and guards each call with a
// nil check; a nil sink therefore disables telemetry at the cost of one
// branch. Unknown metric keys must be ignored, so engine and collector can
// evolve independently.
type Sink interface {
	// Count adds one occurrence of the (metric, label) pair.
	Count(metric, label string)
	// Observe records a sampled value for the (metric, label) pair.
	Observe(metric, label string, v float64)
}
