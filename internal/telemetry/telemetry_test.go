package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter(Opts{Name: "test_total", Help: "test"})
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := reg.Gauge(Opts{Name: "test_gauge", Help: "test"})
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter(Opts{Name: "same_total"})
	b := reg.Counter(Opts{Name: "same_total"})
	if a != b {
		t.Fatal("re-registering the same counter returned a different instance")
	}
	v1 := reg.CounterVec(Opts{Name: "vec_total"}, "l")
	v2 := reg.CounterVec(Opts{Name: "vec_total"}, "l")
	if v1.With("x") != v2.With("x") {
		t.Fatal("re-registered vec does not share children")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	cases := map[string]func(reg *Registry){
		"kind change":   func(reg *Registry) { reg.Gauge(Opts{Name: "m"}) },
		"label change":  func(reg *Registry) { reg.CounterVec(Opts{Name: "m"}, "l") },
		"invalid name":  func(reg *Registry) { reg.Counter(Opts{Name: "0bad"}) },
		"empty name":    func(reg *Registry) { reg.Counter(Opts{Name: ""}) },
		"no buckets":    func(reg *Registry) { reg.Histogram(Opts{Name: "h"}) },
		"invalid label": func(reg *Registry) { reg.CounterVec(Opts{Name: "v"}, "bad-label") },
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) {
			reg := NewRegistry()
			reg.Counter(Opts{Name: "m"})
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f(reg)
		})
	}
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram(Opts{Name: "h", Buckets: []float64{1, 2, 4}})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	snap := h.snapshot()
	want := []uint64{2, 1, 1, 1} // le=1: {0.5, 1}; le=2: {1.5}; le=4: {3}; +Inf: {100}
	for i, n := range want {
		if snap.Buckets[i] != n {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, snap.Buckets[i], n, snap.Buckets)
		}
	}
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if math.Abs(snap.Sum-106) > 1e-9 {
		t.Fatalf("sum = %v, want 106", snap.Sum)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 0.5, 4)
	if len(lin) != 4 || lin[3] != 1.5 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 2, 5)
	if len(exp) != 5 || exp[4] != 16 {
		t.Fatalf("ExponentialBuckets = %v", exp)
	}
}

func TestConcurrentUpdatesAreLossless(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec(Opts{Name: "c_total"}, "worker")
	h := reg.Histogram(Opts{Name: "h", Buckets: []float64{0.5}})
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := vec.With("shared")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(1)
			}
		}(w)
	}
	wg.Wait()
	if got := vec.With("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := h.Sum(); math.Abs(got-workers*perWorker) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %d", got, workers*perWorker)
	}
}

func TestGatherDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec(Opts{Name: "b_total"}, "l")
	v.With("z").Inc()
	v.With("a").Add(2)
	reg.Gauge(Opts{Name: "a_gauge"}).Set(1)
	reg.GaugeFunc(Opts{Name: "c_ratio"}, func() float64 { return 0.5 })

	fams := reg.Gather()
	if len(fams) != 3 {
		t.Fatalf("gathered %d families, want 3", len(fams))
	}
	if fams[0].Name != "a_gauge" || fams[1].Name != "b_total" || fams[2].Name != "c_ratio" {
		t.Fatalf("family order %q %q %q", fams[0].Name, fams[1].Name, fams[2].Name)
	}
	samples := fams[1].Samples
	if len(samples) != 2 || samples[0].Labels[0].Value != "a" || samples[1].Labels[0].Value != "z" {
		t.Fatalf("sample order %+v", samples)
	}
	if samples[0].Value != 2 || samples[1].Value != 1 {
		t.Fatalf("sample values %+v", samples)
	}
	if fams[2].Samples[0].Value != 0.5 {
		t.Fatalf("gauge func sample %+v", fams[2].Samples)
	}
}

func TestSimCollectorRouting(t *testing.T) {
	reg := NewRegistry()
	collapse := func(s string) string {
		if i := len(s) - 2; i > 0 && s[i] == '.' {
			return s[i+1:]
		}
		return s
	}
	c := NewSimCollector(reg, "DD", collapse)
	c.Count(MetricActivityFirings, "x.a")
	c.Count(MetricActivityFirings, "y.a")
	c.Count(MetricManeuverAttempts, "AS")
	c.Count(MetricManeuverFailures, "AS")
	c.Count(MetricCatastrophes, "ST1")
	c.Count(MetricTrajectories, "")
	c.Count("metric_from_the_future", "whatever") // must be ignored
	c.Observe(MetricTrajectorySteps, "", 12)
	c.Observe(MetricTimeToKO, "", 3.5)
	c.Observe("another_future_metric", "", 1)

	if got := c.firings.With("DD", "a").Value(); got != 2 {
		t.Fatalf("collapsed firings = %d, want 2", got)
	}
	if c.attempts.With("DD", "AS").Value() != 1 || c.failures.With("DD", "AS").Value() != 1 {
		t.Fatal("maneuver attempt/failure not recorded")
	}
	if c.catastrophes.With("DD", "ST1").Value() != 1 {
		t.Fatal("catastrophe not recorded")
	}
	if c.trajectories.Value() != 1 {
		t.Fatal("trajectory not recorded")
	}
	if c.steps.Count() != 1 || c.timeToKO.Count() != 1 {
		t.Fatal("histograms not recorded")
	}

	// A second collector for another strategy shares the registry without
	// re-registration conflicts, and the families stay separated by label.
	c2 := NewSimCollector(reg, "CC", nil)
	c2.Count(MetricTrajectories, "")
	if c.trajectories.Value() != 1 || c2.trajectories.Value() != 1 {
		t.Fatal("strategies not separated")
	}
}
