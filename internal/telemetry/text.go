package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text-format content type served by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): a # HELP and # TYPE header per family followed by its
// samples, families sorted by name and samples by label values. Histograms
// render the usual cumulative _bucket series plus _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.Gather() {
		if fam.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.Name, fam.Kind)
		for _, s := range fam.Samples {
			if s.Hist == nil {
				fmt.Fprintf(bw, "%s%s %s\n", fam.Name, renderLabels(s.Labels, "", ""), formatValue(s.Value))
				continue
			}
			cum := uint64(0)
			for i, n := range s.Hist.Buckets {
				cum += n
				le := "+Inf"
				if i < len(s.Hist.Upper) {
					le = formatValue(s.Hist.Upper[i])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", fam.Name, renderLabels(s.Labels, "le", le), cum)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", fam.Name, renderLabels(s.Labels, "", ""), formatValue(s.Hist.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", fam.Name, renderLabels(s.Labels, "", ""), s.Hist.Count)
		}
	}
	return bw.Flush()
}

// Handler serves GET /metrics scrapes of the registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WriteText(w)
	})
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// renderLabels renders {a="x",b="y"}, appending the extra pair when set;
// it returns "" for no labels at all.
func renderLabels(labels []LabelPair, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	writePair := func(name, value string) {
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(value))
		b.WriteByte('"')
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		writePair(l.Name, l.Value)
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		writePair(extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

// ValidateText checks that the input is well-formed Prometheus text format:
// every sample line parses (name, optional labels, float value, optional
// timestamp), every sample belongs to a family declared by a preceding
// # TYPE line of a known type, and histogram _bucket samples carry an le
// label. It returns the first violation found. The service end-to-end tests
// scrape /metrics through this validator.
func ValidateText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := make(map[string]string)
	lineNo := 0
	sawSample := false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				continue // free-form comment
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !validName(name) {
					return fmt.Errorf("line %d: invalid family name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = typ
			case "HELP":
				if len(fields) < 3 || !validName(fields[2]) {
					return fmt.Errorf("line %d: malformed HELP comment %q", lineNo, line)
				}
			}
			continue
		}
		name, labels, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		sawSample = true
		base, suffix := baseFamily(name, types)
		typ, ok := types[base]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		if typ == "histogram" && suffix == "_bucket" {
			if _, ok := labels["le"]; !ok {
				return fmt.Errorf("line %d: histogram bucket %q without le label", lineNo, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawSample {
		return fmt.Errorf("telemetry: no samples in exposition")
	}
	return nil
}

// baseFamily resolves a sample name to its declared family, stripping the
// histogram/summary series suffixes when the base is the declared name.
func baseFamily(name string, types map[string]string) (base, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, suf); ok {
			if _, declared := types[b]; declared {
				return b, suf
			}
		}
	}
	return name, ""
}

// parseSampleLine parses `name{labels} value [timestamp]`.
func parseSampleLine(line string) (string, map[string]string, error) {
	i := 0
	for i < len(line) && isNameByte(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return "", nil, fmt.Errorf("sample line %q does not start with a metric name", line)
	}
	name := line[:i]
	labels := map[string]string{}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return "", nil, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, fmt.Errorf("expected value (and optional timestamp) after %q", name)
	}
	if _, err := parseSampleValue(fields[0]); err != nil {
		return "", nil, fmt.Errorf("bad sample value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, nil
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair %q", s)
		}
		name := s[:eq]
		if !validName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", name)
		}
		val := strings.Builder{}
		j := 1
		closed := false
		for j < len(s) {
			c := s[j]
			if c == '\\' && j+1 < len(s) {
				switch s[j+1] {
				case 'n':
					val.WriteByte('\n')
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", s[j+1], name)
				}
				j += 2
				continue
			}
			if c == '"' {
				closed = true
				j++
				break
			}
			val.WriteByte(c)
			j++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %q", name)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = val.String()
		s = s[j:]
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = s[1:]
		}
	}
	return out, nil
}

func isNameByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
