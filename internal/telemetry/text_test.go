package telemetry

import (
	"net/http"
	"strings"
	"testing"
)

func buildTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter(Opts{Name: "plain_total", Help: "a plain counter"}).Add(3)
	v := reg.CounterVec(Opts{Name: "labeled_total", Help: `with "quotes" and \slashes`}, "kind")
	v.With(`va"l\ue`).Inc()
	v.With("simple").Add(2)
	reg.Gauge(Opts{Name: "depth", Help: "a gauge"}).Set(-5)
	h := reg.HistogramVec(Opts{Name: "lat_seconds", Help: "latency", Buckets: []float64{0.1, 1}}, "ep")
	h.With("a").Observe(0.05)
	h.With("a").Observe(0.5)
	h.With("a").Observe(10)
	reg.GaugeFunc(Opts{Name: "ratio", Help: "derived"}, func() float64 { return 0.25 })
	return reg
}

func TestWriteTextFormat(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE plain_total counter\nplain_total 3\n",
		"# TYPE depth gauge\ndepth -5\n",
		`labeled_total{kind="simple"} 2`,
		`labeled_total{kind="va\"l\\ue"} 1`,
		`lat_seconds_bucket{ep="a",le="0.1"} 1`,
		`lat_seconds_bucket{ep="a",le="1"} 2`,
		`lat_seconds_bucket{ep="a",le="+Inf"} 3`,
		`lat_seconds_sum{ep="a"} 10.55`,
		`lat_seconds_count{ep="a"} 3`,
		"# TYPE ratio gauge\nratio 0.25\n",
		`# HELP labeled_total with "quotes" and \\slashes`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextPassesOwnValidator(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateText(strings.NewReader(b.String())); err != nil {
		t.Fatalf("self-exposition invalid: %v\n%s", err, b.String())
	}
}

func TestValidateTextAcceptsKnownGood(t *testing.T) {
	good := `# HELP http_requests_total The total number of HTTP requests.
# TYPE http_requests_total counter
http_requests_total{method="post",code="200"} 1027 1395066363000
http_requests_total{method="post",code="400"} 3 1395066363000

# TYPE rpc_duration_seconds histogram
rpc_duration_seconds_bucket{le="0.5"} 129389
rpc_duration_seconds_bucket{le="+Inf"} 144320
rpc_duration_seconds_sum 53423
rpc_duration_seconds_count 144320
`
	if err := ValidateText(strings.NewReader(good)); err != nil {
		t.Fatalf("known-good exposition rejected: %v", err)
	}
}

func TestValidateTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":             "orphan_total 3\n",
		"bad value":           "# TYPE m counter\nm three\n",
		"bad type keyword":    "# TYPE m thing\nm 3\n",
		"unterminated labels": "# TYPE m counter\nm{a=\"x 3\n",
		"unquoted label":      "# TYPE m counter\nm{a=x} 3\n",
		"duplicate label":     "# TYPE m counter\nm{a=\"x\",a=\"y\"} 3\n",
		"bucket without le":   "# TYPE h histogram\nh_bucket{x=\"1\"} 3\n",
		"empty exposition":    "\n",
		"duplicate TYPE":      "# TYPE m counter\n# TYPE m counter\nm 3\n",
		"bad timestamp":       "# TYPE m counter\nm 3 later\n",
	}
	for name, in := range cases {
		if err := ValidateText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted %q", name, in)
		}
	}
}

func TestHandlerServesContentType(t *testing.T) {
	reg := buildTestRegistry()
	rec := newRecorder()
	reg.Handler().ServeHTTP(rec, nil)
	if got := rec.header.Get("Content-Type"); got != ContentType {
		t.Fatalf("content type %q", got)
	}
	if err := ValidateText(strings.NewReader(rec.body.String())); err != nil {
		t.Fatalf("handler output invalid: %v", err)
	}
}

// newRecorder is a minimal ResponseWriter; net/http/httptest would work but
// the package keeps its dependency surface to the bare minimum.
type recorder struct {
	header http.Header
	body   strings.Builder
}

func newRecorder() *recorder { return &recorder{header: http.Header{}} }

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(int)             {}
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }
