package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe for concurrent use and never allocate.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer-valued metric that can go up and down. The zero value
// is ready to use; all methods are safe for concurrent use and never
// allocate.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat accumulates a float64 with compare-and-swap, the standard
// lock-free pattern for histogram sums.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 {
	return math.Float64frombits(f.bits.Load())
}
