package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind is the exposition type of a metric family.
type Kind int

// Family kinds, mirroring the Prometheus metric types in use here.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Opts names and documents a metric family. Name must match the Prometheus
// metric-name charset ([a-zA-Z_:][a-zA-Z0-9_:]*); Buckets applies to
// histogram families only.
type Opts struct {
	Name    string
	Help    string
	Buckets []float64
}

// Registry is an isolated collection of metric families. Unlike expvar's
// process-global table, every Registry is independent, so concurrent
// managers and tests never collide on names. All methods are safe for
// concurrent use.
//
// Registration is idempotent: re-registering the same name with the same
// kind, labels and buckets returns the existing family, which lets
// per-evaluation collectors share one registry. Re-registering with a
// different shape panics — that is a programming error on par with
// expvar.Publish duplicates.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSep joins label values into child keys; it cannot appear in valid
// UTF-8 label values produced by this codebase's enum labels, and a
// collision would only merge two children of the same family.
const labelSep = "\xff"

type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64
	fn      func() float64 // non-nil for GaugeFunc families

	mu       sync.RWMutex
	children map[string]*child
}

type child struct {
	values []string
	metric any // *Counter, *Gauge or *Histogram
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) register(o Opts, kind Kind, labels []string, fn func() float64) *family {
	if !validName(o.Name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", o.Name))
	}
	for _, l := range labels {
		if !validName(l) || strings.Contains(l, ":") {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %q", l, o.Name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[o.Name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, o.Buckets) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different shape", o.Name))
		}
		return f
	}
	f := &family{
		name:     o.Name,
		help:     o.Help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), o.Buckets...),
		fn:       fn,
		children: make(map[string]*child),
	}
	r.families[o.Name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { //ahsvet:ignore floateq bucket bounds are configuration constants compared verbatim
			return false
		}
	}
	return true
}

// with returns (creating on first use) the child for the given label values.
func (f *family) with(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = &child{values: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		c.metric = new(Counter)
	case KindGauge:
		c.metric = new(Gauge)
	case KindHistogram:
		h, err := newHistogram(f.buckets)
		if err != nil {
			panic(err.Error())
		}
		c.metric = h
	}
	f.children[key] = c
	return c
}

// Counter registers (or fetches) an unlabeled counter family and returns
// its single counter.
func (r *Registry) Counter(o Opts) *Counter {
	return r.register(o, KindCounter, nil, nil).with(nil).metric.(*Counter)
}

// Gauge registers (or fetches) an unlabeled gauge family and returns its
// single gauge.
func (r *Registry) Gauge(o Opts) *Gauge {
	return r.register(o, KindGauge, nil, nil).with(nil).metric.(*Gauge)
}

// Histogram registers (or fetches) an unlabeled histogram family (o.Buckets
// required) and returns its single histogram.
func (r *Registry) Histogram(o Opts) *Histogram {
	if len(o.Buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q registered without buckets", o.Name))
	}
	return r.register(o, KindHistogram, nil, nil).with(nil).metric.(*Histogram)
}

// GaugeFunc registers a gauge whose value is computed at snapshot time by
// fn — for derived readings like utilisation ratios.
func (r *Registry) GaugeFunc(o Opts, fn func() float64) {
	if fn == nil {
		panic(fmt.Sprintf("telemetry: GaugeFunc %q with nil function", o.Name))
	}
	r.register(o, KindGauge, nil, fn)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ fam *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(o Opts, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("telemetry: CounterVec %q without labels; use Counter", o.Name))
	}
	return &CounterVec{fam: r.register(o, KindCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use. Resolve children outside hot loops: the lookup takes a read
// lock and builds a map key.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.with(values).metric.(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ fam *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(o Opts, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("telemetry: GaugeVec %q without labels; use Gauge", o.Name))
	}
	return &GaugeVec{fam: r.register(o, KindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.with(values).metric.(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ fam *family }

// HistogramVec registers (or fetches) a labeled histogram family
// (o.Buckets required).
func (r *Registry) HistogramVec(o Opts, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("telemetry: HistogramVec %q without labels; use Histogram", o.Name))
	}
	if len(o.Buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q registered without buckets", o.Name))
	}
	return &HistogramVec{fam: r.register(o, KindHistogram, labels, nil)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.fam.with(values).metric.(*Histogram)
}

// LabelPair is one label name/value pair of a sample.
type LabelPair struct {
	Name, Value string
}

// Sample is one time series of a family snapshot.
type Sample struct {
	Labels []LabelPair
	// Value holds the counter or gauge reading (counters as exact integral
	// floats); Hist is set for histogram samples instead.
	Value float64
	Hist  *HistogramData
}

// FamilySnapshot is a point-in-time copy of one metric family.
type FamilySnapshot struct {
	Name    string
	Help    string
	Kind    Kind
	Samples []Sample
}

// Gather snapshots every family, sorted by family name with samples sorted
// by label values, so output is deterministic.
func (r *Registry) Gather() []FamilySnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		snap := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		if f.fn != nil {
			snap.Samples = []Sample{{Value: f.fn()}}
			out = append(out, snap)
			continue
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c := f.children[k]
			s := Sample{}
			for li, name := range f.labels {
				s.Labels = append(s.Labels, LabelPair{Name: name, Value: c.values[li]})
			}
			switch m := c.metric.(type) {
			case *Counter:
				s.Value = float64(m.Value())
			case *Gauge:
				s.Value = float64(m.Value())
			case *Histogram:
				s.Hist = m.snapshot()
			}
			snap.Samples = append(snap.Samples, s)
		}
		f.mu.RUnlock()
		out = append(out, snap)
	}
	return out
}
