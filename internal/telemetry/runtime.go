package telemetry

import (
	"runtime"
	"runtime/debug"
	"runtime/metrics"
)

// RegisterRuntime registers the process self-observation families shared by
// both binaries (ahs-serve and ahs-worker):
//
//	ahs_build_info{version,go_version}  — constant 1, build identification
//	ahs_runtime_goroutines              — live goroutines
//	ahs_runtime_heap_bytes              — live heap objects, bytes
//	ahs_runtime_gc_pause_p99_seconds    — p99 of the GC stop-the-world
//	                                      pause distribution since start
//
// Values are sampled through runtime/metrics at scrape time, so the cost is
// paid per GET /metrics, not continuously. Metrics missing from the running
// toolchain are skipped rather than exported as zeros. Safe to call once per
// registry; a second call on the same registry panics (duplicate family),
// matching every other register-at-startup family.
func RegisterRuntime(reg *Registry) {
	version, goVersion := "unknown", runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
	}
	reg.GaugeVec(Opts{
		Name: "ahs_build_info",
		Help: "Build identification; value is always 1.",
	}, "version", "go_version").
		With(version, goVersion).Set(1) //ahsvet:ignore locklabel one child per process, values fixed at startup

	registerRuntimeSample(reg, Opts{
		Name: "ahs_runtime_goroutines",
		Help: "Goroutines currently live in the process.",
	}, "/sched/goroutines:goroutines", scalarSample)
	registerRuntimeSample(reg, Opts{
		Name: "ahs_runtime_heap_bytes",
		Help: "Bytes of live heap objects (runtime/metrics /memory/classes/heap/objects:bytes).",
	}, "/memory/classes/heap/objects:bytes", scalarSample)
	registerRuntimeSample(reg, Opts{
		Name: "ahs_runtime_gc_pause_p99_seconds",
		Help: "99th percentile of GC stop-the-world pauses since process start.",
	}, "/gc/pauses:seconds", func(v metrics.Value) float64 {
		return histogramQuantile(v.Float64Histogram(), 0.99)
	})
}

// registerRuntimeSample registers a GaugeFunc reading one runtime/metrics
// sample per call, after probing that the metric exists and has a usable
// kind in this toolchain.
func registerRuntimeSample(reg *Registry, o Opts, name string, read func(metrics.Value) float64) {
	probe := []metrics.Sample{{Name: name}}
	metrics.Read(probe)
	switch probe[0].Value.Kind() {
	case metrics.KindUint64, metrics.KindFloat64:
		if read == nil {
			return
		}
	case metrics.KindFloat64Histogram:
		// read must know how to reduce the distribution.
	default:
		return // metric unknown to this toolchain — skip, don't export zeros
	}
	reg.GaugeFunc(o, func() float64 {
		s := []metrics.Sample{{Name: name}}
		metrics.Read(s)
		return read(s[0].Value)
	})
}

// scalarSample reduces a scalar runtime/metrics value to float64.
func scalarSample(v metrics.Value) float64 {
	switch v.Kind() {
	case metrics.KindUint64:
		return float64(v.Uint64())
	case metrics.KindFloat64:
		return v.Float64()
	default:
		return 0
	}
}

// histogramQuantile returns the q-quantile upper bound of a runtime/metrics
// cumulative-count histogram, clamping the open-ended outer buckets to their
// finite neighbours. Returns 0 for an empty distribution (no GC yet).
func histogramQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			// Bucket i spans Buckets[i]..Buckets[i+1]; report the upper
			// bound, falling back to the lower when it is +Inf.
			hi := h.Buckets[i+1]
			if isInf(hi) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	last := h.Buckets[len(h.Buckets)-1]
	if isInf(last) {
		return h.Buckets[len(h.Buckets)-2]
	}
	return last
}

func isInf(f float64) bool { return f > 1.7e308 || f < -1.7e308 }
