package telemetry

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Histogram observes a distribution over a fixed set of buckets with
// cumulative "less-than-or-equal" semantics, matching the Prometheus
// histogram model. Observe is atomic and allocation-free; buckets are fixed
// at construction.
type Histogram struct {
	// upper holds the strictly increasing bucket upper bounds; an implicit
	// +Inf bucket always follows.
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    atomicFloat
}

func newHistogram(buckets []float64) (*Histogram, error) {
	if len(buckets) == 0 {
		return nil, fmt.Errorf("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			return nil, fmt.Errorf("telemetry: bucket bounds not strictly increasing at index %d (%v <= %v)",
				i, buckets[i], buckets[i-1])
		}
	}
	h := &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	return h, nil
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// SearchFloat64s returns the first bound >= v, which is exactly the
	// le-bucket the sample belongs to; misses land in the +Inf bucket.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// snapshot returns a point-in-time copy of the histogram state. The bucket
// counts are per-bucket (not cumulative); the exposition layer accumulates.
func (h *Histogram) snapshot() *HistogramData {
	d := &HistogramData{
		Upper:   h.upper, // immutable after construction
		Buckets: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		d.Buckets[i] = h.counts[i].Load()
	}
	d.Count = h.count.Load()
	d.Sum = h.sum.Value()
	return d
}

// HistogramData is an immutable histogram snapshot.
type HistogramData struct {
	// Upper holds the finite bucket upper bounds.
	Upper []float64
	// Buckets holds per-bucket counts; its last entry (one past Upper) is
	// the +Inf bucket.
	Buckets []uint64
	// Count and Sum summarise all observations.
	Count uint64
	Sum   float64
}

// LinearBuckets returns n fixed-width bucket bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || !(width > 0) {
		panic(fmt.Sprintf("telemetry: LinearBuckets(%v, %v, %d): need n >= 1 and width > 0", start, width, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n bucket bounds start, start·factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if n < 1 || !(start > 0) || !(factor > 1) {
		panic(fmt.Sprintf("telemetry: ExponentialBuckets(%v, %v, %d): need n >= 1, start > 0, factor > 1", start, factor, n))
	}
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}
