package telemetry

import "sync"

// Bucket layouts of the simulation histograms. Exported so tests and the
// docs/observability.md catalogue stay in sync with the exposition.
var (
	// TimeToKOBuckets covers first-passage times from minutes to several
	// times the paper's 10-hour horizon.
	TimeToKOBuckets = ExponentialBuckets(0.125, 2, 10)
	// TrajectoryStepBuckets covers trajectory lengths from trivial to the
	// multi-million-step pathological tail.
	TrajectoryStepBuckets = ExponentialBuckets(8, 4, 10)
)

// SimCollector adapts Sink events from the simulation engine onto the
// ahs_sim_* registry families, all labeled by coordination strategy. One
// collector serves one strategy; collectors for different strategies share
// a registry because family registration is idempotent.
//
// Per-activity and per-maneuver counters are cached in lock-free maps, so
// the enabled hot path does one sync.Map load and one atomic add per event.
type SimCollector struct {
	strategy string
	collapse func(string) string

	firings      *CounterVec
	attempts     *CounterVec
	failures     *CounterVec
	catastrophes *CounterVec
	trajectories *Counter
	steps        *Histogram
	timeToKO     *Histogram

	firingCache  sync.Map // activity name -> *Counter
	attemptCache sync.Map // maneuver -> *Counter
	failureCache sync.Map // maneuver -> *Counter
	causeCache   sync.Map // cause -> *Counter
}

var _ Sink = (*SimCollector)(nil)

// NewSimCollector registers the simulation families on reg and returns a
// collector bound to the given strategy label. collapse, when non-nil, maps
// activity names before counting (pass trace.CollapseName to aggregate
// replicas); nil keeps full names.
func NewSimCollector(reg *Registry, strategy string, collapse func(string) string) *SimCollector {
	c := &SimCollector{
		strategy: strategy,
		collapse: collapse,
		firings: reg.CounterVec(Opts{
			Name: "ahs_sim_activity_firings_total",
			Help: "Timed-activity completions by (replica-collapsed) activity name.",
		}, "strategy", "activity"),
		attempts: reg.CounterVec(Opts{
			Name: "ahs_sim_maneuver_attempts_total",
			Help: "Recovery-maneuver attempts by recovery type (Table 1).",
		}, "strategy", "maneuver"),
		failures: reg.CounterVec(Opts{
			Name: "ahs_sim_maneuver_failures_total",
			Help: "Failed recovery-maneuver attempts by recovery type (Table 1).",
		}, "strategy", "maneuver"),
		catastrophes: reg.CounterVec(Opts{
			Name: "ahs_sim_catastrophes_total",
			Help: "Trajectories absorbed in KO_total by catastrophic situation (Table 2).",
		}, "strategy", "cause"),
	}
	// Resolve the strategy-only children eagerly: the hot path uses them
	// directly, and eager creation guarantees the families appear in every
	// scrape even before the first rare event.
	c.trajectories = reg.CounterVec(Opts{
		Name: "ahs_sim_trajectories_total",
		Help: "Completed Monte-Carlo trajectories.",
	}, "strategy").With(strategy)
	c.steps = reg.HistogramVec(Opts{
		Name:    "ahs_sim_trajectory_steps",
		Help:    "Timed steps per trajectory.",
		Buckets: TrajectoryStepBuckets,
	}, "strategy").With(strategy)
	c.timeToKO = reg.HistogramVec(Opts{
		Name:    "ahs_sim_time_to_ko_hours",
		Help:    "First-passage time to KO_total in hours.",
		Buckets: TimeToKOBuckets,
	}, "strategy").With(strategy)
	return c
}

// cached resolves a label through the per-collector cache, falling back to
// the registry on first use.
func (c *SimCollector) cached(cache *sync.Map, vec *CounterVec, label string) *Counter {
	if v, ok := cache.Load(label); ok {
		return v.(*Counter)
	}
	ctr := vec.With(c.strategy, label)
	v, _ := cache.LoadOrStore(label, ctr)
	return v.(*Counter)
}

// Count implements Sink.
func (c *SimCollector) Count(metric, label string) {
	switch metric {
	case MetricActivityFirings:
		if c.collapse != nil {
			label = c.collapse(label)
		}
		c.cached(&c.firingCache, c.firings, label).Inc()
	case MetricManeuverAttempts:
		c.cached(&c.attemptCache, c.attempts, label).Inc()
	case MetricManeuverFailures:
		c.cached(&c.failureCache, c.failures, label).Inc()
	case MetricCatastrophes:
		c.cached(&c.causeCache, c.catastrophes, label).Inc()
	case MetricTrajectories:
		c.trajectories.Inc()
	}
	// Unknown metrics are ignored by contract, so engine and collector can
	// version independently.
}

// Observe implements Sink.
func (c *SimCollector) Observe(metric, _ string, v float64) {
	switch metric {
	case MetricTrajectorySteps:
		c.steps.Observe(v)
	case MetricTimeToKO:
		c.timeToKO.Observe(v)
	}
}
