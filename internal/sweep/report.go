package sweep

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"ahs/internal/experiments"
	"ahs/internal/report"
)

// SurfaceID is the figure id of generated response surfaces.
const SurfaceID = "sweep"

// SurfaceResult flattens a sweep's point results into the comparative
// response-surface figure: the response (unsafety at the last trip-hour
// grid point) against the sweep's primary numeric axis, one series per
// combination of categorical-axis levels — e.g. unsafety vs λ, one line
// per strategy, the paper's headline figures as a generated surface.
//
// The x axis is the first numeric axis of the spec (explicit or ranged);
// designs with no numeric axis fall back to the point index. Only points
// that completed contribute; failed, cancelled and pending points are
// skipped, so a partial sweep still renders its evaluated region.
func SurfaceResult(sp *Spec, results []PointResult) *experiments.Result {
	xParam := ""
	for i := range sp.Axes {
		def, err := lookupAxisDef(sp.Axes[i].Param)
		if err == nil && !def.categorical {
			xParam = sp.Axes[i].Param
			break
		}
	}
	var categorical []string
	for i := range sp.Axes {
		if def, err := lookupAxisDef(sp.Axes[i].Param); err == nil && def.categorical {
			categorical = append(categorical, sp.Axes[i].Param)
		}
	}

	name := sp.Name
	if name == "" {
		name = "sweep"
	}
	var pts []report.SurfacePoint
	yLabel := "unsafety"
	for _, pr := range results {
		if pr.Status != PointDone || pr.Result == nil || len(pr.Result.Unsafety) == 0 {
			continue
		}
		last := len(pr.Result.Unsafety) - 1
		if len(pr.Result.Times) > last {
			yLabel = fmt.Sprintf("unsafety at t=%gh", pr.Result.Times[last])
		}
		x := float64(pr.Index)
		if xParam != "" {
			for _, c := range pr.Coords {
				if c.Param == xParam {
					if v, err := strconv.ParseFloat(c.Value, 64); err == nil {
						x = v
					}
					break
				}
			}
		}
		series := name
		if len(categorical) > 0 {
			parts := make([]string, 0, len(categorical))
			for _, param := range categorical {
				for _, c := range pr.Coords {
					if c.Param == param {
						parts = append(parts, c.Param+"="+c.Value)
						break
					}
				}
			}
			series = strings.Join(parts, ",")
		}
		p := report.SurfacePoint{
			Series:  series,
			X:       x,
			Y:       pr.Result.Unsafety[last],
			Batches: pr.Result.Batches,
		}
		if len(pr.Result.CILo) > last && len(pr.Result.CIHi) > last {
			p.CILo, p.CIHi = pr.Result.CILo[last], pr.Result.CIHi[last]
		}
		pts = append(pts, p)
	}

	xLabel := xParam
	if xLabel == "" {
		xLabel = "point"
	}
	title := fmt.Sprintf("%s — %s vs %s", name, yLabel, xLabel)
	return report.Surface(SurfaceID, title, xLabel, yLabel, pts)
}

// ResultRows flattens per-point results into a header and one row per
// point for the CLI table and CSV outputs: index, axis coordinates, point
// status, the response at the last grid point with its confidence bounds,
// and the simulation effort. Deduplicated points render like their
// representative (same hash, same result).
func ResultRows(sp *Spec, results []PointResult) (header []string, rows [][]string) {
	header = []string{"point"}
	for i := range sp.Axes {
		header = append(header, sp.Axes[i].Param)
	}
	header = append(header, "status", "unsafety", "ci_lo", "ci_hi", "batches", "error")
	for _, pr := range results {
		row := []string{strconv.Itoa(pr.Index)}
		for i := range sp.Axes {
			val := ""
			for _, c := range pr.Coords {
				if c.Param == sp.Axes[i].Param {
					val = c.Value
					break
				}
			}
			row = append(row, val)
		}
		y, lo, hi, batches := "", "", "", ""
		if pr.Result != nil && len(pr.Result.Unsafety) > 0 {
			last := len(pr.Result.Unsafety) - 1
			y = report.FormatProb(pr.Result.Unsafety[last])
			if len(pr.Result.CILo) > last && len(pr.Result.CIHi) > last {
				lo = report.FormatProb(pr.Result.CILo[last])
				hi = report.FormatProb(pr.Result.CIHi[last])
			}
			batches = strconv.FormatUint(pr.Result.Batches, 10)
		}
		row = append(row, string(pr.Status), y, lo, hi, batches, pr.Error)
		rows = append(rows, row)
	}
	return header, rows
}

// WriteReport renders the sweep's response surface and sensitivity tables
// as a self-contained HTML page.
func WriteReport(w io.Writer, sp *Spec, results []PointResult) error {
	res := SurfaceResult(sp, results)
	name := sp.Name
	if name == "" {
		name = "sweep"
	}
	return report.WriteSurfaceHTML(w, "Parameter sweep: "+name, []*experiments.Result{res})
}
