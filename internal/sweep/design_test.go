package sweep

import (
	"fmt"
	"math"
	"testing"
)

func TestGridExpansionOrderAndLabels(t *testing.T) {
	sp := &Spec{
		Name: "g",
		Base: baseScenario(),
		Axes: []Axis{
			{Param: "strategy", Strings: []string{"DD", "DC"}},
			{Param: "lambdaPerHour", Values: []float64{0.01, 0.02}},
		},
	}
	d, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := []string{
		"g/strategy=DD,lambdaPerHour=0.01",
		"g/strategy=DD,lambdaPerHour=0.02",
		"g/strategy=DC,lambdaPerHour=0.01",
		"g/strategy=DC,lambdaPerHour=0.02",
	}
	if len(d.Points) != len(wantLabels) {
		t.Fatalf("got %d points, want %d", len(d.Points), len(wantLabels))
	}
	for i, p := range d.Points {
		if p.Label != wantLabels[i] {
			t.Errorf("point %d label %q, want %q (first axis must vary slowest)", i, p.Label, wantLabels[i])
		}
		if p.Index != i || p.DedupOf != -1 {
			t.Errorf("point %d: index %d dedupOf %d", i, p.Index, p.DedupOf)
		}
		if p.Scenario.Name != p.Label {
			t.Errorf("point %d scenario name %q != label", i, p.Scenario.Name)
		}
		if p.Scenario.N != 2 || len(p.Scenario.TripHours) != 2 {
			t.Errorf("point %d lost base fields: %+v", i, p.Scenario)
		}
	}
	if d.Points[2].Scenario.Strategy != "DC" {
		t.Errorf("axis not applied: %+v", d.Points[2].Scenario)
	}
	if got := d.Points[3].Scenario.LambdaPerHour; got != 0.02 { //ahsvet:ignore floateq exact literal round-trip, no arithmetic involved
		t.Errorf("lambda axis not applied: %v", got)
	}
	if len(d.Unique) != 4 || d.Deduped() != 0 {
		t.Fatalf("unexpected dedup: unique %v", d.Unique)
	}
}

func TestGridExpansionDoesNotMutateBase(t *testing.T) {
	sp := &Spec{
		Base: baseScenario(),
		Axes: []Axis{{Param: "joinRatePerHour", Values: []float64{1, 2}}},
	}
	if _, err := sp.Expand(); err != nil {
		t.Fatal(err)
	}
	if sp.Base.JoinRatePerHour != nil || sp.Base.Name != "" {
		t.Fatalf("Expand mutated the base scenario: %+v", sp.Base)
	}
}

func TestGridDedupByCanonicalHash(t *testing.T) {
	sp := &Spec{
		Name: "d",
		Base: baseScenario(),
		Axes: []Axis{{Param: "lambdaPerHour", Values: []float64{0.01, 0.02, 0.01}}},
	}
	d, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 3 || len(d.Unique) != 2 || d.Deduped() != 1 {
		t.Fatalf("points %d unique %d deduped %d, want 3/2/1", len(d.Points), len(d.Unique), d.Deduped())
	}
	if d.Points[2].DedupOf != 0 {
		t.Fatalf("repeat level must dedup onto its first twin, got DedupOf=%d", d.Points[2].DedupOf)
	}
	if d.Points[2].Hash != d.Points[0].Hash {
		t.Fatal("twin hashes differ")
	}
	// The cosmetic per-point name must not defeat deduplication.
	if d.Points[0].Scenario.Name == d.Points[2].Scenario.Name && d.Points[0].Label != d.Points[2].Label {
		t.Fatal("labels inconsistent")
	}
}

func TestLHSStratification(t *testing.T) {
	const samples = 16
	sp := &Spec{
		Design:  DesignLHS,
		Samples: samples,
		Base:    baseScenario(),
		Axes:    []Axis{{Param: "lambdaPerHour", Min: 0, Max: 1}},
	}
	d, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != samples {
		t.Fatalf("got %d points, want %d", len(d.Points), samples)
	}
	// Latin-hypercube property: exactly one draw per stratum per axis.
	occupied := make([]bool, samples)
	for _, p := range d.Points {
		v := p.Scenario.LambdaPerHour
		if v < 0 || v >= 1 {
			t.Fatalf("sample %v outside [0,1)", v)
		}
		k := int(v * samples)
		if occupied[k] {
			t.Fatalf("stratum %d drawn twice (not a Latin hypercube)", k)
		}
		occupied[k] = true
	}
}

func TestLHSLogScaleStratification(t *testing.T) {
	const samples = 8
	lo, hi := 1e-4, 1e-2
	sp := &Spec{
		Design:  DesignLHS,
		Samples: samples,
		Base:    baseScenario(),
		Axes:    []Axis{{Param: "lambdaPerHour", Min: lo, Max: hi, Scale: "log"}},
	}
	d, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	occupied := make([]bool, samples)
	for _, p := range d.Points {
		v := p.Scenario.LambdaPerHour
		if v < lo || v > hi {
			t.Fatalf("sample %v outside [%v,%v]", v, lo, hi)
		}
		// Strata are equal slices of log space.
		q := (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
		k := min(int(q*samples), samples-1)
		if occupied[k] {
			t.Fatalf("log stratum %d drawn twice", k)
		}
		occupied[k] = true
	}
}

func TestLHSIntegralAxisRounds(t *testing.T) {
	sp := &Spec{
		Design:  DesignLHS,
		Samples: 6,
		Base:    baseScenario(),
		Axes:    []Axis{{Param: "n", Min: 2, Max: 10}},
	}
	d, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Points {
		n := p.Scenario.N
		if n < 2 || n > 10 {
			t.Fatalf("n=%d outside the axis range", n)
		}
	}
}

func TestLHSDeterministicAndSeedSensitive(t *testing.T) {
	mk := func(seed uint64) *Design {
		sp := &Spec{
			Design:     DesignLHS,
			Samples:    5,
			DesignSeed: seed,
			Base:       baseScenario(),
			Axes:       []Axis{{Param: "lambdaPerHour", Min: 0.001, Max: 0.1}},
		}
		d, err := sp.Expand()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := mk(3), mk(3)
	for i := range a.Points {
		if fmt.Sprintf("%b", a.Points[i].Scenario.LambdaPerHour) != fmt.Sprintf("%b", b.Points[i].Scenario.LambdaPerHour) {
			t.Fatalf("point %d differs across identical expansions", i)
		}
		if a.Points[i].Hash != b.Points[i].Hash {
			t.Fatalf("point %d hash differs across identical expansions", i)
		}
	}
	c := mk(4)
	same := true
	for i := range a.Points {
		if a.Points[i].Hash != c.Points[i].Hash {
			same = false
		}
	}
	if same {
		t.Fatal("designSeed has no effect on the sample")
	}
}

func TestLHSSampleStableUnderAxisAddition(t *testing.T) {
	one := &Spec{
		Design: DesignLHS, Samples: 5, DesignSeed: 2,
		Base: baseScenario(),
		Axes: []Axis{{Param: "lambdaPerHour", Min: 0.001, Max: 0.1}},
	}
	two := &Spec{
		Design: DesignLHS, Samples: 5, DesignSeed: 2,
		Base: baseScenario(),
		Axes: []Axis{
			{Param: "lambdaPerHour", Min: 0.001, Max: 0.1},
			{Param: "participantFailure", Min: 0.01, Max: 0.2},
		},
	}
	da, err := one.Expand()
	if err != nil {
		t.Fatal(err)
	}
	db, err := two.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range da.Points {
		va := da.Points[i].Scenario.LambdaPerHour
		vb := db.Points[i].Scenario.LambdaPerHour
		if fmt.Sprintf("%b", va) != fmt.Sprintf("%b", vb) {
			t.Fatalf("adding an axis reshuffled axis 0: row %d %v vs %v", i, va, vb)
		}
	}
}

func TestLHSCrossedWithExplicitAxesSharesSample(t *testing.T) {
	sp := &Spec{
		Name:    "x",
		Design:  DesignLHS,
		Samples: 3,
		Base:    baseScenario(),
		Axes: []Axis{
			{Param: "strategy", Strings: []string{"DD", "DC"}},
			{Param: "lambdaPerHour", Min: 0.001, Max: 0.1},
		},
	}
	d, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 6 {
		t.Fatalf("got %d points, want 2 strategies x 3 samples", len(d.Points))
	}
	// Every explicit grid cell crosses the SAME Latin-hypercube rows, so the
	// strategies are compared at identical lambda values.
	for row := 0; row < 3; row++ {
		dd := d.Points[row].Scenario
		dc := d.Points[3+row].Scenario
		if dd.Strategy != "DD" || dc.Strategy != "DC" {
			t.Fatalf("row %d strategies %q/%q", row, dd.Strategy, dc.Strategy)
		}
		if fmt.Sprintf("%b", dd.LambdaPerHour) != fmt.Sprintf("%b", dc.LambdaPerHour) {
			t.Fatalf("row %d lambda differs across strategies: %v vs %v", row, dd.LambdaPerHour, dc.LambdaPerHour)
		}
	}
}
