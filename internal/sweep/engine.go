package sweep

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"ahs/internal/obs"
	"ahs/internal/service"
	"ahs/internal/telemetry"
)

// Sentinel errors surfaced by the engine; the HTTP layer maps them to
// status codes.
var (
	ErrUnknownSweep  = errors.New("sweep: unknown sweep id")
	ErrTooManyPoints = errors.New("sweep: design expands to more points than the engine allows")
	ErrShuttingDown  = errors.New("sweep: engine is shutting down")
	// ErrInvalidPoint means an expanded point's scenario fails static
	// parameter validation; the whole sweep is rejected at submission,
	// before any job is created. Runtime evaluation failures, by contrast,
	// fail only their point (partial-failure contract).
	ErrInvalidPoint = errors.New("sweep: design expands to an invalid scenario")
)

// Status is the lifecycle state of a sweep.
type Status string

const (
	// StatusRunning means points are still being scheduled or evaluated.
	StatusRunning Status = "running"
	// StatusDone means every point completed with a result.
	StatusDone Status = "done"
	// StatusPartial means the sweep finished but some points failed or
	// were cancelled — the partial-failure contract: a poisoned point
	// fails that point, never the sweep.
	StatusPartial Status = "partial"
	// StatusCancelled means the sweep was cancelled before finishing.
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool { return s != StatusRunning }

// PointStatus is the lifecycle state of one design point.
type PointStatus string

const (
	PointPending   PointStatus = "pending"   // not yet submitted (bounded fan-out)
	PointScheduled PointStatus = "scheduled" // submitted; queued or running in the job manager
	PointDone      PointStatus = "done"
	PointFailed    PointStatus = "failed"
	PointCancelled PointStatus = "cancelled"
)

// Config sizes the engine. Manager is required; everything else defaults.
type Config struct {
	// Manager executes the expanded points. Sweep points share its
	// deduplication, cache and backend (local or cluster) with direct
	// /v1/evaluate submissions.
	Manager *service.Manager
	// Telemetry is the registry for the ahs_sweep_* families; nil means
	// the manager's registry, so GET /metrics carries both.
	Telemetry *telemetry.Registry
	// MaxInFlight bounds concurrently submitted points per sweep when the
	// spec doesn't set its own (default 4).
	MaxInFlight int
	// MaxPoints rejects designs that expand beyond it (default 4096).
	MaxPoints int
	// HistorySize bounds how many finished sweeps stay pollable (default 64).
	HistorySize int
	// RetryInterval is the pause before retrying a submission bounced by
	// a full manager queue (default 50ms).
	RetryInterval time.Duration
	// Tracer, when non-nil, re-attaches each sweep's run to the
	// submitter's trace so expansion, dedup and every point submission
	// appear under one distributed trace. Nil disables sweep spans.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Telemetry == nil && c.Manager != nil {
		c.Telemetry = c.Manager.Registry()
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxPoints <= 0 {
		c.MaxPoints = 4096
	}
	if c.HistorySize <= 0 {
		c.HistorySize = 64
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 50 * time.Millisecond
	}
	return c
}

// pointRec is the mutable server-side record of one design point.
type pointRec struct {
	Point

	mu     sync.Mutex
	status PointStatus
	jobID  string
	result *service.Result
	errMsg string
}

func (p *pointRec) view() PointView {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := PointView{
		Index:        p.Index,
		Label:        p.Label,
		Coords:       p.Coords,
		ScenarioHash: p.Hash,
		DedupOf:      p.DedupOf,
		Status:       p.status,
		JobID:        p.jobID,
		Error:        p.errMsg,
	}
	return v
}

// PointView is an immutable snapshot of a design point for API responses.
type PointView struct {
	Index        int         `json:"index"`
	Label        string      `json:"label"`
	Coords       []Coord     `json:"coords"`
	ScenarioHash string      `json:"scenarioHash"`
	DedupOf      int         `json:"dedupOf"` // -1 when scheduled itself
	Status       PointStatus `json:"status"`
	JobID        string      `json:"jobId,omitempty"`
	Error        string      `json:"error,omitempty"`
}

// PointResult couples a point's coordinates with its evaluation result.
type PointResult struct {
	Index  int             `json:"index"`
	Label  string          `json:"label"`
	Coords []Coord         `json:"coords"`
	Status PointStatus     `json:"status"`
	Result *service.Result `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// View is a snapshot of a sweep for API responses. Points is populated
// only by Engine.Sweep (the detail endpoint), not the list endpoint.
type View struct {
	ID           string           `json:"id"`
	Name         string           `json:"name"`
	Design       string           `json:"design"`
	Status       Status           `json:"status"`
	Points       int              `json:"points"`
	UniquePoints int              `json:"uniquePoints"`
	Deduped      int              `json:"deduped"`
	Completed    int              `json:"completed"`
	Failed       int              `json:"failed"`
	Cancelled    int              `json:"cancelled"`
	Progress     service.Progress `json:"progress"`
	SubmittedAt  string           `json:"submittedAt,omitempty"`
	FinishedAt   string           `json:"finishedAt,omitempty"`
	PointViews   []PointView      `json:"pointViews,omitempty"`
}

// sweepRec is the mutable server-side record of one sweep.
type sweepRec struct {
	id     string
	spec   *Spec
	design *Design
	points []*pointRec

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	// trace is the submitter's span context, captured at SubmitCtx time;
	// the sweep outlives the submitting request, so run re-attaches to it
	// explicitly rather than holding the request context.
	trace obs.SpanContext
	// tenant is the submitter's tenant, captured like trace and re-applied
	// to every point submission, so a sweep's fan-out is scheduled and
	// accounted under the tenant that asked for it.
	tenant string

	mu        sync.Mutex
	status    Status
	submitted time.Time
	finished  time.Time
}

// Engine expands sweep specs and drives their points through the job
// manager with bounded fan-out. Create with NewEngine, stop with Close.
type Engine struct {
	cfg     Config
	metrics Metrics

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	nextID   uint64
	sweeps   map[string]*sweepRec
	finished []string // terminal sweep ids, oldest first, for pruning
}

// NewEngine returns an engine scheduling through cfg.Manager.
func NewEngine(cfg Config) *Engine {
	if cfg.Manager == nil {
		panic("sweep: Config.Manager is required")
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Engine{
		cfg:        cfg,
		metrics:    newMetrics(cfg.Telemetry),
		baseCtx:    ctx,
		baseCancel: cancel,
		sweeps:     make(map[string]*sweepRec),
	}
}

// Metrics exposes the engine's live counters.
func (e *Engine) Metrics() *Metrics { return &e.metrics }

// Submit expands the spec, registers the sweep and starts scheduling its
// unique points. It returns once expansion is done; evaluation proceeds in
// the background (poll with Sweep / Wait).
func (e *Engine) Submit(sp *Spec) (View, error) {
	return e.SubmitCtx(context.Background(), sp)
}

// SubmitCtx is Submit carrying the caller's trace context: the sweep's
// background run and every point submission join the submitter's
// distributed trace. ctx is used only for trace correlation — sweep
// lifetime is governed by the engine, not the submitting request.
func (e *Engine) SubmitCtx(sctx context.Context, sp *Spec) (View, error) {
	design, err := sp.Expand()
	if err != nil {
		e.metrics.Rejected.Add(1)
		return View{}, err
	}
	if len(design.Points) > e.cfg.MaxPoints {
		e.metrics.Rejected.Add(1)
		return View{}, fmt.Errorf("%w (%d > %d)", ErrTooManyPoints, len(design.Points), e.cfg.MaxPoints)
	}
	// Pre-validate every unique point's scenario parameters. A design that
	// expands to a statically invalid point (bad strategy code, negative
	// rate, infeasible platoon size) is rejected here, before any job is
	// created; the HTTP layer answers 400. Only runtime failures are left
	// to the per-point partial-failure path.
	for _, idx := range design.Unique {
		if _, err := design.Points[idx].Scenario.Params(); err != nil {
			e.metrics.Rejected.Add(1)
			return View{}, fmt.Errorf("%w: point %d (%s): %v", ErrInvalidPoint, idx, design.Points[idx].Label, err)
		}
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.metrics.Rejected.Add(1)
		return View{}, ErrShuttingDown
	}
	e.nextID++
	ctx, cancel := context.WithCancel(e.baseCtx)
	trace, _ := obs.ContextSpanContext(sctx)
	rec := &sweepRec{
		id:        fmt.Sprintf("sweep-%d", e.nextID),
		spec:      sp,
		design:    design,
		points:    make([]*pointRec, len(design.Points)),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		trace:     trace,
		tenant:    service.TenantFrom(sctx, ""),
		status:    StatusRunning,
		submitted: time.Now(),
	}
	for i := range design.Points {
		rec.points[i] = &pointRec{Point: design.Points[i], status: PointPending}
	}
	e.sweeps[rec.id] = rec
	e.wg.Add(1)
	e.mu.Unlock()

	e.metrics.Submitted.Add(1)
	e.metrics.PointsExpanded.Add(uint64(len(design.Points)))
	e.metrics.PointsDeduped.Add(uint64(design.Deduped()))
	e.metrics.Active.Add(1)

	go e.run(rec)
	return e.view(rec, false), nil
}

// run drives one sweep to completion: unique points are submitted in
// expansion order under the fan-out bound; deduplicated twins adopt their
// representative's outcome at the end.
func (e *Engine) run(rec *sweepRec) {
	defer e.wg.Done()
	tctx := obs.ContextWithRemote(rec.ctx, e.cfg.Tracer, rec.trace)
	tctx = service.WithTenant(tctx, rec.tenant)
	tctx, span := obs.Start(tctx, "sweep.run",
		obs.String("sweep", rec.id),
		obs.String("points", strconv.Itoa(len(rec.design.Points))),
		obs.String("deduped", strconv.Itoa(rec.design.Deduped())))
	defer span.End()
	maxInFlight := rec.spec.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = e.cfg.MaxInFlight
	}
	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup

	for _, idx := range rec.design.Unique {
		p := rec.points[idx]
		select {
		case sem <- struct{}{}:
		case <-rec.ctx.Done():
			p.settle(PointCancelled, nil, context.Cause(rec.ctx))
			e.countSettled(PointCancelled)
			continue
		}
		if rec.ctx.Err() != nil {
			<-sem
			p.settle(PointCancelled, nil, context.Cause(rec.ctx))
			e.countSettled(PointCancelled)
			continue
		}
		view, err := e.submitPoint(tctx, rec, p)
		if err != nil {
			// A poisoned point fails that point, not the sweep.
			status := PointFailed
			if errors.Is(err, context.Canceled) || errors.Is(err, service.ErrShuttingDown) {
				status = PointCancelled
			}
			p.settle(status, nil, err)
			e.countSettled(status)
			<-sem
			continue
		}
		p.mu.Lock()
		p.status = PointScheduled
		p.jobID = view.ID
		p.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			e.awaitPoint(rec, p)
		}()
	}
	wg.Wait()

	// Deduplicated twins share their representative's job and outcome.
	for i := range rec.points {
		p := rec.points[i]
		if p.DedupOf < 0 {
			continue
		}
		twin := rec.points[p.DedupOf]
		twin.mu.Lock()
		status, res, errMsg, jobID := twin.status, twin.result, twin.errMsg, twin.jobID
		twin.mu.Unlock()
		p.mu.Lock()
		p.status, p.result, p.errMsg, p.jobID = status, res, errMsg, jobID
		p.mu.Unlock()
	}

	// Finalize.
	completed, failed, cancelled := 0, 0, 0
	for _, idx := range rec.design.Unique {
		switch rec.points[idx].view().Status {
		case PointDone:
			completed++
		case PointFailed:
			failed++
		case PointCancelled:
			cancelled++
		}
	}
	status := StatusDone
	switch {
	case rec.ctx.Err() != nil:
		status = StatusCancelled
	case failed+cancelled > 0:
		status = StatusPartial
	}
	span.SetAttr("status", string(status))
	rec.mu.Lock()
	rec.status = status
	rec.finished = time.Now()
	elapsed := rec.finished.Sub(rec.submitted)
	rec.mu.Unlock()
	close(rec.done)
	rec.cancel()

	e.metrics.Active.Add(-1)
	e.metrics.Duration.Observe(elapsed.Seconds())

	e.mu.Lock()
	e.finished = append(e.finished, rec.id)
	if over := len(e.finished) - e.cfg.HistorySize; over > 0 {
		for _, id := range e.finished[:over] {
			delete(e.sweeps, id)
		}
		e.finished = append(e.finished[:0:0], e.finished[over:]...)
	}
	e.mu.Unlock()
}

// submitPoint hands one scenario to the job manager, retrying while the
// queue is full — or the sweep's tenant at its quota — so a big design
// never dies to transient backpressure. ctx carries the sweep's span and
// tenant so each point's job links to the trace and schedules in the
// submitting tenant's lane.
func (e *Engine) submitPoint(ctx context.Context, rec *sweepRec, p *pointRec) (service.JobView, error) {
	for {
		view, err := e.cfg.Manager.SubmitCtx(ctx, p.Scenario)
		if !errors.Is(err, service.ErrQueueFull) && !errors.Is(err, service.ErrTenantQuota) {
			return view, err
		}
		select {
		case <-time.After(e.cfg.RetryInterval):
		case <-rec.ctx.Done():
			return service.JobView{}, context.Cause(rec.ctx)
		}
	}
}

// awaitPoint blocks until the point's job settles and records the outcome.
func (e *Engine) awaitPoint(rec *sweepRec, p *pointRec) {
	view, err := e.cfg.Manager.Wait(rec.ctx, p.jobID)
	if err != nil {
		// The sweep was cancelled while the job ran on; the job itself
		// keeps its own lifecycle (it may be shared with other clients).
		p.settle(PointCancelled, nil, err)
		e.countSettled(PointCancelled)
		return
	}
	switch view.Status {
	case service.StatusDone:
		res, _, rerr := e.cfg.Manager.Result(p.jobID)
		if rerr != nil || res == nil {
			p.settle(PointFailed, nil, fmt.Errorf("sweep: job %s finished without a result: %v", p.jobID, rerr))
			e.countSettled(PointFailed)
			return
		}
		p.settle(PointDone, res, nil)
		e.countSettled(PointDone)
	case service.StatusCancelled:
		p.settle(PointCancelled, nil, errors.New(view.Error))
		e.countSettled(PointCancelled)
	default: // failed
		p.settle(PointFailed, nil, errors.New(view.Error))
		e.countSettled(PointFailed)
	}
}

func (p *pointRec) settle(status PointStatus, res *service.Result, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.status = status
	p.result = res
	if err != nil {
		p.errMsg = err.Error()
	}
}

func (e *Engine) countSettled(status PointStatus) {
	switch status {
	case PointDone:
		e.metrics.PointsCompleted.Add(1)
	case PointFailed:
		e.metrics.PointsFailed.Add(1)
	case PointCancelled:
		e.metrics.PointsCancelled.Add(1)
	}
}

// view assembles a snapshot; withPoints adds the per-point detail.
func (e *Engine) view(rec *sweepRec, withPoints bool) View {
	rec.mu.Lock()
	v := View{
		ID:           rec.id,
		Name:         rec.spec.Name,
		Design:       rec.spec.Design,
		Status:       rec.status,
		Points:       len(rec.points),
		UniquePoints: len(rec.design.Unique),
		Deduped:      rec.design.Deduped(),
	}
	if v.Design == "" {
		v.Design = DesignGrid
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	v.SubmittedAt = stamp(rec.submitted)
	v.FinishedAt = stamp(rec.finished)
	rec.mu.Unlock()

	for _, idx := range rec.design.Unique {
		p := rec.points[idx]
		pv := p.view()
		switch pv.Status {
		case PointDone:
			v.Completed++
		case PointFailed:
			v.Failed++
		case PointCancelled:
			v.Cancelled++
		}
		// Aggregate batch progress: settled points contribute their final
		// counters, scheduled ones their live job progress.
		if pv.Status == PointDone {
			p.mu.Lock()
			if p.result != nil {
				v.Progress.BatchesDone += p.result.Batches
				v.Progress.MaxBatches += p.result.Batches
			}
			p.mu.Unlock()
		} else if pv.JobID != "" {
			if jv, err := e.cfg.Manager.Job(pv.JobID); err == nil {
				v.Progress.BatchesDone += jv.Progress.BatchesDone
				v.Progress.MaxBatches += jv.Progress.MaxBatches
			}
		}
	}
	if withPoints {
		v.PointViews = make([]PointView, len(rec.points))
		for i, p := range rec.points {
			v.PointViews[i] = p.view()
		}
	}
	return v
}

func (e *Engine) lookup(id string) (*sweepRec, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.sweeps[id]
	if !ok {
		return nil, ErrUnknownSweep
	}
	return rec, nil
}

// Sweep returns the detailed snapshot of one sweep.
func (e *Engine) Sweep(id string) (View, error) {
	rec, err := e.lookup(id)
	if err != nil {
		return View{}, err
	}
	return e.view(rec, true), nil
}

// Sweeps lists summaries of all pollable sweeps, oldest first.
func (e *Engine) Sweeps() []View {
	e.mu.Lock()
	recs := make([]*sweepRec, 0, len(e.sweeps))
	for _, rec := range e.sweeps {
		recs = append(recs, rec)
	}
	e.mu.Unlock()
	sortViewsByID(recs)
	views := make([]View, len(recs))
	for i, rec := range recs {
		views[i] = e.view(rec, false)
	}
	return views
}

// Results returns the per-point outcomes (deduplicated twins included,
// resolved to their representative's result once the sweep finishes).
func (e *Engine) Results(id string) ([]PointResult, error) {
	rec, err := e.lookup(id)
	if err != nil {
		return nil, err
	}
	out := make([]PointResult, len(rec.points))
	for i, p := range rec.points {
		p.mu.Lock()
		out[i] = PointResult{
			Index:  p.Index,
			Label:  p.Label,
			Coords: p.Coords,
			Status: p.status,
			Result: p.result,
			Error:  p.errMsg,
		}
		p.mu.Unlock()
	}
	return out, nil
}

// Cancel stops scheduling new points of the sweep and marks it cancelled.
// Jobs already submitted are left to settle on their own: they may be
// shared with other sweeps or direct /v1/evaluate clients, so the engine
// never cancels manager jobs it does not exclusively own.
func (e *Engine) Cancel(id string) (View, error) {
	rec, err := e.lookup(id)
	if err != nil {
		return View{}, err
	}
	rec.cancel()
	return e.view(rec, false), nil
}

// Wait blocks until the sweep reaches a terminal status or ctx expires.
func (e *Engine) Wait(ctx context.Context, id string) (View, error) {
	rec, err := e.lookup(id)
	if err != nil {
		return View{}, err
	}
	select {
	case <-rec.done:
		return e.view(rec, false), nil
	case <-ctx.Done():
		return View{}, ctx.Err()
	}
}

// Close cancels every running sweep and waits for their goroutines (or for
// ctx). Call after the manager has drained so settled jobs resolve points
// rather than cancelling them.
func (e *Engine) Close(ctx context.Context) error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.baseCancel()
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sortViewsByID orders sweep records by numeric id suffix (creation order).
func sortViewsByID(recs []*sweepRec) {
	sort.Slice(recs, func(i, j int) bool { return idNum(recs[i].id) < idNum(recs[j].id) })
}

func idNum(id string) uint64 {
	var n uint64
	fmt.Sscanf(id, "sweep-%d", &n)
	return n
}
