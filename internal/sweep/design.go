package sweep

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"ahs/internal/config"
	"ahs/internal/rng"
)

// Coord is one axis coordinate of an expanded point, in display form.
type Coord struct {
	Param string `json:"param"`
	Value string `json:"value"`
}

// Point is one concrete scenario of an expanded design.
type Point struct {
	// Index is the point's position in the deterministic expansion order.
	Index int `json:"index"`
	// Label is the point's human-readable coordinate string, also used as
	// the scenario's cosmetic name ("<sweep>/strategy=DD,n=8,...").
	Label string `json:"label"`
	// Coords are the axis coordinates in spec order.
	Coords []Coord `json:"coords"`
	// Scenario is the fully applied scenario.
	Scenario *config.Scenario `json:"-"`
	// Hash is the scenario's canonical hash — the dedup and cache key.
	Hash string `json:"hash"`
	// DedupOf is the index of the earlier point with the same hash, or -1
	// when this point is scheduled itself.
	DedupOf int `json:"dedupOf"`
}

// Design is a fully expanded sweep: every point in order, plus the indices
// of the unique (actually scheduled) points.
type Design struct {
	Spec   *Spec
	Points []Point
	// Unique indexes the representative points in expansion order; points
	// not listed here are deduplicated onto an earlier twin.
	Unique []int
}

// Deduped reports how many points were coalesced onto an earlier twin.
func (d *Design) Deduped() int { return len(d.Points) - len(d.Unique) }

// level is one concrete axis setting during expansion.
type level struct {
	num float64
	str string
}

// display renders the level for labels and coords: categorical levels
// verbatim, numeric ones in shortest round-trip form.
func (l level) display() string {
	if l.str != "" {
		return l.str
	}
	return strconv.FormatFloat(l.num, 'g', -1, 64)
}

// Expand applies the design deterministically: the explicit axes form a
// row-major cartesian product (first axis slowest), and — for the lhs
// design — each grid cell is crossed with one shared Latin-hypercube
// sample of Spec.Samples points over the ranged axes. Points whose
// canonical scenario hash repeats an earlier point are marked deduplicated
// rather than dropped, so per-point reporting still covers the full
// design.
func (sp *Spec) Expand() (*Design, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	design := sp.Design
	if design == "" {
		design = DesignGrid
	}

	// Partition axes: explicit ones enumerate levels, ranged ones share
	// the LHS sample matrix.
	type axisLevels struct {
		axis   *Axis
		def    axisDef
		levels []level
	}
	var explicit []axisLevels
	var rangedAxes []*Axis
	for i := range sp.Axes {
		a := &sp.Axes[i]
		def, err := lookupAxisDef(a.Param)
		if err != nil {
			return nil, err
		}
		if a.ranged() {
			rangedAxes = append(rangedAxes, a)
			continue
		}
		levels := make([]level, 0, a.levels())
		for _, s := range a.Strings {
			levels = append(levels, level{str: s})
		}
		for _, v := range a.Values {
			levels = append(levels, level{num: v})
		}
		explicit = append(explicit, axisLevels{axis: a, def: def, levels: levels})
	}

	// The Latin-hypercube sample: one matrix of Samples rows over the
	// ranged axes, shared by every explicit grid cell. Stream j of the
	// design seed drives axis j alone, so adding an axis never reshuffles
	// the others.
	var sample [][]level // sample[i][j] = level of ranged axis j in row i
	if design == DesignLHS && len(rangedAxes) > 0 {
		sample = lhsSample(sp.DesignSeed, sp.Samples, rangedAxes)
	}

	total := 1
	for _, ax := range explicit {
		total *= len(ax.levels)
	}
	if len(sample) > 0 {
		total *= len(sample)
	}

	d := &Design{Spec: sp, Points: make([]Point, 0, total)}
	byHash := make(map[string]int, total)
	name := sp.Name
	if name == "" {
		name = "sweep"
	}

	// counters enumerates the explicit grid row-major.
	counters := make([]int, len(explicit))
	for {
		rows := 1
		if len(sample) > 0 {
			rows = len(sample)
		}
		for row := 0; row < rows; row++ {
			sc := sp.Base // copy; pointer fields are never written through
			coords := make([]Coord, 0, len(sp.Axes))
			// Apply in spec order so labels read like the spec.
			ei, ri := 0, 0
			for ai := range sp.Axes {
				a := &sp.Axes[ai]
				var lv level
				var def axisDef
				if a.ranged() {
					lv = sample[row][ri]
					def, _ = lookupAxisDef(a.Param)
					ri++
				} else {
					lv = explicit[ei].levels[counters[ei]]
					def = explicit[ei].def
					ei++
				}
				def.set(&sc, lv.num, lv.str)
				coords = append(coords, Coord{Param: a.Param, Value: lv.display()})
			}
			parts := make([]string, len(coords))
			for i, c := range coords {
				parts[i] = c.Param + "=" + c.Value
			}
			sc.Name = name + "/" + strings.Join(parts, ",")
			hash, err := sc.Hash()
			if err != nil {
				return nil, fmt.Errorf("sweep: hash point %d: %w", len(d.Points), err)
			}
			p := Point{
				Index:    len(d.Points),
				Label:    sc.Name,
				Coords:   coords,
				Scenario: &sc,
				Hash:     hash,
				DedupOf:  -1,
			}
			if first, ok := byHash[hash]; ok {
				p.DedupOf = first
			} else {
				byHash[hash] = p.Index
				d.Unique = append(d.Unique, p.Index)
			}
			d.Points = append(d.Points, p)
		}
		// Advance the row-major counters, last axis fastest.
		i := len(counters) - 1
		for ; i >= 0; i-- {
			counters[i]++
			if counters[i] < len(explicit[i].levels) {
				break
			}
			counters[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return d, nil
}

// lhsSample draws a Latin-hypercube sample: samples rows over the ranged
// axes, each axis stratified into samples equal slices (in its scale) with
// one jittered draw per slice, independently permuted per axis. Axis j
// consumes only rng stream j of the design seed, keeping the sample stable
// under axis addition and removal.
func lhsSample(designSeed uint64, samples int, axes []*Axis) [][]level {
	if designSeed == 0 {
		designSeed = 1
	}
	src := rng.NewSource(designSeed)
	cols := make([][]level, len(axes))
	for j, a := range axes {
		stream := src.Stream(uint64(j))
		def, _ := lookupAxisDef(a.Param)
		// Jitter within each stratum, then a Fisher-Yates shuffle of the
		// strata; both from the axis's own stream, jitters first so the
		// draw count per phase is fixed.
		jitter := make([]float64, samples)
		for i := range jitter {
			jitter[i] = stream.Float64()
		}
		perm := make([]int, samples)
		for i := range perm {
			perm[i] = i
		}
		for i := samples - 1; i > 0; i-- {
			k := stream.Intn(i + 1)
			perm[i], perm[k] = perm[k], perm[i]
		}
		col := make([]level, samples)
		for i := 0; i < samples; i++ {
			q := (float64(perm[i]) + jitter[i]) / float64(samples)
			v := a.Min + (a.Max-a.Min)*q
			if a.Scale == "log" {
				lo, hi := math.Log(a.Min), math.Log(a.Max)
				v = math.Exp(lo + (hi-lo)*q)
			}
			if def.integral {
				v = math.Round(v)
			}
			col[i] = level{num: v}
		}
		cols[j] = col
	}
	rows := make([][]level, samples)
	for i := range rows {
		row := make([]level, len(axes))
		for j := range axes {
			row[j] = cols[j][i]
		}
		rows[i] = row
	}
	return rows
}
