// Package sweep turns one evaluation request into a whole parameter study:
// a declarative design (full grid or Latin-hypercube sample) over the axes
// of config.Scenario expands deterministically into concrete scenarios,
// deduplicates them by canonical scenario hash, and fans the unique points
// out as jobs through the internal/service manager — and therefore through
// internal/cluster when the server runs with -cluster. The per-point
// reproducibility contract of the rest of the stack carries over: every
// expanded point yields a curve bit-identical to submitting that scenario
// as a standalone job.
//
// cmd/ahs-serve mounts the HTTP API (POST /v1/sweeps, GET /v1/sweeps/{id},
// per-point results and an HTML response-surface report); cmd/ahs-sweep
// submits spec files from the command line. See docs/api.md.
package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"ahs/internal/config"
	"ahs/internal/platoon"
)

// Designs supported by Spec.Design.
const (
	DesignGrid = "grid"
	DesignLHS  = "lhs"
)

// Spec is a declarative parameter-sweep design over config.Scenario axes.
// It expands deterministically — same spec, same points, same order — so a
// sweep is as replayable as a single scenario.
type Spec struct {
	// Name labels the sweep and prefixes every generated point name.
	Name string `json:"name,omitempty"`
	// Design selects the expansion: "grid" (default) takes the cartesian
	// product of the axis levels; "lhs" crosses the explicit axes with one
	// Latin-hypercube sample of Samples points over the ranged axes.
	Design string `json:"design,omitempty"`
	// Base is the scenario every point starts from; each axis overwrites
	// one field of a copy. Fields swept by an axis may be left zero here.
	Base config.Scenario `json:"base"`
	// Axes are applied in order; their order also fixes the expansion
	// order (first axis varies slowest).
	Axes []Axis `json:"axes"`
	// Samples is the Latin-hypercube sample size (required for "lhs",
	// rejected for "grid").
	Samples int `json:"samples,omitempty"`
	// DesignSeed seeds the Latin-hypercube sampler (default 1). It is a
	// design-time seed: it chooses which points are evaluated, not how any
	// point is simulated (that is Base.Seed / the "seed" axis).
	DesignSeed uint64 `json:"designSeed,omitempty"`
	// MaxInFlight bounds how many points of this sweep are submitted to
	// the job manager at once (default engine-configured, typically 4).
	MaxInFlight int `json:"maxInFlight,omitempty"`
}

// Axis sweeps one scenario parameter. Exactly one of the level forms must
// be set: Values (numeric levels), Strings (categorical levels), or
// Min/Max (a range sampled by the Latin-hypercube design).
type Axis struct {
	// Param names the swept scenario field; see AxisParams.
	Param string `json:"param"`
	// Values are explicit numeric levels, crossed grid-style.
	Values []float64 `json:"values,omitempty"`
	// Strings are explicit categorical levels (e.g. strategy codes).
	Strings []string `json:"strings,omitempty"`
	// Min/Max delimit a ranged axis, sampled only by the "lhs" design.
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
	// Scale is "linear" (default) or "log"; log-scaled ranges are sampled
	// uniformly in log space (the natural choice for failure rates λ).
	Scale string `json:"scale,omitempty"`
}

// ranged reports whether the axis is a Min/Max range rather than explicit
// levels.
func (a *Axis) ranged() bool { return len(a.Values) == 0 && len(a.Strings) == 0 }

// levels returns the number of explicit levels of a non-ranged axis.
func (a *Axis) levels() int {
	if len(a.Strings) > 0 {
		return len(a.Strings)
	}
	return len(a.Values)
}

// axisDef describes how one sweepable parameter is applied to a scenario.
type axisDef struct {
	categorical bool
	integral    bool
	set         func(sc *config.Scenario, num float64, str string)
}

// maneuverRatePrefix names per-maneuver execution-rate axes, e.g.
// "maneuverRatesPerHour.GS".
const maneuverRatePrefix = "maneuverRatesPerHour."

// axisDefs maps Axis.Param to its application; the keys match the JSON
// field names of config.Scenario.
var axisDefs = map[string]axisDef{
	"strategy":            {categorical: true, set: func(sc *config.Scenario, _ float64, s string) { sc.Strategy = s }},
	"n":                   {integral: true, set: func(sc *config.Scenario, v float64, _ string) { sc.N = int(v) }},
	"lanes":               {integral: true, set: func(sc *config.Scenario, v float64, _ string) { sc.Lanes = int(v) }},
	"batches":             {integral: true, set: func(sc *config.Scenario, v float64, _ string) { sc.Batches = uint64(v) }},
	"seed":                {integral: true, set: func(sc *config.Scenario, v float64, _ string) { sc.Seed = uint64(v) }},
	"lambdaPerHour":       {set: func(sc *config.Scenario, v float64, _ string) { sc.LambdaPerHour = v }},
	"joinRatePerHour":     {set: func(sc *config.Scenario, v float64, _ string) { sc.JoinRatePerHour = &v }},
	"leaveRatePerHour":    {set: func(sc *config.Scenario, v float64, _ string) { sc.LeaveRatePerHour = &v }},
	"changeRatePerHour":   {set: func(sc *config.Scenario, v float64, _ string) { sc.ChangeRatePerHour = &v }},
	"passThroughPerHour":  {set: func(sc *config.Scenario, v float64, _ string) { sc.PassThroughPerHour = &v }},
	"maneuverBaseFailure": {set: func(sc *config.Scenario, v float64, _ string) { sc.ManeuverBaseFailure = &v }},
	"participantFailure":  {set: func(sc *config.Scenario, v float64, _ string) { sc.ParticipantFailure = &v }},
	"degradedPenalty":     {set: func(sc *config.Scenario, v float64, _ string) { sc.DegradedPenalty = &v }},
}

// lookupAxisDef resolves an axis parameter name, including the dynamic
// "maneuverRatesPerHour.<ABBR>" family.
func lookupAxisDef(param string) (axisDef, error) {
	if def, ok := axisDefs[param]; ok {
		return def, nil
	}
	if abbr, ok := strings.CutPrefix(param, maneuverRatePrefix); ok {
		for _, m := range platoon.AllManeuvers() {
			if m.String() == abbr {
				return axisDef{set: func(sc *config.Scenario, v float64, _ string) {
					rates := make(map[string]float64, len(sc.ManeuverRatesPerHour)+1)
					for k, r := range sc.ManeuverRatesPerHour {
						rates[k] = r
					}
					rates[abbr] = v
					sc.ManeuverRatesPerHour = rates
				}}, nil
			}
		}
		return axisDef{}, fmt.Errorf("sweep: unknown maneuver %q in axis param %q", abbr, param)
	}
	return axisDef{}, fmt.Errorf("sweep: unknown axis param %q (see docs/api.md for the sweepable fields)", param)
}

// AxisParams lists the sweepable parameter names, sorted, for error
// messages and documentation tests.
func AxisParams() []string {
	names := make([]string, 0, len(axisDefs)+1)
	for name := range axisDefs {
		names = append(names, name)
	}
	names = append(names, maneuverRatePrefix+"<maneuver>")
	sort.Strings(names)
	return names
}

// Load parses a sweep spec from JSON, rejecting unknown fields, and
// validates it.
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("sweep: parse spec: %w", err)
	}
	if dec.More() {
		return nil, errors.New("sweep: trailing data after spec object")
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// LoadFile parses a sweep spec file.
func LoadFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	defer f.Close()
	sp, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("sweep: %s: %w", path, err)
	}
	return sp, nil
}

// Validate checks the spec's structure. Per-point scenario validity
// (parameter ranges, model constraints) is not checked here because the
// points do not exist yet; Engine.Submit validates every expanded point's
// parameters statically after expansion and rejects the sweep with
// ErrInvalidPoint before any job is created. Failures that only manifest
// at evaluation time still fail just their point, never the sweep.
func (sp *Spec) Validate() error {
	var errs []error
	design := sp.Design
	if design == "" {
		design = DesignGrid
	}
	if design != DesignGrid && design != DesignLHS {
		errs = append(errs, fmt.Errorf("sweep: unknown design %q (want %q or %q)", sp.Design, DesignGrid, DesignLHS))
	}
	if len(sp.Axes) == 0 {
		errs = append(errs, errors.New("sweep: at least one axis is required"))
	}
	seen := make(map[string]bool, len(sp.Axes))
	ranged := 0
	for i := range sp.Axes {
		a := &sp.Axes[i]
		at := func(format string, args ...any) {
			errs = append(errs, fmt.Errorf("sweep: axis %d (%s): %s", i, a.Param, fmt.Sprintf(format, args...)))
		}
		def, err := lookupAxisDef(a.Param)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if seen[a.Param] {
			at("duplicate axis")
		}
		seen[a.Param] = true
		forms := 0
		if len(a.Values) > 0 {
			forms++
		}
		if len(a.Strings) > 0 {
			forms++
		}
		if a.Min != 0 || a.Max != 0 {
			forms++
		}
		if forms != 1 {
			at("exactly one of values, strings, or min/max is required")
			continue
		}
		switch a.Scale {
		case "", "linear", "log":
		default:
			at("unknown scale %q (want linear or log)", a.Scale)
		}
		switch {
		case len(a.Strings) > 0:
			if !def.categorical {
				at("numeric parameter cannot take string levels")
			}
		case len(a.Values) > 0:
			if def.categorical {
				at("categorical parameter needs string levels")
			}
			if def.integral {
				for _, v := range a.Values {
					if v != math.Trunc(v) || v < 0 { //ahsvet:ignore floateq exact integrality check, not a tolerance comparison
						at("level %v is not a non-negative integer", v)
						break
					}
				}
			}
		default: // ranged
			ranged++
			if def.categorical {
				at("categorical parameter cannot be ranged")
			}
			if !(a.Min < a.Max) {
				at("min %v must be below max %v", a.Min, a.Max)
			}
			if a.Scale == "log" && a.Min <= 0 {
				at("log scale requires min > 0")
			}
			if design == DesignGrid {
				at("grid design cannot sample a min/max range; use the lhs design or explicit values")
			}
		}
	}
	if design == DesignLHS {
		if sp.Samples < 1 {
			errs = append(errs, errors.New("sweep: lhs design requires samples >= 1"))
		}
		if ranged == 0 && len(sp.Axes) > 0 {
			errs = append(errs, errors.New("sweep: lhs design requires at least one min/max ranged axis"))
		}
	} else if sp.Samples != 0 {
		errs = append(errs, errors.New("sweep: samples is only meaningful for the lhs design"))
	}
	if sp.MaxInFlight < 0 {
		errs = append(errs, errors.New("sweep: maxInFlight must be non-negative"))
	}
	return errors.Join(errs...)
}
