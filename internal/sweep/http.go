package sweep

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"ahs/internal/obs"
	"ahs/internal/service"
	"ahs/internal/telemetry"
)

// maxSpecBytes bounds the request body of POST /v1/sweeps; even a spec
// with hundreds of explicit levels is a few KiB.
const maxSpecBytes = 1 << 20

// submitResponse acknowledges a sweep submission.
type submitResponse struct {
	ID           string `json:"id"`
	Status       Status `json:"status"`
	Points       int    `json:"points"`
	UniquePoints int    `json:"uniquePoints"`
	Deduped      int    `json:"deduped"`
	StatusURL    string `json:"statusUrl"`
	ResultsURL   string `json:"resultsUrl"`
	ReportURL    string `json:"reportUrl"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// NewHandler exposes the engine over the HTTP JSON API mounted by
// cmd/ahs-serve under /v1/sweeps; docs/api.md documents the endpoints.
// Routes share the service's ahs_http_request_duration_seconds histogram
// family, so one scrape covers evaluate and sweep latency alike.
func NewHandler(e *Engine) http.Handler {
	s := &server{e: e}
	latency := e.cfg.Telemetry.HistogramVec(telemetry.Opts{
		Name:    "ahs_http_request_duration_seconds",
		Help:    "API request latency by route pattern.",
		Buckets: service.RequestDurationBuckets,
	}, "endpoint")
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		hist := latency.With(pattern) //ahsvet:ignore locklabel patterns are the compile-time route literals below
		traced := obs.Middleware(e.cfg.Tracer, pattern, h)
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			traced.ServeHTTP(w, r)
			hist.Observe(time.Since(start).Seconds())
		})
	}
	handle("POST /v1/sweeps", s.handleSubmit)
	handle("GET /v1/sweeps", s.handleList)
	handle("GET /v1/sweeps/{id}", s.handleSweep)
	handle("GET /v1/sweeps/{id}/stream", s.handleStream)
	handle("DELETE /v1/sweeps/{id}", s.handleCancel)
	handle("GET /v1/sweeps/{id}/results", s.handleResults)
	handle("GET /v1/sweeps/{id}/report", s.handleReport)
	return mux
}

type server struct {
	e *Engine
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// handleSubmit accepts a sweep Spec JSON body and answers 202 with the
// sweep ack, 400 on a malformed or invalid spec (including designs beyond
// the point budget) and 503 during shutdown.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	sp, err := Load(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The tenant rides the submit context, exactly as for single
	// evaluations: every point of the sweep schedules in this lane.
	ctx := service.WithTenant(r.Context(), r.Header.Get(service.TenantHeader))
	view, err := s.e.SubmitCtx(ctx, sp)
	switch {
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:           view.ID,
		Status:       view.Status,
		Points:       view.Points,
		UniquePoints: view.UniquePoints,
		Deduped:      view.Deduped,
		StatusURL:    "/v1/sweeps/" + view.ID,
		ResultsURL:   "/v1/sweeps/" + view.ID + "/results",
		ReportURL:    "/v1/sweeps/" + view.ID + "/report",
	})
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.e.Sweeps())
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	view, err := s.e.Sweep(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleStream serves GET /v1/sweeps/{id}/stream: an SSE stream of the
// sweep's aggregate life, mirroring the per-job stream. Events:
//
//	progress  sweep View (point counts + aggregate batch progress), on change
//	sweep     terminal View — identical to GET /v1/sweeps/{id} afterwards
//
// The stream ends with exactly one terminal "sweep" event and closes.
func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.e.Sweep(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	sse, err := service.NewSSEWriter(w)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	var last View
	sent := false
	heartbeat := time.Now()
	ticker := time.NewTicker(service.SSEPollInterval)
	defer ticker.Stop()
	for {
		view, err := s.e.Sweep(id)
		if err != nil {
			// Pruned from history mid-stream; close and let the client re-poll.
			return
		}
		if view.Status.Terminal() {
			_ = sse.Send("sweep", view)
			return
		}
		if !sent || changed(last, view) {
			if err := sse.Send("progress", view); err != nil {
				return
			}
			last, sent = view, true
			heartbeat = time.Now()
		}
		if time.Since(heartbeat) >= service.SSEHeartbeat {
			if err := sse.Heartbeat(); err != nil {
				return
			}
			heartbeat = time.Now()
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// changed reports whether the stream-relevant part of a sweep view moved.
func changed(a, b View) bool {
	return a.Status != b.Status ||
		a.Completed != b.Completed ||
		a.Failed != b.Failed ||
		a.Cancelled != b.Cancelled ||
		a.Progress != b.Progress
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.e.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *server) handleResults(w http.ResponseWriter, r *http.Request) {
	results, err := s.e.Results(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, results)
}

// handleReport renders the live response surface as HTML; a sweep still
// running renders its completed region (the page says so via the figure's
// point counts, and re-fetching refreshes it).
func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	rec, err := s.e.lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	results, err := s.e.Results(rec.id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = WriteReport(w, rec.spec, results)
}
