package sweep

import "ahs/internal/telemetry"

// DurationBuckets is the latency layout of ahs_sweep_duration_seconds:
// sub-second smoke grids to multi-hour response surfaces.
var DurationBuckets = telemetry.ExponentialBuckets(0.25, 4, 10)

// Metrics are the sweep engine's telemetry families (docs/observability.md
// catalogues them under "Sweep").
type Metrics struct {
	// Submitted counts accepted sweep specs; Rejected counts specs
	// refused at submission (invalid, too many points, shutdown).
	Submitted *telemetry.Counter
	Rejected  *telemetry.Counter
	// PointsExpanded counts design points produced by expansion,
	// deduplicated twins included; PointsDeduped counts the twins that
	// were coalesced onto an earlier point instead of being scheduled.
	PointsExpanded *telemetry.Counter
	PointsDeduped  *telemetry.Counter
	// PointsCompleted / PointsFailed / PointsCancelled count scheduled
	// points by outcome (deduplicated twins resolve with their
	// representative and are not re-counted).
	PointsCompleted *telemetry.Counter
	PointsFailed    *telemetry.Counter
	PointsCancelled *telemetry.Counter
	// Active is the number of sweeps currently expanding or running.
	Active *telemetry.Gauge
	// Duration observes the wall-clock seconds from sweep submission to
	// its last point settling.
	Duration *telemetry.Histogram
}

func newMetrics(reg *telemetry.Registry) Metrics {
	counter := func(name, help string) *telemetry.Counter {
		return reg.Counter(telemetry.Opts{Name: name, Help: help})
	}
	return Metrics{
		Submitted:       counter("ahs_sweep_submitted_total", "Accepted sweep specs."),
		Rejected:        counter("ahs_sweep_rejected_total", "Sweep specs refused at submission."),
		PointsExpanded:  counter("ahs_sweep_points_expanded_total", "Design points produced by expansion (dedup twins included)."),
		PointsDeduped:   counter("ahs_sweep_points_deduped_total", "Expanded points coalesced onto an earlier identical point."),
		PointsCompleted: counter("ahs_sweep_points_completed_total", "Scheduled sweep points that finished with a result."),
		PointsFailed:    counter("ahs_sweep_points_failed_total", "Scheduled sweep points that failed."),
		PointsCancelled: counter("ahs_sweep_points_cancelled_total", "Scheduled sweep points cancelled before completion."),
		Active:          reg.Gauge(telemetry.Opts{Name: "ahs_sweep_active", Help: "Sweeps currently running."}),
		Duration: reg.Histogram(telemetry.Opts{
			Name:    "ahs_sweep_duration_seconds",
			Help:    "Wall-clock time from sweep submission to the last point settling.",
			Buckets: DurationBuckets,
		}),
	}
}
