package sweep

import (
	"slices"
	"strings"
	"testing"

	"ahs/internal/config"
)

// baseScenario is the tiny fast scenario sweep tests expand around.
func baseScenario() config.Scenario {
	return config.Scenario{
		N:             2,
		LambdaPerHour: 0.01,
		TripHours:     []float64{0.5, 1},
		Batches:       200,
		Seed:          9,
	}
}

func TestLoadRejectsUnknownFieldsAndTrailingData(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"axes":[{"param":"strategy","strings":["DD"]}],"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Load(strings.NewReader(`{"axes":[{"param":"strategy","strings":["DD"]}]} {"x":1}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
	sp, err := Load(strings.NewReader(`{"name":"ok","axes":[{"param":"strategy","strings":["DD","DC"]}]}`))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if sp.Name != "ok" || len(sp.Axes) != 1 {
		t.Fatalf("spec parsed wrong: %+v", sp)
	}
}

func TestValidateRejections(t *testing.T) {
	valid := func() *Spec {
		return &Spec{Base: baseScenario(), Axes: []Axis{{Param: "lambdaPerHour", Values: []float64{0.01, 0.02}}}}
	}
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string
	}{
		{"unknown design", func(sp *Spec) { sp.Design = "sobol" }, "unknown design"},
		{"no axes", func(sp *Spec) { sp.Axes = nil }, "at least one axis"},
		{"unknown param", func(sp *Spec) { sp.Axes[0].Param = "warpFactor" }, "unknown axis param"},
		{"unknown maneuver", func(sp *Spec) { sp.Axes[0].Param = "maneuverRatesPerHour.ZZ" }, "unknown maneuver"},
		{"duplicate axis", func(sp *Spec) { sp.Axes = append(sp.Axes, sp.Axes[0]) }, "duplicate axis"},
		{"no level form", func(sp *Spec) { sp.Axes[0].Values = nil }, "exactly one of"},
		{"two level forms", func(sp *Spec) { sp.Axes[0].Min, sp.Axes[0].Max = 1, 2 }, "exactly one of"},
		{"bad scale", func(sp *Spec) { sp.Axes[0].Scale = "cubic" }, "unknown scale"},
		{"strings on numeric", func(sp *Spec) {
			sp.Axes[0].Values = nil
			sp.Axes[0].Strings = []string{"a"}
		}, "cannot take string levels"},
		{"values on categorical", func(sp *Spec) { sp.Axes[0].Param = "strategy" }, "needs string levels"},
		{"fractional integral level", func(sp *Spec) {
			sp.Axes[0] = Axis{Param: "n", Values: []float64{2, 2.5}}
		}, "not a non-negative integer"},
		{"negative integral level", func(sp *Spec) {
			sp.Axes[0] = Axis{Param: "n", Values: []float64{-2}}
		}, "not a non-negative integer"},
		{"ranged categorical", func(sp *Spec) {
			sp.Design, sp.Samples = DesignLHS, 2
			sp.Axes[0] = Axis{Param: "strategy", Min: 1, Max: 2}
		}, "cannot be ranged"},
		{"inverted range", func(sp *Spec) {
			sp.Design, sp.Samples = DesignLHS, 2
			sp.Axes[0] = Axis{Param: "lambdaPerHour", Min: 3, Max: 2}
		}, "must be below"},
		{"log range at zero", func(sp *Spec) {
			sp.Design, sp.Samples = DesignLHS, 2
			sp.Axes[0] = Axis{Param: "lambdaPerHour", Min: 0, Max: 2, Scale: "log"}
		}, "log scale requires min > 0"},
		{"grid with range", func(sp *Spec) {
			sp.Axes[0] = Axis{Param: "lambdaPerHour", Min: 1, Max: 2}
		}, "grid design cannot sample"},
		{"lhs without samples", func(sp *Spec) {
			sp.Design = DesignLHS
			sp.Axes[0] = Axis{Param: "lambdaPerHour", Min: 1, Max: 2}
		}, "requires samples"},
		{"lhs without ranged axis", func(sp *Spec) { sp.Design, sp.Samples = DesignLHS, 2 }, "ranged axis"},
		{"samples on grid", func(sp *Spec) { sp.Samples = 3 }, "only meaningful for the lhs"},
		{"negative maxInFlight", func(sp *Spec) { sp.MaxInFlight = -1 }, "maxInFlight"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := valid()
			tc.mutate(sp)
			err := sp.Validate()
			if err == nil {
				t.Fatalf("invalid spec accepted: %+v", sp)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestValidateAcceptsManeuverRateAxis(t *testing.T) {
	sp := &Spec{Base: baseScenario(), Axes: []Axis{
		{Param: "maneuverRatesPerHour.GS", Values: []float64{10, 20}},
	}}
	if err := sp.Validate(); err != nil {
		t.Fatalf("maneuver-rate axis rejected: %v", err)
	}
}

func TestAxisParamsSortedAndComplete(t *testing.T) {
	params := AxisParams()
	if !slices.IsSorted(params) {
		t.Fatalf("AxisParams not sorted: %v", params)
	}
	for _, want := range []string{"strategy", "lambdaPerHour", "n", "seed", "maneuverRatesPerHour.<maneuver>"} {
		if !slices.Contains(params, want) {
			t.Fatalf("AxisParams missing %q: %v", want, params)
		}
	}
}
