package sweep

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ahs/internal/cluster"
	"ahs/internal/config"
	"ahs/internal/faultinject"
	"ahs/internal/obs"
	"ahs/internal/service"
	"ahs/internal/trace"
)

// TestEndToEndDistributedTrace is the observability acceptance test: one
// sweep submission through a live coordinator and in-process worker must
// yield a single distributed trace covering submit → sweep expansion →
// job → chunk leases → worker execution → merge, INCLUDING a lease that
// expires and requeues after an injected fault drops the worker's first
// completion report. The trace must export as valid Chrome trace JSON.
//
// Fault determinism: the worker's complete-retry backoff floor (250ms)
// exceeds the lease TTL (150ms), so a dropped first complete always
// expires the lease — the requeue is scheduled, not raced.
func TestEndToEndDistributedTrace(t *testing.T) {
	tracer := obs.NewTracer(obs.Config{})

	// Chunks are kept tiny (200 batches, one accumulation round) so a
	// chunk simulates in well under the lease TTL even under -race.
	coord := cluster.New(cluster.Config{
		LeaseTTL:         150 * time.Millisecond,
		PollInterval:     5 * time.Millisecond,
		SweepInterval:    10 * time.Millisecond,
		HeartbeatTimeout: 5 * time.Second,
		ChunkBatches:     200,
		CheckEvery:       200,
		Tracer:           tracer,
		Logf:             t.Logf,
	})
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(func() { srv.Close(); coord.Close() })

	// Drop exactly the first completion report; everything else passes.
	plan := faultinject.NewPlan(faultinject.Config{
		Seed:  1,
		Sites: map[string]faultinject.Rates{"complete-first": {DropRequest: 1}},
		Logf:  t.Logf,
	})
	var completes atomic.Int64
	site := func(r *http.Request) string {
		if strings.HasSuffix(r.URL.Path, cluster.PathComplete) && completes.Add(1) == 1 {
			return "complete-first"
		}
		return r.URL.Path // default rates: pass through
	}
	client := &http.Client{Transport: plan.TransportWithSite(nil, site)}

	wctx, wcancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	w := &cluster.Worker{
		Coordinator: srv.URL,
		ID:          "trace-w0",
		SimWorkers:  1,
		Client:      client,
		Tracer:      tracer,
		Logf:        t.Logf,
	}
	go func() {
		defer close(workerDone)
		if err := w.Run(wctx); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	t.Cleanup(func() { wcancel(); <-workerDone })
	deadline := time.Now().Add(5 * time.Second)
	for coord.Status().WorkersLive == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	mgr := service.NewManager(service.Config{
		Workers: 1,
		Eval:    service.ClusterEval(coord),
		Backend: service.ClusterBackend(coord),
		Tracer:  tracer,
	})
	t.Cleanup(func() { mgr.Shutdown(context.Background()) })
	eng := NewEngine(Config{Manager: mgr, Tracer: tracer})
	t.Cleanup(func() { eng.Close(context.Background()) })

	// The root span stands in for the API middleware's request span.
	rctx, root := tracer.Start(context.Background(), "e2e.submit")
	view, err := eng.SubmitCtx(rctx, &Spec{
		Name: "trace-e2e",
		Base: config.Scenario{
			Name:          "trace-e2e",
			N:             2,
			LambdaPerHour: 0.01,
			TripHours:     []float64{0.5, 1},
			Batches:       400,
			Seed:          42,
		},
		Axes: []Axis{{Param: "lambdaPerHour", Values: []float64{0.01}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := eng.Wait(context.Background(), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("sweep finished %q, want done (progress %+v)", final.Status, final.Progress)
	}
	root.End()

	// Everything above must have landed in ONE trace.
	summaries := tracer.Traces()
	if len(summaries) != 1 {
		t.Fatalf("recorded %d traces, want exactly 1: %+v", len(summaries), summaries)
	}
	// The worker ends its chunk span only after the completion response
	// round-trips, so the last worker.chunk span can land moments after
	// Wait returns; poll until every recorded parent reference resolves.
	var td obs.TraceData
	for settle := time.Now().Add(5 * time.Second); ; {
		var ok bool
		td, ok = tracer.Trace(root.Context().TraceID.String())
		if !ok {
			t.Fatalf("root trace %s not recorded", root.Context().TraceID)
		}
		if parentsResolved(td) {
			break
		}
		if time.Now().After(settle) {
			t.Fatalf("trace never quiesced; %d spans with dangling parents", len(td.Spans))
		}
		time.Sleep(10 * time.Millisecond)
	}

	byName := map[string][]obs.SpanData{}
	ids := map[string]bool{}
	roots := 0
	for _, s := range td.Spans {
		byName[s.Name] = append(byName[s.Name], s)
		ids[s.SpanID] = true
		if s.Parent == "" {
			roots++
			if s.Name != "e2e.submit" {
				t.Errorf("unexpected parentless span %q", s.Name)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("trace has %d parentless spans, want 1 (single connected trace)", roots)
	}
	for _, s := range td.Spans {
		if s.Parent != "" && !ids[s.Parent] {
			t.Errorf("span %s (%s) has parent %s outside the trace", s.SpanID, s.Name, s.Parent)
		}
	}
	for _, name := range []string{"e2e.submit", "sweep.run", "service.job", "cluster.job", "cluster.lease", "worker.chunk", "cluster.merge"} {
		if len(byName[name]) == 0 {
			t.Errorf("trace has no %q span; got %d spans", name, len(td.Spans))
		}
	}

	// The dropped complete must show up as: a fault event on the worker's
	// chunk span, an expired lease span, a requeue event on the job span,
	// and one more lease than merge (the expired attempt never merged).
	if !hasEvent(byName["worker.chunk"], "fault.injected") {
		t.Error("no worker.chunk span carries the fault.injected event")
	}
	expired := 0
	for _, l := range byName["cluster.lease"] {
		if strings.Contains(l.Error, "expired") {
			expired++
		}
	}
	if expired != 1 {
		t.Errorf("%d lease spans record expiry, want 1", expired)
	}
	if !hasEvent(byName["cluster.job"], "cluster.requeue") {
		t.Error("job span has no cluster.requeue event")
	}
	leases, merges := len(byName["cluster.lease"]), len(byName["cluster.merge"])
	if leases < 2 || merges != leases-1 {
		t.Errorf("got %d leases / %d merges, want leases ≥ 2 and merges = leases-1", leases, merges)
	}

	// The whole trace must export as valid Chrome trace JSON.
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, td); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := trace.ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exported trace invalid: %v\n%s", err, buf.String())
	}
}

func parentsResolved(td obs.TraceData) bool {
	ids := map[string]bool{}
	for _, s := range td.Spans {
		ids[s.SpanID] = true
	}
	for _, s := range td.Spans {
		if s.Parent != "" && !ids[s.Parent] {
			return false
		}
	}
	return true
}

func hasEvent(spans []obs.SpanData, name string) bool {
	for _, s := range spans {
		for _, e := range s.Events {
			if e.Name == name {
				return true
			}
		}
	}
	return false
}
