package sweep

import (
	"strings"
	"testing"

	"ahs/internal/service"
)

// fakeResults fabricates done results for every point of a design, with the
// response derived from the point index so series are distinguishable.
func fakeResults(t *testing.T, sp *Spec) []PointResult {
	t.Helper()
	d, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]PointResult, len(d.Points))
	for i, p := range d.Points {
		y := 0.001 * float64(i+1)
		out[i] = PointResult{
			Index:  p.Index,
			Label:  p.Label,
			Coords: p.Coords,
			Status: PointDone,
			Result: &service.Result{
				Name:     p.Label,
				Times:    []float64{0.5, 1},
				Unsafety: []float64{y / 2, y},
				CILo:     []float64{y / 4, y / 2},
				CIHi:     []float64{y, 2 * y},
				Batches:  100,
			},
		}
	}
	return out
}

func TestSurfaceResultMixedStrategySeries(t *testing.T) {
	sp := &Spec{
		Name: "mix",
		Base: baseScenario(),
		Axes: []Axis{
			{Param: "strategy", Strings: []string{"DD", "DC"}},
			{Param: "lambdaPerHour", Values: []float64{0.01, 0.02}},
		},
	}
	results := fakeResults(t, sp)
	res := SurfaceResult(sp, results)
	if res.XLabel != "lambdaPerHour" {
		t.Fatalf("x axis %q, want the first numeric axis", res.XLabel)
	}
	if res.YLabel != "unsafety at t=1h" {
		t.Fatalf("y label %q", res.YLabel)
	}
	if len(res.Series) != 2 {
		t.Fatalf("got %d series, want one per strategy", len(res.Series))
	}
	if res.Series[0].Label != "strategy=DD" || res.Series[1].Label != "strategy=DC" {
		t.Fatalf("series labels: %q, %q", res.Series[0].Label, res.Series[1].Label)
	}
	for _, s := range res.Series {
		if len(s.X) != 2 {
			t.Fatalf("series %q has %d points", s.Label, len(s.X))
		}
		if s.X[0] != 0.01 || s.X[1] != 0.02 { //ahsvet:ignore floateq exact literal round-trip, no arithmetic involved
			t.Fatalf("series %q x: %v", s.Label, s.X)
		}
	}
}

func TestSurfaceResultSkipsUnfinishedPoints(t *testing.T) {
	sp := &Spec{
		Name: "skip",
		Base: baseScenario(),
		Axes: []Axis{{Param: "lambdaPerHour", Values: []float64{0.01, 0.02, 0.03}}},
	}
	results := fakeResults(t, sp)
	results[1].Status = PointFailed
	results[1].Result = nil
	res := SurfaceResult(sp, results)
	if len(res.Series) != 1 || len(res.Series[0].X) != 2 {
		t.Fatalf("failed point not skipped: %+v", res.Series)
	}
}

func TestSurfaceResultCategoricalOnlyFallsBackToPointIndex(t *testing.T) {
	sp := &Spec{
		Name: "cat",
		Base: baseScenario(),
		Axes: []Axis{{Param: "strategy", Strings: []string{"DD", "DC", "CC"}}},
	}
	res := SurfaceResult(sp, fakeResults(t, sp))
	if res.XLabel != "point" {
		t.Fatalf("x label %q, want index fallback", res.XLabel)
	}
	if len(res.Series) != 3 {
		t.Fatalf("got %d series, want one per strategy level", len(res.Series))
	}
	for i, s := range res.Series {
		if len(s.X) != 1 || s.X[0] != float64(i) { //ahsvet:ignore floateq small-int index round-trips exactly through float64
			t.Fatalf("series %q x: %v", s.Label, s.X)
		}
	}
}

func TestResultRowsShape(t *testing.T) {
	sp := &Spec{
		Name: "rows",
		Base: baseScenario(),
		Axes: []Axis{
			{Param: "strategy", Strings: []string{"DD"}},
			{Param: "lambdaPerHour", Values: []float64{0.01, 0.02}},
		},
	}
	results := fakeResults(t, sp)
	results[1].Status = PointFailed
	results[1].Result = nil
	results[1].Error = "boom"
	header, rows := ResultRows(sp, results)
	want := []string{"point", "strategy", "lambdaPerHour", "status", "unsafety", "ci_lo", "ci_hi", "batches", "error"}
	if strings.Join(header, "|") != strings.Join(want, "|") {
		t.Fatalf("header %v, want %v", header, want)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0][1] != "DD" || rows[0][2] != "0.01" || rows[0][3] != string(PointDone) {
		t.Fatalf("row 0: %v", rows[0])
	}
	if rows[0][4] == "" || rows[0][7] != "100" {
		t.Fatalf("row 0 response cells: %v", rows[0])
	}
	if rows[1][3] != string(PointFailed) || rows[1][8] != "boom" || rows[1][4] != "" {
		t.Fatalf("row 1: %v", rows[1])
	}
}

func TestWriteReportRendersPartialSweep(t *testing.T) {
	sp := &Spec{
		Name: "partial",
		Base: baseScenario(),
		Axes: []Axis{
			{Param: "strategy", Strings: []string{"DD", "DC"}},
			{Param: "lambdaPerHour", Values: []float64{0.01, 0.02}},
		},
	}
	results := fakeResults(t, sp)
	results[3].Status = PointFailed
	results[3].Result = nil
	var b strings.Builder
	if err := WriteReport(&b, sp, results); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Parameter sweep: partial", "<svg", "strategy=DD", "Sensitivity"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report lacks %q:\n%s", want, out)
		}
	}
}

func TestWriteReportEmptySweep(t *testing.T) {
	sp := &Spec{
		Name: "empty",
		Base: baseScenario(),
		Axes: []Axis{{Param: "lambdaPerHour", Values: []float64{0.01}}},
	}
	// No point finished — the report must render the explicit empty state.
	results := []PointResult{{Index: 0, Status: PointFailed, Error: "boom"}}
	var b strings.Builder
	if err := WriteReport(&b, sp, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Empty sweep: no points to plot.") {
		t.Fatalf("empty sweep report lacks the empty-state note:\n%s", b.String())
	}
}
