package sweep

import "testing"

// goldenPoint pins one expanded point of a committed spec: its position,
// label, canonical scenario hash and dedup target.
type goldenPoint struct {
	index   int
	label   string
	hash    string
	dedupOf int
}

// TestGoldenSpecExpansion pins the full expansion — ordering, labels,
// canonical hashes and dedup structure — of the committed example specs.
// A diff here means previously submitted sweeps would expand to different
// scenarios under the new code: deliberate changes must bump the golden
// table and be called out as a compatibility break, anything else is a
// regression in the expansion or in scenario canonicalization.
func TestGoldenSpecExpansion(t *testing.T) {
	cases := []struct {
		file   string
		unique int
		points []goldenPoint
	}{
		{
			file:   "testdata/grid-golden.json",
			unique: 4,
			points: []goldenPoint{
				{0, "grid-golden/strategy=DD,lambdaPerHour=0.01", "aded8ab51c19df52945b8887b08fc699559259be5d5f00d9775f04c448f60bc3", -1},
				{1, "grid-golden/strategy=DD,lambdaPerHour=0.02", "77c752b588d64ba8bbfdf118a4901306300cbd0d84530218eede68154a4463a1", -1},
				{2, "grid-golden/strategy=DD,lambdaPerHour=0.01", "aded8ab51c19df52945b8887b08fc699559259be5d5f00d9775f04c448f60bc3", 0},
				{3, "grid-golden/strategy=DC,lambdaPerHour=0.01", "060d0724972ec5d02ecfe9e266b25a07856ee91e53cbdf6f214a26b65eaba252", -1},
				{4, "grid-golden/strategy=DC,lambdaPerHour=0.02", "b492a3cbb90cc83f3a8be7045fec8941f786832e249981d6faab2d0903f5cc4c", -1},
				{5, "grid-golden/strategy=DC,lambdaPerHour=0.01", "060d0724972ec5d02ecfe9e266b25a07856ee91e53cbdf6f214a26b65eaba252", 3},
			},
		},
		{
			file:   "testdata/lhs-golden.json",
			unique: 8,
			points: []goldenPoint{
				{0, "lhs-golden/strategy=DD,lambdaPerHour=0.01947514933966401", "9cd308a01b85406e0cae4dbd4fabc1f4f03880ca2f48b8bcda2d0f9b9362484a", -1},
				{1, "lhs-golden/strategy=DD,lambdaPerHour=0.00865779700870905", "8f4aa878297ffe9032f76726846b4eb87dbb0e17798731c8b6082062aceb84a7", -1},
				{2, "lhs-golden/strategy=DD,lambdaPerHour=0.03926912710617233", "7c2823db2aaf482478f02f2aa250e4ca47827fa6590f6c2ecc3e14173bdffeab", -1},
				{3, "lhs-golden/strategy=DD,lambdaPerHour=0.0022628306117832638", "5661130f43c94110f2fdfb78bd62ce34b179e4d0f1ecfc26bad997a67ed7769e", -1},
				{4, "lhs-golden/strategy=CC,lambdaPerHour=0.01947514933966401", "1a06cf7d235ea759979165693c42a2bd7dffe715151179675dcd927e6282b072", -1},
				{5, "lhs-golden/strategy=CC,lambdaPerHour=0.00865779700870905", "d063bebf05acb850e4b5916e19b59fc756c621c8cc6d45341ad0e60174ebcc7b", -1},
				{6, "lhs-golden/strategy=CC,lambdaPerHour=0.03926912710617233", "93a9ba8f7a8bd0f4d60645acb5989ada6d90b29c028ec6cc8fc2602a2f13a2d2", -1},
				{7, "lhs-golden/strategy=CC,lambdaPerHour=0.0022628306117832638", "80fd55b70cfb10e5028c6627130a4cf2012a0f0b03b778ab166554f4bfd72df8", -1},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			sp, err := LoadFile(tc.file)
			if err != nil {
				t.Fatal(err)
			}
			d, err := sp.Expand()
			if err != nil {
				t.Fatal(err)
			}
			if len(d.Points) != len(tc.points) {
				t.Fatalf("got %d points, want %d", len(d.Points), len(tc.points))
			}
			if len(d.Unique) != tc.unique {
				t.Fatalf("got %d unique points, want %d", len(d.Unique), tc.unique)
			}
			for i, want := range tc.points {
				got := d.Points[i]
				if got.Index != want.index || got.Label != want.label ||
					got.Hash != want.hash || got.DedupOf != want.dedupOf {
					t.Errorf("point %d:\n got  {%d, %q, %q, %d}\n want {%d, %q, %q, %d}",
						i, got.Index, got.Label, got.Hash, got.DedupOf,
						want.index, want.label, want.hash, want.dedupOf)
				}
			}
		})
	}
}
