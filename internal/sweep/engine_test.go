package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ahs/internal/config"
	"ahs/internal/service"
)

// countingEval is a fast fake evaluation that counts invocations per
// canonical scenario hash — the probe for the no-double-work contract.
type countingEval struct {
	mu    sync.Mutex
	calls map[string]int
	// block, when non-nil, stalls every evaluation until closed (or the
	// job context is cancelled).
	block   chan struct{}
	started chan string
}

func newCountingEval() *countingEval {
	return &countingEval{calls: map[string]int{}, started: make(chan string, 64)}
}

func (e *countingEval) fn(ctx context.Context, sc *config.Scenario, workers int, progress func(done, max uint64)) (*service.Result, error) {
	hash, _ := sc.Hash()
	e.mu.Lock()
	e.calls[hash]++
	e.mu.Unlock()
	select {
	case e.started <- hash:
	default:
	}
	if e.block != nil {
		select {
		case <-e.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if progress != nil {
		progress(sc.Batches, sc.Batches)
	}
	unsafety := make([]float64, len(sc.TripHours))
	lo := make([]float64, len(sc.TripHours))
	hi := make([]float64, len(sc.TripHours))
	for i := range sc.TripHours {
		unsafety[i] = sc.LambdaPerHour * sc.TripHours[i]
		lo[i], hi[i] = unsafety[i]*0.9, unsafety[i]*1.1
	}
	return &service.Result{
		Name:         sc.Name,
		ScenarioHash: hash,
		Times:        sc.TripHours,
		Unsafety:     unsafety,
		CILo:         lo,
		CIHi:         hi,
		Batches:      sc.Batches,
		Converged:    true,
		FailureBias:  1,
	}, nil
}

func (e *countingEval) total() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, c := range e.calls {
		n += c
	}
	return n
}

func newTestEngine(t *testing.T, scfg service.Config, ecfg Config) (*service.Manager, *Engine) {
	t.Helper()
	if scfg.Workers == 0 {
		scfg.Workers = 2
	}
	mgr := service.NewManager(scfg)
	ecfg.Manager = mgr
	eng := NewEngine(ecfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			t.Errorf("manager shutdown: %v", err)
		}
		if err := eng.Close(ctx); err != nil {
			t.Errorf("engine close: %v", err)
		}
	})
	return mgr, eng
}

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSweepRunsAllPointsToDone(t *testing.T) {
	eval := newCountingEval()
	_, eng := newTestEngine(t, service.Config{Eval: eval.fn}, Config{})
	view, err := eng.Submit(&Spec{
		Name: "t",
		Base: baseScenario(),
		Axes: []Axis{
			{Param: "strategy", Strings: []string{"DD", "DC"}},
			{Param: "lambdaPerHour", Values: []float64{0.01, 0.02}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusRunning && view.Status != StatusDone {
		t.Fatalf("submit view status %q", view.Status)
	}
	if view.Points != 4 || view.UniquePoints != 4 {
		t.Fatalf("submit view points %d unique %d", view.Points, view.UniquePoints)
	}

	final, err := eng.Wait(waitCtx(t), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone || final.Completed != 4 || final.Failed != 0 {
		t.Fatalf("final view: %+v", final)
	}
	if final.Progress.BatchesDone != 4*200 || final.Progress.MaxBatches != 4*200 {
		t.Fatalf("aggregate progress: %+v", final.Progress)
	}
	results, err := eng.Results(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range results {
		if pr.Status != PointDone || pr.Result == nil {
			t.Fatalf("point %d: %+v", pr.Index, pr)
		}
		if pr.Result.Name != pr.Label {
			t.Errorf("point %d result named %q, want its label %q", pr.Index, pr.Result.Name, pr.Label)
		}
	}
	if got := eval.total(); got != 4 {
		t.Fatalf("evaluation ran %d times for 4 unique points", got)
	}
	if m := eng.Metrics(); m.PointsCompleted.Value() != 4 || m.PointsExpanded.Value() != 4 {
		t.Fatalf("metrics: completed %d expanded %d", m.PointsCompleted.Value(), m.PointsExpanded.Value())
	}
}

// TestNoDoubleWorkAcrossSweepAndDirectSubmission is the duplicate-scenario
// contract at the service layer: a sweep's repeated points, and a sweep
// point colliding with a direct /v1/evaluate-style submission, must share
// one job/cache entry — the evaluation runs exactly once per canonical
// hash, and each submitter still sees the result under its own name.
func TestNoDoubleWorkAcrossSweepAndDirectSubmission(t *testing.T) {
	eval := newCountingEval()
	mgr, eng := newTestEngine(t, service.Config{Eval: eval.fn}, Config{})

	// A direct submission of the same canonical scenario, first.
	direct := baseScenario()
	direct.Name = "direct"
	jv, err := mgr.Submit(&direct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Wait(waitCtx(t), jv.ID); err != nil {
		t.Fatal(err)
	}

	// The sweep contains that scenario twice (lambda axis repeats the base
	// value): one in-sweep dedup twin plus one cache hit against "direct".
	view, err := eng.Submit(&Spec{
		Name: "dup",
		Base: baseScenario(),
		Axes: []Axis{{Param: "lambdaPerHour", Values: []float64{0.01, 0.01}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if view.Points != 2 || view.UniquePoints != 1 || view.Deduped != 1 {
		t.Fatalf("dedup accounting: %+v", view)
	}
	final, err := eng.Wait(waitCtx(t), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone || final.Completed != 1 {
		t.Fatalf("final view: %+v", final)
	}
	results, err := eng.Results(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range results {
		if pr.Status != PointDone || pr.Result == nil {
			t.Fatalf("point %d: %+v", pr.Index, pr)
		}
		// The shared cache entry must not leak the direct submitter's name
		// into the sweep point (or vice versa).
		if pr.Result.Name != pr.Label {
			t.Errorf("point %d result named %q, want %q", pr.Index, pr.Result.Name, pr.Label)
		}
	}
	if got := eval.total(); got != 1 {
		t.Fatalf("evaluation ran %d times for one canonical scenario across a direct job and a 2-point sweep", got)
	}

	// And the direct job's own result keeps its own name.
	res, _, err := mgr.Result(jv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "direct" {
		t.Fatalf("direct result renamed to %q", res.Name)
	}
}

func TestDedupedPointsWithinSweepScheduledOnce(t *testing.T) {
	eval := newCountingEval()
	_, eng := newTestEngine(t, service.Config{Eval: eval.fn}, Config{})
	view, err := eng.Submit(&Spec{
		Name: "twins",
		Base: baseScenario(),
		Axes: []Axis{{Param: "lambdaPerHour", Values: []float64{0.01, 0.02, 0.01, 0.02}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := eng.Wait(waitCtx(t), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("final status %q", final.Status)
	}
	if got := eval.total(); got != 2 {
		t.Fatalf("evaluation ran %d times for 2 unique points", got)
	}
	detail, err := eng.Sweep(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, pv := range detail.PointViews {
		if pv.Status != PointDone || pv.JobID == "" {
			t.Fatalf("point view %+v", pv)
		}
	}
	// Twins adopt the representative's job.
	if detail.PointViews[2].JobID != detail.PointViews[0].JobID {
		t.Fatalf("twin got its own job: %q vs %q", detail.PointViews[2].JobID, detail.PointViews[0].JobID)
	}
}

func TestInvalidPointRejectedAtSubmit(t *testing.T) {
	// A statically invalid point (unknown strategy code) rejects the whole
	// sweep at submission — before any job exists — rather than burning an
	// evaluation slot on a point that can never build.
	eval := newCountingEval()
	_, eng := newTestEngine(t, service.Config{Eval: eval.fn}, Config{})
	_, err := eng.Submit(&Spec{
		Name: "poison",
		Base: baseScenario(),
		Axes: []Axis{{Param: "strategy", Strings: []string{"DD", "XX"}}},
	})
	if !errors.Is(err, ErrInvalidPoint) {
		t.Fatalf("Submit error = %v, want ErrInvalidPoint", err)
	}
	if got := eval.total(); got != 0 {
		t.Fatalf("evaluation ran %d times for a rejected sweep", got)
	}
	if sweeps := eng.Sweeps(); len(sweeps) != 0 {
		t.Fatalf("rejected sweep was registered: %+v", sweeps)
	}
	if got := eng.Metrics().Rejected.Value(); got != 1 {
		t.Fatalf("Rejected metric = %d, want 1", got)
	}
}

func TestRuntimeFailureFailsPointNotSweep(t *testing.T) {
	// Both points pass static validation; one fails at evaluation time.
	// The partial-failure contract applies: that point fails, the sweep
	// finishes partial.
	eval := newCountingEval()
	failing := func(ctx context.Context, sc *config.Scenario, workers int, progress func(done, max uint64)) (*service.Result, error) {
		if sc.LambdaPerHour == 0.02 {
			return nil, errors.New("synthetic runtime failure")
		}
		return eval.fn(ctx, sc, workers, progress)
	}
	_, eng := newTestEngine(t, service.Config{Eval: failing}, Config{})
	view, err := eng.Submit(&Spec{
		Name: "poison",
		Base: baseScenario(),
		Axes: []Axis{{Param: "lambdaPerHour", Values: []float64{0.01, 0.02}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := eng.Wait(waitCtx(t), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusPartial {
		t.Fatalf("final status %q, want partial", final.Status)
	}
	if final.Completed != 1 || final.Failed != 1 {
		t.Fatalf("final counts: %+v", final)
	}
	results, err := eng.Results(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Status != PointDone || results[0].Result == nil {
		t.Fatalf("healthy point: %+v", results[0])
	}
	if results[1].Status != PointFailed || results[1].Error == "" || results[1].Result != nil {
		t.Fatalf("poisoned point: %+v", results[1])
	}
}

func TestCancelStopsSchedulingAndSettlesPoints(t *testing.T) {
	eval := newCountingEval()
	eval.block = make(chan struct{})
	_, eng := newTestEngine(t, service.Config{Workers: 1, Eval: eval.fn}, Config{})
	view, err := eng.Submit(&Spec{
		Name:        "c",
		Base:        baseScenario(),
		MaxInFlight: 1,
		Axes:        []Axis{{Param: "lambdaPerHour", Values: []float64{0.01, 0.02, 0.03}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first point to reach evaluation, then cancel the sweep
	// while it is blocked.
	select {
	case <-eval.started:
	case <-time.After(10 * time.Second):
		t.Fatal("first point never started")
	}
	if _, err := eng.Cancel(view.ID); err != nil {
		t.Fatal(err)
	}
	final, err := eng.Wait(waitCtx(t), view.ID)
	close(eval.block) // release the stalled job so the manager can drain
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCancelled {
		t.Fatalf("final status %q, want cancelled", final.Status)
	}
	if final.Cancelled == 0 {
		t.Fatalf("no points marked cancelled: %+v", final)
	}
	if got := eval.total(); got > 1 {
		t.Fatalf("cancellation still scheduled %d evaluations", got)
	}
}

func TestSubmitRejectsOversizedDesigns(t *testing.T) {
	_, eng := newTestEngine(t, service.Config{Eval: newCountingEval().fn}, Config{MaxPoints: 2})
	_, err := eng.Submit(&Spec{
		Base: baseScenario(),
		Axes: []Axis{{Param: "lambdaPerHour", Values: []float64{0.01, 0.02, 0.03}}},
	})
	if !errors.Is(err, ErrTooManyPoints) {
		t.Fatalf("got %v, want ErrTooManyPoints", err)
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	mgr := service.NewManager(service.Config{Workers: 1, Eval: newCountingEval().fn})
	eng := NewEngine(Config{Manager: mgr})
	ctx := waitCtx(t)
	if err := eng.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Submit(&Spec{Base: baseScenario(), Axes: []Axis{{Param: "lambdaPerHour", Values: []float64{0.01}}}})
	if !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("got %v, want ErrShuttingDown", err)
	}
}

func TestSweepsListsInSubmissionOrder(t *testing.T) {
	eval := newCountingEval()
	_, eng := newTestEngine(t, service.Config{Eval: eval.fn}, Config{})
	spec := func(name string) *Spec {
		return &Spec{Name: name, Base: baseScenario(), Axes: []Axis{{Param: "lambdaPerHour", Values: []float64{0.01}}}}
	}
	a, err := eng.Submit(spec("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Submit(spec("b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Wait(waitCtx(t), a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Wait(waitCtx(t), b.ID); err != nil {
		t.Fatal(err)
	}
	views := eng.Sweeps()
	if len(views) != 2 || views[0].ID != a.ID || views[1].ID != b.ID {
		t.Fatalf("listing out of order: %+v", views)
	}
	if _, err := eng.Sweep("sweep-999"); !errors.Is(err, ErrUnknownSweep) {
		t.Fatalf("unknown sweep lookup: %v", err)
	}
}

func TestHistoryPruning(t *testing.T) {
	eval := newCountingEval()
	_, eng := newTestEngine(t, service.Config{Eval: eval.fn}, Config{HistorySize: 1})
	var last View
	for i, lam := range []float64{0.01, 0.02, 0.03} {
		v, err := eng.Submit(&Spec{
			Base: baseScenario(),
			Axes: []Axis{{Param: "lambdaPerHour", Values: []float64{lam}}},
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if last, err = eng.Wait(waitCtx(t), v.ID); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	views := eng.Sweeps()
	if len(views) != 1 || views[0].ID != last.ID {
		t.Fatalf("history not pruned to the newest sweep: %+v", views)
	}
}

// TestConcurrentSubmitters exercises the engine under parallel sweep
// submissions sharing overlapping scenarios; the race detector and the
// per-hash call counts both guard it.
func TestConcurrentSubmitters(t *testing.T) {
	eval := newCountingEval()
	_, eng := newTestEngine(t, service.Config{Workers: 4, Eval: eval.fn}, Config{})
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := eng.Submit(&Spec{
				Base: baseScenario(),
				Axes: []Axis{{Param: "lambdaPerHour", Values: []float64{0.01, 0.02}}},
			})
			if err != nil {
				failures.Add(1)
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if final, err := eng.Wait(ctx, v.ID); err != nil || final.Status != StatusDone {
				failures.Add(1)
			}
		}()
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d concurrent sweeps failed", failures.Load())
	}
	// 4 sweeps x 2 points collapse onto 2 canonical scenarios; the manager
	// dedup/cache must keep evaluations at exactly 2.
	if got := eval.total(); got != 2 {
		t.Fatalf("evaluation ran %d times for 2 canonical scenarios", got)
	}
}
