package sweep

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestHTTPSweepStream: GET /v1/sweeps/{id}/stream delivers sweep progress
// as SSE and ends with exactly one terminal "sweep" event matching the
// polled view.
func TestHTTPSweepStream(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(testSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	var ack submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	stream, err := http.Get(srv.URL + "/v1/sweeps/" + ack.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK || stream.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("stream status %d content-type %q", stream.StatusCode, stream.Header.Get("Content-Type"))
	}

	// Parse events until the server closes the stream.
	type event struct {
		name string
		data []byte
	}
	var events []event
	r := bufio.NewReader(stream.Body)
	var cur event
	for {
		line, err := r.ReadString('\n')
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && cur.name != "":
			events = append(events, cur)
			cur = event{}
		}
	}
	if len(events) == 0 {
		t.Fatal("empty stream")
	}
	terminal := 0
	for _, ev := range events {
		if ev.name == "sweep" {
			terminal++
		} else if ev.name != "progress" {
			t.Fatalf("unexpected event %q", ev.name)
		}
	}
	if terminal != 1 || events[len(events)-1].name != "sweep" {
		t.Fatalf("%d terminal events in %d, want the stream to end with exactly one", terminal, len(events))
	}

	var streamed View
	if err := json.Unmarshal(events[len(events)-1].data, &streamed); err != nil {
		t.Fatal(err)
	}
	if streamed.Status != StatusDone || streamed.Completed != 4 {
		t.Fatalf("terminal streamed view %+v", streamed)
	}
	var polled View
	if code := getJSON(t, srv.URL+ack.StatusURL, &polled); code != http.StatusOK {
		t.Fatalf("GET %s: %d", ack.StatusURL, code)
	}
	if polled.Status != streamed.Status || polled.Completed != streamed.Completed {
		t.Fatalf("streamed %+v vs polled %+v", streamed, polled)
	}
}

func TestHTTPSweepStreamUnknown404s(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/sweeps/sweep-404/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}
