package sweep

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ahs/internal/service"
)

func newTestServer(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	_, eng := newTestEngine(t, service.Config{Eval: newCountingEval().fn}, Config{})
	srv := httptest.NewServer(NewHandler(eng))
	t.Cleanup(srv.Close)
	return srv, eng
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

const testSpecJSON = `{
	"name": "http",
	"base": {"n": 2, "tripHours": [0.5, 1], "batches": 200, "seed": 9},
	"axes": [
		{"param": "strategy", "strings": ["DD", "DC"]},
		{"param": "lambdaPerHour", "values": [0.01, 0.02]}
	]
}`

func TestHTTPSweepLifecycle(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(testSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	var ack submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: %d", resp.StatusCode)
	}
	if ack.ID == "" || ack.Points != 4 || ack.UniquePoints != 4 {
		t.Fatalf("ack: %+v", ack)
	}

	// Poll the status endpoint until the sweep settles.
	var view View
	deadline := time.Now().Add(30 * time.Second)
	for {
		if code := getJSON(t, srv.URL+ack.StatusURL, &view); code != http.StatusOK {
			t.Fatalf("GET %s: %d", ack.StatusURL, code)
		}
		if view.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never settled: %+v", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if view.Status != StatusDone || view.Completed != 4 {
		t.Fatalf("terminal view: %+v", view)
	}
	if len(view.PointViews) != 4 {
		t.Fatalf("detail endpoint returned %d point views", len(view.PointViews))
	}

	var results []PointResult
	if code := getJSON(t, srv.URL+ack.ResultsURL, &results); code != http.StatusOK {
		t.Fatalf("GET %s: %d", ack.ResultsURL, code)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	for _, pr := range results {
		if pr.Status != PointDone || pr.Result == nil {
			t.Fatalf("point %d over HTTP: %+v", pr.Index, pr)
		}
	}

	rr, err := http.Get(srv.URL + ack.ReportURL)
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK || !strings.Contains(rr.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("GET %s: %d %s", ack.ReportURL, rr.StatusCode, rr.Header.Get("Content-Type"))
	}
	for _, want := range []string{"<svg", "Sensitivity", "strategy=DD", "strategy=DC"} {
		if !strings.Contains(string(page), want) {
			t.Errorf("report page lacks %q", want)
		}
	}

	var list []View
	if code := getJSON(t, srv.URL+"/v1/sweeps", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("GET /v1/sweeps: %d, %d entries", code, len(list))
	}
}

func TestHTTPSweepErrors(t *testing.T) {
	srv, _ := newTestServer(t)

	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if resp.StatusCode >= 400 && e.Error == "" {
			t.Errorf("error response without an error field (%d)", resp.StatusCode)
		}
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", code)
	}
	if code := post(`{"axes":[]}`); code != http.StatusBadRequest {
		t.Fatalf("invalid spec: %d", code)
	}
	// A structurally valid spec expanding to a statically invalid point is
	// rejected with 400 before any job is created.
	invalidPoint := `{
		"base": {"n": 2, "tripHours": [1], "batches": 100, "seed": 1},
		"axes": [{"param": "strategy", "strings": ["DD", "XX"]}]
	}`
	if code := post(invalidPoint); code != http.StatusBadRequest {
		t.Fatalf("statically invalid point: %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/sweeps/sweep-404", nil); code != http.StatusNotFound {
		t.Fatalf("unknown sweep: %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/sweeps/sweep-404/results", nil); code != http.StatusNotFound {
		t.Fatalf("unknown sweep results: %d", code)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sweeps/sweep-404", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown sweep: %d", resp.StatusCode)
	}
}

func TestHTTPCancelSweep(t *testing.T) {
	srv, eng := newTestServer(t)
	view, err := eng.Submit(&Spec{
		Base: baseScenario(),
		Axes: []Axis{{Param: "lambdaPerHour", Values: []float64{0.01, 0.02}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sweeps/"+view.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || v.ID != view.ID {
		t.Fatalf("DELETE: %d %+v", resp.StatusCode, v)
	}
	// The sweep settles terminally after cancellation (points that already
	// finished stay done — status may be cancelled or done depending on
	// timing, but it must terminate).
	final, err := eng.Wait(waitCtx(t), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Status.Terminal() {
		t.Fatalf("sweep still running after cancel: %+v", final)
	}
}
