package sweep

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"ahs/internal/cluster"
	"ahs/internal/config"
	"ahs/internal/service"
)

// curveBits renders every float of a result curve in exact bit form; two
// results compare equal here only if they are bit-identical.
func curveBits(res *service.Result) string {
	return fmt.Sprintf("times=%b unsafety=%b cilo=%b cihi=%b batches=%d bias=%b",
		res.Times, res.Unsafety, res.CILo, res.CIHi, res.Batches, res.FailureBias)
}

// standaloneResult evaluates one scenario on a fresh manager with the given
// backend config, as a direct submission would.
func standaloneResult(t *testing.T, cfg service.Config, sc *config.Scenario) *service.Result {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	mgr := service.NewManager(cfg)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	}()
	jv, err := mgr.Submit(sc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := mgr.Wait(ctx, jv.ID); err != nil {
		t.Fatal(err)
	}
	res, _, err := mgr.Result(jv.ID)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runSweepResults drives a spec through a sweep engine on a manager with
// the given backend config and returns the per-point results.
func runSweepResults(t *testing.T, cfg service.Config, sp *Spec) []PointResult {
	t.Helper()
	mgr, eng := newTestEngine(t, cfg, Config{})
	_ = mgr
	view, err := eng.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	final, err := eng.Wait(waitCtx(t), view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("sweep finished %q: %+v", final.Status, final)
	}
	results, err := eng.Results(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// assertPointsBitIdentical checks every sweep point's curve against a
// standalone submission of the same scenario under a different cosmetic
// name — the tentpole contract: expanding a design must not change a single
// bit of any point's result.
func assertPointsBitIdentical(t *testing.T, sp *Spec, results []PointResult, standaloneCfg func() service.Config) {
	t.Helper()
	d, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range d.Unique {
		pr := results[idx]
		if pr.Status != PointDone || pr.Result == nil {
			t.Fatalf("point %d not done: %+v", idx, pr)
		}
		alone := *d.Points[idx].Scenario
		alone.Name = "standalone-check"
		ref := standaloneResult(t, standaloneCfg(), &alone)
		if got, want := curveBits(pr.Result), curveBits(ref); got != want {
			t.Errorf("point %d (%s) diverges from standalone evaluation:\nsweep:      %s\nstandalone: %s",
				idx, pr.Label, got, want)
		}
	}
	// Deduplicated twins carry their representative's bits.
	for _, p := range d.Points {
		if p.DedupOf < 0 {
			continue
		}
		if results[p.Index].Result == nil ||
			curveBits(results[p.Index].Result) != curveBits(results[p.DedupOf].Result) {
			t.Errorf("twin %d does not match its representative %d", p.Index, p.DedupOf)
		}
	}
}

func gridIdentitySpec() *Spec {
	return &Spec{
		Name: "grid-id",
		Base: baseScenario(),
		Axes: []Axis{
			{Param: "strategy", Strings: []string{"DD", "DC"}},
			{Param: "lambdaPerHour", Values: []float64{20, 40, 20}},
		},
	}
}

func lhsIdentitySpec() *Spec {
	return &Spec{
		Name:       "lhs-id",
		Design:     DesignLHS,
		Samples:    3,
		DesignSeed: 5,
		Base:       baseScenario(),
		Axes: []Axis{
			{Param: "strategy", Strings: []string{"DD"}},
			{Param: "lambdaPerHour", Min: 10, Max: 100, Scale: "log"},
		},
	}
}

func TestGridSweepBitIdenticalToStandalone(t *testing.T) {
	sp := gridIdentitySpec()
	results := runSweepResults(t, service.Config{}, sp)
	assertPointsBitIdentical(t, sp, results, func() service.Config { return service.Config{} })
}

func TestLHSSweepBitIdenticalToStandalone(t *testing.T) {
	sp := lhsIdentitySpec()
	results := runSweepResults(t, service.Config{}, sp)
	assertPointsBitIdentical(t, sp, results, func() service.Config { return service.Config{} })
}

// startCluster brings up an in-process coordinator with one worker, as the
// -cluster server would, and returns a manager config using it.
func startCluster(t *testing.T) service.Config {
	t.Helper()
	coord := cluster.New(cluster.Config{
		PollInterval:  10 * time.Millisecond,
		SweepInterval: 25 * time.Millisecond,
	})
	srv := httptest.NewServer(coord.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	w := &cluster.Worker{Coordinator: srv.URL, ID: "sweep-w0", SimWorkers: 1}
	go func() {
		defer close(done)
		if err := w.Run(ctx); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		<-done
		srv.Close()
		coord.Close()
	})
	deadline := time.Now().Add(5 * time.Second)
	for coord.Status().WorkersLive == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cluster worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return service.Config{
		Eval:    service.ClusterEval(coord),
		Backend: service.ClusterBackend(coord),
	}
}

// TestSweepBitIdenticalViaCluster runs the same designs with the cluster
// backend and pins every point against a LOCAL standalone evaluation: the
// full chain sweep → manager → cluster fan-out must reproduce the local
// bits exactly.
func TestSweepBitIdenticalViaCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster identity check is not short")
	}
	for _, tc := range []struct {
		name string
		spec func() *Spec
	}{
		{"grid", gridIdentitySpec},
		{"lhs", lhsIdentitySpec},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sp := tc.spec()
			results := runSweepResults(t, startCluster(t), sp)
			assertPointsBitIdentical(t, sp, results, func() service.Config { return service.Config{} })
		})
	}
}
