package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"ahs/internal/experiments"
)

// svgPalette holds the series stroke colors (colorblind-safe Okabe-Ito).
var svgPalette = []string{
	"#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9",
}

// svgLayout fixes the chart geometry.
type svgLayout struct {
	width, height                      int
	marginL, marginR, marginT, marginB int
}

func defaultLayout() svgLayout {
	return svgLayout{width: 720, height: 480, marginL: 80, marginR: 180, marginT: 48, marginB: 56}
}

// WriteSVG renders a figure result as a standalone SVG line chart with a
// log10 y axis (matching the paper's log-scale plots) and per-point
// confidence whiskers. Zero estimates are skipped, like in Chart.
func WriteSVG(w io.Writer, res *experiments.Result) error {
	l := defaultLayout()
	plotW := float64(l.width - l.marginL - l.marginR)
	plotH := float64(l.height - l.marginT - l.marginB)

	// Data ranges over positive estimates (CI bounds clamp to the data
	// range rather than extending it below zero).
	xLo, xHi := math.Inf(1), math.Inf(-1)
	yLo, yHi := math.Inf(1), math.Inf(-1)
	for _, s := range res.Series {
		for i := range s.X {
			if !plottable(s.X[i], s.Y[i]) {
				continue
			}
			xLo, xHi = math.Min(xLo, s.X[i]), math.Max(xHi, s.X[i])
			yLo, yHi = math.Min(yLo, s.Y[i]), math.Max(yHi, s.Y[i])
			if i < len(s.CI) && s.CI[i].Hi > 0 && !math.IsInf(s.CI[i].Hi, 1) {
				yHi = math.Max(yHi, s.CI[i].Hi)
			}
		}
	}
	hasData := !math.IsInf(xLo, 1)
	var logLo, logHi float64
	if hasData {
		logLo, logHi = math.Floor(math.Log10(yLo)), math.Ceil(math.Log10(yHi))
		if logHi == logLo { //ahsvet:ignore floateq Floor/Ceil results are integral; equality IS the degenerate decade
			logHi++
		}
		if xHi == xLo { //ahsvet:ignore floateq equality IS the degenerate axis range being widened
			xHi = xLo + 1
		}
	}
	xPix := func(x float64) float64 {
		return float64(l.marginL) + plotW*(x-xLo)/(xHi-xLo)
	}
	yPix := func(y float64) float64 {
		return float64(l.marginT) + plotH*(1-(math.Log10(y)-logLo)/(logHi-logLo))
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		l.width, l.height, l.width, l.height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		l.marginL, svgEscape(strings.ToUpper(res.ID)+" — "+res.Title))

	if !hasData {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">no positive estimates</text>`+"\n",
			l.marginL, l.height/2)
		b.WriteString("</svg>\n")
		_, err := io.WriteString(w, b.String())
		return err
	}

	// Axes and log gridlines (one per decade).
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#444"/>`+"\n",
		l.marginL, l.marginT, plotW, plotH)
	for d := logLo; d <= logHi+1e-9; d++ {
		y := yPix(math.Pow(10, d))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			l.marginL, y, float64(l.marginL)+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">1e%.0f</text>`+"\n",
			l.marginL-6, y+4, d)
	}
	// X ticks at each distinct grid value of the first series.
	if len(res.Series) > 0 {
		for _, x := range res.Series[0].X {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			px := xPix(x)
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#444"/>`+"\n",
				px, float64(l.marginT)+plotH, px, float64(l.marginT)+plotH+5)
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%g</text>`+"\n",
				px, float64(l.marginT)+plotH+18, x)
		}
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		float64(l.marginL)+plotW/2, l.height-12, svgEscape(res.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-family="sans-serif" font-size="12" transform="rotate(-90 16 %.1f)" text-anchor="middle">%s</text>`+"\n",
		float64(l.marginT)+plotH/2, float64(l.marginT)+plotH/2, svgEscape(res.YLabel))

	// Series: polyline over positive points, whiskers for CIs, legend.
	for si, s := range res.Series {
		color := svgPalette[si%len(svgPalette)]
		var points []string
		for i := range s.X {
			if !plottable(s.X[i], s.Y[i]) {
				continue
			}
			px, py := xPix(s.X[i]), yPix(s.Y[i])
			points = append(points, fmt.Sprintf("%.1f,%.1f", px, py))
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", px, py, color)
			if i < len(s.CI) && s.CI[i].Lo > 0 && s.CI[i].Hi > s.CI[i].Lo && !math.IsInf(s.CI[i].Hi, 1) {
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
					px, yPix(s.CI[i].Lo), px, yPix(s.CI[i].Hi), color)
			}
		}
		if len(points) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				strings.Join(points, " "), color)
		}
		// Legend entry.
		ly := l.marginT + 16*si
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			float64(l.width-l.marginR)+12, ly, float64(l.width-l.marginR)+32, ly, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			float64(l.width-l.marginR)+38, ly+4, svgEscape(s.Label))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
