package report

import (
	"fmt"
	"html"
	"io"
	"strings"

	"ahs/internal/experiments"
)

// WriteHTML renders a set of figure results as one self-contained HTML page:
// per figure, the inline SVG chart followed by the data table. The page has
// no external dependencies, so it can be committed or attached to a report
// as-is.
func WriteHTML(w io.Writer, title string, results []*experiments.Result) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString(`<style>
body { font-family: sans-serif; margin: 2rem auto; max-width: 860px; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2.5rem; }
table { border-collapse: collapse; font-size: 0.85rem; margin-top: 0.75rem; }
th, td { border: 1px solid #ccc; padding: 0.25rem 0.6rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
caption { text-align: left; font-style: italic; padding-bottom: 0.3rem; }
</style>
</head>
<body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}

	for _, res := range results {
		header := fmt.Sprintf("<h2 id=%q>%s — %s</h2>\n",
			res.ID, html.EscapeString(strings.ToUpper(res.ID)), html.EscapeString(res.Title))
		if _, err := io.WriteString(w, header); err != nil {
			return err
		}
		// Inline SVG chart.
		if err := WriteSVG(w, res); err != nil {
			return err
		}
		// Data table.
		cols, rows := ResultRows(res)
		var tb strings.Builder
		tb.WriteString("<table>\n<tr>")
		for _, h := range cols {
			fmt.Fprintf(&tb, "<th>%s</th>", html.EscapeString(h))
		}
		tb.WriteString("</tr>\n")
		for _, row := range rows {
			tb.WriteString("<tr>")
			for _, cell := range row {
				fmt.Fprintf(&tb, "<td>%s</td>", html.EscapeString(cell))
			}
			tb.WriteString("</tr>\n")
		}
		tb.WriteString("</table>\n")
		if _, err := io.WriteString(w, tb.String()); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</body>\n</html>\n")
	return err
}
