package report

import (
	"fmt"
	"html"
	"io"
	"math"
	"sort"
	"strings"

	"ahs/internal/experiments"
	"ahs/internal/stats"
)

// SurfacePoint is one evaluated point of a parameter sweep, flattened to
// the response measure: the unsafety estimate Y at sweep coordinate X,
// grouped into the series named Series (typically the coordination
// strategy, or any categorical-axis combination).
type SurfacePoint struct {
	Series  string
	X       float64
	Y       float64
	CILo    float64
	CIHi    float64
	Batches uint64
}

// Surface assembles sweep points into a figure result: one series per
// distinct Series label (in first-appearance order, so mixed-strategy
// sweeps keep their design order), each sorted by X. The result renders
// through the same table/SVG/HTML pipeline as the paper figures, turning
// hand-picked points into a generated response surface.
func Surface(id, title, xLabel, yLabel string, pts []SurfacePoint) *experiments.Result {
	res := &experiments.Result{ID: id, Title: title, XLabel: xLabel, YLabel: yLabel}
	order := []string{}
	grouped := map[string][]SurfacePoint{}
	for _, p := range pts {
		if _, ok := grouped[p.Series]; !ok {
			order = append(order, p.Series)
		}
		grouped[p.Series] = append(grouped[p.Series], p)
	}
	for _, label := range order {
		group := grouped[label]
		sort.SliceStable(group, func(i, j int) bool { return group[i].X < group[j].X })
		s := experiments.Series{Label: label}
		for _, p := range group {
			s.X = append(s.X, p.X)
			s.Y = append(s.Y, p.Y)
			s.CI = append(s.CI, stats.Interval{Lo: p.CILo, Hi: p.CIHi})
			// Batches reports the per-series total simulation effort.
			s.Batches += p.Batches
		}
		res.Series = append(res.Series, s)
	}
	return res
}

// SensitivityRows summarizes each series of a response surface: the
// minimum and maximum response over the swept range, their spread, and the
// max/min ratio (the dynamic range of the safety claim under that series).
// Non-finite and non-positive estimates are excluded from the extremes; a
// series with no usable points renders dashes.
func SensitivityRows(res *experiments.Result) (header []string, rows [][]string) {
	header = []string{"series", "points", "min " + res.YLabel, "max " + res.YLabel, "spread", "max/min"}
	for _, s := range res.Series {
		lo, hi := math.Inf(1), math.Inf(-1)
		usable := 0
		for _, y := range s.Y {
			if !(y > 0) || math.IsInf(y, 0) { // excludes NaN and zero/negative
				continue
			}
			usable++
			lo, hi = math.Min(lo, y), math.Max(hi, y)
		}
		if usable == 0 {
			rows = append(rows, []string{s.Label, "0", "-", "-", "-", "-"})
			continue
		}
		rows = append(rows, []string{
			s.Label,
			fmt.Sprintf("%d", usable),
			FormatProb(lo),
			FormatProb(hi),
			FormatProb(hi - lo),
			fmt.Sprintf("%.3g", hi/lo),
		})
	}
	return header, rows
}

// WriteSurfaceHTML renders response surfaces as one self-contained HTML
// page: per surface the SVG chart, the sensitivity table, and the full
// data table. An empty surface (no points at all) renders an explicit
// empty-state note instead of a chart, so reports of failed or degenerate
// sweeps stay self-describing.
func WriteSurfaceHTML(w io.Writer, title string, results []*experiments.Result) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString(`<style>
body { font-family: sans-serif; margin: 2rem auto; max-width: 860px; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2.5rem; }
h3 { font-size: 0.95rem; margin-bottom: 0.25rem; }
table { border-collapse: collapse; font-size: 0.85rem; margin-top: 0.75rem; }
th, td { border: 1px solid #ccc; padding: 0.25rem 0.6rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
p.empty { font-style: italic; color: #666; }
</style>
</head>
<body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))
	if len(results) == 0 {
		b.WriteString("<p class=\"empty\">No response surfaces: the sweep produced no renderable points.</p>\n")
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}

	writeTable := func(b *strings.Builder, cols []string, rows [][]string) {
		b.WriteString("<table>\n<tr>")
		for _, h := range cols {
			fmt.Fprintf(b, "<th>%s</th>", html.EscapeString(h))
		}
		b.WriteString("</tr>\n")
		for _, row := range rows {
			b.WriteString("<tr>")
			for _, cell := range row {
				fmt.Fprintf(b, "<td>%s</td>", html.EscapeString(cell))
			}
			b.WriteString("</tr>\n")
		}
		b.WriteString("</table>\n")
	}

	for _, res := range results {
		var sb strings.Builder
		fmt.Fprintf(&sb, "<h2 id=%q>%s — %s</h2>\n",
			res.ID, html.EscapeString(strings.ToUpper(res.ID)), html.EscapeString(res.Title))
		if len(res.Series) == 0 {
			sb.WriteString("<p class=\"empty\">Empty sweep: no points to plot.</p>\n")
			if _, err := io.WriteString(w, sb.String()); err != nil {
				return err
			}
			continue
		}
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
		if err := WriteSVG(w, res); err != nil {
			return err
		}
		sb.Reset()
		sb.WriteString("<h3>Sensitivity</h3>\n")
		sh, srows := SensitivityRows(res)
		writeTable(&sb, sh, srows)
		sb.WriteString("<h3>Data</h3>\n")
		cols, rows := ResultRows(res)
		writeTable(&sb, cols, rows)
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</body>\n</html>\n")
	return err
}
