package report

import (
	"math"
	"strings"
	"testing"

	"ahs/internal/experiments"
)

func TestSurfaceGroupsInFirstAppearanceOrderAndSortsByX(t *testing.T) {
	pts := []SurfacePoint{
		{Series: "strategy=DC", X: 2, Y: 0.2, Batches: 100},
		{Series: "strategy=DD", X: 3, Y: 0.3, Batches: 100},
		{Series: "strategy=DC", X: 1, Y: 0.1, Batches: 100},
		{Series: "strategy=DD", X: 2, Y: 0.25, Batches: 100},
	}
	res := Surface("sweep", "t", "lambda", "unsafety", pts)
	if len(res.Series) != 2 {
		t.Fatalf("got %d series", len(res.Series))
	}
	if res.Series[0].Label != "strategy=DC" || res.Series[1].Label != "strategy=DD" {
		t.Fatalf("series order: %q, %q", res.Series[0].Label, res.Series[1].Label)
	}
	dc := res.Series[0]
	if dc.X[0] != 1 || dc.X[1] != 2 { //ahsvet:ignore floateq exact literal round-trip, no arithmetic involved
		t.Fatalf("series not sorted by X: %v", dc.X)
	}
	if dc.Y[0] != 0.1 { //ahsvet:ignore floateq exact literal round-trip, no arithmetic involved
		t.Fatalf("Y not reordered with X: %v", dc.Y)
	}
	if dc.Batches != 200 {
		t.Fatalf("per-series batches not accumulated: %d", dc.Batches)
	}
	if len(dc.CI) != len(dc.X) {
		t.Fatalf("CI length %d != X length %d", len(dc.CI), len(dc.X))
	}
}

func TestSensitivityRowsExcludesDegenerateEstimates(t *testing.T) {
	res := &experiments.Result{
		YLabel: "unsafety",
		Series: []experiments.Series{
			{Label: "ok", Y: []float64{0.1, 0.5, math.NaN(), 0, math.Inf(1)}},
			{Label: "dead", Y: []float64{math.NaN(), 0}},
		},
	}
	header, rows := SensitivityRows(res)
	if len(header) != 6 || header[0] != "series" {
		t.Fatalf("header: %v", header)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	ok := rows[0]
	if ok[1] != "2" {
		t.Fatalf("usable count: %v", ok)
	}
	if ok[5] != "5" {
		t.Fatalf("max/min ratio: %v", ok)
	}
	dead := rows[1]
	for _, cell := range dead[2:] {
		if cell != "-" {
			t.Fatalf("series with no usable points must render dashes: %v", dead)
		}
	}
}

func TestWriteSurfaceHTMLEmptyStates(t *testing.T) {
	var b strings.Builder
	if err := WriteSurfaceHTML(&b, "empty", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "No response surfaces") {
		t.Fatalf("no-results page lacks the empty-state note:\n%s", b.String())
	}

	b.Reset()
	res := Surface("sweep", "t", "x", "y", nil)
	if err := WriteSurfaceHTML(&b, "empty sweep", []*experiments.Result{res}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Empty sweep: no points to plot.") {
		t.Fatalf("empty-series page lacks the empty-state note:\n%s", out)
	}
	if strings.Contains(out, "<svg") {
		t.Fatal("empty sweep must not render a chart")
	}
}

func TestWriteSurfaceHTMLSinglePointSweep(t *testing.T) {
	res := Surface("sweep", "one point", "lambda", "unsafety", []SurfacePoint{
		{Series: "strategy=DD", X: 0.01, Y: 0.002, CILo: 0.001, CIHi: 0.003, Batches: 100},
	})
	var b strings.Builder
	if err := WriteSurfaceHTML(&b, "single", []*experiments.Result{res}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "strategy=DD") {
		t.Fatalf("single-point sweep failed to render a chart:\n%s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatal("degenerate single-point axis produced non-finite coordinates")
	}
}

// TestWriteSurfaceHTMLRobustToNaNAndZeroWidthCIs pins the renderer against
// the degenerate outputs a sweep can produce: NaN estimates from zero-hit
// points, zero-width confidence intervals from fully converged ones, and
// infinite CI bounds. None of these may corrupt the SVG coordinates.
func TestWriteSurfaceHTMLRobustToNaNAndZeroWidthCIs(t *testing.T) {
	pts := []SurfacePoint{
		{Series: "s", X: 1, Y: 0.1, CILo: 0.1, CIHi: 0.1},                      // zero-width CI
		{Series: "s", X: 2, Y: math.NaN(), CILo: math.NaN(), CIHi: math.NaN()}, // zero-hit point
		{Series: "s", X: 3, Y: 0.2, CILo: 0.1, CIHi: math.Inf(1)},              // unbounded CI
		{Series: "s", X: math.NaN(), Y: 0.3},                                   // broken coordinate
	}
	res := Surface("sweep", "degenerate", "x", "y", pts)
	var b strings.Builder
	if err := WriteSurfaceHTML(&b, "degenerate", []*experiments.Result{res}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	svgStart := strings.Index(out, "<svg")
	svgEnd := strings.Index(out, "</svg>")
	if svgStart < 0 || svgEnd < 0 {
		t.Fatalf("chart missing:\n%s", out)
	}
	svg := out[svgStart:svgEnd]
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatalf("SVG contains non-finite coordinates:\n%s", svg)
	}
}

func TestChartSkipsNaNPoints(t *testing.T) {
	res := &experiments.Result{
		ID: "sweep", Title: "t", XLabel: "x", YLabel: "y",
		Series: []experiments.Series{{
			Label: "s",
			X:     []float64{1, 2, 3},
			Y:     []float64{0.1, math.NaN(), 0.2},
		}},
	}
	out := Chart(res, 40, 10)
	if strings.Contains(out, "NaN") {
		t.Fatalf("ASCII chart leaked NaN:\n%s", out)
	}
	if !strings.Contains(out, "1 zero or non-finite estimates not plotted") {
		t.Fatalf("skipped-point note missing:\n%s", out)
	}
}
