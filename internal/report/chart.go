package report

import (
	"fmt"
	"math"
	"strings"

	"ahs/internal/experiments"
)

// chartMarks are the per-series plot symbols, cycled when a figure has more
// series than symbols.
var chartMarks = []byte{'o', '+', 'x', '*', '#', '@'}

// Chart renders a figure result as an ASCII scatter plot with a
// logarithmic y axis — unsafety spans orders of magnitude, exactly like the
// paper's log-scale figures. Non-positive estimates (no hits) are skipped.
// Width and height bound the plot area in characters; values below the
// minimum are clamped.
func Chart(res *experiments.Result, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}

	// Collect the plotted points.
	xLo, xHi := math.Inf(1), math.Inf(-1)
	yLo, yHi := math.Inf(1), math.Inf(-1)
	type point struct {
		x, y float64
		mark byte
	}
	var points []point
	skipped := 0
	for si, s := range res.Series {
		mark := chartMarks[si%len(chartMarks)]
		for i := range s.X {
			if !plottable(s.X[i], s.Y[i]) {
				skipped++
				continue
			}
			points = append(points, point{x: s.X[i], y: s.Y[i], mark: mark})
			xLo, xHi = math.Min(xLo, s.X[i]), math.Max(xHi, s.X[i])
			yLo, yHi = math.Min(yLo, s.Y[i]), math.Max(yHi, s.Y[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (log y)\n", strings.ToUpper(res.ID), res.Title)
	if len(points) == 0 {
		b.WriteString("  (no positive estimates to plot)\n")
		return b.String()
	}
	logLo, logHi := math.Log10(yLo), math.Log10(yHi)
	if logHi-logLo < 0.5 {
		mid := (logHi + logLo) / 2
		logLo, logHi = mid-0.25, mid+0.25
	}
	if xHi == xLo { //ahsvet:ignore floateq equality IS the degenerate axis range being widened
		xHi = xLo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range points {
		col := int(float64(width-1) * (p.x - xLo) / (xHi - xLo))
		row := int(float64(height-1) * (math.Log10(p.y) - logLo) / (logHi - logLo))
		row = height - 1 - row // y grows upward
		grid[row][col] = p.mark
	}

	for r := 0; r < height; r++ {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%9.1e ", math.Pow(10, logHi))
		case height - 1:
			label = fmt.Sprintf("%9.1e ", math.Pow(10, logLo))
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 10))
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%10s %-10g%*s\n", "", xLo, width-10, fmt.Sprintf("%g (%s)", xHi, res.XLabel))

	// Legend.
	for si, s := range res.Series {
		fmt.Fprintf(&b, "  %c %s\n", chartMarks[si%len(chartMarks)], s.Label)
	}
	if skipped > 0 {
		fmt.Fprintf(&b, "  (%d zero or non-finite estimates not plotted)\n", skipped)
	}
	return b.String()
}

// plottable reports whether a point can live on a log-y chart: finite x,
// strictly positive finite y. NaN and ±Inf estimates (degenerate sweeps,
// zero-hit rare events) are skipped rather than corrupting the axes.
func plottable(x, y float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0) && y > 0 && !math.IsInf(y, 1)
}
