// Package report renders experiment results as aligned ASCII tables and CSV
// files, the two output formats of cmd/ahs-experiments and the benchmark
// harness.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"

	"ahs/internal/experiments"
)

// FormatProb renders a probability compactly: fixed-point for ordinary
// magnitudes, scientific for rare-event values.
func FormatProb(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e-3:
		return strconv.FormatFloat(v, 'f', 6, 64)
	default:
		return strconv.FormatFloat(v, 'e', 3, 64)
	}
}

// Table renders header + rows as an aligned monospace table. Column widths
// are measured in runes so that non-ASCII labels (λ, ρ) stay aligned.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if n := utf8.RuneCountInString(cell); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - utf8.RuneCountInString(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// ResultRows flattens a figure result into a header and one row per series
// per x-value: series label, x, estimate, CI bounds, batch count.
func ResultRows(res *experiments.Result) (header []string, rows [][]string) {
	header = []string{"series", res.XLabel, res.YLabel, "ci_lo", "ci_hi", "batches"}
	for _, s := range res.Series {
		for i := range s.X {
			lo, hi := "", ""
			if i < len(s.CI) {
				lo = FormatProb(s.CI[i].Lo)
				hi = FormatProb(s.CI[i].Hi)
			}
			rows = append(rows, []string{
				s.Label,
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				FormatProb(s.Y[i]),
				lo,
				hi,
				strconv.FormatUint(s.Batches, 10),
			})
		}
	}
	return header, rows
}

// RenderResult renders a whole figure result: title line plus table.
func RenderResult(res *experiments.Result) string {
	header, rows := ResultRows(res)
	return fmt.Sprintf("%s: %s\n%s", strings.ToUpper(res.ID), res.Title, Table(header, rows))
}

// WriteCSV writes header + rows as CSV.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("report: write csv header: %w", err)
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("report: flush csv: %w", err)
	}
	return nil
}

// WriteResultCSV writes one figure result as CSV.
func WriteResultCSV(w io.Writer, res *experiments.Result) error {
	header, rows := ResultRows(res)
	return WriteCSV(w, header, rows)
}
