package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"ahs/internal/experiments"
	"ahs/internal/stats"
)

func sampleResult() *experiments.Result {
	return &experiments.Result{
		ID:     "fig99",
		Title:  "sample",
		XLabel: "t",
		YLabel: "S",
		Series: []experiments.Series{
			{
				Label:   "n=8",
				X:       []float64{2, 4},
				Y:       []float64{1.5e-7, 0.25},
				CI:      []stats.Interval{{Point: 1.5e-7, Lo: 1e-7, Hi: 2e-7}, {Point: 0.25, Lo: 0.2, Hi: 0.3}},
				Batches: 1000,
			},
			{
				Label:   "n=10",
				X:       []float64{2, 4},
				Y:       []float64{0, 3e-6},
				CI:      []stats.Interval{{}, {Point: 3e-6, Lo: 2e-6, Hi: 4e-6}},
				Batches: 2000,
			},
		},
	}
}

func TestFormatProb(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.25, "0.250000"},
		{1.5e-7, "1.500e-07"},
		{1e-3, "0.001000"},
		{9.99e-4, "9.990e-04"},
	}
	for _, c := range cases {
		if got := FormatProb(c.in); got != c.want {
			t.Errorf("FormatProb(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "bb"}, [][]string{{"xxx", "y"}, {"z", "wwww"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	if lines[1] != "---  ----" {
		t.Fatalf("separator %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "xxx  y") {
		t.Fatalf("row %q misaligned", lines[2])
	}
}

func TestResultRows(t *testing.T) {
	header, rows := ResultRows(sampleResult())
	if len(header) != 6 || header[1] != "t" || header[2] != "S" {
		t.Fatalf("header %v", header)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	if rows[0][0] != "n=8" || rows[0][1] != "2" || rows[0][2] != "1.500e-07" {
		t.Fatalf("first row %v", rows[0])
	}
	if rows[3][0] != "n=10" || rows[3][5] != "2000" {
		t.Fatalf("last row %v", rows[3])
	}
}

func TestRenderResultContainsTitleAndData(t *testing.T) {
	out := RenderResult(sampleResult())
	for _, want := range []string{"FIG99", "sample", "n=8", "1.500e-07"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered result missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResultCSV(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 5 { // header + 4 rows
		t.Fatalf("%d csv records, want 5", len(records))
	}
	for i, rec := range records {
		if len(rec) != 6 {
			t.Fatalf("record %d has %d fields", i, len(rec))
		}
	}
}

func TestWriteCSVPropagatesWriterErrors(t *testing.T) {
	w := failWriter{}
	err := WriteCSV(w, []string{"a"}, [][]string{{"b"}})
	if err == nil {
		t.Fatal("expected error from failing writer")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) {
	return 0, errWrite
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "synthetic write failure" }

func TestChartRendersAllSeries(t *testing.T) {
	out := Chart(sampleResult(), 40, 8)
	if !strings.Contains(out, "FIG99") || !strings.Contains(out, "log y") {
		t.Fatalf("chart header missing:\n%s", out)
	}
	// Legend lists both series.
	if !strings.Contains(out, "o n=8") || !strings.Contains(out, "+ n=10") {
		t.Fatalf("legend missing:\n%s", out)
	}
	// Marks appear in the plot area.
	if !strings.Contains(out, "o") || !strings.Contains(out, "+") {
		t.Fatalf("marks missing:\n%s", out)
	}
	// One zero estimate is reported as skipped.
	if !strings.Contains(out, "1 zero or non-finite estimates not plotted") {
		t.Fatalf("skip note missing:\n%s", out)
	}
}

func TestChartHandlesEmptyAndDegenerate(t *testing.T) {
	empty := &experiments.Result{ID: "figx", Title: "t", XLabel: "x",
		Series: []experiments.Series{{Label: "z", X: []float64{1}, Y: []float64{0}}}}
	out := Chart(empty, 10, 2)
	if !strings.Contains(out, "no positive estimates") {
		t.Fatalf("empty chart output %q", out)
	}
	// Single point: degenerate ranges must not panic or divide by zero.
	single := &experiments.Result{ID: "figy", Title: "t", XLabel: "x",
		Series: []experiments.Series{{Label: "s", X: []float64{2}, Y: []float64{1e-5}}}}
	out = Chart(single, 10, 3)
	if !strings.Contains(out, "o") {
		t.Fatalf("single-point chart missing mark:\n%s", out)
	}
}

func TestWriteSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSVG(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "FIG99", "n=8", "n=10", "1e-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// Well-formedness basics: every opened circle/line closes itself.
	if strings.Count(out, "<svg") != 1 || strings.Count(out, "</svg>") != 1 {
		t.Fatal("svg not single-rooted")
	}
}

func TestWriteSVGEmpty(t *testing.T) {
	var buf bytes.Buffer
	empty := &experiments.Result{ID: "figz", Title: "t", XLabel: "x", YLabel: "y",
		Series: []experiments.Series{{Label: "z", X: []float64{1}, Y: []float64{0}}}}
	if err := WriteSVG(&buf, empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no positive estimates") {
		t.Fatal("empty svg missing placeholder text")
	}
}

func TestWriteSVGEscapesLabels(t *testing.T) {
	res := sampleResult()
	res.Title = `a<b & "c"`
	var buf bytes.Buffer
	if err := WriteSVG(&buf, res); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `a<b`) {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(buf.String(), "a&lt;b &amp; &quot;c&quot;") {
		t.Fatal("escaped title missing")
	}
}

func TestWriteHTML(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHTML(&buf, "AHS results", []*experiments.Result{sampleResult()}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<!DOCTYPE html>", "AHS results", "<svg", "<table>", "FIG99", "</html>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("html missing %q", want)
		}
	}
}

func TestWriteHTMLEscapes(t *testing.T) {
	res := sampleResult()
	res.Title = "<script>alert(1)</script>"
	var buf bytes.Buffer
	if err := WriteHTML(&buf, "x & y", []*experiments.Result{res}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>") {
		t.Fatal("html injection not escaped")
	}
}
