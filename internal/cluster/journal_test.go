package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ahs/internal/config"
	"ahs/internal/core"
	"ahs/internal/mc"
)

// journalFrames builds the framed journal bytes for a real, completed run
// of sc: submit, one chunk record per shard (simulated for real, so the
// states carry genuine statistics), and a finish record. It returns the
// concatenated frames together with each frame's end offset, so tests can
// cut the journal at every record boundary.
func journalFrames(t *testing.T, sc *config.Scenario, chunkBatches uint64) (data []byte, ends []int) {
	t.Helper()
	sc = sc.Canonical()
	hash, err := sc.Hash()
	if err != nil {
		t.Fatal(err)
	}
	p, err := sc.Params()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	opts := sc.EvalOptions(sys)
	opts.Workers = 1
	opts.CheckEvery = 500
	job, err := sys.UnsafetyJob(opts)
	if err != nil {
		t.Fatal(err)
	}

	records := []journalRecord{{
		Type:         recSubmit,
		Job:          1,
		Scenario:     sc,
		Hash:         hash,
		RoundSize:    job.RoundSize(),
		ChunkBatches: chunkBatches,
		LocalWorkers: 1,
	}}
	for _, spec := range job.Shard(chunkBatches) {
		state, err := mc.EstimateChunk(job, spec)
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, journalRecord{Type: recChunk, Job: 1, State: state})
	}
	records = append(records, journalRecord{Type: recFinish, Job: 1})

	var buf bytes.Buffer
	for _, rec := range records {
		frame, err := frameRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
		ends = append(ends, buf.Len())
	}
	return buf.Bytes(), ends
}

// TestJournalRoundTrip: records appended to a journal are recovered intact
// by a fresh open of the same directory.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sc := testScenario(1000).Canonical()
	hash, _ := sc.Hash()

	j, err := OpenJournal(JournalConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	sub := journalRecord{Type: recSubmit, Job: 7, Scenario: sc, Hash: hash, RoundSize: 500, ChunkBatches: 500, LocalWorkers: 2}
	if err := j.append(sub); err != nil {
		t.Fatal(err)
	}
	state := &mc.ChunkState{Spec: mc.ChunkSpec{Start: 0, Count: 500}}
	if err := j.append(journalRecord{Type: recChunk, Job: 7, State: state}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(JournalConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	jobs := j2.recoveredJobs()
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(jobs))
	}
	rj := jobs[0]
	if rj.id != 7 || rj.submit.Hash != hash || rj.submit.RoundSize != 500 || rj.submit.LocalWorkers != 2 {
		t.Errorf("recovered submit = %+v, want the appended one", rj.submit)
	}
	if len(rj.chunks) != 1 || rj.chunks[0] == nil || rj.chunks[0].Spec.Count != 500 {
		t.Errorf("recovered chunks = %v, want the appended chunk at start 0", rj.chunks)
	}
	if rj.finished {
		t.Error("job recovered as finished without a finish record")
	}
	if got := j2.maxJobID(); got != 7 {
		t.Errorf("maxJobID = %d, want 7", got)
	}
}

// TestJournalDropForgets: a drop record erases the job from recovery.
func TestJournalDropForgets(t *testing.T) {
	dir := t.TempDir()
	sc := testScenario(1000).Canonical()
	hash, _ := sc.Hash()
	j, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j.append(journalRecord{Type: recSubmit, Job: 1, Scenario: sc, Hash: hash, RoundSize: 500, ChunkBatches: 500})
	j.append(journalRecord{Type: recDrop, Job: 1})
	j.Close()

	j2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := len(j2.recoveredJobs()); n != 0 {
		t.Fatalf("recovered %d jobs after drop, want 0", n)
	}
}

// TestRestoreDropsStoreServedJobs: a journal-restored job whose scenario
// the persistent result store already holds is dropped at startup — and
// the drop is journaled, so it stays dead across further restarts — while
// jobs the store lacks are restored as usual.
func TestRestoreDropsStoreServedJobs(t *testing.T) {
	dir := t.TempDir()
	sc := testScenario(1000).Canonical()
	hash, _ := sc.Hash()
	j, err := OpenJournal(JournalConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(journalRecord{Type: recSubmit, Job: 1, Scenario: sc, Hash: hash, RoundSize: 500, ChunkBatches: 500, LocalWorkers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Without the hook the job is restored.
	j2, err := OpenJournal(JournalConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	coord := New(Config{Journal: j2, Logf: t.Logf})
	if st := coord.Status(); st.RecoveredJobs != 1 {
		t.Fatalf("RecoveredJobs = %d without HasResult, want 1", st.RecoveredJobs)
	}
	coord.Close()
	j2.Close()

	// With the store claiming the hash, restore drops the job.
	j3, err := OpenJournal(JournalConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var asked []string
	coord3 := New(Config{Journal: j3, Logf: t.Logf, HasResult: func(h string) bool {
		asked = append(asked, h)
		return true
	}})
	if st := coord3.Status(); st.RecoveredJobs != 0 {
		t.Fatalf("RecoveredJobs = %d with the store claiming the hash, want 0", st.RecoveredJobs)
	}
	if len(asked) != 1 || asked[0] != hash {
		t.Fatalf("HasResult asked about %v, want exactly [%s]", asked, hash)
	}
	coord3.Close()
	j3.Close()

	// The drop was journaled: a later restart recovers nothing even
	// without the hook.
	j4, err := OpenJournal(JournalConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer j4.Close()
	coord4 := New(Config{Journal: j4, Logf: t.Logf})
	defer coord4.Close()
	if st := coord4.Status(); st.RecoveredJobs != 0 {
		t.Fatalf("RecoveredJobs = %d after journaled drop, want 0", st.RecoveredJobs)
	}
}

// TestJournalTornTailTruncated: a partial frame at the tail (the classic
// torn write) is detected and cut; the valid prefix survives untouched.
func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	data, ends := journalFrames(t, testScenario(1000), 500)
	tailPath := filepath.Join(dir, journalTailName)

	// Write all frames plus 5 bytes of a would-be next frame.
	torn := append(append([]byte{}, data...), 0xAA, 0xBB, 0xCC, 0xDD, 0xEE)
	if err := os.WriteFile(tailPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(JournalConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(j.recoveredJobs()); n != 1 {
		t.Fatalf("recovered %d jobs from torn journal, want 1", n)
	}
	j.Close()
	// The file must have been truncated back to the last valid frame.
	fi, err := os.Stat(tailPath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(ends[len(ends)-1]) {
		t.Errorf("torn tail size = %d after open, want %d", fi.Size(), ends[len(ends)-1])
	}
}

// TestJournalCorruptFrameCutsReplay: a bit flip inside a frame's payload
// fails its CRC; replay stops at the previous record (frame boundaries
// after the corruption cannot be trusted).
func TestJournalCorruptFrameCutsReplay(t *testing.T) {
	dir := t.TempDir()
	data, ends := journalFrames(t, testScenario(1000), 500)
	// Flip one byte in the middle of the second frame's payload.
	corrupt := append([]byte{}, data...)
	corrupt[ends[0]+12] ^= 0x01
	if err := os.WriteFile(filepath.Join(dir, journalTailName), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(JournalConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	jobs := j.recoveredJobs()
	if len(jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1 (submit is in the valid prefix)", len(jobs))
	}
	if len(jobs[0].chunks) != 0 {
		t.Errorf("recovered %d chunks past a corrupt frame, want 0", len(jobs[0].chunks))
	}
}

// TestJournalMalformedRecordSkipped: a CRC-valid frame whose payload is
// semantically broken (bad JSON or missing required fields) is skipped
// without cutting the records after it — the framing is still intact.
func TestJournalMalformedRecordSkipped(t *testing.T) {
	frame := func(payload []byte) []byte {
		f := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(f[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(f[4:8], crc32.Checksum(payload, crcTable))
		copy(f[8:], payload)
		return f
	}
	good, err := frameRecord(journalRecord{Type: recFinish, Job: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.Write(frame([]byte(`{not json`)))                 // malformed JSON
	buf.Write(frame([]byte(`{"type":"submit","job":0}`))) // well-framed, ill-formed record
	buf.Write(good)

	valid, records, dropped := scanJournal(buf.Bytes())
	if valid != int64(buf.Len()) {
		t.Errorf("valid prefix = %d, want %d (malformed frames are still framed)", valid, buf.Len())
	}
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
	if len(records) != 1 || records[0].Type != recFinish || records[0].Job != 3 {
		t.Errorf("records = %+v, want just the finish record", records)
	}
}

// TestScanJournalEdges: empty and sub-header inputs scan to nothing.
func TestScanJournalEdges(t *testing.T) {
	for _, data := range [][]byte{nil, {}, {1, 2, 3}, make([]byte, 7)} {
		valid, records, dropped := scanJournal(data)
		if valid != 0 || len(records) != 0 || dropped != 0 {
			t.Errorf("scanJournal(%v) = (%d, %d records, %d dropped), want zeros", data, valid, len(records), dropped)
		}
	}
	// A frame whose declared length overruns the buffer is torn.
	huge := make([]byte, 16)
	binary.LittleEndian.PutUint32(huge[0:4], 1<<30)
	if valid, records, _ := scanJournal(huge); valid != 0 || len(records) != 0 {
		t.Errorf("overlong frame scanned to (%d, %d records), want zeros", valid, len(records))
	}
}

// TestJournalCompaction: once the tail passes CompactEvery records the
// journal folds it into the snapshot; recovery from the compacted layout is
// equivalent to recovery from the raw tail.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	sc := testScenario(1000).Canonical()
	hash, _ := sc.Hash()
	j, err := OpenJournal(JournalConfig{Dir: dir, CompactEvery: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	j.append(journalRecord{Type: recSubmit, Job: 1, Scenario: sc, Hash: hash, RoundSize: 500, ChunkBatches: 250})
	for i := uint64(0); i < 4; i++ {
		j.append(journalRecord{Type: recChunk, Job: 1, State: &mc.ChunkState{Spec: mc.ChunkSpec{Start: i * 250, Count: 250}}})
	}
	j.Close()

	snap, err := os.Stat(filepath.Join(dir, journalSnapshotName))
	if err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}
	if snap.Size() == 0 {
		t.Error("snapshot is empty")
	}
	tail, err := os.Stat(filepath.Join(dir, journalTailName))
	if err != nil {
		t.Fatal(err)
	}
	// Only the records appended after the compaction point remain in the
	// tail (the 5th append triggered compaction at >= 4).
	if tail.Size() >= snap.Size() {
		t.Errorf("tail (%d bytes) not reset against snapshot (%d bytes)", tail.Size(), snap.Size())
	}

	j2, err := OpenJournal(JournalConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	jobs := j2.recoveredJobs()
	if len(jobs) != 1 || len(jobs[0].chunks) != 4 {
		t.Fatalf("recovered %d jobs (chunks %v), want 1 job with 4 chunks", len(jobs), jobs)
	}
}

// TestJournalRestartBitIdentical is the in-process crash/restart check: a
// journaled coordinator is closed mid-job (jobs unfinished, journal kept),
// a second coordinator opens the same journal, the caller re-submits the
// same scenario, and the adopted job finishes with the exact bits of an
// uninterrupted single-process run.
func TestJournalRestartBitIdentical(t *testing.T) {
	sc := testScenario(4000)
	want := singleProcessCurve(t, sc, 500)
	dir := t.TempDir()

	// Phase 1: run with one worker (so chunks are journaled one at a
	// time), then abandon mid-job by closing the coordinator once at
	// least one chunk is durable — 7 of the 8 chunks remain.
	j1, err := OpenJournal(JournalConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	coord1, srv1 := testCluster(t, Config{ChunkBatches: 500, CheckEvery: 500, Journal: j1})
	stop := startWorkers(t, srv1.URL, 1)
	errc := make(chan error, 1)
	go func() {
		_, _, err := coord1.UnsafetyCurve(context.Background(), sc, 1, nil)
		errc <- err
	}()
	deadline := time.After(30 * time.Second)
	for {
		if rec := j1.recoveredJobs(); len(rec) == 1 && len(rec[0].chunks) >= 1 {
			break
		}
		select {
		case err := <-errc:
			t.Fatalf("job finished before the crash point: %v", err)
		case <-deadline:
			t.Fatal("no chunk journaled within 30s")
		case <-time.After(time.Millisecond):
		}
	}
	stop()
	coord1.Close()
	if err := <-errc; err == nil {
		t.Fatal("phase-1 caller succeeded despite coordinator close")
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: restart on the same journal; the re-submitted scenario
	// adopts the restored job and local rescue finishes the remainder.
	j2, err := OpenJournal(JournalConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j2.Close() })
	coord2, _ := testCluster(t, Config{ChunkBatches: 500, CheckEvery: 500, Journal: j2})
	if st := coord2.Status(); st.RecoveredJobs != 1 {
		t.Fatalf("RecoveredJobs = %d after restart, want 1", st.RecoveredJobs)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, _, err := coord2.UnsafetyCurve(ctx, sc, 1, nil)
	if err != nil {
		t.Fatalf("adopted job failed: %v", err)
	}
	assertBitIdentical(t, got, want)
}

// TestJournalTruncationTable cuts a complete journal after every record —
// and mid-record, the torn-write case — and proves each prefix restores and
// finishes to the bit-identical curve. This is the exhaustive version of
// the crash-window argument: wherever the crash lands, recovery converges
// to the same answer.
func TestJournalTruncationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs one restore per journal record")
	}
	sc := testScenario(2000)
	want := singleProcessCurve(t, sc, 500)
	data, ends := journalFrames(t, sc, 500)

	cuts := []int{0}
	for _, end := range ends {
		if end+3 < len(data) {
			cuts = append(cuts, end+3) // torn: 3 bytes into the next frame
		}
		cuts = append(cuts, end)
	}
	for _, cut := range cuts {
		cut := cut
		t.Run(formatCut(cut, len(data)), func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, journalTailName), data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			j, err := OpenJournal(JournalConfig{Dir: dir, Logf: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { j.Close() })
			coord, _ := testCluster(t, Config{ChunkBatches: 500, CheckEvery: 500, Journal: j})
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			got, _, err := coord.UnsafetyCurve(ctx, sc, 1, nil)
			if err != nil {
				t.Fatalf("cut at %d bytes: restore did not finish: %v", cut, err)
			}
			assertBitIdentical(t, got, want)
		})
	}
}

func formatCut(cut, total int) string {
	return "cut=" + itoa(cut) + "of" + itoa(total)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
