package cluster

import (
	"context"
	"testing"
	"time"
)

// Journal overhead benchmarks: the same 20k-batch evaluation through the
// coordinator, without a journal (the direct path), with a fully fsync'd
// journal (the crash-safe default), and with NoSync (isolating the
// fsync cost from the framing/encoding cost). Run with:
//
//	go test ./internal/cluster/ -run '^$' -bench BenchmarkCoordinator -benchtime 5x
//
// The measured overhead of the durable journal is reported in
// docs/cluster.md ("Failure model & recovery"); the acceptance bar is <=5%.
func benchmarkCoordinatorCurve(b *testing.B, journaled, noSync bool) {
	sc := testScenario(20000)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := Config{
			PollInterval: time.Millisecond, // rescue ticks must not dominate the measurement
			ChunkBatches: 2000,
			CheckEvery:   2000,
		}
		var j *Journal
		if journaled {
			var err error
			j, err = OpenJournal(JournalConfig{Dir: b.TempDir(), NoSync: noSync})
			if err != nil {
				b.Fatal(err)
			}
			cfg.Journal = j
		}
		coord := New(cfg)
		curve, _, err := coord.UnsafetyCurve(ctx, sc, 1, nil)
		coord.Close()
		if j != nil {
			j.Close()
		}
		if err != nil {
			b.Fatal(err)
		}
		if curve.Batches != 20000 {
			b.Fatalf("Batches = %d, want 20000", curve.Batches)
		}
	}
}

func BenchmarkCoordinatorNoJournal(b *testing.B)     { benchmarkCoordinatorCurve(b, false, false) }
func BenchmarkCoordinatorJournal(b *testing.B)       { benchmarkCoordinatorCurve(b, true, false) }
func BenchmarkCoordinatorJournalNoSync(b *testing.B) { benchmarkCoordinatorCurve(b, true, true) }

// TestJournalOverheadBudget enforces the acceptance bar in the suite
// itself: one 20k-batch run each way, journal overhead within 5% (with
// slack for timer noise on loaded CI machines — the benchmark above is the
// precise instrument).
func TestJournalOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two 20k-batch evaluations")
	}
	run := func(journaled bool) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			benchmarkCoordinatorCurve(b, journaled, false)
		})
		return float64(res.NsPerOp())
	}
	base := run(false)
	withJournal := run(true)
	overhead := (withJournal - base) / base
	t.Logf("journal overhead: base=%.0fms journaled=%.0fms overhead=%.2f%%",
		base/1e6, withJournal/1e6, overhead*100)
	// 5% is the acceptance target on a quiet machine; 15% is the hard
	// failure line so CI noise does not flake the suite.
	if overhead > 0.15 {
		t.Errorf("journal overhead %.1f%% exceeds the 15%% hard ceiling (target <=5%%)", overhead*100)
	}
}
