package cluster

import "ahs/internal/telemetry"

// metrics holds the coordinator's telemetry families. A nil receiver (no
// registry configured) disables every recording at the cost of one branch.
type metrics struct {
	leased    *telemetry.Counter
	completed *telemetry.Counter
	requeued  *telemetry.Counter
	failed    *telemetry.Counter
	fallback  *telemetry.Counter
	rescued   *telemetry.Counter
	mergeSec  *telemetry.Histogram
}

func newMetrics(reg *telemetry.Registry, coord *Coordinator) *metrics {
	if reg == nil {
		return nil
	}
	m := &metrics{
		leased: reg.Counter(telemetry.Opts{
			Name: "ahs_cluster_chunks_leased_total",
			Help: "Chunks handed to workers on lease.",
		}),
		completed: reg.Counter(telemetry.Opts{
			Name: "ahs_cluster_chunks_completed_total",
			Help: "Chunk results folded into a merger.",
		}),
		requeued: reg.Counter(telemetry.Opts{
			Name: "ahs_cluster_chunks_requeued_total",
			Help: "Chunks returned to the queue after lease expiry, worker death or worker error.",
		}),
		failed: reg.Counter(telemetry.Opts{
			Name: "ahs_cluster_chunk_failures_total",
			Help: "Worker-reported chunk failures (including rejected results).",
		}),
		fallback: reg.Counter(telemetry.Opts{
			Name: "ahs_cluster_local_fallback_total",
			Help: "Jobs executed locally because no live workers were registered.",
		}),
		rescued: reg.Counter(telemetry.Opts{
			Name: "ahs_cluster_chunks_rescued_total",
			Help: "Chunks the coordinator simulated locally after its workers died mid-job.",
		}),
		mergeSec: reg.Histogram(telemetry.Opts{
			Name:    "ahs_cluster_merge_seconds",
			Help:    "Latency of folding one chunk result into the merger.",
			Buckets: []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1},
		}),
	}
	reg.GaugeFunc(telemetry.Opts{
		Name: "ahs_cluster_workers_registered",
		Help: "Workers currently registered (excluded workers not counted).",
	}, func() float64 { return float64(coord.Status().WorkersRegistered) })
	reg.GaugeFunc(telemetry.Opts{
		Name: "ahs_cluster_workers_live",
		Help: "Registered workers seen within the heartbeat window.",
	}, func() float64 { return float64(coord.Status().WorkersLive) })
	reg.GaugeFunc(telemetry.Opts{
		Name: "ahs_cluster_chunks_leased",
		Help: "Chunks currently out on lease (worker utilization).",
	}, func() float64 { return float64(coord.Status().LeasedChunks) })
	reg.GaugeFunc(telemetry.Opts{
		Name: "ahs_cluster_chunks_queued",
		Help: "Chunks waiting for a lease across all active jobs.",
	}, func() float64 { return float64(coord.Status().QueuedChunks) })
	return m
}

func (m *metrics) chunkLeased() {
	if m != nil {
		m.leased.Inc()
	}
}

func (m *metrics) chunkCompleted(mergeSeconds float64) {
	if m != nil {
		m.completed.Inc()
		m.mergeSec.Observe(mergeSeconds)
	}
}

func (m *metrics) chunkRequeued() {
	if m != nil {
		m.requeued.Inc()
	}
}

func (m *metrics) chunkFailed() {
	if m != nil {
		m.failed.Inc()
	}
}

func (m *metrics) localFallback() {
	if m != nil {
		m.fallback.Inc()
	}
}

func (m *metrics) chunkRescued() {
	if m != nil {
		m.rescued.Inc()
	}
}
