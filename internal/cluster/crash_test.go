package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"ahs/internal/mc"
)

// The kill -9 e2e. A coordinator child process — this test binary re-exec'd
// through TestMain — journals a job while parent-hosted workers chew
// through its chunks. The parent SIGKILLs the child mid-job (no deferred
// cleanup, no flush, the real thing), starts a second child on the same
// journal directory and address, and the workers reconnect through their
// backoff loops. The resumed job must produce a curve whose every float is
// bit-identical (%b) to the uninterrupted single-process reference, across
// multiple kill points and worker counts.

// Child-process environment keys.
const (
	crashEnvDir     = "AHS_CRASH_COORD_DIR"
	crashEnvAddr    = "AHS_CRASH_COORD_ADDR"
	crashEnvBatches = "AHS_CRASH_COORD_BATCHES"
	crashEnvResult  = "AHS_CRASH_COORD_RESULT"
)

// TestMain reroutes re-exec'd children into the coordinator role; normal
// invocations run the test suite.
func TestMain(m *testing.M) {
	if os.Getenv(crashEnvDir) != "" {
		os.Exit(runCrashChild())
	}
	os.Exit(m.Run())
}

// curveBits renders a curve with every float in exact bit notation, the
// cross-process equivalent of assertBitIdentical.
func curveBits(c *mc.Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "batches=%d converged=%v\n", c.Batches, c.Converged)
	for i := range c.Times {
		iv := c.Intervals[i]
		fmt.Fprintf(&b, "%b mean=%b lo=%b hi=%b point=%b n=%d\n",
			c.Times[i], c.Mean[i], iv.Lo, iv.Hi, iv.Point, iv.N)
	}
	return b.String()
}

// runCrashChild is the coordinator process: open the journal, serve the
// cluster API, evaluate the scenario, write the bit-exact result, exit.
// A SIGKILL can land anywhere in this function — that is the test.
func runCrashChild() int {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "[child %d] "+format+"\n", append([]any{os.Getpid()}, args...)...)
	}
	batches, err := strconv.ParseUint(os.Getenv(crashEnvBatches), 10, 64)
	if err != nil {
		logf("bad %s: %v", crashEnvBatches, err)
		return 2
	}
	j, err := OpenJournal(JournalConfig{Dir: os.Getenv(crashEnvDir), Logf: logf})
	if err != nil {
		logf("open journal: %v", err)
		return 2
	}
	defer j.Close()
	coord := New(Config{
		LeaseTTL:         5 * time.Second,
		PollInterval:     10 * time.Millisecond,
		HeartbeatTimeout: 5 * time.Second,
		SweepInterval:    25 * time.Millisecond,
		ChunkBatches:     500,
		CheckEvery:       500,
		Journal:          j,
		Logf:             logf,
	})
	defer coord.Close()

	ln, err := net.Listen("tcp", os.Getenv(crashEnvAddr))
	if err != nil {
		logf("listen: %v", err)
		return 2
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	curve, _, err := coord.UnsafetyCurve(ctx, testScenario(batches), 1, nil)
	if err != nil {
		logf("evaluate: %v", err)
		return 1
	}
	// Atomic result publication: the parent only ever reads a complete
	// file.
	resultPath := os.Getenv(crashEnvResult)
	tmp := resultPath + ".tmp"
	if err := os.WriteFile(tmp, []byte(curveBits(curve)), 0o644); err != nil {
		logf("write result: %v", err)
		return 1
	}
	if err := os.Rename(tmp, resultPath); err != nil {
		logf("publish result: %v", err)
		return 1
	}
	logf("result published")
	return 0
}

// countJournaledChunks scans the on-disk journal (snapshot + tail) the same
// way recovery would and counts merged chunk records. Reading concurrently
// with the child's appends is safe: the scan simply stops at the torn tail.
func countJournaledChunks(dir string) int {
	n := 0
	for _, name := range []string{journalSnapshotName, journalTailName} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		_, records, _ := scanJournal(data)
		for _, rec := range records {
			if rec.Type == recChunk {
				n++
			}
		}
	}
	return n
}

func TestCoordinatorKillMinus9BitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns coordinator subprocesses")
	}
	const batches = 4000 // 8 chunks of 500
	sc := testScenario(batches)
	want := curveBits(singleProcessCurve(t, sc, 500))

	cases := []struct {
		killAfterChunks int
		workers         int
	}{
		{killAfterChunks: 1, workers: 1},
		{killAfterChunks: 3, workers: 1},
		{killAfterChunks: 1, workers: 2},
		{killAfterChunks: 4, workers: 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("kill_after=%d/workers=%d", tc.killAfterChunks, tc.workers), func(t *testing.T) {
			runCrashCase(t, tc.killAfterChunks, tc.workers, batches, want)
		})
	}
}

// spawnCrashChild starts one coordinator child on dir/addr.
func spawnCrashChild(t *testing.T, dir, addr, resultPath string, batches uint64) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		crashEnvDir+"="+dir,
		crashEnvAddr+"="+addr,
		crashEnvBatches+"="+strconv.FormatUint(batches, 10),
		crashEnvResult+"="+resultPath,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start coordinator child: %v", err)
	}
	return cmd
}

func runCrashCase(t *testing.T, killAfterChunks, workers int, batches uint64, want string) {
	dir := t.TempDir()
	resultPath := filepath.Join(dir, "result.txt")

	// Reserve an address for both child generations. The listener is
	// closed right before the first child starts; the tiny reuse window is
	// harmless in a test namespace.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	child1 := spawnCrashChild(t, dir, addr, resultPath, batches)
	killed := false
	defer func() {
		if !killed {
			child1.Process.Kill()
			child1.Wait()
		}
	}()

	// Workers live in the parent and survive the coordinator crash; their
	// register/lease backoff loops carry them across the restart.
	stopWorkers := startWorkers(t, "http://"+addr, workers)
	defer stopWorkers()

	// Kill the coordinator once the journal shows enough merged chunks.
	waitFor(t, 60*time.Second, fmt.Sprintf("%d journaled chunks", killAfterChunks), func() bool {
		if c := countJournaledChunks(dir); c >= killAfterChunks {
			return true
		}
		// A too-fast child may finish outright; that would invalidate the
		// kill point, so fail loudly rather than pass vacuously.
		if _, err := os.Stat(resultPath); err == nil {
			t.Fatalf("job finished before the kill point (%d chunks)", killAfterChunks)
		}
		return false
	})
	if err := child1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL coordinator: %v", err)
	}
	child1.Wait()
	killed = true
	t.Logf("crash: killed coordinator pid %d after >=%d chunks", child1.Process.Pid, killAfterChunks)

	child2 := spawnCrashChild(t, dir, addr, resultPath, batches)
	child2Done := false
	defer func() {
		if !child2Done {
			child2.Process.Kill()
			child2.Wait()
		}
	}()

	waitFor(t, 120*time.Second, "the restarted coordinator's result", func() bool {
		_, err := os.Stat(resultPath)
		return err == nil
	})
	got, err := os.ReadFile(resultPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("curve after kill -9 + restart is not bit-identical:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := child2.Wait(); err != nil {
		t.Errorf("restarted coordinator exited uncleanly: %v", err)
	}
	child2Done = true
}
