package cluster

import (
	"testing"
	"time"
)

// TestBackoffBounds is the property test behind the retry-policy guarantee:
// every delay a backoff ever returns lies in [base, cap], across many
// seeds and deep attempt counts (including past the shift-overflow zone).
func TestBackoffBounds(t *testing.T) {
	const attempts = 200
	for seed := uint64(0); seed < 50; seed++ {
		b := newBackoff(100*time.Millisecond, 3*time.Second, seed)
		for i := 0; i < attempts; i++ {
			d := b.next()
			if d < 100*time.Millisecond || d > 3*time.Second {
				t.Fatalf("seed=%d attempt=%d: delay %v outside [100ms, 3s]", seed, i, d)
			}
		}
	}
}

// TestBackoffExponentialCeiling: the jitter window really does grow
// exponentially before saturating — attempt n never exceeds base·2ⁿ.
func TestBackoffExponentialCeiling(t *testing.T) {
	base, cap := 100*time.Millisecond, 100*time.Second
	for seed := uint64(0); seed < 20; seed++ {
		b := newBackoff(base, cap, seed)
		for i := 0; i < 8; i++ {
			ceiling := base << uint(i)
			if ceiling > cap {
				ceiling = cap
			}
			if d := b.next(); d > ceiling {
				t.Fatalf("seed=%d attempt=%d: delay %v above ceiling %v", seed, i, d, ceiling)
			}
		}
	}
}

// TestBackoffDeterministic: the schedule is a pure function of the seed,
// and reset restarts the exponential ramp without touching the stream.
func TestBackoffDeterministic(t *testing.T) {
	a := newBackoff(50*time.Millisecond, time.Second, 99)
	b := newBackoff(50*time.Millisecond, time.Second, 99)
	for i := 0; i < 64; i++ {
		if da, db := a.next(), b.next(); da != db {
			t.Fatalf("attempt %d: %v != %v for equal seeds", i, da, db)
		}
	}
	// After reset the ceiling is back to base·2⁰ = base: the first delay
	// must equal base exactly (window [base, base] is degenerate).
	a.reset()
	if d := a.next(); d != 50*time.Millisecond {
		t.Fatalf("first post-reset delay = %v, want exactly 50ms", d)
	}

	c := newBackoff(50*time.Millisecond, time.Second, 100)
	diverged := false
	d := newBackoff(50*time.Millisecond, time.Second, 99)
	for i := 0; i < 64; i++ {
		if c.next() != d.next() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 99 and 100 produced identical 64-delay schedules")
	}
}

// TestBackoffDefaults: non-positive bounds get defaults; an inverted cap
// is raised to base.
func TestBackoffDefaults(t *testing.T) {
	b := newBackoff(0, 0, 1)
	if b.base != 250*time.Millisecond || b.cap != 8*time.Second {
		t.Errorf("defaults = (%v, %v), want (250ms, 8s)", b.base, b.cap)
	}
	b = newBackoff(time.Second, time.Millisecond, 1)
	if b.cap != time.Second {
		t.Errorf("inverted cap = %v, want raised to base 1s", b.cap)
	}
	if d := b.next(); d != time.Second {
		t.Errorf("degenerate window delay = %v, want exactly 1s", d)
	}
}
