package cluster

import (
	"context"
	"testing"
	"time"

	"ahs/internal/mc"
	"ahs/internal/telemetry"
)

// metricValue reads one unlabelled counter/gauge from the registry.
func metricValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	for _, fam := range reg.Gather() {
		if fam.Name == name {
			if len(fam.Samples) == 0 {
				return 0
			}
			return fam.Samples[0].Value
		}
	}
	return 0
}

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWorkerDrainLosesNoCompletedWork: a worker soft-cancelled mid-lease
// finishes the chunk, reports it, and deregisters — the coordinator never
// has to requeue anything, and the job still finishes bit-identically.
func TestWorkerDrainLosesNoCompletedWork(t *testing.T) {
	sc := testScenario(3000)
	want := singleProcessCurve(t, sc, 500)
	reg := telemetry.NewRegistry()
	coord, srv := testCluster(t, Config{ChunkBatches: 500, CheckEvery: 500, Telemetry: reg})

	soft, softCancel := context.WithCancel(context.Background())
	defer softCancel()
	hard, hardCancel := context.WithCancel(context.Background())
	defer hardCancel()
	w := &Worker{
		Coordinator: srv.URL,
		ID:          "drain-w",
		SimWorkers:  1,
		HardContext: hard,
		Logf:        t.Logf,
	}
	workerDone := make(chan error, 1)
	go func() { workerDone <- w.Run(soft) }()
	// The submit must see a live worker, or it takes the local fast path.
	waitFor(t, 30*time.Second, "the worker to register", func() bool {
		return coord.Status().WorkersLive >= 1
	})

	type result struct {
		curve *mc.Curve
		err   error
	}
	resc := make(chan result, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go func() {
		curve, _, err := coord.UnsafetyCurve(ctx, sc, 1, nil)
		resc <- result{curve, err}
	}()

	// Wait until the worker holds a lease, then drain it mid-flight.
	waitFor(t, 30*time.Second, "an outstanding lease", func() bool {
		return coord.Status().LeasedChunks >= 1
	})
	softCancel()

	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatalf("drained worker exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drained worker did not exit")
	}
	// The departure is announced, not timed out: the worker is gone from
	// the registry immediately, well inside the heartbeat window.
	if st := coord.Status(); st.WorkersRegistered != 0 {
		t.Errorf("WorkersRegistered = %d right after drain, want 0 (deregister)", st.WorkersRegistered)
	}

	// The rest of the job is rescued locally; the drained worker's chunks
	// stay merged.
	res := <-resc
	if res.err != nil {
		t.Fatalf("job failed after worker drain: %v", res.err)
	}
	assertBitIdentical(t, res.curve, want)

	// The load-bearing assertion: nothing was ever requeued. The lease
	// that was in flight at drain time was completed and delivered by the
	// draining worker — had it been dropped, deregistration (or TTL
	// expiry) would have requeued it.
	if n := metricValue(t, reg, "ahs_cluster_chunks_requeued_total"); n != 0 {
		t.Errorf("chunks requeued = %v, want 0 (drained worker lost work)", n)
	}
}

// TestCoordinatorDrain: draining stops leasing (workers see empty
// responses), fails in-flight callers with a resumable error, and leaves
// journaled jobs recoverable by the next coordinator on the same journal.
func TestCoordinatorDrain(t *testing.T) {
	sc := testScenario(2000)
	want := singleProcessCurve(t, sc, 500)
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	coord, srv := testCluster(t, Config{ChunkBatches: 500, CheckEvery: 500, Journal: j})

	errc := make(chan error, 1)
	go func() {
		_, _, err := coord.UnsafetyCurve(context.Background(), sc, 1, nil)
		errc <- err
	}()
	waitFor(t, 30*time.Second, "the job to be submitted", func() bool {
		return coord.Status().ActiveJobs == 1
	})

	coord.Drain()
	if err := <-errc; err == nil {
		t.Fatal("in-flight caller returned nil during drain, want resumable error")
	}
	if st := coord.Status(); !st.Draining {
		t.Error("Status().Draining = false after Drain")
	}

	// A draining coordinator answers lease polls with "no work".
	rc := &rawClient{t: t, url: srv.URL, id: "post-drain"}
	if code := rc.register(); code != 200 {
		t.Fatalf("register during drain = %d, want 200", code)
	}
	if lease, code := rc.lease(); code != 200 || lease != nil {
		t.Fatalf("lease during drain = (%v, %d), want (nil, 200)", lease, code)
	}

	coord.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal still holds the job; a restarted coordinator resumes it.
	j2, err := OpenJournal(JournalConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j2.Close() })
	coord2, _ := testCluster(t, Config{ChunkBatches: 500, CheckEvery: 500, Journal: j2})
	if st := coord2.Status(); st.RecoveredJobs != 1 {
		t.Fatalf("RecoveredJobs after drain+restart = %d, want 1", st.RecoveredJobs)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, _, err := coord2.UnsafetyCurve(ctx, sc, 1, nil)
	if err != nil {
		t.Fatalf("resumed job failed: %v", err)
	}
	assertBitIdentical(t, got, want)
}
