package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"time"

	"ahs/internal/config"
	"ahs/internal/core"
	"ahs/internal/mc"
	"ahs/internal/obs"
)

// Worker pulls chunk leases from a coordinator, simulates them through the
// exact config → core → mc pipeline a single process would use, and reports
// the sufficient statistics back. Zero-value fields get sensible defaults;
// set Coordinator and call Run.
type Worker struct {
	// Coordinator is the base URL of the coordinator API, e.g.
	// "http://host:8080" (required).
	Coordinator string
	// ID is the worker's stable identity; empty means a random one.
	ID string
	// SimWorkers bounds the simulation parallelism per chunk
	// (0 = GOMAXPROCS).
	SimWorkers int
	// Poll overrides the coordinator-suggested idle poll interval.
	Poll time.Duration
	// HealthURL, when set, is advertised to the coordinator for active
	// liveness probes (serve 200 on it; see cmd/ahs-worker).
	HealthURL string
	// Client is the HTTP client used for all calls (default: 30s
	// timeout).
	Client *http.Client
	// RequestTimeout bounds each individual coordinator call via a
	// per-request context deadline (default 15s, negative disables).
	// Simulation time is not covered — only the HTTP exchanges are.
	RequestTimeout time.Duration
	// HardContext, when set, enables graceful draining: cancelling the
	// ctx passed to Run stops the worker from taking new leases, but the
	// chunk in flight keeps simulating — and its completion keeps
	// retrying — until HardContext is cancelled too. The worker then
	// deregisters and Run returns. When nil, cancelling Run's ctx aborts
	// everything immediately (the pre-drain behavior).
	HardContext context.Context
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Tracer, when non-nil, records a span per chunk, parented to the
	// lease's TraceParent so the worker's work joins the coordinator's
	// distributed trace; the chunk span's context rides back on the
	// completion request's traceparent header.
	Tracer *obs.Tracer

	poll  time.Duration
	built *builtJob // last scenario compiled, cached by hash
}

// builtJob caches the compiled model for the scenario hash, so a worker
// leasing many chunks of one job builds the SAN once.
type builtJob struct {
	hash string
	sys  *core.AHS
	opts core.EvalOptions
}

// backoffSeed derives a deterministic jitter seed from the worker's
// identity, so a worker's retry schedule is replayable from its ID alone.
func (w *Worker) backoffSeed(stream uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(w.ID))
	return h.Sum64() ^ stream
}

// Run registers with the coordinator and processes leases until ctx is
// cancelled (returning nil after a best-effort deregister) or the
// coordinator permanently refuses the worker (returning the refusal).
// Transient transport errors retry with full-jitter capped exponential
// backoff. See HardContext for drain-versus-abort semantics.
func (w *Worker) Run(ctx context.Context) error {
	if w.Coordinator == "" {
		return fmt.Errorf("cluster: worker needs a coordinator URL")
	}
	if w.ID == "" {
		var b [6]byte
		if _, err := rand.Read(b[:]); err != nil {
			return fmt.Errorf("cluster: worker id: %w", err)
		}
		w.ID = "worker-" + hex.EncodeToString(b[:])
	}
	if w.Client == nil {
		w.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if w.RequestTimeout == 0 {
		w.RequestTimeout = 15 * time.Second
	}
	if w.Logf == nil {
		w.Logf = func(string, ...any) {}
	}
	hard := w.HardContext
	if hard == nil {
		hard = ctx
	}

	regBackoff := newBackoff(250*time.Millisecond, 4*time.Second, w.backoffSeed(1))
	for {
		err := w.register(ctx)
		if err == nil {
			break
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe
		}
		if ctx.Err() != nil {
			return nil
		}
		w.Logf("cluster: worker %s register: %v (retrying)", w.ID, err)
		if !sleep(ctx, regBackoff.next()) {
			return nil
		}
	}
	w.Logf("cluster: worker %s registered with %s", w.ID, w.Coordinator)

	pollBackoff := newBackoff(w.poll, 8*w.poll, w.backoffSeed(2))
	for {
		if ctx.Err() != nil {
			// Drained (or aborted): leave cleanly so the coordinator
			// does not wait a heartbeat timeout for us.
			w.deregister(hard)
			return nil
		}
		lease, err := w.lease(ctx)
		switch {
		case err != nil:
			var pe *permanentError
			if errors.As(err, &pe) {
				return pe
			}
			if ctx.Err() != nil {
				continue // loop top deregisters
			}
			w.Logf("cluster: worker %s lease poll: %v", w.ID, err)
			// The coordinator may have restarted and lost us.
			if regErr := w.register(ctx); regErr != nil {
				if errors.As(regErr, &pe) {
					return pe
				}
			}
			if !sleep(ctx, pollBackoff.next()) {
				continue
			}
		case lease == nil:
			pollBackoff.reset()
			if !sleep(ctx, w.poll) {
				continue
			}
		default:
			pollBackoff.reset()
			w.runLease(hard, lease)
		}
	}
}

// runLease simulates one lease and reports its outcome. It runs under the
// hard context: a drain (soft cancel) lets the in-flight chunk finish and
// its result be reported, so a drained worker loses no completed work.
func (w *Worker) runLease(ctx context.Context, l *Lease) {
	if sc, perr := obs.ParseTraceParent(l.TraceParent); perr == nil {
		ctx = obs.ContextWithRemote(ctx, w.Tracer, sc)
	}
	ctx, span := obs.Start(ctx, "worker.chunk",
		obs.String("worker", w.ID),
		obs.String("lease", l.ID),
		obs.String("chunk", l.Spec.String()))
	defer span.End()
	state, err := w.runChunk(ctx, l)
	span.RecordError(err)
	if err != nil {
		if ctx.Err() != nil {
			// Hard abort mid-chunk: drop the work; the lease expires
			// back onto the queue.
			return
		}
		w.Logf("cluster: worker %s chunk %s failed: %v", w.ID, l.Spec, err)
		w.complete(ctx, completeRequest{WorkerID: w.ID, LeaseID: l.ID, Error: err.Error()})
		return
	}
	w.complete(ctx, completeRequest{WorkerID: w.ID, LeaseID: l.ID, State: state})
}

// runChunk rebuilds the scenario's job and estimates the leased chunk. The
// round size is pinned by the lease so the chunk folds bit-identically into
// the coordinator's merger.
func (w *Worker) runChunk(ctx context.Context, l *Lease) (*mc.ChunkState, error) {
	if l.Scenario == nil {
		return nil, fmt.Errorf("lease %s carries no scenario", l.ID)
	}
	built, err := w.build(l.Scenario)
	if err != nil {
		return nil, err
	}
	opts := built.opts
	opts.Workers = w.SimWorkers
	opts.CheckEvery = l.RoundSize
	opts.Context = ctx
	job, err := built.sys.UnsafetyJob(opts)
	if err != nil {
		return nil, err
	}
	return mc.EstimateChunk(job, l.Spec)
}

// build compiles the scenario's model, reusing the previous compilation
// when the canonical hash matches.
func (w *Worker) build(sc *config.Scenario) (*builtJob, error) {
	hash, err := sc.Hash()
	if err != nil {
		return nil, err
	}
	if w.built != nil && w.built.hash == hash {
		return w.built, nil
	}
	p, err := sc.Params()
	if err != nil {
		return nil, err
	}
	sys, err := core.Build(p)
	if err != nil {
		return nil, fmt.Errorf("build model: %w", err)
	}
	w.built = &builtJob{hash: hash, sys: sys, opts: sc.EvalOptions(sys)}
	return w.built, nil
}

// register announces the worker and adopts the coordinator's poll interval.
func (w *Worker) register(ctx context.Context) error {
	var resp registerResponse
	err := w.post(ctx, PathRegister, registerRequest{WorkerID: w.ID, HealthURL: w.HealthURL}, &resp)
	if err != nil {
		return err
	}
	w.poll = time.Duration(resp.PollInterval)
	if w.Poll > 0 {
		w.poll = w.Poll
	}
	if w.poll <= 0 {
		w.poll = 500 * time.Millisecond
	}
	return nil
}

// lease polls for one chunk of work; nil means none available.
func (w *Worker) lease(ctx context.Context) (*Lease, error) {
	var resp leaseResponse
	if err := w.post(ctx, PathLease, leaseRequest{WorkerID: w.ID}, &resp); err != nil {
		return nil, err
	}
	return resp.Lease, nil
}

// complete reports a lease outcome, retrying transport errors a few times —
// the result of minutes of simulation is worth a few seconds of stubbornness.
func (w *Worker) complete(ctx context.Context, req completeRequest) {
	var resp completeResponse
	b := newBackoff(250*time.Millisecond, 4*time.Second, w.backoffSeed(3))
	for attempt := 0; attempt < 5; attempt++ {
		err := w.post(ctx, PathComplete, req, &resp)
		if err == nil {
			if resp.Stale {
				w.Logf("cluster: worker %s lease %s was stale, result discarded", w.ID, req.LeaseID)
			}
			return
		}
		var pe *permanentError
		if errors.As(err, &pe) || ctx.Err() != nil {
			return
		}
		w.Logf("cluster: worker %s complete %s: %v (retrying)", w.ID, req.LeaseID, err)
		if !sleep(ctx, b.next()) {
			return
		}
	}
}

// deregister announces a clean departure, best-effort with a short
// deadline — if it fails, the coordinator drops the worker after a
// heartbeat timeout anyway. A hard-aborted worker (ctx already cancelled)
// skips the call entirely.
func (w *Worker) deregister(ctx context.Context) {
	if ctx.Err() != nil {
		return
	}
	dctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	var resp deregisterResponse
	if err := w.post(dctx, PathDeregister, deregisterRequest{WorkerID: w.ID}, &resp); err != nil {
		w.Logf("cluster: worker %s deregister: %v", w.ID, err)
		return
	}
	w.Logf("cluster: worker %s deregistered", w.ID)
}

// permanentError marks coordinator refusals that retrying cannot fix
// (exclusion, malformed requests).
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

// post sends one JSON request and decodes the JSON response, bounded by
// RequestTimeout. 4xx statuses other than 404 are permanent; everything
// else is transient.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	if w.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, w.RequestTimeout)
		defer cancel()
	}
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the active chunk span so the coordinator's merge span
	// joins the same trace. Set directly (not via obs.Transport) so
	// user-provided clients and test fault injectors see the header too.
	if sc, ok := obs.ContextSpanContext(ctx); ok && sc.Sampled {
		req.Header.Set(obs.TraceParentHeader, sc.TraceParent())
	}
	resp, err := w.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("%s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusNotFound {
			return &permanentError{msg: err.Error()}
		}
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleep waits for d or ctx, reporting false on cancellation.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
