package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"ahs/internal/config"
	"ahs/internal/faultinject"
	"ahs/internal/mc"
	"ahs/internal/telemetry"
)

// The chaos suite runs the full coordinator/worker stack under randomized
// but fully replayable fault schedules: every network fault, worker kill,
// restart, pause and resume is drawn from streams rooted in one logged
// seed. The two assertions are the paper-level robustness claims of the
// cluster layer:
//
//  1. Termination — every accepted job finishes (no fault schedule can
//     wedge the coordinator), and
//  2. Bit-identity — the merged curve equals the single-process reference
//     down to the last float bit (%b), whatever the schedule did.
//
// A failing run prints its seed; re-running with that seed in the table
// reproduces the same fault schedule (goroutine interleaving still varies,
// but both assertions are interleaving-independent by design).

// chaosWorkers manages a mutable fleet of in-process workers whose HTTP
// clients route through a fault plan and a pauser.
type chaosWorkers struct {
	t    *testing.T
	url  string
	plan *faultinject.Plan

	mu     sync.Mutex
	nextID int
	live   map[int]*chaosWorker
	wg     sync.WaitGroup
}

type chaosWorker struct {
	id     int
	cancel context.CancelFunc
	pauser *faultinject.Pauser
}

// spawn starts one worker under a fresh ID (fresh IDs keep injected-fault
// exclusions from permanently shrinking the fleet).
func (cw *chaosWorkers) spawn() {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	cw.nextID++
	id := cw.nextID
	pauser := faultinject.NewPauser(cw.plan.Transport(nil))
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{
		Coordinator:    cw.url,
		ID:             fmt.Sprintf("chaos-w%d", id),
		SimWorkers:     1,
		Client:         &http.Client{Timeout: 10 * time.Second, Transport: pauser},
		RequestTimeout: 2 * time.Second,
		Logf:           cw.t.Logf,
	}
	cw.live[id] = &chaosWorker{id: id, cancel: cancel, pauser: pauser}
	cw.wg.Add(1)
	go func() {
		defer cw.wg.Done()
		// Exclusion (a permanent refusal) is a legitimate outcome under
		// fault injection, not a test failure; the controller replaces
		// killed and excluded workers alike.
		if err := w.Run(ctx); err != nil {
			cw.t.Logf("chaos: worker %s exited: %v", w.ID, err)
		}
	}()
}

// kill hard-stops one live worker (mid-lease work is simply lost, as in a
// real crash); pick chooses among the live IDs.
func (cw *chaosWorkers) kill(pick func(n int) int) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	ids := cw.liveIDsLocked()
	if len(ids) == 0 {
		return
	}
	id := ids[pick(len(ids))]
	cw.live[id].cancel()
	cw.live[id].pauser.Resume() // never leave a dead worker's client blocked
	delete(cw.live, id)
	cw.t.Logf("chaos: killed worker chaos-w%d", id)
}

// pause stalls one worker's entire HTTP client (the process-level pause
// hook: alive but silent) and schedules its resume.
func (cw *chaosWorkers) pause(pick func(n int) int, d time.Duration) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	ids := cw.liveIDsLocked()
	if len(ids) == 0 {
		return
	}
	w := cw.live[ids[pick(len(ids))]]
	w.pauser.Pause()
	cw.t.Logf("chaos: paused worker chaos-w%d for %v", w.id, d)
	time.AfterFunc(d, w.pauser.Resume)
}

func (cw *chaosWorkers) liveIDsLocked() []int {
	ids := make([]int, 0, len(cw.live))
	for id := range cw.live {
		ids = append(ids, id)
	}
	// Map order is randomized per run; sort so "which worker" is decided
	// by the seeded pick alone.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

func (cw *chaosWorkers) stopAll() {
	cw.mu.Lock()
	for _, w := range cw.live {
		w.cancel()
		w.pauser.Resume()
	}
	cw.live = map[int]*chaosWorker{}
	cw.mu.Unlock()
	cw.wg.Wait()
}

// TestClusterChaosSchedules is the seeded chaos suite. Half the schedules
// run with a journal attached, so crash-safety machinery is exercised under
// fire too (journaling must never change the answer).
func TestClusterChaosSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is several seconds per seed")
	}
	seeds := []struct {
		seed    uint64
		journal bool
	}{
		{seed: 1001, journal: false},
		{seed: 2002, journal: true},
		{seed: 3003, journal: false},
		{seed: 4004, journal: true},
		{seed: 5005, journal: false},
		{seed: 6006, journal: true},
	}
	sc := testScenario(3000)
	want := singleProcessCurve(t, sc, 500)

	for _, tc := range seeds {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d/journal=%v", tc.seed, tc.journal), func(t *testing.T) {
			runChaosSchedule(t, tc.seed, tc.journal, sc, want)
		})
	}
}

func runChaosSchedule(t *testing.T, seed uint64, withJournal bool, sc *config.Scenario, want *mc.Curve) {
	t.Logf("chaos: seed=%d journal=%v (re-run by adding this seed to the table)", seed, withJournal)

	reg := telemetry.NewRegistry()
	plan := faultinject.NewPlan(faultinject.Config{
		Seed: seed,
		Default: faultinject.Rates{
			DropRequest:  0.04,
			DropResponse: 0.04,
			Delay:        0.10,
			Duplicate:    0.04,
			ServerError:  0.04,
			Reset:        0.04,
			MaxDelay:     60 * time.Millisecond,
		},
		Telemetry: reg,
		Logf:      t.Logf,
	})

	cfg := Config{
		LeaseTTL:          2 * time.Second,
		PollInterval:      10 * time.Millisecond,
		HeartbeatTimeout:  1500 * time.Millisecond,
		SweepInterval:     50 * time.Millisecond,
		MaxWorkerFailures: 4,
		MaxChunkAttempts:  10000, // chaos must never exhaust a chunk
		ChunkBatches:      500,
		CheckEvery:        500,
		Telemetry:         reg,
	}
	if withJournal {
		j, err := OpenJournal(JournalConfig{Dir: t.TempDir(), Telemetry: reg, Logf: t.Logf})
		if err != nil {
			t.Fatalf("seed=%d: open journal: %v", seed, err)
		}
		t.Cleanup(func() { j.Close() })
		cfg.Journal = j
	}
	coord, srv := testCluster(t, cfg)

	fleet := &chaosWorkers{t: t, url: srv.URL, plan: plan, live: map[int]*chaosWorker{}}
	defer fleet.stopAll()
	for i := 0; i < 3; i++ {
		fleet.spawn()
	}

	// The controller draws every decision — action, victim, pause length,
	// inter-action gap — from one seeded stream, so the schedule is the
	// seed.
	ctrl := faultinject.Rand(seed, "controller")
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	jobDone := make(chan struct{})
	var ctrlWG sync.WaitGroup
	ctrlWG.Add(1)
	go func() {
		defer ctrlWG.Done()
		for {
			gap := time.Duration(30+ctrl.Intn(90)) * time.Millisecond
			select {
			case <-jobDone:
				return
			case <-ctx.Done():
				return
			case <-time.After(gap):
			}
			switch ctrl.Intn(5) {
			case 0:
				fleet.kill(ctrl.Intn)
			case 1:
				fleet.spawn()
			case 2:
				fleet.pause(ctrl.Intn, time.Duration(100+ctrl.Intn(400))*time.Millisecond)
			default:
				// Most ticks do nothing: faults should punctuate the run,
				// not saturate it.
			}
		}
	}()

	got, _, err := coord.UnsafetyCurve(ctx, sc, 1, nil)
	close(jobDone)
	ctrlWG.Wait()
	if err != nil {
		t.Fatalf("chaos seed=%d: job did not terminate cleanly: %v", seed, err)
	}
	assertBitIdentical(t, got, want)

	// The schedule must actually have injected something, or the suite is
	// testing nothing.
	total := uint64(0)
	for _, kinds := range plan.Injected() {
		for _, n := range kinds {
			total += n
		}
	}
	if total == 0 {
		t.Errorf("chaos seed=%d: schedule injected zero faults", seed)
	}
	t.Logf("chaos: seed=%d done, %d faults injected", seed, total)
}
