package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ahs/internal/config"
	"ahs/internal/core"
	"ahs/internal/mc"
	"ahs/internal/telemetry"
)

// testScenario is a tiny but real evaluation over a 2-vehicle platoon;
// batches is split into chunks by the per-test coordinator config.
func testScenario(batches uint64) *config.Scenario {
	return &config.Scenario{
		Name:          "e2e",
		N:             2,
		LambdaPerHour: 0.01,
		TripHours:     []float64{0.5, 1},
		Batches:       batches,
		Seed:          42,
	}
}

// singleProcessCurve evaluates the scenario exactly like core would in one
// process, the reference every cluster result must match bit for bit.
// checkEvery must equal the coordinator's CheckEvery — the accumulation
// round size is part of the reproducibility contract.
func singleProcessCurve(t *testing.T, sc *config.Scenario, checkEvery uint64) *mc.Curve {
	t.Helper()
	sc = sc.Canonical()
	p, err := sc.Params()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	opts := sc.EvalOptions(sys)
	opts.CheckEvery = checkEvery
	job, err := sys.UnsafetyJob(opts)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := mc.EstimateCurve(job)
	if err != nil {
		t.Fatal(err)
	}
	return curve
}

func assertBitIdentical(t *testing.T, got, want *mc.Curve) {
	t.Helper()
	if got.Batches != want.Batches {
		t.Fatalf("Batches = %d, want %d", got.Batches, want.Batches)
	}
	if got.Converged != want.Converged {
		t.Fatalf("Converged = %v, want %v", got.Converged, want.Converged)
	}
	for i := range want.Times {
		if got.Mean[i] != want.Mean[i] {
			t.Fatalf("Mean[%d] = %b, want %b (not bit-identical)", i, got.Mean[i], want.Mean[i])
		}
		if got.Intervals[i] != want.Intervals[i] {
			t.Fatalf("Intervals[%d] = %+v, want %+v", i, got.Intervals[i], want.Intervals[i])
		}
	}
}

// testCluster wires a coordinator behind an httptest server.
func testCluster(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 5 * time.Second
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 5 * time.Second
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = 25 * time.Millisecond
	}
	if cfg.ChunkBatches == 0 {
		cfg.ChunkBatches = 2000
	}
	cfg.Logf = t.Logf
	coord := New(cfg)
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		srv.Close()
		coord.Close()
	})
	return coord, srv
}

// startWorkers launches n in-process workers against the server and returns
// a stop function that waits for them to exit.
func startWorkers(t *testing.T, url string, n int) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{
			Coordinator: url,
			ID:          fmt.Sprintf("w%d", i),
			SimWorkers:  1,
			Logf:        t.Logf,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker %s: %v", w.ID, err)
			}
		}()
	}
	t.Cleanup(func() { cancel(); wg.Wait() })
	return func() {
		cancel()
		wg.Wait()
	}
}

func TestClusterCurveBitIdenticalAcrossWorkerCounts(t *testing.T) {
	sc := testScenario(8000)
	want := singleProcessCurve(t, sc, 0)
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			coord, srv := testCluster(t, Config{})
			startWorkers(t, srv.URL, workers)

			var mu sync.Mutex
			var lastDone, lastMax uint64
			got, bias, err := coord.UnsafetyCurve(context.Background(), sc, 1, func(done, max uint64) {
				mu.Lock()
				lastDone, lastMax = done, max
				mu.Unlock()
			})
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, got, want)
			if bias < 1 {
				t.Fatalf("reported bias %v", bias)
			}
			mu.Lock()
			defer mu.Unlock()
			if lastDone != 8000 || lastMax != 8000 {
				t.Fatalf("final progress %d/%d, want 8000/8000", lastDone, lastMax)
			}
		})
	}
}

// rawClient speaks the wire protocol directly, playing misbehaving workers.
type rawClient struct {
	t   *testing.T
	url string
	id  string
}

func (rc *rawClient) post(path string, in, out any) int {
	rc.t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		rc.t.Fatal(err)
	}
	resp, err := http.Post(rc.url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		rc.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			rc.t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func (rc *rawClient) register() int {
	return rc.post(PathRegister, registerRequest{WorkerID: rc.id}, &registerResponse{})
}

func (rc *rawClient) lease() (*Lease, int) {
	var resp leaseResponse
	code := rc.post(PathLease, leaseRequest{WorkerID: rc.id}, &resp)
	return resp.Lease, code
}

// TestClusterSurvivesWorkerDeathMidLease is the tentpole e2e: a worker
// takes a lease and dies without completing it; the chunk must requeue to a
// surviving worker and the merged curve must stay bit-identical with no
// lost or double-counted batches.
func TestClusterSurvivesWorkerDeathMidLease(t *testing.T) {
	sc := testScenario(2000)
	want := singleProcessCurve(t, sc, 500)
	coord, srv := testCluster(t, Config{
		LeaseTTL:         time.Second,
		HeartbeatTimeout: time.Minute, // the lease TTL, not liveness, must recover the chunk
		CheckEvery:       500,
		ChunkBatches:     500,
	})

	// The doomed worker registers and grabs the first lease, then is
	// never heard from again.
	doomed := &rawClient{t: t, url: srv.URL, id: "doomed"}
	if code := doomed.register(); code != http.StatusOK {
		t.Fatalf("register: HTTP %d", code)
	}

	type run struct {
		curve *mc.Curve
		err   error
	}
	resCh := make(chan run, 1)
	go func() {
		curve, _, err := coord.UnsafetyCurve(context.Background(), sc, 1, nil)
		resCh <- run{curve, err}
	}()

	// Steal the first chunk before any healthy worker exists.
	var stolen *Lease
	deadline := time.Now().Add(5 * time.Second)
	for stolen == nil {
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never got a lease")
		}
		l, code := doomed.lease()
		if code != http.StatusOK {
			t.Fatalf("lease: HTTP %d", code)
		}
		if l != nil {
			stolen = l
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	t.Logf("doomed worker holds lease %s for chunk %s; dying", stolen.ID, stolen.Spec)

	// Healthy workers arrive and must finish everything, including the
	// stolen chunk once its lease expires.
	startWorkers(t, srv.URL, 2)

	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	assertBitIdentical(t, res.curve, want)
	if res.curve.Batches != 2000 {
		t.Fatalf("lost or double-counted batches: %d, want exactly 2000", res.curve.Batches)
	}
}

func TestClusterFallsBackToLocalWithoutWorkers(t *testing.T) {
	sc := testScenario(8000)
	want := singleProcessCurve(t, sc, 0)
	reg := telemetry.NewRegistry()
	coord, _ := testCluster(t, Config{Telemetry: reg})

	got, _, err := coord.UnsafetyCurve(context.Background(), sc, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, want)
	if v := coord.metrics.fallback.Value(); v != 1 {
		t.Fatalf("fallback counter = %d, want 1", v)
	}
}

// TestClusterRescuesJobWhenWorkersDie covers the harsher failure: the only
// worker dies mid-job and nobody replaces it. The coordinator must finish
// the remaining chunks itself.
func TestClusterRescuesJobWhenWorkersDie(t *testing.T) {
	sc := testScenario(2000)
	want := singleProcessCurve(t, sc, 500)
	coord, srv := testCluster(t, Config{
		LeaseTTL:         400 * time.Millisecond,
		HeartbeatTimeout: 400 * time.Millisecond,
		CheckEvery:       500,
		ChunkBatches:     500,
	})

	doomed := &rawClient{t: t, url: srv.URL, id: "doomed"}
	if code := doomed.register(); code != http.StatusOK {
		t.Fatalf("register: HTTP %d", code)
	}

	resCh := make(chan error, 1)
	var got *mc.Curve
	go func() {
		curve, _, err := coord.UnsafetyCurve(context.Background(), sc, 1, nil)
		got = curve
		resCh <- err
	}()

	// Take one lease and die. After HeartbeatTimeout the worker is
	// dropped, liveWorkers hits zero, and the rescue path must take over.
	for {
		l, code := doomed.lease()
		if code != http.StatusOK {
			t.Fatalf("lease: HTTP %d", code)
		}
		if l != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	select {
	case err := <-resCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rescue never finished the job")
	}
	assertBitIdentical(t, got, want)
}

// TestClusterExcludesRepeatedlyFailingWorker drives a worker that keeps
// reporting errors until the coordinator bans it, then lets a healthy
// worker finish.
func TestClusterExcludesRepeatedlyFailingWorker(t *testing.T) {
	sc := testScenario(8000)
	want := singleProcessCurve(t, sc, 0)
	coord, srv := testCluster(t, Config{
		MaxWorkerFailures: 2,
		MaxChunkAttempts:  10,
	})

	bad := &rawClient{t: t, url: srv.URL, id: "bad"}
	if code := bad.register(); code != http.StatusOK {
		t.Fatalf("register: HTTP %d", code)
	}

	resCh := make(chan error, 1)
	var got *mc.Curve
	go func() {
		curve, _, err := coord.UnsafetyCurve(context.Background(), sc, 1, nil)
		got = curve
		resCh <- err
	}()

	// Fail leases until excluded.
	fails := 0
	for fails < 2 {
		l, code := bad.lease()
		if code == http.StatusForbidden {
			break
		}
		if code != http.StatusOK {
			t.Fatalf("lease: HTTP %d", code)
		}
		if l == nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		var resp completeResponse
		bad.post(PathComplete, completeRequest{WorkerID: bad.id, LeaseID: l.ID, Error: "synthetic failure"}, &resp)
		fails++
	}
	// The ban must now be visible on both lease and register.
	if _, code := bad.lease(); code != http.StatusForbidden {
		t.Fatalf("excluded worker lease: HTTP %d, want 403", code)
	}
	if code := bad.register(); code != http.StatusForbidden {
		t.Fatalf("excluded worker re-register: HTTP %d, want 403", code)
	}
	st := coord.Status()
	if st.WorkersExcluded != 1 {
		t.Fatalf("WorkersExcluded = %d, want 1", st.WorkersExcluded)
	}

	startWorkers(t, srv.URL, 1)
	if err := <-resCh; err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, want)
}

// TestClusterRejectsStaleCompletion pins the exactly-once guarantee at the
// wire level: a completion for an expired lease is answered with
// stale=true and folds nothing.
func TestClusterRejectsStaleCompletion(t *testing.T) {
	sc := testScenario(2000)
	want := singleProcessCurve(t, sc, 500)
	coord, srv := testCluster(t, Config{
		LeaseTTL:         time.Second,
		HeartbeatTimeout: time.Minute,
		CheckEvery:       500,
		ChunkBatches:     500,
	})

	slow := &rawClient{t: t, url: srv.URL, id: "slow"}
	if code := slow.register(); code != http.StatusOK {
		t.Fatalf("register: HTTP %d", code)
	}

	resCh := make(chan error, 1)
	var got *mc.Curve
	go func() {
		curve, _, err := coord.UnsafetyCurve(context.Background(), sc, 1, nil)
		got = curve
		resCh <- err
	}()

	var l *Lease
	for l == nil {
		var code int
		l, code = slow.lease()
		if code != http.StatusOK {
			t.Fatalf("lease: HTTP %d", code)
		}
		if l == nil {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Actually simulate the chunk, but report it only after the lease
	// expired and the chunk was requeued.
	w := &Worker{Coordinator: srv.URL, ID: "slow", SimWorkers: 1}
	state, err := w.runChunk(context.Background(), l)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond) // several sweeps past the TTL

	var resp completeResponse
	if code := slow.post(PathComplete, completeRequest{WorkerID: "slow", LeaseID: l.ID, State: state}, &resp); code != http.StatusOK {
		t.Fatalf("complete: HTTP %d", code)
	}
	if resp.OK || !resp.Stale {
		t.Fatalf("stale completion answered %+v, want ok=false stale=true", resp)
	}

	startWorkers(t, srv.URL, 2)
	if err := <-resCh; err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, want)
	if got.Batches != 2000 {
		t.Fatalf("lost or double-counted batches: %d", got.Batches)
	}
}

func TestClusterStatusEndpoint(t *testing.T) {
	coord, srv := testCluster(t, Config{})
	w := &rawClient{t: t, url: srv.URL, id: "w0"}
	if code := w.register(); code != http.StatusOK {
		t.Fatalf("register: HTTP %d", code)
	}
	resp, err := http.Get(srv.URL + PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.WorkersRegistered != 1 || st.WorkersLive != 1 {
		t.Fatalf("status %+v, want one live worker", st)
	}
	_ = coord
}

func TestDurationJSONRoundTrip(t *testing.T) {
	for _, d := range []duration{0, duration(250 * time.Millisecond), duration(2 * time.Minute)} {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var got duration
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if got != d {
			t.Fatalf("round trip %s: got %v", b, time.Duration(got))
		}
	}
	var got duration
	if err := json.Unmarshal([]byte("1500000000"), &got); err != nil {
		t.Fatal(err)
	}
	if time.Duration(got) != 1500*time.Millisecond {
		t.Fatalf("bare nanoseconds: %v", time.Duration(got))
	}
}
