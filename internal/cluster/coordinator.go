package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"ahs/internal/config"
	"ahs/internal/core"
	"ahs/internal/mc"
	"ahs/internal/obs"
	"ahs/internal/telemetry"
)

// Config tunes the coordinator's robustness envelope. The zero value is
// production-ready; tests shrink the intervals.
type Config struct {
	// LeaseTTL is how long a worker holds a chunk before the coordinator
	// requeues it (default 2m — comfortably above one chunk's runtime at
	// the default chunk size).
	LeaseTTL time.Duration
	// PollInterval is the idle poll period suggested to workers
	// (default 500ms).
	PollInterval time.Duration
	// HeartbeatTimeout is how long a worker may go silent before it is
	// probed (if it registered a health URL) and then dropped
	// (default 10s).
	HeartbeatTimeout time.Duration
	// SweepInterval is the period of the lease/liveness sweep
	// (default: a quarter of the smaller of LeaseTTL and
	// HeartbeatTimeout, with a 25ms floor).
	SweepInterval time.Duration
	// MaxWorkerFailures excludes a worker after that many consecutive
	// failures — reported errors, rejected results, or lease expiries
	// (default 3). Exclusion is sticky: the ID is banned until the
	// coordinator restarts.
	MaxWorkerFailures int
	// MaxChunkAttempts fails the whole job once a single chunk has been
	// requeued that many times (default 5) — at that point the error is
	// almost certainly deterministic, so retrying elsewhere cannot help.
	MaxChunkAttempts int
	// ChunkBatches is the lease granularity in batches, rounded up to
	// whole accumulation rounds (default: four rounds per chunk).
	ChunkBatches uint64
	// CheckEvery overrides the accumulation round size of every job
	// (0 = the mc default of 2000). The round size is part of the
	// bit-reproducibility contract: a cluster result equals the
	// single-process result for the same scenario and the same
	// CheckEvery.
	CheckEvery uint64
	// Journal, when non-nil, makes the coordinator crash-safe: every job
	// submission, merged chunk and terminal outcome is fsync'd to the
	// journal before it takes effect, and New replays the journal to
	// rebuild in-flight jobs after a crash (see journal.go). Restored
	// jobs resume as soon as a caller re-submits the same scenario
	// (UnsafetyCurve adopts them by scenario hash); until then workers
	// keep making progress on them.
	Journal *Journal
	// HasResult, when non-nil, reports whether a scenario hash already has
	// a durable result elsewhere (cmd/ahs-serve wires the persistent
	// result store's index here). Journal-restored jobs whose hash it
	// claims are dropped at startup instead of re-simulated: any
	// re-submission is served from the store before it reaches the
	// cluster, so finishing the journaled remainder would burn worker
	// time on a curve nobody will read.
	HasResult func(hash string) bool
	// Telemetry, when non-nil, receives the ahs_cluster_* families.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records a span per job, lease and merge, all
	// parented under the submitting request's trace (carried in through
	// UnsafetyCurve's context and out to workers via Lease.TraceParent).
	Tracer *obs.Tracer
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 2 * time.Minute
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 10 * time.Second
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.LeaseTTL / 4
		if c.HeartbeatTimeout < c.LeaseTTL {
			c.SweepInterval = c.HeartbeatTimeout / 4
		}
		if c.SweepInterval < 25*time.Millisecond {
			c.SweepInterval = 25 * time.Millisecond
		}
	}
	if c.MaxWorkerFailures <= 0 {
		c.MaxWorkerFailures = 3
	}
	if c.MaxChunkAttempts <= 0 {
		c.MaxChunkAttempts = 5
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Coordinator shards evaluation jobs into chunk leases for remote workers
// and merges their sufficient statistics into bit-exact curves. It is safe
// for concurrent use; one coordinator serves many concurrent jobs and
// workers. Create with New, mount Handler on a server, Close when done.
type Coordinator struct {
	cfg     Config
	metrics *metrics

	mu        sync.Mutex
	workers   map[string]*workerState
	excluded  map[string]bool
	jobs      map[uint64]*clusterJob
	jobIDs    []uint64            // insertion-ordered keys of jobs, for FIFO leasing
	recovered map[string][]uint64 // scenario hash → journal-restored jobs awaiting adoption
	leases    map[string]*lease
	jobSeq    uint64
	leaseSeq  uint64
	draining  bool
	closed    bool

	stop chan struct{}
	done sync.WaitGroup
}

// Sentinel terminations that must NOT be journaled as the job's outcome:
// the job itself is fine, the coordinator is going away, and a journaled
// job will resume after restart.
var (
	errCoordinatorClosed   = errors.New("cluster: coordinator closed")
	errCoordinatorDraining = errors.New("cluster: coordinator draining (journaled jobs resume after restart)")
)

type workerState struct {
	id        string
	healthURL string
	lastSeen  time.Time
	fails     int             // consecutive failures
	leases    map[string]bool // lease IDs held
}

type lease struct {
	id       string
	job      *clusterJob
	spec     mc.ChunkSpec
	worker   string
	deadline time.Time
	// span covers handout → completion/expiry; ended by
	// releaseLeaseLocked, so outcome errors must be recorded first.
	span *obs.Span
}

type clusterJob struct {
	id       uint64
	scenario *config.Scenario
	hash     string // canonical scenario hash, the adoption key
	bias     float64
	// trace parents lease and merge spans; span (when the submitting
	// caller is attached) receives requeue/rescue/adoption events. A
	// journal-restored job carries the original submit's trace until a
	// caller adopts it.
	trace    obs.SpanContext
	span     *obs.Span
	job      mc.Job // context-free copy for merging and local rescue
	merger   *mc.Merger
	pending  []mc.ChunkSpec
	leased   int
	attempts map[uint64]int // chunk start → delivery attempts
	progress func(done, max uint64)
	err      error
	finished bool
	done     chan struct{}
}

// New starts a coordinator and its background lease/liveness sweeper.
// When cfg.Journal is set, New first replays the journal and rebuilds
// every job it describes: merged chunks are folded back into a fresh
// merger, unmerged chunks are requeued for leasing, and jobs whose merge
// is already complete are finished. Restored jobs are handed back to their
// callers when UnsafetyCurve is next invoked with the same scenario.
func New(cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:       cfg.withDefaults(),
		workers:   make(map[string]*workerState),
		excluded:  make(map[string]bool),
		jobs:      make(map[uint64]*clusterJob),
		recovered: make(map[string][]uint64),
		leases:    make(map[string]*lease),
		stop:      make(chan struct{}),
	}
	c.metrics = newMetrics(c.cfg.Telemetry, c)
	if c.cfg.Journal != nil {
		c.restore()
	}
	c.done.Add(1)
	go c.sweeper()
	return c
}

// Close stops the sweeper and fails every active job. Journaled jobs are
// not marked failed in the journal — they resume after the next start.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, j := range c.jobs {
		c.finishJobLocked(j, errCoordinatorClosed)
	}
	c.mu.Unlock()
	close(c.stop)
	c.done.Wait()
}

// Drain prepares for a graceful restart: stop handing out leases, fail
// in-flight callers with a draining error (their jobs stay journaled and
// resume after restart), and sync the journal. Workers keep getting empty
// lease responses, so they idle rather than erroring. Without a journal,
// Drain still stops leasing but job state is lost on exit.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	c.draining = true
	for _, j := range c.jobs {
		c.finishJobLocked(j, errCoordinatorDraining)
	}
	c.mu.Unlock()
	if c.cfg.Journal != nil {
		if err := c.cfg.Journal.Sync(); err != nil {
			c.cfg.Logf("cluster: journal sync on drain: %v", err)
		}
	}
	c.cfg.Logf("cluster: draining; leasing stopped, journal synced")
}

// Status returns the operational snapshot served at PathStatus.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	st := Status{
		WorkersRegistered: len(c.workers),
		WorkersExcluded:   len(c.excluded),
		ActiveJobs:        len(c.jobs),
		LeasedChunks:      len(c.leases),
		Draining:          c.draining,
	}
	for _, ids := range c.recovered {
		st.RecoveredJobs += len(ids)
	}
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.cfg.HeartbeatTimeout {
			st.WorkersLive++
		}
	}
	for _, j := range c.jobs {
		st.QueuedChunks += len(j.pending)
	}
	return st
}

// UnsafetyCurve evaluates the scenario across the cluster and returns the
// merged curve plus the importance-sampling bias that was applied (for
// result reporting). The curve is bit-identical to single-process
// core.AHS.UnsafetyCurve for the same scenario. localWorkers bounds the
// simulation parallelism of any locally executed batches (fallback and
// rescue); progress, when non-nil, receives (batchesDone, maxBatches) as
// chunks fold.
//
// With no live workers registered the job simply runs locally. If every
// worker dies mid-job, the coordinator rescues the remaining chunks itself,
// so a job accepted is a job finished (or cancelled via ctx).
func (c *Coordinator) UnsafetyCurve(ctx context.Context, sc *config.Scenario, localWorkers int, progress func(done, max uint64)) (*mc.Curve, float64, error) {
	sc = sc.Canonical()
	hash, err := sc.Hash()
	if err != nil {
		return nil, 0, err
	}
	// The job span is a child of the submitting request's trace (threaded
	// through the service manager); its context parents every lease and
	// merge span of this job.
	ctx, span := obs.Start(ctx, "cluster.job", obs.String("scenario", hash))
	defer span.End()

	// Adoption: a journal-restored job for the same scenario is resumed
	// (or, if workers already finished it, returned immediately) instead
	// of starting the evaluation over.
	c.mu.Lock()
	if ids := c.recovered[hash]; len(ids) > 0 {
		id := ids[0]
		if len(ids) == 1 {
			delete(c.recovered, hash)
		} else {
			c.recovered[hash] = ids[1:]
		}
		j := c.jobs[id]
		j.progress = progress
		// The adopter's live trace takes over: chunks merged before
		// adoption stay on the journaled trace, everything from here
		// reports under the new one, linked by the adoption event.
		span.Event("cluster.adopted",
			obs.String("job", fmt.Sprintf("%d", j.id)),
			obs.String("journal-trace", traceparentOf(j.trace)))
		j.trace = span.Context()
		j.span = span
		c.mu.Unlock()
		c.cfg.Logf("cluster: job %d for %s adopted from journal (%d/%d batches already merged)",
			j.id, shortHash(sc), j.merger.Done(), j.merger.Target())
		curve, b, err := c.await(ctx, j)
		span.RecordError(err)
		return curve, b, err
	}
	c.mu.Unlock()

	p, err := sc.Params()
	if err != nil {
		return nil, 0, err
	}
	sys, err := core.Build(p)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: build model: %w", err)
	}
	opts := sc.EvalOptions(sys)
	opts.Workers = localWorkers
	opts.CheckEvery = c.cfg.CheckEvery
	bias := opts.FailureBias
	if bias < 1 {
		bias = 1
	}
	job, err := sys.UnsafetyJob(opts)
	if err != nil {
		return nil, 0, err
	}

	// Fast path: with no live workers and no journal, skip the chunk
	// machinery entirely. A journaled coordinator always goes through
	// chunks, so every merged round is durable and a crash mid-job can
	// resume instead of restarting from batch zero.
	if c.cfg.Journal == nil && c.liveWorkers() == 0 {
		c.metrics.localFallback()
		c.cfg.Logf("cluster: no live workers, evaluating %s locally", shortHash(sc))
		span.Event("cluster.local-fallback")
		job.Context = ctx
		job.Progress = progress
		curve, err := mc.EstimateCurve(job)
		span.RecordError(err)
		return curve, bias, err
	}

	merger, err := mc.NewMerger(job)
	if err != nil {
		return nil, 0, err
	}
	j := &clusterJob{
		scenario: sc,
		hash:     hash,
		bias:     bias,
		trace:    span.Context(),
		span:     span,
		job:      job,
		merger:   merger,
		pending:  job.Shard(c.cfg.ChunkBatches),
		attempts: make(map[uint64]int),
		progress: progress,
		done:     make(chan struct{}),
	}

	c.mu.Lock()
	if c.closed || c.draining {
		c.mu.Unlock()
		return nil, 0, errCoordinatorClosed
	}
	c.jobSeq++
	j.id = c.jobSeq
	if c.cfg.Journal != nil {
		// The submit record must be durable before the job becomes
		// leasable: a chunk record without its submit record would be
		// unreplayable.
		rec := journalRecord{
			Type:         recSubmit,
			Job:          j.id,
			Scenario:     sc,
			Hash:         hash,
			RoundSize:    job.RoundSize(),
			ChunkBatches: c.cfg.ChunkBatches,
			LocalWorkers: localWorkers,
			Trace:        traceparentOf(j.trace),
		}
		if err := c.cfg.Journal.append(rec); err != nil {
			c.mu.Unlock()
			return nil, 0, fmt.Errorf("cluster: journal submit: %w", err)
		}
	}
	c.jobs[j.id] = j
	c.jobIDs = append(c.jobIDs, j.id)
	c.mu.Unlock()
	curve, b, err := c.await(ctx, j)
	span.RecordError(err)
	return curve, b, err
}

// await blocks until the job finishes (returning its curve) or ctx is
// cancelled, locally rescuing queued chunks whenever no live workers are
// registered. On return the job is dropped from the coordinator — and from
// the journal, unless the coordinator is shutting down.
func (c *Coordinator) await(ctx context.Context, j *clusterJob) (*mc.Curve, float64, error) {
	defer c.dropJob(j)
	ticker := time.NewTicker(c.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-j.done:
			c.mu.Lock()
			err := j.err
			c.mu.Unlock()
			if err != nil {
				return nil, 0, err
			}
			curve, err := j.merger.Curve()
			return curve, j.bias, err
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		case <-ticker.C:
			// Rescue: if the workers are gone, simulate the queue
			// locally. Chunks still on (expired) leases come back
			// through the sweeper and are picked up next tick.
			if c.liveWorkers() == 0 {
				c.rescueOne(ctx, j)
			}
		}
	}
}

// restore rebuilds jobs from the journal at startup. Jobs that cannot be
// rebuilt (their scenario no longer builds — only possible if the journal
// was written by an incompatible version) are finished with the rebuild
// error rather than silently discarded.
func (c *Coordinator) restore() {
	c.jobSeq = c.cfg.Journal.maxJobID()
	for _, rj := range c.cfg.Journal.recoveredJobs() {
		if c.cfg.HasResult != nil && c.cfg.HasResult(rj.submit.Hash) {
			// The persistent store already serves this scenario; journal
			// the drop so the job stays dead across future restarts.
			if err := c.cfg.Journal.append(journalRecord{Type: recDrop, Job: rj.id}); err != nil {
				c.cfg.Logf("cluster: journal drop of store-served job %d: %v", rj.id, err)
			}
			c.cfg.Logf("cluster: dropped journaled job %d (%.12s): result already in the persistent store", rj.id, rj.submit.Hash)
			continue
		}
		j := c.rebuildJob(rj)
		c.jobs[j.id] = j
		c.jobIDs = append(c.jobIDs, j.id)
		c.recovered[j.hash] = append(c.recovered[j.hash], j.id)
		state := "resuming"
		if j.finished {
			state = "finished"
		}
		c.cfg.Logf("cluster: restored job %d (%s) from journal: %d chunks merged, %d pending, %s",
			j.id, shortHash(j.scenario), len(rj.chunks), len(j.pending), state)
	}
}

// rebuildJob reconstructs one clusterJob from its journal state: rebuild
// the model, fold the journaled chunk states into a fresh merger (their
// replay is idempotent and order-insensitive), and requeue whichever
// shards never merged.
func (c *Coordinator) rebuildJob(rj *journalJob) *clusterJob {
	j := &clusterJob{
		id:       rj.id,
		scenario: rj.submit.Scenario.Canonical(),
		hash:     rj.submit.Hash,
		attempts: make(map[uint64]int),
		done:     make(chan struct{}),
	}
	if sc, err := obs.ParseTraceParent(rj.submit.Trace); err == nil {
		// Chunks merged before adoption keep reporting under the
		// original submit's trace ID.
		j.trace = sc
	}
	fail := func(err error) *clusterJob {
		j.finished = true
		j.err = fmt.Errorf("cluster: rebuild journaled job %d: %w", rj.id, err)
		close(j.done)
		return j
	}
	p, err := j.scenario.Params()
	if err != nil {
		return fail(err)
	}
	sys, err := core.Build(p)
	if err != nil {
		return fail(err)
	}
	opts := j.scenario.EvalOptions(sys)
	opts.Workers = rj.submit.LocalWorkers
	opts.CheckEvery = rj.submit.RoundSize
	j.bias = opts.FailureBias
	if j.bias < 1 {
		j.bias = 1
	}
	job, err := sys.UnsafetyJob(opts)
	if err != nil {
		return fail(err)
	}
	merger, err := mc.NewMerger(job)
	if err != nil {
		return fail(err)
	}
	j.job = job
	j.merger = merger

	starts := make([]uint64, 0, len(rj.chunks))
	for s := range rj.chunks {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(a, b int) bool { return starts[a] < starts[b] })
	for _, s := range starts {
		state := rj.chunks[s]
		if merger.Covered(state.Spec) {
			continue
		}
		if err := merger.Add(state); err != nil {
			// A journaled state the merger rejects can only come from an
			// incompatible layout change; the chunk will simply be
			// re-simulated.
			c.cfg.Logf("cluster: journal chunk %s of job %d rejected on replay: %v", state.Spec, rj.id, err)
		}
	}
	if !merger.Complete() {
		covered := make(map[uint64]bool, len(merger.Added()))
		for _, spec := range merger.Added() {
			covered[spec.Start] = true
		}
		for _, spec := range job.Shard(rj.submit.ChunkBatches) {
			if !covered[spec.Start] {
				j.pending = append(j.pending, spec)
			}
		}
	}

	switch {
	case rj.finished && rj.finishErr != "":
		j.finished = true
		j.err = errors.New(rj.finishErr)
		j.pending = nil
		close(j.done)
	case merger.Complete():
		// All chunks were merged before the crash (the finish record may
		// or may not have made it; either way the outcome is decided).
		j.finished = true
		j.pending = nil
		close(j.done)
		if !rj.finished {
			if err := c.cfg.Journal.append(journalRecord{Type: recFinish, Job: rj.id}); err != nil {
				c.cfg.Logf("cluster: journal finish of restored job %d: %v", rj.id, err)
			}
		}
	}
	return j
}

// dropJob removes a finished or abandoned job and its leases. The drop is
// journaled — the job will not be resurrected on restart — unless the
// coordinator itself is going away, in which case the job must survive in
// the journal to resume after restart.
func (c *Coordinator) dropJob(j *clusterJob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[j.id]; !ok {
		return
	}
	if c.cfg.Journal != nil && !c.closed && !c.draining {
		if err := c.cfg.Journal.append(journalRecord{Type: recDrop, Job: j.id}); err != nil {
			c.cfg.Logf("cluster: journal drop of job %d: %v", j.id, err)
		}
	}
	delete(c.jobs, j.id)
	for i, id := range c.jobIDs {
		if id == j.id {
			c.jobIDs = append(c.jobIDs[:i], c.jobIDs[i+1:]...)
			break
		}
	}
	for id, l := range c.leases {
		if l.job == j {
			c.releaseLeaseLocked(id)
		}
	}
}

// liveWorkers counts workers seen within the heartbeat window.
func (c *Coordinator) liveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	now := time.Now()
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.cfg.HeartbeatTimeout {
			n++
		}
	}
	return n
}

// rescueOne pops one pending chunk and simulates it locally.
func (c *Coordinator) rescueOne(ctx context.Context, j *clusterJob) {
	c.mu.Lock()
	if j.finished || len(j.pending) == 0 {
		c.mu.Unlock()
		return
	}
	spec := j.pending[0]
	j.pending = j.pending[1:]
	job := j.job
	c.mu.Unlock()

	job.Context = ctx
	state, err := mc.EstimateChunk(job, spec)

	c.mu.Lock()
	defer c.mu.Unlock()
	if j.finished {
		return
	}
	if err != nil {
		c.cfg.Logf("cluster: local rescue of chunk %s failed: %v", spec, err)
		c.requeueLocked(j, spec, err)
		return
	}
	c.metrics.chunkRescued()
	j.span.Event("cluster.chunk-rescued", obs.String("chunk", spec.String()))
	c.foldLocked(j, state)
}

// sweeper periodically requeues expired leases and drops dead workers.
func (c *Coordinator) sweeper() {
	defer c.done.Done()
	ticker := time.NewTicker(c.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.sweep()
		}
	}
}

func (c *Coordinator) sweep() {
	now := time.Now()

	c.mu.Lock()
	for id, l := range c.leases {
		if now.After(l.deadline) {
			c.cfg.Logf("cluster: lease %s (chunk %s, worker %s) expired", id, l.spec, l.worker)
			c.metrics.chunkRequeued()
			l.span.RecordError(fmt.Errorf("lease expired on worker %s", l.worker))
			// Release before blaming the worker: exclusion requeues
			// everything the worker still holds, and this lease must
			// not be requeued twice.
			c.releaseLeaseLocked(id)
			c.requeueLocked(l.job, l.spec, fmt.Errorf("lease expired on worker %s", l.worker))
			c.failWorkerLocked(l.worker)
		}
	}
	// Collect quiet workers for an out-of-lock health probe.
	type probe struct{ id, url string }
	var probes []probe
	for id, w := range c.workers {
		if now.Sub(w.lastSeen) > c.cfg.HeartbeatTimeout {
			probes = append(probes, probe{id, w.healthURL})
		}
	}
	c.mu.Unlock()

	for _, p := range probes {
		if p.url != "" && probeHealth(p.url) {
			c.mu.Lock()
			if w, ok := c.workers[p.id]; ok {
				w.lastSeen = time.Now()
			}
			c.mu.Unlock()
			continue
		}
		c.mu.Lock()
		if w, ok := c.workers[p.id]; ok && time.Since(w.lastSeen) > c.cfg.HeartbeatTimeout {
			c.cfg.Logf("cluster: worker %s unreachable, dropping", p.id)
			c.dropWorkerLocked(w)
		}
		c.mu.Unlock()
	}
}

// probeHealth reports whether the worker's health endpoint answers 2xx.
func probeHealth(url string) bool {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// failWorkerLocked counts one failure against a worker and excludes it once
// it hits the limit, requeueing everything it still holds.
func (c *Coordinator) failWorkerLocked(id string) {
	w, ok := c.workers[id]
	if !ok {
		return
	}
	w.fails++
	if w.fails >= c.cfg.MaxWorkerFailures {
		c.cfg.Logf("cluster: excluding worker %s after %d consecutive failures", id, w.fails)
		c.excluded[id] = true
		c.dropWorkerLocked(w)
	}
}

// dropWorkerLocked removes a worker, requeueing its outstanding leases.
func (c *Coordinator) dropWorkerLocked(w *workerState) {
	for id := range w.leases {
		if l, ok := c.leases[id]; ok {
			c.metrics.chunkRequeued()
			l.span.RecordError(fmt.Errorf("worker %s dropped", w.id))
			c.releaseLeaseLocked(id)
			c.requeueLocked(l.job, l.spec, fmt.Errorf("worker %s dropped", w.id))
		}
	}
	delete(c.workers, w.id)
}

// releaseLeaseLocked forgets a lease on both the global and worker indexes.
func (c *Coordinator) releaseLeaseLocked(id string) {
	l, ok := c.leases[id]
	if !ok {
		return
	}
	delete(c.leases, id)
	l.job.leased--
	if w, ok := c.workers[l.worker]; ok {
		delete(w.leases, id)
	}
	l.span.End()
}

// requeueLocked puts a chunk back on its job's queue, failing the job once
// the chunk has exhausted its delivery attempts.
func (c *Coordinator) requeueLocked(j *clusterJob, spec mc.ChunkSpec, cause error) {
	if j.finished {
		return
	}
	j.attempts[spec.Start]++
	j.span.Event("cluster.requeue",
		obs.String("chunk", spec.String()),
		obs.String("attempt", fmt.Sprintf("%d", j.attempts[spec.Start])),
		obs.String("cause", cause.Error()))
	if j.attempts[spec.Start] >= c.cfg.MaxChunkAttempts {
		c.finishJobLocked(j, fmt.Errorf("cluster: chunk %s failed %d times, last: %w", spec, j.attempts[spec.Start], cause))
		return
	}
	j.pending = append(j.pending, spec)
}

// foldLocked merges one chunk state and finishes the job when complete.
// The progress callback fires after the lock is released by the caller via
// the returned closure pattern; here we call it inline since manager
// progress callbacks are lock-free.
func (c *Coordinator) foldLocked(j *clusterJob, state *mc.ChunkState) {
	start := time.Now()
	if err := j.merger.Add(state); err != nil {
		// Shape-invalid state: the chunk itself was never folded, so
		// put it back in play.
		c.cfg.Logf("cluster: rejecting chunk %s: %v", state.Spec, err)
		c.metrics.chunkFailed()
		c.requeueLocked(j, state.Spec, err)
		return
	}
	// Durability before visibility: the merged chunk is journaled before
	// it can influence the job's outcome. Should the append fail, the
	// merged state is still correct in memory; recovery would just
	// re-simulate the chunk.
	if c.cfg.Journal != nil {
		if err := c.cfg.Journal.append(journalRecord{Type: recChunk, Job: j.id, State: state}); err != nil {
			c.cfg.Logf("cluster: journal chunk %s of job %d: %v", state.Spec, j.id, err)
		}
	}
	c.metrics.chunkCompleted(time.Since(start).Seconds())
	if j.progress != nil {
		j.progress(j.merger.Done(), j.merger.Target())
	}
	if j.merger.Complete() {
		c.finishJobLocked(j, nil)
	}
}

// finishJobLocked marks a job done (err nil) or failed, journaling the
// terminal outcome. Shutdown-induced terminations (close, drain) are not
// journaled: the job itself is healthy and resumes after restart.
func (c *Coordinator) finishJobLocked(j *clusterJob, err error) {
	if j.finished {
		return
	}
	j.finished = true
	j.err = err
	j.pending = nil
	if c.cfg.Journal != nil && !errors.Is(err, errCoordinatorClosed) && !errors.Is(err, errCoordinatorDraining) {
		rec := journalRecord{Type: recFinish, Job: j.id}
		if err != nil {
			rec.Error = err.Error()
		}
		if jerr := c.cfg.Journal.append(rec); jerr != nil {
			c.cfg.Logf("cluster: journal finish of job %d: %v", j.id, jerr)
		}
	}
	close(j.done)
}

// Handler returns the coordinator's HTTP API, rooted at the PathRegister /
// PathLease / PathComplete / PathStatus routes. Mount it on the serving mux
// (the paths are absolute, so http.Handle(PathRegister, h) and a plain
// mux.Handle("/cluster/v1/", h) both work).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRegister, c.handleRegister)
	mux.HandleFunc("POST "+PathLease, c.handleLease)
	mux.HandleFunc("POST "+PathComplete, c.handleComplete)
	mux.HandleFunc("POST "+PathDeregister, c.handleDeregister)
	mux.HandleFunc("GET "+PathStatus, c.handleStatus)
	return mux
}

// handleDeregister removes a draining worker immediately instead of
// waiting a heartbeat timeout. Any leases it still holds are requeued
// (a drained worker completes its lease first, so normally none). The
// worker is not excluded and may register again later.
func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req deregisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.WorkerID == "" {
		http.Error(w, "cluster: bad deregister request", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	if ws, ok := c.workers[req.WorkerID]; ok {
		c.dropWorkerLocked(ws)
		c.cfg.Logf("cluster: worker %s deregistered", req.WorkerID)
	}
	c.mu.Unlock()
	writeJSON(w, deregisterResponse{OK: true})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.WorkerID == "" {
		http.Error(w, "cluster: bad register request", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	if c.excluded[req.WorkerID] {
		c.mu.Unlock()
		http.Error(w, "cluster: worker excluded", http.StatusForbidden)
		return
	}
	ws, ok := c.workers[req.WorkerID]
	if !ok {
		ws = &workerState{id: req.WorkerID, leases: make(map[string]bool)}
		c.workers[req.WorkerID] = ws
	}
	ws.healthURL = req.HealthURL
	ws.lastSeen = time.Now()
	c.mu.Unlock()
	c.cfg.Logf("cluster: worker %s registered", req.WorkerID)
	writeJSON(w, registerResponse{PollInterval: duration(c.cfg.PollInterval)})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.WorkerID == "" {
		http.Error(w, "cluster: bad lease request", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	if c.excluded[req.WorkerID] {
		c.mu.Unlock()
		http.Error(w, "cluster: worker excluded", http.StatusForbidden)
		return
	}
	ws, ok := c.workers[req.WorkerID]
	if !ok {
		c.mu.Unlock()
		http.Error(w, "cluster: unknown worker, register first", http.StatusNotFound)
		return
	}
	ws.lastSeen = time.Now()
	var out *Lease
	if c.draining {
		// Draining: answer "no work" so workers idle instead of picking
		// up leases the exiting coordinator could never merge.
		c.mu.Unlock()
		writeJSON(w, leaseResponse{})
		return
	}
	for _, id := range c.jobIDs { // FIFO across jobs
		j := c.jobs[id]
		if j == nil || j.finished || len(j.pending) == 0 {
			continue
		}
		spec := j.pending[0]
		j.pending = j.pending[1:]
		j.leased++
		c.leaseSeq++
		l := &lease{
			id:       fmt.Sprintf("lease-%d", c.leaseSeq),
			job:      j,
			spec:     spec,
			worker:   ws.id,
			deadline: time.Now().Add(c.cfg.LeaseTTL),
		}
		if j.trace.Valid() {
			lctx := obs.ContextWithRemote(context.Background(), c.cfg.Tracer, j.trace)
			_, l.span = obs.Start(lctx, "cluster.lease",
				obs.String("lease", l.id),
				obs.String("worker", ws.id),
				obs.String("chunk", spec.String()))
		}
		c.leases[l.id] = l
		ws.leases[l.id] = true
		out = &Lease{
			ID:          l.id,
			Scenario:    j.scenario,
			Spec:        spec,
			RoundSize:   j.job.RoundSize(),
			TTL:         duration(c.cfg.LeaseTTL),
			TraceParent: traceparentOf(l.span.Context()),
		}
		c.metrics.chunkLeased()
		break
	}
	c.mu.Unlock()
	writeJSON(w, leaseResponse{Lease: out})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.WorkerID == "" || req.LeaseID == "" {
		http.Error(w, "cluster: bad complete request", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	if ws, ok := c.workers[req.WorkerID]; ok {
		ws.lastSeen = time.Now()
	}
	l, ok := c.leases[req.LeaseID]
	if !ok || l.worker != req.WorkerID {
		// Expired, requeued, or the job already finished: the work is
		// simply discarded. Exactly-once folding hinges on this check.
		c.mu.Unlock()
		writeJSON(w, completeResponse{OK: false, Stale: true})
		return
	}
	// Record the lease outcome before release ends its span.
	var outcome error
	switch {
	case req.Error != "" || req.State == nil:
		outcome = fmt.Errorf("worker %s: %s", req.WorkerID, req.Error)
	case req.State.Spec != l.spec:
		outcome = errors.New("chunk spec mismatch")
	}
	l.span.RecordError(outcome)
	c.releaseLeaseLocked(req.LeaseID)
	j := l.job
	if req.Error != "" || req.State == nil {
		c.cfg.Logf("cluster: worker %s failed chunk %s: %s", req.WorkerID, l.spec, req.Error)
		c.metrics.chunkFailed()
		c.failWorkerLocked(req.WorkerID)
		c.requeueLocked(j, l.spec, errors.New(req.Error))
		c.mu.Unlock()
		writeJSON(w, completeResponse{OK: false})
		return
	}
	if req.State.Spec != l.spec {
		c.cfg.Logf("cluster: worker %s returned chunk %s for lease of %s", req.WorkerID, req.State.Spec, l.spec)
		c.metrics.chunkFailed()
		c.failWorkerLocked(req.WorkerID)
		c.requeueLocked(j, l.spec, errors.New("chunk spec mismatch"))
		c.mu.Unlock()
		writeJSON(w, completeResponse{OK: false})
		return
	}
	if ws, ok := c.workers[req.WorkerID]; ok {
		ws.fails = 0
	}
	// The merge span parents to the worker's chunk span (its traceparent
	// rides the completion request), falling back to the job's trace when
	// the worker doesn't propagate.
	mctx := context.Background()
	if sc, err := obs.ParseTraceParent(r.Header.Get(obs.TraceParentHeader)); err == nil {
		mctx = obs.ContextWithRemote(mctx, c.cfg.Tracer, sc)
	} else if j.trace.Valid() {
		mctx = obs.ContextWithRemote(mctx, c.cfg.Tracer, j.trace)
	}
	_, msp := obs.Start(mctx, "cluster.merge",
		obs.String("lease", req.LeaseID),
		obs.String("worker", req.WorkerID),
		obs.String("chunk", l.spec.String()))
	c.foldLocked(j, req.State)
	msp.End()
	c.mu.Unlock()
	writeJSON(w, completeResponse{OK: true})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.Status())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// traceparentOf renders a span context for the wire/journal, "" when
// invalid (untraced or unsampled).
func traceparentOf(sc obs.SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	return sc.TraceParent()
}

// shortHash renders a scenario identity for log lines.
func shortHash(sc *config.Scenario) string {
	h, err := sc.Hash()
	if err != nil || len(h) < 12 {
		return sc.Name
	}
	if sc.Name != "" {
		return sc.Name + "/" + h[:12]
	}
	return h[:12]
}
