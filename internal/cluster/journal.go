package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ahs/internal/config"
	"ahs/internal/mc"
	"ahs/internal/telemetry"
)

// The journal makes the coordinator crash-safe. Every job mutation that
// matters for recovery — submission, each merged chunk, the terminal
// outcome, and final disposal — is appended as one CRC-framed, fsync'd
// record before the mutation is considered durable. After a crash (power
// cut, kill -9, OOM) the coordinator replays the journal, rebuilds each
// job's merger from the folded prefix, requeues the chunks that never
// merged, and finishes the job with a curve bit-identical to an
// uninterrupted run: chunk simulation is deterministic, so re-simulating a
// lost chunk reproduces the exact bits the crashed process threw away.
//
// On-disk layout (inside JournalConfig.Dir):
//
//	snapshot.wal   compacted prefix: the records of every live job
//	journal.wal    append-only tail since the last compaction
//
// Both files are sequences of frames:
//
//	uint32-LE payload length | uint32-LE CRC-32C of payload | payload
//
// The payload is one JSON journalRecord. A torn write (partial frame at
// the tail) or a corrupted frame fails its CRC and cuts the replay at the
// last valid frame — records are applied completely or not at all, never
// half-applied. Compaction folds the tail into a fresh snapshot via
// write-to-temp + fsync + atomic rename, then resets the tail; replay is
// idempotent (duplicate submits and chunks are skipped), so a crash
// between those two steps at worst replays records twice, harmlessly.

// Journal file names inside the journal directory.
const (
	journalSnapshotName = "snapshot.wal"
	journalTailName     = "journal.wal"
)

// maxJournalRecord bounds one frame's payload. Chunk states are kilobytes;
// anything near this bound is corruption, not data.
const maxJournalRecord = 64 << 20

// crcTable is the Castagnoli polynomial table shared by all frames.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal record types.
const (
	recSubmit = "submit" // a job was accepted: scenario + shard layout
	recChunk  = "chunk"  // one chunk's sufficient statistics merged
	recFinish = "finish" // terminal outcome (success or permanent failure)
	recDrop   = "drop"   // job delivered or abandoned: forget it entirely
)

// journalRecord is the JSON payload of one journal frame. Exactly one of
// the type-specific field groups is populated, selected by Type.
type journalRecord struct {
	Type string `json:"type"`
	// Job identifies the job all record types refer to. IDs are assigned
	// once at submit and survive restarts.
	Job uint64 `json:"job"`

	// Submit fields: everything needed to rebuild the job byte-for-byte.
	Scenario     *config.Scenario `json:"scenario,omitempty"`
	Hash         string           `json:"hash,omitempty"`
	RoundSize    uint64           `json:"roundSize,omitempty"`
	ChunkBatches uint64           `json:"chunkBatches,omitempty"`
	LocalWorkers int              `json:"localWorkers,omitempty"`
	// Trace is the submitting trace context in W3C traceparent form, so a
	// restored job's chunks keep reporting under the original trace ID.
	Trace string `json:"trace,omitempty"`

	// Chunk field: the merged sufficient statistics.
	State *mc.ChunkState `json:"state,omitempty"`

	// Finish field: empty for success, the failure otherwise.
	Error string `json:"error,omitempty"`
}

// journalJob is the folded per-job journal state: the submit record plus
// every chunk merged so far, and the terminal outcome if one was reached.
type journalJob struct {
	id        uint64
	submit    journalRecord
	chunks    map[uint64]*mc.ChunkState // keyed by spec start
	finished  bool
	finishErr string
}

// JournalConfig configures OpenJournal. Only Dir is required.
type JournalConfig struct {
	// Dir is the journal directory, created if missing. One coordinator
	// per directory; sharing corrupts both.
	Dir string
	// CompactEvery is the number of appended records between compactions
	// (default 1024). Compaction cost is proportional to live-job state,
	// which is small, so the default favours a short replay tail.
	CompactEvery int
	// NoSync skips the per-record fsync. Only benchmarks measuring the
	// non-durability overhead should set it: a crash with NoSync loses
	// whatever the OS had not flushed.
	NoSync bool
	// Telemetry, when non-nil, receives the ahs_journal_* families.
	Telemetry *telemetry.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Journal is the coordinator's crash-recovery log. All methods are safe
// for concurrent use. Open with OpenJournal, hand to cluster.Config.
type Journal struct {
	cfg     JournalConfig
	metrics *journalMetrics

	mu       sync.Mutex
	tail     *os.File
	jobs     map[uint64]*journalJob
	replayed int // CRC-valid records recovered at open
	dropped  int // torn/corrupt frames cut at open
	appends  int // records appended since the last compaction
	closed   bool

	compactions    int       // successful compactions since open
	lastCompact    time.Time // completion time of the last successful compaction
	lastCompactErr string    // last compaction failure, cleared on success
}

// JournalStats is the journal's operational snapshot, surfaced through
// GET /healthz on cmd/ahs-serve.
type JournalStats struct {
	// Dir is the journal directory.
	Dir string `json:"dir"`
	// LiveJobs counts jobs the journal tracks (submitted, not dropped).
	LiveJobs int `json:"liveJobs"`
	// Compactions counts successful snapshot compactions since open.
	Compactions int `json:"compactions"`
	// LastCompaction is the RFC3339 completion time of the most recent
	// successful compaction; empty if none has run yet.
	LastCompaction string `json:"lastCompaction,omitempty"`
	// LastCompactionError is the most recent compaction failure; empty
	// when the last attempt succeeded (or none has run).
	LastCompactionError string `json:"lastCompactionError,omitempty"`
}

// Stats reports the journal's directory and compaction status.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JournalStats{
		Dir:                 j.cfg.Dir,
		LiveJobs:            len(j.jobs),
		Compactions:         j.compactions,
		LastCompactionError: j.lastCompactErr,
	}
	if !j.lastCompact.IsZero() {
		st.LastCompaction = j.lastCompact.UTC().Format(time.RFC3339Nano)
	}
	return st
}

// OpenJournal opens (or creates) the journal directory, replays any
// existing snapshot and tail — cutting torn or corrupt frames at the last
// valid record — and positions the tail file for appending.
func OpenJournal(cfg JournalConfig) (*Journal, error) {
	if cfg.Dir == "" {
		return nil, errors.New("cluster: journal needs a directory")
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 1024
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: journal dir: %w", err)
	}
	j := &Journal{
		cfg:  cfg,
		jobs: make(map[uint64]*journalJob),
	}
	j.metrics = newJournalMetrics(cfg.Telemetry, j)

	// Replay snapshot first (the compacted prefix), then the tail.
	if err := j.replayFile(filepath.Join(cfg.Dir, journalSnapshotName), false); err != nil {
		return nil, err
	}
	tailPath := filepath.Join(cfg.Dir, journalTailName)
	if err := j.replayFile(tailPath, true); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(tailPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: open journal tail: %w", err)
	}
	j.tail = f
	if j.replayed > 0 || j.dropped > 0 {
		cfg.Logf("cluster: journal %s replayed %d records (%d torn/corrupt dropped), %d live jobs",
			cfg.Dir, j.replayed, j.dropped, len(j.liveJobsLocked()))
	}
	return j, nil
}

// replayFile folds one journal file into the in-memory state. When
// truncate is set, the file is cut back to its last CRC-valid frame so new
// appends never follow garbage.
func (j *Journal) replayFile(path string, truncate bool) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cluster: read journal %s: %w", path, err)
	}
	valid, records, dropped := scanJournal(data)
	for _, rec := range records {
		j.fold(rec)
	}
	j.replayed += len(records)
	j.dropped += dropped
	j.metrics.replay(len(records), dropped)
	if truncate && valid < int64(len(data)) {
		j.cfg.Logf("cluster: journal %s: dropping %d torn/corrupt trailing bytes", path, int64(len(data))-valid)
		if err := os.Truncate(path, valid); err != nil {
			return fmt.Errorf("cluster: truncate journal %s: %w", path, err)
		}
	}
	return nil
}

// scanJournal walks framed records from data, returning the byte length of
// the valid prefix, the decoded records, and the count of frames dropped
// for CRC/JSON corruption. Scanning stops at the first torn or CRC-invalid
// frame: everything after it is unreachable (frame boundaries are lost).
func scanJournal(data []byte) (valid int64, records []journalRecord, dropped int) {
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < 8 {
			return off, records, dropped
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxJournalRecord || int64(n) > int64(len(rest)-8) {
			return off, records, dropped
		}
		payload := rest[8 : 8+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return off, records, dropped
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil || !rec.wellFormed() {
			// CRC-valid but semantically broken: skip the frame, keep
			// scanning — the framing is still intact past it.
			dropped++
		} else {
			records = append(records, rec)
		}
		off += 8 + int64(n)
		valid = off
	}
}

// wellFormed checks the per-type field invariants a writer maintains, so
// replay never builds jobs from half-described records.
func (r *journalRecord) wellFormed() bool {
	switch r.Type {
	case recSubmit:
		return r.Job != 0 && r.Scenario != nil && r.Hash != "" && r.RoundSize > 0
	case recChunk:
		return r.Job != 0 && r.State != nil && r.State.Spec.Count > 0
	case recFinish, recDrop:
		return r.Job != 0
	default:
		return false
	}
}

// fold applies one record to the in-memory job state. Folding is
// idempotent: duplicate submits, chunks, finishes and drops (possible
// after a crash between compaction steps) change nothing.
func (j *Journal) fold(rec journalRecord) {
	switch rec.Type {
	case recSubmit:
		if _, ok := j.jobs[rec.Job]; !ok {
			j.jobs[rec.Job] = &journalJob{
				id:     rec.Job,
				submit: rec,
				chunks: make(map[uint64]*mc.ChunkState),
			}
		}
	case recChunk:
		if job, ok := j.jobs[rec.Job]; ok {
			if _, dup := job.chunks[rec.State.Spec.Start]; !dup {
				job.chunks[rec.State.Spec.Start] = rec.State
			}
		}
	case recFinish:
		if job, ok := j.jobs[rec.Job]; ok {
			job.finished = true
			job.finishErr = rec.Error
		}
	case recDrop:
		delete(j.jobs, rec.Job)
	}
}

// frameRecord encodes one record as a CRC frame ready to write.
func frameRecord(rec journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode journal record: %w", err)
	}
	if len(payload) > maxJournalRecord {
		return nil, fmt.Errorf("cluster: journal record of %d bytes exceeds frame limit", len(payload))
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)
	return frame, nil
}

// append frames, writes and (unless NoSync) fsyncs one record, folds it
// into the in-memory state, and compacts when the tail has grown past
// CompactEvery records. The record is durable when append returns.
func (j *Journal) append(rec journalRecord) error {
	frame, err := frameRecord(rec)
	if err != nil {
		return err
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("cluster: journal closed")
	}
	if _, err := j.tail.Write(frame); err != nil {
		return fmt.Errorf("cluster: journal write: %w", err)
	}
	if !j.cfg.NoSync {
		if err := j.tail.Sync(); err != nil {
			return fmt.Errorf("cluster: journal fsync: %w", err)
		}
		j.metrics.fsynced()
	}
	j.fold(rec)
	j.metrics.appended(len(frame))
	j.appends++
	if j.appends >= j.cfg.CompactEvery {
		if err := j.compactLocked(); err != nil {
			// A failed compaction loses nothing: the snapshot rename is
			// atomic and the tail keeps growing. Log and carry on.
			j.lastCompactErr = err.Error()
			j.cfg.Logf("cluster: journal compaction failed: %v", err)
		}
	}
	return nil
}

// compactLocked folds the current live-job state into a fresh snapshot and
// resets the tail. Crash-safe ordering: the new snapshot is complete and
// durably renamed before the tail is reset, and replay is idempotent, so a
// crash anywhere in between at worst replays the old tail on top of the
// new snapshot.
func (j *Journal) compactLocked() error {
	snapPath := filepath.Join(j.cfg.Dir, journalSnapshotName)
	tmpPath := snapPath + ".tmp"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath)
	for _, job := range j.liveJobsLocked() {
		records := []journalRecord{job.submit}
		starts := make([]uint64, 0, len(job.chunks))
		for s := range job.chunks {
			starts = append(starts, s)
		}
		sort.Slice(starts, func(a, b int) bool { return starts[a] < starts[b] })
		for _, s := range starts {
			records = append(records, journalRecord{Type: recChunk, Job: job.id, State: job.chunks[s]})
		}
		if job.finished {
			records = append(records, journalRecord{Type: recFinish, Job: job.id, Error: job.finishErr})
		}
		for _, rec := range records {
			frame, err := frameRecord(rec)
			if err != nil {
				tmp.Close()
				return err
			}
			if _, err := tmp.Write(frame); err != nil {
				tmp.Close()
				return err
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, snapPath); err != nil {
		return err
	}
	syncDir(j.cfg.Dir)

	// Reset the tail: everything it held is now in the snapshot.
	tailPath := filepath.Join(j.cfg.Dir, journalTailName)
	if err := j.tail.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(tailPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: reset journal tail: %w", err)
	}
	j.tail = f
	j.appends = 0
	j.compactions++
	j.lastCompact = time.Now()
	j.lastCompactErr = ""
	j.metrics.compacted()
	return nil
}

// liveJobsLocked returns the journal's jobs in id order.
func (j *Journal) liveJobsLocked() []*journalJob {
	jobs := make([]*journalJob, 0, len(j.jobs))
	for _, job := range j.jobs {
		jobs = append(jobs, job)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].id < jobs[b].id })
	return jobs
}

// recoveredJobs returns the folded per-job state for coordinator restore.
// The returned jobs are snapshots: callers may read them while the journal
// keeps appending. The *ChunkState values are shared but immutable once
// journaled.
func (j *Journal) recoveredJobs() []*journalJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	live := j.liveJobsLocked()
	jobs := make([]*journalJob, len(live))
	for i, job := range live {
		cp := *job
		cp.chunks = make(map[uint64]*mc.ChunkState, len(job.chunks))
		for start, st := range job.chunks {
			cp.chunks[start] = st
		}
		jobs[i] = &cp
	}
	return jobs
}

// maxJobID returns the highest job id the journal knows, so a restored
// coordinator continues the id sequence instead of reusing ids.
func (j *Journal) maxJobID() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	var max uint64
	for id := range j.jobs {
		if id > max {
			max = id
		}
	}
	return max
}

// Sync flushes the tail to stable storage. Appends already sync
// individually (unless NoSync); Sync exists for drain paths that want an
// explicit barrier before exiting.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	if err := j.tail.Sync(); err != nil {
		return err
	}
	j.metrics.fsynced()
	return nil
}

// Close syncs and closes the journal. The coordinator must be closed (or
// draining) first; appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.tail.Sync(); err != nil {
		j.tail.Close()
		return err
	}
	return j.tail.Close()
}

// syncDir fsyncs a directory so a just-renamed file durably appears in it.
// Best-effort: some filesystems refuse directory fsync, and the rename is
// already atomic.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// journalMetrics holds the ahs_journal_* families; nil (no registry)
// disables recording.
type journalMetrics struct {
	records     *telemetry.Counter
	bytes       *telemetry.Counter
	fsyncs      *telemetry.Counter
	compactions *telemetry.Counter
	replayedRec *telemetry.Counter
	droppedRec  *telemetry.Counter
}

func newJournalMetrics(reg *telemetry.Registry, j *Journal) *journalMetrics {
	if reg == nil {
		return nil
	}
	m := &journalMetrics{
		records: reg.Counter(telemetry.Opts{
			Name: "ahs_journal_records_total",
			Help: "Records appended to the job journal.",
		}),
		bytes: reg.Counter(telemetry.Opts{
			Name: "ahs_journal_bytes_total",
			Help: "Framed bytes appended to the job journal.",
		}),
		fsyncs: reg.Counter(telemetry.Opts{
			Name: "ahs_journal_fsyncs_total",
			Help: "fsync calls issued by the job journal.",
		}),
		compactions: reg.Counter(telemetry.Opts{
			Name: "ahs_journal_compactions_total",
			Help: "Snapshot compactions of the job journal.",
		}),
		replayedRec: reg.Counter(telemetry.Opts{
			Name: "ahs_journal_replayed_records_total",
			Help: "Records recovered by journal replay at startup.",
		}),
		droppedRec: reg.Counter(telemetry.Opts{
			Name: "ahs_journal_dropped_records_total",
			Help: "Torn or corrupt journal frames dropped by replay.",
		}),
	}
	reg.GaugeFunc(telemetry.Opts{
		Name: "ahs_journal_live_jobs",
		Help: "Jobs currently tracked by the journal (not yet dropped).",
	}, func() float64 {
		j.mu.Lock()
		defer j.mu.Unlock()
		return float64(len(j.jobs))
	})
	return m
}

func (m *journalMetrics) appended(frameBytes int) {
	if m != nil {
		m.records.Inc()
		m.bytes.Add(uint64(frameBytes))
	}
}

func (m *journalMetrics) fsynced() {
	if m != nil {
		m.fsyncs.Inc()
	}
}

func (m *journalMetrics) compacted() {
	if m != nil {
		m.compactions.Inc()
	}
}

func (m *journalMetrics) replay(records, dropped int) {
	if m != nil {
		m.replayedRec.Add(uint64(records))
		m.droppedRec.Add(uint64(dropped))
	}
}
