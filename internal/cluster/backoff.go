package cluster

import (
	"time"

	"ahs/internal/rng"
)

// backoff produces capped exponential delays with full jitter, the
// AWS-style strategy that spreads retry storms: attempt n draws uniformly
// from [base, min(cap, base·2ⁿ)]. The lower bound stays at base (rather
// than zero) so a retry never fires immediately and the guarantee
// "every delay lies in [base, cap]" holds for property tests.
//
// Delays are deterministic for a given seed — the jitter comes from an
// internal/rng stream, keeping retry schedules replayable in the chaos
// harness just like simulation results.
//
// A backoff is not safe for concurrent use; each retry loop owns one.
type backoff struct {
	base, cap time.Duration
	attempt   int
	stream    *rng.Stream
}

// newBackoff returns a backoff over [base, cap] seeded with seed.
// Non-positive bounds get defaults (250ms, 8s); a cap below base is
// raised to base.
func newBackoff(base, cap time.Duration, seed uint64) *backoff {
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if cap <= 0 {
		cap = 8 * time.Second
	}
	if cap < base {
		cap = base
	}
	return &backoff{base: base, cap: cap, stream: rng.NewStream(seed)}
}

// next returns the delay for the current attempt and advances the
// attempt counter. The exponential ceiling doubles each attempt until it
// saturates at cap; the returned delay is jittered across the full
// [base, ceiling] range.
func (b *backoff) next() time.Duration {
	ceiling := b.cap
	// base << attempt with overflow saturation: past ~63 shifts (or once
	// the ceiling passes cap) the window is simply [base, cap].
	if b.attempt < 63 {
		if exp := b.base << uint(b.attempt); exp > 0 && exp < ceiling {
			ceiling = exp
		}
	}
	if b.attempt < 1<<20 { // avoid pointless unbounded growth
		b.attempt++
	}
	if ceiling <= b.base {
		return b.base
	}
	return b.base + time.Duration(b.stream.Float64()*float64(ceiling-b.base))
}

// reset returns the backoff to its first attempt (after a success).
func (b *backoff) reset() { b.attempt = 0 }
