package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// Fuzz harnesses for the two byte-level attack surfaces of the cluster
// layer: journal files read back at startup (possibly torn, truncated or
// corrupted by the crash being recovered from) and wire messages arriving
// over HTTP from arbitrary clients. The contract in both cases is the
// same: malformed input is an error (or a cut/skip), never a panic.
//
// CI runs these in regression mode (seed corpus + testdata/fuzz entries);
// `make fuzz` explores with the mutation engine.

// FuzzJournalScan: scanJournal must never panic, must report a valid
// prefix within bounds, and must be self-consistent — rescanning the valid
// prefix reproduces the exact same outcome (this is what makes startup
// truncation sound).
func FuzzJournalScan(f *testing.F) {
	good, err := frameRecord(journalRecord{Type: recFinish, Job: 1})
	if err != nil {
		f.Fatal(err)
	}
	sub, err := frameRecord(journalRecord{
		Type: recSubmit, Job: 2, Scenario: testScenario(1000).Canonical(),
		Hash: "h", RoundSize: 500, ChunkBatches: 500,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(good)
	f.Add(append(append([]byte{}, sub...), good...))
	f.Add(append(append([]byte{}, good...), 0xAA, 0xBB, 0xCC))
	corrupt := append([]byte{}, good...)
	corrupt[9] ^= 0x01
	f.Add(corrupt)
	huge := make([]byte, 16)
	huge[3] = 0xFF // declared length far beyond the buffer
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		valid, records, dropped := scanJournal(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if dropped < 0 || len(records) < 0 {
			t.Fatalf("negative counts: %d records, %d dropped", len(records), dropped)
		}
		v2, r2, d2 := scanJournal(data[:valid])
		if v2 != valid || len(r2) != len(records) || d2 != dropped {
			t.Fatalf("rescan of valid prefix diverged: (%d,%d,%d) vs (%d,%d,%d)",
				v2, len(r2), d2, valid, len(records), dropped)
		}
		for _, rec := range records {
			if !rec.wellFormed() {
				t.Fatalf("scan returned ill-formed record %+v", rec)
			}
		}
	})
}

// FuzzWireDecode: every wire message type decodes arbitrary bytes without
// panicking, and whatever decodes successfully re-encodes.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"workerId":"w1","healthUrl":"http://x/healthz"}`))
	f.Add([]byte(`{"lease":{"id":"lease-1","spec":{"Start":0,"Count":500},"roundSize":500,"ttl":"2m"}}`))
	f.Add([]byte(`{"workerId":"w1","leaseId":"lease-1","state":{"Spec":{"Start":0,"Count":500}}}`))
	f.Add([]byte(`{"pollInterval":"500ms"}`))
	f.Add([]byte(`{"pollInterval":123456}`))
	f.Add([]byte(`{"ttl":"-3h2m"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[{"workerId":1}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		targets := []any{
			&registerRequest{}, &registerResponse{},
			&leaseRequest{}, &leaseResponse{},
			&completeRequest{}, &completeResponse{},
			&deregisterRequest{}, &deregisterResponse{},
			&Lease{}, &Status{},
		}
		for _, target := range targets {
			if err := json.Unmarshal(data, target); err != nil {
				continue
			}
			if _, err := json.Marshal(target); err != nil {
				t.Fatalf("decoded %T does not re-encode: %v", target, err)
			}
		}
		var d duration
		_ = d.UnmarshalJSON(data)
	})
}

// FuzzClusterHandlers throws arbitrary bodies at every wire endpoint of a
// live coordinator. Whatever arrives, the coordinator answers with one of
// its documented statuses and keeps serving.
func FuzzClusterHandlers(f *testing.F) {
	coord := New(Config{})
	defer coord.Close()
	handler := coord.Handler()
	paths := []string{PathRegister, PathLease, PathComplete, PathDeregister}

	f.Add(byte(0), []byte(`{}`))
	f.Add(byte(0), []byte(`{"workerId":"w1"}`))
	f.Add(byte(1), []byte(`{"workerId":"w1"}`))
	f.Add(byte(2), []byte(`{"workerId":"w1","leaseId":"lease-9"}`))
	f.Add(byte(3), []byte(`{"workerId":"w1"}`))
	f.Add(byte(2), []byte(`{"workerId":"w1","leaseId":"lease-1","state":{"Spec":{"Start":0,"Count":18446744073709551615}}}`))
	f.Add(byte(1), []byte(`garbage`))

	allowed := map[int]bool{
		http.StatusOK: true, http.StatusBadRequest: true,
		http.StatusForbidden: true, http.StatusNotFound: true,
	}
	f.Fuzz(func(t *testing.T, which byte, body []byte) {
		path := paths[int(which)%len(paths)]
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if !allowed[rec.Code] {
			t.Fatalf("POST %s with %d-byte body answered %d, want one of 200/400/403/404", path, len(body), rec.Code)
		}
	})
}
