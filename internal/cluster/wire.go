// Package cluster distributes one Monte-Carlo unsafety evaluation across
// machines without changing its answer. A Coordinator shards an mc.Job into
// contiguous batch-range chunks (each chunk a stripe of RNG streams of the
// job seed), leases them to registered workers over a stdlib HTTP+JSON
// protocol, and folds the returned sufficient statistics (per-round Welford
// snapshots plus catastrophic-cause counters) through mc.Merger, so the
// merged curve is bit-identical to single-process mc.EstimateCurve for the
// same scenario — regardless of worker count, chunk arrival order, or
// mid-lease worker failure.
//
// Robustness envelope: leases carry deadlines and expire back onto the
// queue; workers that fail repeatedly are excluded; optional health URLs are
// probed when a worker goes quiet; a coordinator with no live workers falls
// back to local execution, and one whose workers all die mid-job rescues the
// remaining chunks locally. Completions are validated against the currently
// outstanding lease ID, so a requeued chunk can never be double-counted.
//
// The wire protocol is versioned under /cluster/v1/ (see docs/cluster.md).
package cluster

import (
	"strconv"
	"time"

	"ahs/internal/config"
	"ahs/internal/mc"
)

// Wire paths of the coordinator API, mounted by Coordinator.Handler.
const (
	PathRegister   = "/cluster/v1/register"
	PathLease      = "/cluster/v1/lease"
	PathComplete   = "/cluster/v1/complete"
	PathDeregister = "/cluster/v1/deregister"
	PathStatus     = "/cluster/v1/status"
)

// registerRequest announces a worker to the coordinator. Re-registering an
// ID refreshes its liveness; an excluded ID is refused (restart the worker
// under a fresh ID once fixed).
type registerRequest struct {
	// WorkerID is the worker's self-chosen stable identity.
	WorkerID string `json:"workerId"`
	// HealthURL, when set, lets the coordinator actively probe the worker
	// (GET, 2xx = alive) before declaring it dead.
	HealthURL string `json:"healthUrl,omitempty"`
}

type registerResponse struct {
	// PollInterval is the coordinator's suggested idle poll period.
	PollInterval duration `json:"pollInterval"`
}

// leaseRequest asks for one chunk of work.
type leaseRequest struct {
	WorkerID string `json:"workerId"`
}

// deregisterRequest announces a graceful worker departure: a draining
// worker finishes its current lease, reports it, then deregisters so the
// coordinator drops it immediately instead of after a heartbeat timeout.
type deregisterRequest struct {
	WorkerID string `json:"workerId"`
}

type deregisterResponse struct {
	OK bool `json:"ok"`
}

// Lease is one unit of distributed work: simulate the chunk of the
// scenario's job and report the sufficient statistics before the TTL runs
// out. The scenario is self-contained — the worker rebuilds the exact job
// from it — and RoundSize pins the canonical accumulation round, which must
// match the coordinator's merger for bit-identical folding.
type Lease struct {
	// ID identifies this lease; completions must echo it. A requeued
	// chunk gets a fresh ID, which is how stale completions are told
	// apart from the live attempt.
	ID string `json:"id"`
	// Scenario is the canonical evaluation scenario.
	Scenario *config.Scenario `json:"scenario"`
	// Spec is the batch range to simulate.
	Spec mc.ChunkSpec `json:"spec"`
	// RoundSize is the accumulation round size (mc.Job.CheckEvery) the
	// chunk must be estimated with.
	RoundSize uint64 `json:"roundSize"`
	// TTL is how long the lease is valid; the coordinator requeues the
	// chunk after it expires.
	TTL duration `json:"ttl"`
	// TraceParent is the W3C trace context of the coordinator-side lease
	// span; the worker parents its chunk span here so one distributed
	// trace covers submit → lease → chunk → merge. Empty when the job is
	// untraced or unsampled.
	TraceParent string `json:"traceparent,omitempty"`
}

// leaseResponse carries at most one lease; nil means no work right now.
type leaseResponse struct {
	Lease *Lease `json:"lease,omitempty"`
}

// completeRequest reports the outcome of a lease: either the chunk's
// sufficient statistics or the error that prevented them.
type completeRequest struct {
	WorkerID string `json:"workerId"`
	LeaseID  string `json:"leaseId"`
	// State is the chunk's sufficient statistics; nil when Error is set.
	State *mc.ChunkState `json:"state,omitempty"`
	// Error is the worker-side failure, if any.
	Error string `json:"error,omitempty"`
}

type completeResponse struct {
	// OK reports whether the result was folded into the job. A false OK
	// with Stale set means the lease had already expired or the job
	// finished — the worker's effort is discarded, not an error.
	OK    bool `json:"ok"`
	Stale bool `json:"stale,omitempty"`
}

// Status is the coordinator's operational snapshot, served at PathStatus
// and surfaced through the service health endpoint.
type Status struct {
	// WorkersRegistered counts workers that have registered and not been
	// dropped or excluded.
	WorkersRegistered int `json:"workersRegistered"`
	// WorkersLive counts registered workers seen within the heartbeat
	// window.
	WorkersLive int `json:"workersLive"`
	// WorkersExcluded counts workers banned for repeated failures.
	WorkersExcluded int `json:"workersExcluded"`
	// ActiveJobs counts evaluations currently fanned out.
	ActiveJobs int `json:"activeJobs"`
	// QueuedChunks counts chunks waiting for a lease across all jobs.
	QueuedChunks int `json:"queuedChunks"`
	// LeasedChunks counts chunks currently out on lease.
	LeasedChunks int `json:"leasedChunks"`
	// RecoveredJobs counts journal-restored jobs awaiting adoption by a
	// re-submitted evaluation (see docs/cluster.md, "Failure model").
	RecoveredJobs int `json:"recoveredJobs,omitempty"`
	// Draining reports that the coordinator has stopped handing out
	// leases ahead of a graceful shutdown.
	Draining bool `json:"draining,omitempty"`
}

// duration marshals a time.Duration as its string form ("1.5s"), keeping
// the JSON wire format human-readable and stdlib-only.
type duration time.Duration

func (d duration) MarshalJSON() ([]byte, error) {
	return []byte(`"` + time.Duration(d).String() + `"`), nil
}

func (d *duration) UnmarshalJSON(b []byte) error {
	if len(b) >= 2 && b[0] == '"' && b[len(b)-1] == '"' {
		v, err := time.ParseDuration(string(b[1 : len(b)-1]))
		if err != nil {
			return err
		}
		*d = duration(v)
		return nil
	}
	// Tolerate bare nanosecond numbers from hand-written clients.
	ns, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return err
	}
	*d = duration(ns)
	return nil
}
