// Package faultinject provides a deterministic, seedable fault-injection
// harness for exercising distributed robustness claims.
//
// The paper this repository reproduces is a study of how a system degrades
// under component failures; faultinject turns the same discipline on the
// evaluation stack itself. A Plan draws fault decisions — drops, delays,
// duplicated deliveries, synthesized 5xx responses, connection resets —
// from per-site internal/rng streams derived from one seed, so a failing
// chaos run is replayable from its logged seed alone. Faults are injected
// at named sites by wrapping http.RoundTripper (client side) or
// http.Handler (server side); Pauser adds a process-level pause/resume
// hook, and kill/restart of in-process workers composes naturally with
// context cancellation.
//
// Determinism contract: for a fixed seed and site the sequence of
// decisions at that site is fixed. Concurrency still interleaves *which*
// request draws which decision — the harness's assertions must therefore
// be interleaving-independent (exactly the property the cluster's
// bit-identical merge provides).
package faultinject

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"ahs/internal/obs"
	"ahs/internal/rng"
	"ahs/internal/telemetry"
)

// Kind names an injected fault, used in logs and the
// ahs_fault_injected_total metric.
type Kind string

// The fault kinds a Plan can inject.
const (
	// KindDropRequest fails the call before it reaches the server: the
	// caller sees a transport error, the server sees nothing.
	KindDropRequest Kind = "drop-request"
	// KindDropResponse delivers the request but discards the response:
	// the server acted, the caller sees a transport error —
	// indistinguishable from KindDropRequest on the client, which is
	// precisely what makes it vicious (it forces idempotent retries).
	KindDropResponse Kind = "drop-response"
	// KindDelay stalls the call for a bounded, seeded duration.
	KindDelay Kind = "delay"
	// KindDuplicate delivers the request twice back-to-back, returning
	// the second response — a retransmission with both copies arriving.
	KindDuplicate Kind = "duplicate"
	// KindServerError synthesizes a 503 without delivering the request.
	KindServerError Kind = "server-error"
	// KindReset fails the call with a connection-reset-flavoured error.
	KindReset Kind = "reset"
)

// Rates sets per-call injection probabilities for one site. Probabilities
// are evaluated as disjoint slices of one uniform draw, so their sum must
// stay ≤ 1; the remainder is the pass-through probability.
type Rates struct {
	DropRequest  float64
	DropResponse float64
	Delay        float64
	Duplicate    float64
	ServerError  float64
	Reset        float64
	// MaxDelay bounds KindDelay stalls (default 50ms).
	MaxDelay time.Duration
}

func (r Rates) total() float64 {
	return r.DropRequest + r.DropResponse + r.Delay + r.Duplicate + r.ServerError + r.Reset
}

// Config configures a Plan.
type Config struct {
	// Seed roots every per-site decision stream. Same seed, same plan.
	Seed uint64
	// Default applies to any site without an explicit entry in Sites.
	Default Rates
	// Sites overrides rates per site name (for Transport, the request's
	// URL path).
	Sites map[string]Rates
	// Telemetry, when non-nil, receives ahs_fault_injected_total.
	Telemetry *telemetry.Registry
	// Logf, when non-nil, receives one line per injected fault.
	Logf func(format string, args ...any)
}

// Plan is a deterministic fault schedule. Decisions at a given site form a
// fixed sequence derived from (seed, site); all methods are safe for
// concurrent use.
type Plan struct {
	cfg      Config
	injected *telemetry.CounterVec

	mu    sync.Mutex
	sites map[string]*siteState
	count map[string]map[Kind]uint64
}

type siteState struct {
	rates  Rates
	stream *rng.Stream
}

// decision is one resolved fault draw.
type decision struct {
	kind  Kind // "" means pass through untouched
	delay time.Duration
}

// NewPlan builds a plan from cfg.
func NewPlan(cfg Config) *Plan {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	p := &Plan{
		cfg:   cfg,
		sites: make(map[string]*siteState),
		count: make(map[string]map[Kind]uint64),
	}
	if cfg.Telemetry != nil {
		p.injected = cfg.Telemetry.CounterVec(telemetry.Opts{
			Name: "ahs_fault_injected_total",
			Help: "Faults injected by the chaos plan, by site and kind.",
		}, "site", "kind")
	}
	return p
}

// Seed returns the plan's root seed, for failure logs.
func (p *Plan) Seed() uint64 { return p.cfg.Seed }

// site returns (creating on first use) the decision state for a site. The
// stream seed mixes the plan seed with an FNV hash of the site name, so
// sites are mutually independent but individually reproducible.
func (p *Plan) site(name string) *siteState {
	if s, ok := p.sites[name]; ok {
		return s
	}
	rates, ok := p.cfg.Sites[name]
	if !ok {
		rates = p.cfg.Default
	}
	if rates.MaxDelay <= 0 {
		rates.MaxDelay = 50 * time.Millisecond
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	s := &siteState{rates: rates, stream: rng.NewSource(p.cfg.Seed).Stream(h.Sum64())}
	p.sites[name] = s
	return s
}

// Decide draws the next fault decision for a site. Exposed so harnesses
// can drive non-HTTP fault points (e.g. scheduled process kills) from the
// same replayable plan.
func (p *Plan) Decide(siteName string) (Kind, time.Duration) {
	d := p.decide(siteName)
	return d.kind, d.delay
}

func (p *Plan) decide(siteName string) decision {
	p.mu.Lock()
	s := p.site(siteName)
	u := s.stream.Float64()
	// Every draw consumes exactly two variates (decision + delay), so
	// the sequence position stays in lockstep however the draw lands.
	du := s.stream.Float64()
	p.mu.Unlock()

	r := s.rates
	delay := time.Duration(du * float64(r.MaxDelay))
	var kind Kind
	switch {
	case u < r.DropRequest:
		kind = KindDropRequest
	case u < r.DropRequest+r.DropResponse:
		kind = KindDropResponse
	case u < r.DropRequest+r.DropResponse+r.Delay:
		kind = KindDelay
	case u < r.DropRequest+r.DropResponse+r.Delay+r.Duplicate:
		kind = KindDuplicate
	case u < r.DropRequest+r.DropResponse+r.Delay+r.Duplicate+r.ServerError:
		kind = KindServerError
	case u < r.total():
		kind = KindReset
	default:
		return decision{}
	}
	p.record(siteName, kind)
	return decision{kind: kind, delay: delay}
}

// record counts one injected fault.
func (p *Plan) record(site string, kind Kind) {
	p.mu.Lock()
	m := p.count[site]
	if m == nil {
		m = make(map[Kind]uint64)
		p.count[site] = m
	}
	m[kind]++
	p.mu.Unlock()
	if p.injected != nil {
		p.injected.With(site, string(kind)).Inc() //ahsvet:ignore locklabel sites and kinds come from the fixed fault-plan vocabulary
	}
	p.cfg.Logf("faultinject: %s at %s", kind, site)
}

// Injected returns a copy of the per-site fault counts, for assertions
// that a chaos schedule actually exercised something.
func (p *Plan) Injected() map[string]map[Kind]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]map[Kind]uint64, len(p.count))
	for site, kinds := range p.count {
		m := make(map[Kind]uint64, len(kinds))
		for k, v := range kinds {
			m[k] = v
		}
		out[site] = m
	}
	return out
}

// resetError is the transport error surfaced for drops and resets. It
// reports itself as a timeout-free temporary network failure, which is how
// retrying clients classify real resets.
type resetError struct {
	site string
	kind Kind
}

func (e *resetError) Error() string {
	return fmt.Sprintf("faultinject: %s at %s: connection reset by peer", e.kind, e.site)
}

// Timeout implements net.Error.
func (e *resetError) Timeout() bool { return false }

// Temporary implements net.Error.
func (e *resetError) Temporary() bool { return true }

// transport wraps an http.RoundTripper with the plan.
type transport struct {
	plan *Plan
	next http.RoundTripper
	site func(*http.Request) string
}

// Transport wraps next (nil = http.DefaultTransport) so every outgoing
// request consults the plan, with the request's URL path as the site.
func (p *Plan) Transport(next http.RoundTripper) http.RoundTripper {
	return p.TransportWithSite(next, func(r *http.Request) string { return r.URL.Path })
}

// TransportWithSite is Transport with a custom request → site mapping
// (e.g. grouping all paths of one backend under a single site name).
func (p *Plan) TransportWithSite(next http.RoundTripper, site func(*http.Request) string) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &transport{plan: p, next: next, site: site}
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	site := t.site(req)
	d := t.plan.decide(site)
	if d.kind != "" {
		// Tag the active span (if any) so an injected fault shows up
		// inside the distributed trace of the request it sabotaged.
		obs.AddEvent(req.Context(), "fault.injected",
			obs.String("site", site), obs.String("kind", string(d.kind)))
	}
	switch d.kind {
	case KindDropRequest, KindReset:
		return nil, &resetError{site: site, kind: d.kind}
	case KindDropResponse:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &resetError{site: site, kind: d.kind}
	case KindDelay:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d.delay):
		}
		return t.next.RoundTrip(req)
	case KindDuplicate:
		// Both deliveries need the body; requests with GetBody (all
		// byte-buffer requests) can be replayed, others degrade to a
		// single delivery.
		if req.GetBody != nil {
			first := req.Clone(req.Context())
			if body, err := req.GetBody(); err == nil {
				first.Body = body
				if resp, err := t.next.RoundTrip(first); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if body2, err := req.GetBody(); err == nil {
					req.Body = body2
				}
			}
		}
		return t.next.RoundTrip(req)
	case KindServerError:
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(strings.NewReader("faultinject: synthesized 503\n")),
			Request:    req,
		}, nil
	default:
		return t.next.RoundTrip(req)
	}
}

// Handler wraps next so every request consults the plan server-side under
// the given site name ("" = the request path). Drops and resets abort the
// connection (http.ErrAbortHandler), server errors answer 503 before next
// runs, delays stall, duplicates re-invoke next twice with a replayed
// body when possible.
func (p *Plan) Handler(site string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := site
		if name == "" {
			name = r.URL.Path
		}
		d := p.decide(name)
		if d.kind != "" {
			obs.AddEvent(r.Context(), "fault.injected",
				obs.String("site", name), obs.String("kind", string(d.kind)))
		}
		switch d.kind {
		case KindDropRequest, KindReset, KindDropResponse:
			// Server-side, all three collapse to "the connection died":
			// aborting the handler resets the client's connection.
			panic(http.ErrAbortHandler)
		case KindServerError:
			http.Error(w, "faultinject: synthesized 503", http.StatusServiceUnavailable)
		case KindDelay:
			select {
			case <-r.Context().Done():
				return
			case <-time.After(d.delay):
			}
			next.ServeHTTP(w, r)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// Pauser is a process-level pause hook: while paused, every RoundTrip
// through it blocks (the wrapped process looks alive but silent — the
// condition heartbeat timeouts and health probes exist for). Resume
// unblocks all waiters. The zero value is invalid; use NewPauser.
type Pauser struct {
	next http.RoundTripper

	mu      sync.Mutex
	resumed chan struct{} // closed when running; replaced when paused
}

// NewPauser wraps next (nil = http.DefaultTransport) in a running pauser.
func NewPauser(next http.RoundTripper) *Pauser {
	if next == nil {
		next = http.DefaultTransport
	}
	running := make(chan struct{})
	close(running)
	return &Pauser{next: next, resumed: running}
}

// Pause blocks subsequent calls until Resume. Idempotent.
func (p *Pauser) Pause() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.resumed:
		p.resumed = make(chan struct{})
	default: // already paused
	}
}

// Resume unblocks paused calls. Idempotent.
func (p *Pauser) Resume() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.resumed:
	default:
		close(p.resumed)
	}
}

// RoundTrip waits out any pause, then delegates.
func (p *Pauser) RoundTrip(req *http.Request) (*http.Response, error) {
	p.mu.Lock()
	ch := p.resumed
	p.mu.Unlock()
	select {
	case <-ch:
	case <-req.Context().Done():
		return nil, req.Context().Err()
	}
	return p.next.RoundTrip(req)
}

// Rand returns an independent deterministic stream for harness decisions
// that are not tied to a site (e.g. which worker to kill next), derived
// from the same seed namespace as the plan's sites.
func Rand(seed uint64, purpose string) *rng.Stream {
	h := fnv.New64a()
	h.Write([]byte("faultinject:"))
	h.Write([]byte(purpose))
	return rng.NewSource(seed).Stream(h.Sum64())
}
