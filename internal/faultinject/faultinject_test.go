package faultinject

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ahs/internal/telemetry"
)

// TestDecideDeterministic: two plans with the same seed draw the same
// decision sequence per site, and different sites are independent.
func TestDecideDeterministic(t *testing.T) {
	mk := func() *Plan {
		return NewPlan(Config{
			Seed: 42,
			Default: Rates{
				DropRequest: 0.1, DropResponse: 0.1, Delay: 0.1,
				Duplicate: 0.1, ServerError: 0.1, Reset: 0.1,
			},
		})
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		ka, da := a.Decide("/cluster/v1/lease")
		kb, db := b.Decide("/cluster/v1/lease")
		if ka != kb || da != db {
			t.Fatalf("draw %d diverged: (%q,%v) vs (%q,%v)", i, ka, da, kb, db)
		}
	}
	// A different seed should (overwhelmingly) diverge somewhere.
	c := NewPlan(Config{Seed: 43, Default: Rates{DropRequest: 0.5}})
	diverged := false
	d := mk()
	for i := 0; i < 200; i++ {
		kc, _ := c.Decide("/x")
		kd, _ := d.Decide("/x")
		if kc != kd {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical 200-draw sequences")
	}
}

// TestDecideRates: empirical fault frequency tracks the configured rates.
func TestDecideRates(t *testing.T) {
	p := NewPlan(Config{Seed: 7, Default: Rates{DropRequest: 0.2, ServerError: 0.1}})
	const n = 20000
	counts := map[Kind]int{}
	for i := 0; i < n; i++ {
		k, _ := p.Decide("/site")
		counts[k]++
	}
	frac := func(k Kind) float64 { return float64(counts[k]) / n }
	if f := frac(KindDropRequest); f < 0.17 || f > 0.23 {
		t.Errorf("drop-request frequency %.3f, want ≈0.2", f)
	}
	if f := frac(KindServerError); f < 0.07 || f > 0.13 {
		t.Errorf("server-error frequency %.3f, want ≈0.1", f)
	}
	if f := frac(""); f < 0.65 || f > 0.75 {
		t.Errorf("pass-through frequency %.3f, want ≈0.7", f)
	}
	inj := p.Injected()
	if got := inj["/site"][KindDropRequest]; got != uint64(counts[KindDropRequest]) {
		t.Errorf("Injected() drop-request = %d, want %d", got, counts[KindDropRequest])
	}
}

// TestTransportFaults drives each fault kind through a real server via a
// per-site override so every request at a site draws the same kind.
func TestTransportFaults(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	reg := telemetry.NewRegistry()
	p := NewPlan(Config{
		Seed: 1,
		Sites: map[string]Rates{
			"/drop-req":  {DropRequest: 1},
			"/drop-resp": {DropResponse: 1},
			"/dup":       {Duplicate: 1},
			"/5xx":       {ServerError: 1},
			"/reset":     {Reset: 1},
			"/delay":     {Delay: 1, MaxDelay: 20 * time.Millisecond},
			"/clean":     {},
		},
		Telemetry: reg,
	})
	client := &http.Client{Transport: p.Transport(nil)}
	post := func(path string) (*http.Response, error) {
		return client.Post(srv.URL+path, "text/plain", strings.NewReader("x"))
	}

	hits.Store(0)
	if _, err := post("/drop-req"); err == nil {
		t.Error("drop-request: want error, got nil")
	}
	if hits.Load() != 0 {
		t.Errorf("drop-request reached the server %d times", hits.Load())
	}

	hits.Store(0)
	if _, err := post("/drop-resp"); err == nil {
		t.Error("drop-response: want error, got nil")
	}
	if hits.Load() != 1 {
		t.Errorf("drop-response server hits = %d, want 1 (delivered, response dropped)", hits.Load())
	}

	hits.Store(0)
	resp, err := post("/dup")
	if err != nil {
		t.Fatalf("duplicate: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Errorf("duplicate server hits = %d, want 2", hits.Load())
	}

	hits.Store(0)
	resp, err = post("/5xx")
	if err != nil {
		t.Fatalf("server-error: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("server-error status = %d, want 503", resp.StatusCode)
	}
	if hits.Load() != 0 {
		t.Errorf("server-error reached the server %d times", hits.Load())
	}

	if _, err := post("/reset"); err == nil {
		t.Error("reset: want error, got nil")
	} else {
		var ne net.Error
		if !errors.As(err, &ne) {
			t.Errorf("reset error %T does not implement net.Error", errors.Unwrap(err))
		}
	}

	start := time.Now()
	resp, err = post("/delay")
	if err != nil {
		t.Fatalf("delay: %v", err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("delay took %v, want bounded by MaxDelay plus request time", elapsed)
	}

	resp, err = post("/clean")
	if err != nil {
		t.Fatalf("clean site: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("clean site status = %d, want 200", resp.StatusCode)
	}

	var dump strings.Builder
	if err := reg.WriteText(&dump); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(dump.String(), "ahs_fault_injected_total{") ||
		!strings.Contains(dump.String(), `"drop-request"`) {
		t.Errorf("telemetry missing ahs_fault_injected_total for /drop-req:\n%s", dump.String())
	}
}

// TestTransportDelayHonorsContext: a delayed call aborts promptly when its
// context is cancelled mid-stall.
func TestTransportDelayHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	p := NewPlan(Config{Seed: 9, Default: Rates{Delay: 1, MaxDelay: 10 * time.Second}})
	client := &http.Client{Transport: p.Transport(nil)}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/slow", nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("want context error, got nil")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled delay still took %v", elapsed)
	}
}

// TestHandlerFaults exercises the server-side wrapper: aborted connections
// for drops, synthesized 503s, pass-through otherwise.
func TestHandlerFaults(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) })

	p := NewPlan(Config{Seed: 3, Sites: map[string]Rates{
		"/die":   {Reset: 1},
		"/5xx":   {ServerError: 1},
		"/clean": {},
	}})
	srv := httptest.NewServer(p.Handler("", inner))
	defer srv.Close()

	if _, err := http.Get(srv.URL + "/die"); err == nil {
		t.Error("aborted handler: want transport error, got nil")
	}
	resp, err := http.Get(srv.URL + "/5xx")
	if err != nil {
		t.Fatalf("5xx: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("5xx status = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/clean")
	if err != nil {
		t.Fatalf("clean: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Errorf("clean body = %q, want ok", body)
	}
}

// TestPauser: paused calls block until Resume, and respect cancellation.
func TestPauser(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) }))
	defer srv.Close()

	pauser := NewPauser(nil)
	client := &http.Client{Transport: pauser}

	// Running: calls pass.
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("running pauser: %v", err)
	}
	resp.Body.Close()

	pauser.Pause()
	pauser.Pause() // idempotent
	done := make(chan error, 1)
	go func() {
		resp, err := client.Get(srv.URL)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("paused call returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	pauser.Resume()
	pauser.Resume() // idempotent
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("resumed call: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("resumed call never completed")
	}

	// A paused call with a cancelled context returns promptly.
	pauser.Pause()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if _, err := client.Do(req); err == nil {
		t.Fatal("paused+cancelled call: want error, got nil")
	}
	pauser.Resume()
}

// TestRandDeterministic: harness streams are reproducible by (seed, purpose).
func TestRandDeterministic(t *testing.T) {
	a, b := Rand(5, "kill"), Rand(5, "kill")
	for i := 0; i < 50; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
	c := Rand(5, "pause")
	same := true
	d := Rand(5, "kill")
	for i := 0; i < 50; i++ {
		if c.Uint64() != d.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("purposes kill and pause share a stream")
	}
}
