package faultinject

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestTripwireFiresAtArmedHit(t *testing.T) {
	tw := NewTripwire()
	var fired atomic.Uint64
	tw.Arm("put.pre-sync", 3, func() { fired.Add(1) })

	for i := 1; i <= 5; i++ {
		tw.Hit("put.pre-sync")
		want := uint64(0)
		if i >= 3 {
			want = 1
		}
		if got := fired.Load(); got != want {
			t.Fatalf("after hit %d: fired %d times, want %d", i, got, want)
		}
	}
	if !tw.Fired("put.pre-sync") {
		t.Error("Fired reports false after firing")
	}
	if got := tw.Hits("put.pre-sync"); got != 5 {
		t.Errorf("Hits = %d, want 5", got)
	}
}

func TestTripwireUnarmedSitesJustCount(t *testing.T) {
	tw := NewTripwire()
	tw.Hit("compact.pre-rename")
	tw.Hit("compact.pre-rename")
	if got := tw.Hits("compact.pre-rename"); got != 2 {
		t.Errorf("Hits = %d, want 2", got)
	}
	if tw.Fired("compact.pre-rename") {
		t.Error("unarmed site reports fired")
	}
}

func TestTripwireArmZeroMeansNextHit(t *testing.T) {
	tw := NewTripwire()
	var fired bool
	tw.Arm("s", 0, func() { fired = true })
	tw.Hit("s")
	if !fired {
		t.Error("at=0 did not fire on the first hit")
	}
}

// TestTripwireRearmCountsFromFirstHit: hit counts are per-site lifetime
// totals, so arming after some hits have already passed fires
// immediately once the threshold is crossed.
func TestTripwireRearmCountsFromFirstHit(t *testing.T) {
	tw := NewTripwire()
	tw.Hit("s")
	tw.Hit("s")
	var fired bool
	tw.Arm("s", 2, func() { fired = true })
	tw.Hit("s") // lifetime hit 3 ≥ threshold 2
	if !fired {
		t.Error("re-armed tripwire ignored pre-arm hits")
	}
}

func TestTripwireFiresOnceUnderConcurrency(t *testing.T) {
	tw := NewTripwire()
	var fired atomic.Uint64
	tw.Arm("s", 50, func() { fired.Add(1) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tw.Hit("s")
			}
		}()
	}
	wg.Wait()
	if got := fired.Load(); got != 1 {
		t.Errorf("fired %d times under concurrency, want exactly 1", got)
	}
	if got := tw.Hits("s"); got != 800 {
		t.Errorf("Hits = %d, want 800", got)
	}
}

// TestPickHitDeterministicAndBounded: same (seed, purpose, max) → same
// draw; different purposes diverge; every draw is in [1, max].
func TestPickHitDeterministicAndBounded(t *testing.T) {
	a := PickHit(42, "kill-writer", 10)
	b := PickHit(42, "kill-writer", 10)
	if a != b {
		t.Fatalf("PickHit not deterministic: %d vs %d", a, b)
	}
	if a < 1 || a > 10 {
		t.Fatalf("PickHit out of [1,10]: %d", a)
	}
	if PickHit(42, "kill-writer", 1) != 1 {
		t.Error("max=1 must pin the first hit")
	}
	if PickHit(42, "kill-writer", 0) != 1 {
		t.Error("max=0 must degrade to 1")
	}
	seen := map[uint64]bool{}
	for seed := uint64(0); seed < 32; seed++ {
		seen[PickHit(seed, "kill-writer", 10)] = true
	}
	if len(seen) < 3 {
		t.Errorf("32 seeds produced only %d distinct hit counts", len(seen))
	}
}
