package faultinject

import (
	"sync"
)

// Tripwire fires a registered action the Nth time a named site is hit.
// It is the bridge between code-level fault sites (resultstore's
// Config.Hook, the claims segment's ClaimsConfig.Hook) and a seeded
// chaos schedule: the harness arms "kill the writer on its 3rd
// put.pre-sync" with the hit count drawn from a replayable stream, wires
// Hit as the hook, and the crash lands at a reproducible point in the
// middle of a durability-critical operation.
//
// A tripwire fires at most once per Arm; hits keep counting afterwards
// (Hits is useful for asserting a schedule actually exercised its site).
// All methods are safe for concurrent use. The action runs synchronously
// inside Hit — on the victim's own goroutine, at the exact instruction
// the site marks — so actions must not call back into the tripwire's
// owner in a way that deadlocks.
type Tripwire struct {
	mu    sync.Mutex
	hits  map[string]uint64
	armed map[string]*trip
}

type trip struct {
	at     uint64 // fire on the at-th hit, 1-based
	action func()
	fired  bool
}

// NewTripwire returns an empty tripwire; nothing fires until Arm.
func NewTripwire() *Tripwire {
	return &Tripwire{hits: make(map[string]uint64), armed: make(map[string]*trip)}
}

// Arm schedules action to run on the at-th Hit of site (1-based; at==1
// fires on the next hit). Re-arming a site replaces its previous
// schedule and resets only the fired latch, not the hit count — the
// at-th hit is counted from the site's first hit ever, so schedules
// drawn up front stay valid however they are armed.
func (t *Tripwire) Arm(site string, at uint64, action func()) {
	if at == 0 {
		at = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.armed[site] = &trip{at: at, action: action}
}

// Hit records one hit of site, firing its armed action when the count
// reaches the armed threshold. Designed to be used directly as a
// Config.Hook: hook = tripwire.Hit.
func (t *Tripwire) Hit(site string) {
	t.mu.Lock()
	t.hits[site]++
	n := t.hits[site]
	tr := t.armed[site]
	var action func()
	if tr != nil && !tr.fired && n >= tr.at {
		tr.fired = true
		action = tr.action
	}
	t.mu.Unlock()
	if action != nil {
		action()
	}
}

// Hits reports how many times site has been hit.
func (t *Tripwire) Hits(site string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits[site]
}

// Fired reports whether site's armed action has run.
func (t *Tripwire) Fired(site string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.armed[site]
	return tr != nil && tr.fired
}

// PickHit draws a 1-based hit count in [1, max] from the seeded stream
// for purpose — the replayable way to choose *when* a tripwire fires.
// Logged together with the seed, the same (seed, purpose, max) reproduces
// the same crash point.
func PickHit(seed uint64, purpose string, max uint64) uint64 {
	if max <= 1 {
		return 1
	}
	return 1 + uint64(Rand(seed, purpose).Intn(int(max)))
}
