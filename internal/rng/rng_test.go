package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewSource(42).Stream(7)
	b := NewSource(42).Stream(7)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: streams diverged: %d != %d", i, av, bv)
		}
	}
}

func TestStreamIndependenceByIndex(t *testing.T) {
	a := NewSource(42).Stream(0)
	b := NewSource(42).Stream(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 0 and 1 collided on %d of 1000 draws", same)
	}
}

func TestStreamIndependenceBySeed(t *testing.T) {
	a := NewSource(1).Stream(0)
	b := NewSource(2).Stream(0)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 1000 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewStream(1)
	for i := 0; i < 100000; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewStream(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestExpMeanAndPositivity(t *testing.T) {
	r := NewStream(4)
	const n = 200000
	const rate = 3.0
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exp(rate)
		if x <= 0 {
			t.Fatalf("Exp returned non-positive %v", x)
		}
		sum += x
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp mean %v too far from %v", mean, 1/rate)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewStream(1).Exp(0)
}

func TestBernoulliEdges(t *testing.T) {
	r := NewStream(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewStream(6)
	const n = 100000
	const p = 0.3
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) frequency %v", p, freq)
	}
}

func TestIntnBoundsProperty(t *testing.T) {
	r := NewStream(7)
	f := func(n uint8) bool {
		m := int(n%64) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewStream(8)
	const n = 120000
	counts := make([]int, 6)
	for i := 0; i < n; i++ {
		counts[r.Intn(6)]++
	}
	for face, c := range counts {
		freq := float64(c) / n
		if math.Abs(freq-1.0/6) > 0.01 {
			t.Fatalf("face %d frequency %v", face, freq)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewStream(1).Intn(0)
}

func TestUniformRange(t *testing.T) {
	r := NewStream(9)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v", v)
		}
	}
}

func TestChoiceWeights(t *testing.T) {
	r := NewStream(10)
	weights := []float64{1, 0, 3}
	const n = 200000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[r.Choice(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	f0 := float64(counts[0]) / n
	if math.Abs(f0-0.25) > 0.01 {
		t.Fatalf("index 0 frequency %v, want ~0.25", f0)
	}
}

func TestChoiceNegativeWeightTreatedAsZero(t *testing.T) {
	r := NewStream(11)
	weights := []float64{-5, 1}
	for i := 0; i < 1000; i++ {
		if got := r.Choice(weights); got != 1 {
			t.Fatalf("Choice picked negative-weight index %d", got)
		}
	}
}

func TestChoicePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice with zero total did not panic")
		}
	}()
	NewStream(1).Choice([]float64{0, 0})
}

func TestCloneDivergesFromOriginalOnlyByUse(t *testing.T) {
	a := NewStream(12)
	a.Uint64()
	b := a.Clone()
	if a.Uint64() != b.Uint64() {
		t.Fatal("clone did not reproduce the original sequence")
	}
	a.Uint64()
	// b is now one draw behind; advancing b once must resynchronize.
	if a.Clone().Uint64() == b.Uint64() {
		t.Fatal("clone unexpectedly synchronized")
	}
}

func TestZeroStateAvoided(t *testing.T) {
	// Probe many (seed,index) pairs; none may yield an all-zero state,
	// which would make the generator emit a constant.
	for seed := uint64(0); seed < 64; seed++ {
		src := NewSource(seed)
		for idx := uint64(0); idx < 64; idx++ {
			st := src.Stream(idx)
			if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
				t.Fatalf("zero state for seed=%d idx=%d", seed, idx)
			}
		}
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify against the 4-limb schoolbook product.
		const mask = 0xffffffff
		aLo, aHi := a&mask, a>>32
		bLo, bHi := b&mask, b>>32
		ll := aLo * bLo
		lh := aLo * bHi
		hl := aHi * bLo
		hh := aHi * bHi
		carry := (ll>>32 + lh&mask + hl&mask) >> 32
		wantHi := hh + lh>>32 + hl>>32 + carry
		wantLo := a * b
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := NewStream(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := NewStream(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(2.5)
	}
}

func TestSourceSeedAccessor(t *testing.T) {
	if NewSource(77).Seed() != 77 {
		t.Fatal("Seed accessor mismatch")
	}
}
