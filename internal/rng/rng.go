// Package rng provides deterministic, splittable pseudo-random number
// generation for Monte-Carlo simulation.
//
// The generator is xoshiro256++ seeded via splitmix64, following the
// reference construction by Blackman and Vigna. Each simulation batch runs
// on its own Stream derived from a root seed and a stream index, so results
// are reproducible regardless of scheduling and parallelism.
package rng

import "math"

// Stream is a single xoshiro256++ pseudo-random stream.
//
// A Stream is not safe for concurrent use; give each goroutine its own
// Stream (see Source.Stream).
type Stream struct {
	s [4]uint64
}

// Source derives independent Streams from one root seed.
type Source struct {
	seed uint64
}

// NewSource returns a Source rooted at seed.
func NewSource(seed uint64) *Source {
	return &Source{seed: seed}
}

// Seed returns the root seed of the source.
func (s *Source) Seed() uint64 { return s.seed }

// Stream returns the stream with the given index. Streams with distinct
// indices are statistically independent: the state is derived by running
// splitmix64 from a combination of the root seed and the index.
func (s *Source) Stream(index uint64) *Stream {
	// golden gamma offsets decorrelate (seed, index) pairs.
	x := s.seed ^ (index * 0x9e3779b97f4a7c15)
	st := &Stream{}
	for i := range st.s {
		x = splitmix64(&x)
		st.s[i] = x
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

// NewStream returns a standalone stream seeded from seed.
func NewStream(seed uint64) *Stream {
	return NewSource(seed).Stream(0)
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Float64Open returns a uniform float64 in (0, 1), never exactly zero,
// suitable as input to -log(u) style inversions.
func (r *Stream) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Exp returns an exponentially distributed value with the given rate
// (events per unit time). It panics if rate <= 0; sampling a disabled
// activity is a programming error in the simulation layer.
func (r *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp requires rate > 0")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn requires n > 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Choice returns an index in [0, len(weights)) drawn with probability
// proportional to weights[i]. Non-positive weights are treated as zero.
// It panics if the total weight is not positive.
func (r *Stream) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Choice requires positive total weight")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("rng: unreachable")
}

// Clone returns an independent copy of the stream at its current state.
func (r *Stream) Clone() *Stream {
	cp := *r
	return &cp
}
