package des

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ahs/internal/rng"
)

func drainTimes(q *Queue) []float64 {
	var out []float64
	for {
		ev := q.Pop()
		if ev == nil {
			return out
		}
		out = append(out, ev.Time)
	}
}

func TestQueueOrdersByTimeProperty(t *testing.T) {
	f := func(raw []int32) bool {
		q := NewQueue()
		times := make([]float64, len(raw))
		for i, v := range raw {
			times[i] = float64(v)
			q.Schedule(times[i], i)
		}
		got := drainTimes(q)
		sort.Float64s(times)
		if len(got) != len(times) {
			return false
		}
		for i := range got {
			if got[i] != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueueStableForEqualTimes(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 10; i++ {
		q.Schedule(1.0, i)
	}
	for i := 0; i < 10; i++ {
		ev := q.Pop()
		if ev.Payload.(int) != i {
			t.Fatalf("expected FIFO order among equal times, got %v at %d", ev.Payload, i)
		}
	}
}

func TestQueuePriorityBreaksTies(t *testing.T) {
	q := NewQueue()
	q.ScheduleWithPriority(1.0, 5, "low")
	q.ScheduleWithPriority(1.0, 1, "high")
	if got := q.Pop().Payload.(string); got != "high" {
		t.Fatalf("priority tie-break failed, got %q first", got)
	}
}

func TestQueueCancel(t *testing.T) {
	q := NewQueue()
	a := q.Schedule(1, "a")
	b := q.Schedule(2, "b")
	c := q.Schedule(3, "c")
	if !q.Cancel(b) {
		t.Fatal("cancel of queued event returned false")
	}
	if q.Cancel(b) {
		t.Fatal("double cancel returned true")
	}
	if q.Len() != 2 {
		t.Fatalf("len %d after cancel", q.Len())
	}
	if q.Pop() != a || q.Pop() != c {
		t.Fatal("wrong events remain after cancel")
	}
	if q.Cancel(nil) {
		t.Fatal("cancel(nil) returned true")
	}
}

func TestQueueCancelPoppedEvent(t *testing.T) {
	q := NewQueue()
	a := q.Schedule(1, "a")
	q.Pop()
	if q.Cancel(a) {
		t.Fatal("cancel of popped event returned true")
	}
}

func TestQueueReschedule(t *testing.T) {
	q := NewQueue()
	a := q.Schedule(10, "a")
	q.Schedule(5, "b")
	if !q.Reschedule(a, 1) {
		t.Fatal("reschedule returned false")
	}
	if got := q.Pop().Payload.(string); got != "a" {
		t.Fatalf("rescheduled event not first, got %q", got)
	}
	if q.Reschedule(a, 2) {
		t.Fatal("reschedule of dequeued event returned true")
	}
}

func TestQueueRescheduleLater(t *testing.T) {
	q := NewQueue()
	a := q.Schedule(1, "a")
	q.Schedule(5, "b")
	q.Reschedule(a, 9)
	if got := q.Pop().Payload.(string); got != "b" {
		t.Fatalf("expected b first after pushing a later, got %q", got)
	}
	if got := q.Pop().Payload.(string); got != "a" {
		t.Fatalf("expected a second, got %q", got)
	}
}

func TestQueueClear(t *testing.T) {
	q := NewQueue()
	a := q.Schedule(1, nil)
	q.Schedule(2, nil)
	q.Clear()
	if q.Len() != 0 || q.Peek() != nil || q.Pop() != nil {
		t.Fatal("queue not empty after Clear")
	}
	if q.Cancel(a) {
		t.Fatal("cancel after Clear returned true")
	}
}

func TestQueuePeekDoesNotRemove(t *testing.T) {
	q := NewQueue()
	q.Schedule(1, "x")
	if q.Peek() == nil || q.Len() != 1 {
		t.Fatal("peek removed the event")
	}
}

func TestQueueRandomChurnMaintainsHeapOrder(t *testing.T) {
	r := rng.NewStream(17)
	q := NewQueue()
	live := make(map[*Event]bool)
	for step := 0; step < 20000; step++ {
		switch {
		case q.Len() == 0 || r.Float64() < 0.55:
			ev := q.Schedule(r.Float64()*1000, step)
			live[ev] = true
		case r.Float64() < 0.5:
			// Cancel a pseudo-random live event.
			for ev := range live {
				q.Cancel(ev)
				delete(live, ev)
				break
			}
		default:
			ev := q.Pop()
			delete(live, ev)
		}
	}
	// Drain and verify sortedness.
	prev := math.Inf(-1)
	for {
		ev := q.Pop()
		if ev == nil {
			break
		}
		if ev.Time < prev {
			t.Fatalf("heap order violated: %v after %v", ev.Time, prev)
		}
		prev = ev.Time
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	if err := c.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	if c.Now() != 5 {
		t.Fatalf("now %v", c.Now())
	}
	err := c.AdvanceTo(4)
	if err == nil {
		t.Fatal("expected error advancing backwards")
	}
	if !errors.Is(err, ErrPastEvent) {
		t.Fatalf("error %v does not wrap ErrPastEvent", err)
	}
	if err := c.AdvanceTo(5); err != nil {
		t.Fatalf("advancing to the same time must succeed: %v", err)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("reset failed")
	}
}

func BenchmarkQueueScheduleAndPop(b *testing.B) {
	r := rng.NewStream(1)
	q := NewQueue()
	for i := 0; i < 1024; i++ {
		q.Schedule(r.Float64(), nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := q.Pop()
		q.Schedule(ev.Time+r.Float64(), nil)
	}
}
