// Package des provides a generic discrete-event simulation kernel: an
// indexed binary-heap event queue keyed by simulation time and a clock that
// only moves forward.
//
// The SAN executor in internal/sim uses exponential race semantics and does
// not strictly need a calendar, but the kernel is used for mixed-distribution
// activity timing, for scheduled measurement probes, and by tests that need
// an ordered event source.
package des

import (
	"errors"
	"fmt"
)

// Event is an entry in the queue. Events with equal times are dequeued in
// ascending Priority order, then in insertion order (stable).
type Event struct {
	Time     float64
	Priority int
	Payload  interface{}

	seq   uint64 // insertion order, for stable tie-breaking
	index int    // heap position; -1 when not queued
}

// Queue is an indexed min-heap of events. The zero value is not usable;
// call NewQueue.
type Queue struct {
	events []*Event
	seq    uint64
}

// NewQueue returns an empty event queue.
func NewQueue() *Queue {
	return &Queue{}
}

// Len returns the number of queued events.
func (q *Queue) Len() int { return len(q.events) }

// ErrPastEvent is returned when scheduling before the current minimum would
// violate causality as detected by the caller; the queue itself accepts any
// finite time, so this sentinel lives here for the Clock type.
var ErrPastEvent = errors.New("des: event scheduled in the past")

// Schedule inserts an event at the given time with priority 0 and returns
// it. The returned handle can be passed to Cancel.
func (q *Queue) Schedule(time float64, payload interface{}) *Event {
	return q.ScheduleWithPriority(time, 0, payload)
}

// ScheduleWithPriority inserts an event with an explicit tie-break priority
// (lower fires first among equal times).
func (q *Queue) ScheduleWithPriority(time float64, priority int, payload interface{}) *Event {
	ev := &Event{Time: time, Priority: priority, Payload: payload, seq: q.seq, index: -1}
	q.seq++
	q.push(ev)
	return ev
}

// Peek returns the earliest event without removing it, or nil when empty.
func (q *Queue) Peek() *Event {
	if len(q.events) == 0 {
		return nil
	}
	return q.events[0]
}

// Pop removes and returns the earliest event, or nil when empty.
func (q *Queue) Pop() *Event {
	if len(q.events) == 0 {
		return nil
	}
	ev := q.events[0]
	q.remove(0)
	return ev
}

// Cancel removes a previously scheduled event. It reports whether the event
// was still queued.
func (q *Queue) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 || ev.index >= len(q.events) || q.events[ev.index] != ev {
		return false
	}
	q.remove(ev.index)
	return true
}

// Reschedule moves a queued event to a new time, preserving its payload.
// It reports whether the event was still queued.
func (q *Queue) Reschedule(ev *Event, time float64) bool {
	if ev == nil || ev.index < 0 || ev.index >= len(q.events) || q.events[ev.index] != ev {
		return false
	}
	ev.Time = time
	q.fix(ev.index)
	return true
}

// Clear removes all events.
func (q *Queue) Clear() {
	for _, ev := range q.events {
		ev.index = -1
	}
	q.events = q.events[:0]
}

func (q *Queue) less(i, j int) bool {
	a, b := q.events[i], q.events[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.events[i], q.events[j] = q.events[j], q.events[i]
	q.events[i].index = i
	q.events[j].index = j
}

func (q *Queue) push(ev *Event) {
	q.events = append(q.events, ev)
	ev.index = len(q.events) - 1
	q.up(ev.index)
}

func (q *Queue) remove(i int) {
	last := len(q.events) - 1
	q.events[i].index = -1
	if i != last {
		q.events[i] = q.events[last]
		q.events[i].index = i
	}
	q.events = q.events[:last]
	if i < len(q.events) {
		q.fix(i)
	}
}

func (q *Queue) fix(i int) {
	if !q.down(i) {
		q.up(i)
	}
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) bool {
	start := i
	n := len(q.events)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			break
		}
		q.swap(i, smallest)
		i = smallest
	}
	return i > start
}

// Clock tracks simulation time and enforces monotonic advancement.
type Clock struct {
	now float64
}

// Now returns the current simulation time.
func (c *Clock) Now() float64 { return c.now }

// AdvanceTo moves the clock to t. It returns ErrPastEvent wrapped with
// context if t is earlier than the current time.
func (c *Clock) AdvanceTo(t float64) error {
	if t < c.now {
		return fmt.Errorf("advance to %v before now %v: %w", t, c.now, ErrPastEvent)
	}
	c.now = t
	return nil
}

// Reset returns the clock to zero.
func (c *Clock) Reset() { c.now = 0 }
