package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ahs/internal/cluster"
)

// startCluster wires a coordinator with one in-process worker behind an
// httptest server, returning the coordinator.
func startCluster(t *testing.T) *cluster.Coordinator {
	t.Helper()
	coord := cluster.New(cluster.Config{
		PollInterval:  10 * time.Millisecond,
		SweepInterval: 25 * time.Millisecond,
	})
	srv := httptest.NewServer(coord.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	w := &cluster.Worker{Coordinator: srv.URL, ID: "svc-w0", SimWorkers: 1}
	go func() {
		defer close(done)
		if err := w.Run(ctx); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		<-done
		srv.Close()
		coord.Close()
	})
	// Wait for the worker to register so tests exercise the distributed
	// path, not the no-worker local fallback.
	deadline := time.Now().Add(5 * time.Second)
	for coord.Status().WorkersLive == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cluster worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return coord
}

// TestClusterBackendMatchesLocalEvaluation submits the same scenario to a
// local-backend manager and a cluster-backend manager and requires
// bit-identical results — the property that makes the backends
// interchangeable behind the cache.
func TestClusterBackendMatchesLocalEvaluation(t *testing.T) {
	sc := testScenario(77)
	sc.Batches = 4000

	local, err := Evaluate(context.Background(), sc, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	coord := startCluster(t)
	m := NewManager(Config{
		Workers: 1,
		Eval:    ClusterEval(coord),
		Backend: ClusterBackend(coord),
	})
	defer m.Shutdown(context.Background())

	v, err := m.Submit(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), v.ID); err != nil {
		t.Fatal(err)
	}
	res, view, err := m.Result(v.ID)
	if err != nil {
		t.Fatalf("job %+v: %v", view, err)
	}
	if res.Batches != local.Batches || res.Converged != local.Converged {
		t.Fatalf("cluster %d/%v, local %d/%v", res.Batches, res.Converged, local.Batches, local.Converged)
	}
	for i := range local.Unsafety {
		if res.Unsafety[i] != local.Unsafety[i] {
			t.Fatalf("Unsafety[%d] = %b, want %b (not bit-identical)", i, res.Unsafety[i], local.Unsafety[i])
		}
		if res.CILo[i] != local.CILo[i] || res.CIHi[i] != local.CIHi[i] {
			t.Fatalf("interval %d differs", i)
		}
	}
	if res.ScenarioHash != local.ScenarioHash {
		t.Fatalf("hash %s, want %s", res.ScenarioHash, local.ScenarioHash)
	}
	if res.FailureBias < 1 {
		t.Fatalf("failure bias %v", res.FailureBias)
	}
}

func TestHealthzReportsBackend(t *testing.T) {
	// Local backend by default.
	srv, _ := newTestServer(t, Config{Workers: 1})
	var health struct {
		Status  string        `json:"status"`
		Backend BackendHealth `json:"backend"`
	}
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if health.Backend.Mode != "local" || !health.Backend.Ready {
		t.Fatalf("local backend health %+v", health.Backend)
	}

	// Cluster backend with one registered worker.
	coord := startCluster(t)
	srv2, _ := newTestServer(t, Config{
		Workers: 1,
		Eval:    ClusterEval(coord),
		Backend: ClusterBackend(coord),
	})
	// The worker registers asynchronously; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resp := getJSON(t, srv2.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if health.Backend.WorkersLive >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster backend health never saw the worker: %+v", health.Backend)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if health.Backend.Mode != "cluster" || !health.Backend.Ready || health.Backend.WorkersRegistered < 1 {
		t.Fatalf("cluster backend health %+v", health.Backend)
	}
}

// TestShutdownCompletesInFlightJob is the graceful-drain guarantee: a job
// already running when Shutdown starts must complete, not be dropped.
func TestShutdownCompletesInFlightJob(t *testing.T) {
	eval := newScriptedEval()
	m := NewManager(Config{Workers: 1, Eval: eval.fn})

	v, err := m.Submit(testScenario(31))
	if err != nil {
		t.Fatal(err)
	}
	eval.waitStarted(t) // the job is mid-evaluation

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- m.Shutdown(context.Background()) }()

	// Shutdown must block on the running job, not cancel it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v while a job was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(eval.release) // the evaluation finishes naturally
	if err := <-shutdownDone; err != nil {
		t.Fatal(err)
	}
	view, err := m.Job(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusDone {
		t.Fatalf("in-flight job after graceful drain: %+v, want done", view)
	}
	if _, _, err := m.Result(v.ID); err != nil {
		t.Fatalf("drained job has no result: %v", err)
	}
}
