package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"ahs/internal/config"
)

// testScenario builds a tiny valid scenario; vary seed to vary the hash.
func testScenario(seed uint64) *config.Scenario {
	return &config.Scenario{
		N:             2,
		LambdaPerHour: 0.01,
		TripHours:     []float64{0.5, 1},
		Batches:       200,
		Seed:          seed,
	}
}

// scriptedEval is a controllable fake evaluation: it announces each start
// and blocks until released or cancelled.
type scriptedEval struct {
	started  chan string
	release  chan struct{}
	invoked  atomic.Int64
	failWith error
}

func newScriptedEval() *scriptedEval {
	return &scriptedEval{
		started: make(chan string, 16),
		release: make(chan struct{}),
	}
}

func (e *scriptedEval) fn(ctx context.Context, sc *config.Scenario, workers int, progress func(done, max uint64)) (*Result, error) {
	e.invoked.Add(1)
	hash, _ := sc.Hash()
	e.started <- hash
	if progress != nil {
		progress(1, 2)
	}
	select {
	case <-e.release:
		if e.failWith != nil {
			return nil, e.failWith
		}
		if progress != nil {
			progress(2, 2)
		}
		return &Result{ScenarioHash: hash, Times: sc.TripHours, Batches: sc.Batches}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (e *scriptedEval) waitStarted(t *testing.T) string {
	t.Helper()
	select {
	case h := <-e.started:
		return h
	case <-time.After(10 * time.Second):
		t.Fatal("evaluation never started")
		return ""
	}
}

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSubmitEvaluatesThenServesFromCache(t *testing.T) {
	eval := newScriptedEval()
	close(eval.release) // never block
	m := NewManager(Config{Workers: 1, Eval: eval.fn})
	defer m.Shutdown(context.Background())

	first, err := m.Submit(testScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	view, err := m.Wait(waitCtx(t), first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusDone || view.Cached {
		t.Fatalf("first run view %+v", view)
	}
	res, _, err := m.Result(first.ID)
	if err != nil || res == nil || res.Batches != 200 {
		t.Fatalf("result %+v err %v", res, err)
	}

	second, err := m.Submit(testScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	if second.ID == first.ID {
		t.Fatal("cache hit must mint a fresh job record")
	}
	if second.Status != StatusDone || !second.Cached {
		t.Fatalf("cache hit view %+v", second)
	}
	cachedRes, _, err := m.Result(second.ID)
	if err != nil || cachedRes != res {
		t.Fatalf("cached result not shared: %p vs %p (%v)", cachedRes, res, err)
	}
	if got := eval.invoked.Load(); got != 1 {
		t.Fatalf("eval invoked %d times, want 1", got)
	}
	met := m.Metrics()
	if met.CacheHits.Value() != 1 || met.CacheMisses.Value() != 1 || met.Completed.Value() != 1 {
		t.Fatalf("metrics hits=%d misses=%d completed=%d",
			met.CacheHits.Value(), met.CacheMisses.Value(), met.Completed.Value())
	}
}

func TestSubmitDeduplicatesInFlightTwin(t *testing.T) {
	eval := newScriptedEval()
	m := NewManager(Config{Workers: 1, Eval: eval.fn})
	defer m.Shutdown(context.Background())

	a, err := m.Submit(testScenario(2))
	if err != nil {
		t.Fatal(err)
	}
	eval.waitStarted(t)
	b, err := m.Submit(testScenario(2))
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != a.ID {
		t.Fatalf("in-flight twin got a new job: %s vs %s", b.ID, a.ID)
	}
	if m.Metrics().DedupHits.Value() != 1 {
		t.Fatalf("dedupHits %d", m.Metrics().DedupHits.Value())
	}
	close(eval.release)
	if _, err := m.Wait(waitCtx(t), a.ID); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitRejectsWhenQueueFull(t *testing.T) {
	eval := newScriptedEval()
	m := NewManager(Config{Workers: 1, QueueSize: 1, Eval: eval.fn})
	defer func() {
		close(eval.release)
		m.Shutdown(context.Background())
	}()

	if _, err := m.Submit(testScenario(3)); err != nil {
		t.Fatal(err)
	}
	eval.waitStarted(t) // worker busy; next submission occupies the queue
	if _, err := m.Submit(testScenario(4)); err != nil {
		t.Fatal(err)
	}
	_, err := m.Submit(testScenario(5))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if m.Metrics().QueueRejects.Value() != 1 {
		t.Fatalf("queueRejects %d", m.Metrics().QueueRejects.Value())
	}
}

func TestCancelRunningJobStopsIt(t *testing.T) {
	eval := newScriptedEval()
	m := NewManager(Config{Workers: 1, Eval: eval.fn})
	defer m.Shutdown(context.Background())

	v, err := m.Submit(testScenario(6))
	if err != nil {
		t.Fatal(err)
	}
	eval.waitStarted(t)
	if _, err := m.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	view, err := m.Wait(waitCtx(t), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusCancelled || view.Error == "" {
		t.Fatalf("view %+v", view)
	}
	if res, _, _ := m.Result(v.ID); res != nil {
		t.Fatal("cancelled job has a result")
	}
	if m.Metrics().Cancelled.Value() != 1 {
		t.Fatalf("cancelled metric %d", m.Metrics().Cancelled.Value())
	}
}

func TestCancelQueuedJobSettlesImmediately(t *testing.T) {
	eval := newScriptedEval()
	m := NewManager(Config{Workers: 1, Eval: eval.fn})

	running, err := m.Submit(testScenario(7))
	if err != nil {
		t.Fatal(err)
	}
	eval.waitStarted(t)
	queued, err := m.Submit(testScenario(8))
	if err != nil {
		t.Fatal(err)
	}
	view, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusCancelled {
		t.Fatalf("queued job not settled on cancel: %+v", view)
	}
	close(eval.release)
	if _, err := m.Wait(waitCtx(t), running.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The worker drained the cancelled job without evaluating it.
	if got := eval.invoked.Load(); got != 1 {
		t.Fatalf("eval invoked %d times, want 1", got)
	}
}

func TestFailedJobReportsError(t *testing.T) {
	eval := newScriptedEval()
	eval.failWith = errors.New("model exploded")
	close(eval.release)
	m := NewManager(Config{Workers: 1, Eval: eval.fn})
	defer m.Shutdown(context.Background())

	v, err := m.Submit(testScenario(9))
	if err != nil {
		t.Fatal(err)
	}
	view, err := m.Wait(waitCtx(t), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusFailed || view.Error != "model exploded" {
		t.Fatalf("view %+v", view)
	}
	if m.Metrics().Failed.Value() != 1 {
		t.Fatalf("failed metric %d", m.Metrics().Failed.Value())
	}
	// A failed evaluation must not poison the cache.
	if m.CacheLen() != 0 {
		t.Fatalf("cache len %d after failure", m.CacheLen())
	}
}

func TestSubmitRejectsInvalidScenario(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown(context.Background())
	bad := testScenario(1)
	bad.N = 0 // fails core validation
	if _, err := m.Submit(bad); err == nil {
		t.Fatal("expected validation error")
	}
	if m.Metrics().CacheMisses.Value() != 0 {
		t.Fatal("invalid scenario counted as a miss")
	}
}

func TestShutdownDrainsQueuedJobs(t *testing.T) {
	eval := newScriptedEval()
	close(eval.release)
	m := NewManager(Config{Workers: 2, Eval: eval.fn})

	views := make([]JobView, 0, 4)
	for seed := uint64(10); seed < 14; seed++ {
		v, err := m.Submit(testScenario(seed))
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, v)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		view, err := m.Job(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if view.Status != StatusDone {
			t.Fatalf("job %s not drained: %+v", v.ID, view)
		}
	}
	if _, err := m.Submit(testScenario(99)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("err = %v, want ErrShuttingDown", err)
	}
}

func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	eval := newScriptedEval() // never released: job blocks until cancelled
	m := NewManager(Config{Workers: 1, Eval: eval.fn})

	v, err := m.Submit(testScenario(15))
	if err != nil {
		t.Fatal(err)
	}
	eval.waitStarted(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	view, err := m.Job(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusCancelled {
		t.Fatalf("in-flight job after forced shutdown: %+v", view)
	}
}

func TestJobTimeoutCancelsEvaluation(t *testing.T) {
	eval := newScriptedEval() // never released: only the timeout can end it
	m := NewManager(Config{Workers: 1, JobTimeout: 50 * time.Millisecond, Eval: eval.fn})
	defer m.Shutdown(context.Background())

	v, err := m.Submit(testScenario(16))
	if err != nil {
		t.Fatal(err)
	}
	view, err := m.Wait(waitCtx(t), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusCancelled {
		t.Fatalf("timed-out job %+v", view)
	}
}

func TestUnknownJobErrors(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown(context.Background())
	if _, err := m.Job("job-404"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Job err = %v", err)
	}
	if _, _, err := m.Result("job-404"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Result err = %v", err)
	}
	if _, err := m.Cancel("job-404"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Cancel err = %v", err)
	}
	if _, err := m.Wait(waitCtx(t), "job-404"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Wait err = %v", err)
	}
}

func TestFinishedJobHistoryIsPruned(t *testing.T) {
	eval := newScriptedEval()
	close(eval.release)
	m := NewManager(Config{Workers: 1, HistorySize: 2, Eval: eval.fn})
	defer m.Shutdown(context.Background())

	ids := make([]string, 0, 3)
	for seed := uint64(20); seed < 23; seed++ {
		v, err := m.Submit(testScenario(seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Wait(waitCtx(t), v.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	if _, err := m.Job(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("oldest job not pruned: %v", err)
	}
	for _, id := range ids[1:] {
		if _, err := m.Job(id); err != nil {
			t.Fatalf("recent job %s pruned: %v", id, err)
		}
	}
}

func TestProgressVisibleWhileRunning(t *testing.T) {
	eval := newScriptedEval()
	m := NewManager(Config{Workers: 1, Eval: eval.fn})
	defer func() {
		close(eval.release)
		m.Shutdown(context.Background())
	}()

	v, err := m.Submit(testScenario(24))
	if err != nil {
		t.Fatal(err)
	}
	eval.waitStarted(t)
	view, err := m.Job(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusRunning {
		t.Fatalf("status %s", view.Status)
	}
	if view.Progress.BatchesDone != 1 || view.Progress.MaxBatches != 2 {
		t.Fatalf("progress %+v", view.Progress)
	}
}

func TestManagerRunsRealEvaluation(t *testing.T) {
	// The production EvalFunc end to end on a tiny scenario: high λ so
	// unsafety is visible at 200 batches.
	m := NewManager(Config{Workers: 1})
	defer m.Shutdown(context.Background())

	v, err := m.Submit(testScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	view, err := m.Wait(waitCtx(t), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusDone {
		t.Fatalf("view %+v", view)
	}
	res, _, err := m.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 200 || len(res.Unsafety) != 2 || res.ScenarioHash != view.ScenarioHash {
		t.Fatalf("result %+v", res)
	}
	for i, s := range res.Unsafety {
		if s < 0 || s > 1 {
			t.Fatalf("unsafety[%d] = %v out of [0,1]", i, s)
		}
		if res.CILo[i] > s || s > res.CIHi[i] {
			t.Fatalf("interval [%v,%v] does not cover %v", res.CILo[i], res.CIHi[i], s)
		}
	}
	if view.Progress.BatchesDone != 200 {
		t.Fatalf("final progress %+v", view.Progress)
	}
}

// TestCacheHitRelabelsResultPerSubmitter pins the duplicate-scenario
// contract across differently named submissions: the cache is keyed by the
// canonical hash, which excludes the cosmetic name, so a sweep point and a
// direct submission of the same scenario share one cache entry — but each
// submitter must see the result under its own scenario name, and the shared
// entry itself must never be renamed in place.
func TestCacheHitRelabelsResultPerSubmitter(t *testing.T) {
	eval := newScriptedEval()
	close(eval.release) // never block
	m := NewManager(Config{Workers: 1, Eval: eval.fn})
	defer m.Shutdown(context.Background())

	first := testScenario(5)
	first.Name = "alpha"
	fv, err := m.Submit(first)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(waitCtx(t), fv.ID); err != nil {
		t.Fatal(err)
	}
	firstRes, _, err := m.Result(fv.ID)
	if err != nil {
		t.Fatal(err)
	}

	second := testScenario(5)
	second.Name = "beta"
	sv, err := m.Submit(second)
	if err != nil {
		t.Fatal(err)
	}
	if !sv.Cached {
		t.Fatalf("same canonical scenario missed the cache: %+v", sv)
	}
	secondRes, _, err := m.Result(sv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if secondRes.Name != "beta" {
		t.Fatalf("cached result served under name %q, want the submitter's %q", secondRes.Name, "beta")
	}
	if firstRes.Name != "" {
		t.Fatalf("shared cache entry was renamed in place to %q", firstRes.Name)
	}
	// Only the label differs; the curve is the shared entry's, evaluated once.
	if secondRes.ScenarioHash != firstRes.ScenarioHash || secondRes.Batches != firstRes.Batches {
		t.Fatalf("relabeled copy diverged: %+v vs %+v", secondRes, firstRes)
	}
	if got := eval.invoked.Load(); got != 1 {
		t.Fatalf("eval invoked %d times, want 1", got)
	}
}
