package service

import (
	"context"
	"sync"

	"ahs/internal/telemetry"
)

// DefaultTenant is the tenant jobs are attributed to when the submitter
// names none (no X-AHS-Tenant header, no Config.DefaultTenant override).
const DefaultTenant = "default"

// maxTenantLabels caps the distinct tenant values exported as metric
// labels. X-AHS-Tenant is client-controlled, so without a cap a hostile or
// misconfigured client could mint unbounded label cardinality; tenants
// past the cap share the overflow label below. Scheduling is NOT capped —
// every tenant gets its own fair-share queue regardless.
const maxTenantLabels = 64

// tenantOverflowLabel aggregates tenants past maxTenantLabels.
const tenantOverflowLabel = "_other"

// tenantKey carries the tenant identity through a context.
type tenantKey struct{}

// WithTenant attributes work submitted with ctx to tenant; empty is a
// no-op. The HTTP layer calls it with the X-AHS-Tenant header, and the
// sweep engine re-applies the submitting request's tenant to every design
// point it fans out.
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom extracts the tenant carried by ctx, or fallback.
func TenantFrom(ctx context.Context, fallback string) string {
	if t, ok := ctx.Value(tenantKey{}).(string); ok && t != "" {
		return t
	}
	return fallback
}

// tenantMetrics exports the per-tenant ahs_tenant_* families with bounded
// label cardinality.
type tenantMetrics struct {
	submitted *telemetry.CounterVec
	completed *telemetry.CounterVec
	rejected  *telemetry.CounterVec
	depth     *telemetry.GaugeVec

	mu     sync.Mutex
	labels map[string]string // tenant -> exported label (identity or overflow)
}

func newTenantMetrics(reg *telemetry.Registry) *tenantMetrics {
	return &tenantMetrics{
		submitted: reg.CounterVec(telemetry.Opts{
			Name: "ahs_tenant_submitted_total",
			Help: "Accepted evaluation requests by tenant (cache and dedup hits included).",
		}, "tenant"),
		completed: reg.CounterVec(telemetry.Opts{
			Name: "ahs_tenant_completed_total",
			Help: "Jobs finished successfully by tenant.",
		}, "tenant"),
		rejected: reg.CounterVec(telemetry.Opts{
			Name: "ahs_tenant_rejected_total",
			Help: "Submissions bounced by tenant (full queue or tenant quota).",
		}, "tenant"),
		depth: reg.GaugeVec(telemetry.Opts{
			Name: "ahs_tenant_queue_depth",
			Help: "Jobs queued but not yet running, by tenant.",
		}, "tenant"),
	}
}

// label maps a tenant to its exported label value, folding tenants past
// the cardinality cap into the overflow label.
func (t *tenantMetrics) label(tenant string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.labels == nil {
		t.labels = make(map[string]string)
	}
	if l, ok := t.labels[tenant]; ok {
		return l
	}
	l := tenant
	if len(t.labels) >= maxTenantLabels {
		l = tenantOverflowLabel
	}
	t.labels[tenant] = l
	return l
}

func (t *tenantMetrics) onSubmit(tenant string) {
	l := t.label(tenant)
	t.submitted.With(l).Inc() //ahsvet:ignore locklabel tenant labels are capped at maxTenantLabels with an overflow bucket
}

func (t *tenantMetrics) onComplete(tenant string) {
	l := t.label(tenant)
	t.completed.With(l).Inc() //ahsvet:ignore locklabel tenant labels are capped at maxTenantLabels with an overflow bucket
}

func (t *tenantMetrics) onReject(tenant string) {
	l := t.label(tenant)
	t.rejected.With(l).Inc() //ahsvet:ignore locklabel tenant labels are capped at maxTenantLabels with an overflow bucket
}

func (t *tenantMetrics) addDepth(tenant string, delta int64) {
	l := t.label(tenant)
	t.depth.With(l).Add(delta) //ahsvet:ignore locklabel tenant labels are capped at maxTenantLabels with an overflow bucket
}
