package service

import "context"

// snapshotSinkKey carries a partial-result sink through the evaluation
// context. The manager installs one per job run so the default Eval can
// publish partial Welford snapshots for the SSE stream without changing
// the EvalFunc signature; custom Eval implementations (test fakes, the
// cluster backend) simply never read it and streams degrade to
// progress-only.
type snapshotSinkKey struct{}

// withSnapshotSink attaches sink to ctx for the duration of one job run.
func withSnapshotSink(ctx context.Context, sink func(*Result)) context.Context {
	return context.WithValue(ctx, snapshotSinkKey{}, sink)
}

// snapshotSinkFrom extracts the sink, or nil.
func snapshotSinkFrom(ctx context.Context) func(*Result) {
	sink, _ := ctx.Value(snapshotSinkKey{}).(func(*Result))
	return sink
}
