package service

// ResultStore is the persistent second tier under the in-memory LRU,
// satisfied by *resultstore.Store. Keys are canonical scenario hashes;
// values round-trip through JSON, which preserves float64 bits exactly, so
// a stored Result is bit-identical to the evaluation that produced it.
type ResultStore interface {
	// Get unmarshals the stored value into value, reporting existence.
	Get(key string, value any) (bool, error)
	// Put durably stores value, superseding any previous record.
	Put(key string, value any) error
}

// storeGet reads a Result from the persistent tier; absent store, a miss,
// or a read error (logged, never fatal — the job just re-evaluates) all
// report false.
func (m *Manager) storeGet(hash string) (*Result, bool) {
	if m.cfg.Store == nil {
		return nil, false
	}
	var res Result
	ok, err := m.cfg.Store.Get(hash, &res)
	if err != nil {
		m.logf("service: persistent store read for %s failed: %v", hash, err)
		return nil, false
	}
	if !ok {
		return nil, false
	}
	return &res, true
}

// storePut writes a finished Result through to the persistent tier.
// Errors are logged, not returned: the result is already in memory and
// served; durability degrades, correctness does not.
func (m *Manager) storePut(hash string, res *Result) {
	if m.cfg.Store == nil {
		return
	}
	if err := m.cfg.Store.Put(hash, res); err != nil {
		m.logf("service: persistent store write for %s failed: %v", hash, err)
	}
}

// logf routes through Config.Logf, defaulting to silence.
func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}
