package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ahs/internal/config"
	"ahs/internal/faultinject"
	"ahs/internal/fleet"
	"ahs/internal/resultstore"
	"ahs/internal/rng"
)

// The FleetCoordinator seam exists so this package never imports
// internal/fleet in production code; this is the one place the contract
// is checked against the real implementation.
var _ FleetCoordinator = (*fleet.Node)(nil)

// fakeFleet scripts the coordinator for manager-level tests: one
// configured TryClaim outcome, full recording of claims, releases and
// puts.
type fakeFleet struct {
	mu       sync.Mutex
	deny     bool   // TryClaim answers not-acquired
	holder   string // ... naming this peer
	claimErr error
	putErr   error
	claims   map[string][]byte // hash -> claimed scenario payload
	releases []string
	puts     map[string][]byte // hash -> persisted result payload
}

func newFakeFleet() *fakeFleet {
	return &fakeFleet{claims: make(map[string][]byte), puts: make(map[string][]byte)}
}

func (f *fakeFleet) TryClaim(hash string, scenario []byte) (bool, string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.claimErr != nil {
		return false, "", f.claimErr
	}
	if f.deny {
		return false, f.holder, nil
	}
	f.claims[hash] = append([]byte(nil), scenario...)
	return true, "", nil
}

func (f *fakeFleet) Release(hash string) {
	f.mu.Lock()
	f.releases = append(f.releases, hash)
	f.mu.Unlock()
}

func (f *fakeFleet) PutResult(hash string, value []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.putErr != nil {
		return f.putErr
	}
	f.puts[hash] = append([]byte(nil), value...)
	return nil
}

func (f *fakeFleet) Role() string { return "writer" }

func (f *fakeFleet) released(hash string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, h := range f.releases {
		if h == hash {
			return true
		}
	}
	return false
}

// TestFleetClaimBeforeEvaluate: a submission that misses every tier
// claims the scenario (with its canonical JSON) before evaluating, and
// the success path persists through the coordinator — not the plain
// store — so the claim can be released only after durability.
func TestFleetClaimBeforeEvaluate(t *testing.T) {
	ff := newFakeFleet()
	eval := newScriptedEval()
	close(eval.release)
	m := NewManager(Config{Workers: 1, Eval: eval.fn, Fleet: ff, Logf: t.Logf})
	defer m.Shutdown(waitCtx(t))

	sc := testScenario(1)
	hash, _ := sc.Hash()
	view, err := m.Submit(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(waitCtx(t), view.ID); err != nil {
		t.Fatal(err)
	}

	ff.mu.Lock()
	payload, claimed := ff.claims[hash]
	put, persisted := ff.puts[hash]
	ff.mu.Unlock()
	if !claimed {
		t.Fatalf("scenario %s never claimed", hash)
	}
	// The claim carries the canonical scenario so a promoted writer can
	// adopt and re-run it; it must hash back to the same identity.
	var claimedSc struct {
		Batches uint64 `json:"batches"`
		Seed    uint64 `json:"seed"`
	}
	if err := json.Unmarshal(payload, &claimedSc); err != nil {
		t.Fatalf("claim payload not JSON: %v", err)
	}
	if claimedSc.Batches != sc.Batches || claimedSc.Seed != sc.Seed {
		t.Fatalf("claim payload %s does not match the scenario", payload)
	}
	if !persisted {
		t.Fatalf("result for %s never put through the coordinator", hash)
	}
	var res Result
	if err := json.Unmarshal(put, &res); err != nil {
		t.Fatalf("persisted payload not a Result: %v", err)
	}
	if res.ScenarioHash != hash {
		t.Fatalf("persisted result hash %s, want %s", res.ScenarioHash, hash)
	}
	// Success releases through PutResult, never through Release — a
	// Release here would free the claim before the result was durable.
	if ff.released(hash) {
		t.Fatal("successful job called Release instead of letting PutResult settle the claim")
	}
}

// TestFleetClaimReleasedOnFailure: jobs that end without a result —
// evaluation failure, cancellation while queued, queue rejection — free
// their claim immediately so peers need not wait out the TTL.
func TestFleetClaimReleasedOnFailure(t *testing.T) {
	t.Run("eval-failure", func(t *testing.T) {
		ff := newFakeFleet()
		eval := newScriptedEval()
		eval.failWith = errors.New("boom")
		close(eval.release)
		m := NewManager(Config{Workers: 1, Eval: eval.fn, Fleet: ff, Logf: t.Logf})
		defer m.Shutdown(waitCtx(t))

		sc := testScenario(2)
		hash, _ := sc.Hash()
		view, err := m.Submit(sc)
		if err != nil {
			t.Fatal(err)
		}
		final, err := m.Wait(waitCtx(t), view.ID)
		if err != nil || final.Status != StatusFailed {
			t.Fatalf("job ended %v/%v, want failed", final.Status, err)
		}
		if !ff.released(hash) {
			t.Fatalf("failed job kept its claim on %s", hash)
		}
	})
	t.Run("cancelled-while-queued", func(t *testing.T) {
		ff := newFakeFleet()
		eval := newScriptedEval()
		m := NewManager(Config{Workers: 1, Eval: eval.fn, Fleet: ff, Logf: t.Logf})
		defer m.Shutdown(waitCtx(t))
		defer close(eval.release) // before Shutdown, so the worker drains

		// Occupy the single worker so the next submission stays queued.
		if _, err := m.Submit(testScenario(3)); err != nil {
			t.Fatal(err)
		}
		eval.waitStarted(t)
		sc := testScenario(4)
		hash, _ := sc.Hash()
		view, err := m.Submit(sc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Cancel(view.ID); err != nil {
			t.Fatal(err)
		}
		if !ff.released(hash) {
			t.Fatalf("cancelled queued job kept its claim on %s", hash)
		}
	})
	t.Run("queue-reject", func(t *testing.T) {
		ff := newFakeFleet()
		eval := newScriptedEval()
		m := NewManager(Config{Workers: 1, QueueSize: 1, Eval: eval.fn, Fleet: ff, Logf: t.Logf})
		defer m.Shutdown(waitCtx(t))
		defer close(eval.release) // before Shutdown, so the worker drains

		if _, err := m.Submit(testScenario(5)); err != nil {
			t.Fatal(err)
		}
		eval.waitStarted(t) // running; next occupies the whole queue
		if _, err := m.Submit(testScenario(6)); err != nil {
			t.Fatal(err)
		}
		sc := testScenario(7)
		hash, _ := sc.Hash()
		if _, err := m.Submit(sc); !errors.Is(err, ErrQueueFull) {
			t.Fatalf("over-full submit error %v, want ErrQueueFull", err)
		}
		if !ff.released(hash) {
			t.Fatalf("queue-rejected submission kept its claim on %s", hash)
		}
	})
}

// TestFleetClaimErrorFailsOpen: a broken claim layer must not take
// submissions down with it — the scenario evaluates locally.
func TestFleetClaimErrorFailsOpen(t *testing.T) {
	ff := newFakeFleet()
	ff.claimErr = errors.New("claims segment unreachable")
	eval := newScriptedEval()
	close(eval.release)
	m := NewManager(Config{Workers: 1, Eval: eval.fn, Fleet: ff, Logf: t.Logf})
	defer m.Shutdown(waitCtx(t))

	view, err := m.Submit(testScenario(8))
	if err != nil {
		t.Fatalf("claim-layer failure surfaced to the submitter: %v", err)
	}
	final, err := m.Wait(waitCtx(t), view.ID)
	if err != nil || final.Status != StatusDone {
		t.Fatalf("job ended %v/%v, want done", final.Status, err)
	}
}

// TestHTTPPeerClaimRedirect: a peer-claimed scenario answers 307 with
// the holder's /v1/evaluate as Location; a holder without a URL answers
// a retryable 409 with jittered Retry-After.
func TestHTTPPeerClaimRedirect(t *testing.T) {
	ff := newFakeFleet()
	ff.deny = true
	ff.holder = "http://peer.example:8080"
	srv, _ := newTestServer(t, Config{Workers: 1, Fleet: ff})

	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noFollow.Post(srv.URL+"/v1/evaluate", "application/json", strings.NewReader(tinyScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("status %d, want 307", resp.StatusCode)
	}
	if got, want := resp.Header.Get("Location"), ff.holder+"/v1/evaluate"; got != want {
		t.Fatalf("Location %q, want %q", got, want)
	}

	ff.mu.Lock()
	ff.holder = ""
	ff.mu.Unlock()
	resp2, err := noFollow.Post(srv.URL+"/v1/evaluate", "application/json", strings.NewReader(tinyScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("URL-less holder status %d, want 409", resp2.StatusCode)
	}
	ra, err := strconv.Atoi(resp2.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > maxRetryAfterSeconds {
		t.Fatalf("Retry-After %q outside [1,%d]", resp2.Header.Get("Retry-After"), maxRetryAfterSeconds)
	}
}

// TestRetryAfterJitterBounds pins the full-jitter Retry-After mapping:
// every u ∈ [0,1) lands in [1,max], the mapping is monotone, the edges
// hit the bounds, and every whole second in the range is reachable —
// the anti-thundering-herd property is that the herd spreads over all
// of them instead of agreeing on one.
func TestRetryAfterJitterBounds(t *testing.T) {
	if got := retryAfterSeconds(0); got != 1 {
		t.Fatalf("retryAfterSeconds(0) = %d, want 1", got)
	}
	if got := retryAfterSeconds(math.Nextafter(1, 0)); got != maxRetryAfterSeconds {
		t.Fatalf("retryAfterSeconds(1-ulp) = %d, want %d", got, maxRetryAfterSeconds)
	}
	seen := make(map[int]bool)
	prev := 0
	for i := 0; i < 1<<12; i++ {
		u := float64(i) / (1 << 12)
		s := retryAfterSeconds(u)
		if s < 1 || s > maxRetryAfterSeconds {
			t.Fatalf("retryAfterSeconds(%v) = %d outside [1,%d]", u, s, maxRetryAfterSeconds)
		}
		if s < prev {
			t.Fatalf("retryAfterSeconds not monotone at u=%v: %d after %d", u, s, prev)
		}
		prev = s
		seen[s] = true
	}
	stream := rng.NewStream(0xA77E12)
	for i := 0; i < 1<<12; i++ {
		u := stream.Float64()
		if s := retryAfterSeconds(u); s < 1 || s > maxRetryAfterSeconds {
			t.Fatalf("retryAfterSeconds(%v) = %d outside [1,%d]", u, s, maxRetryAfterSeconds)
		}
	}
	for s := 1; s <= maxRetryAfterSeconds; s++ {
		if !seen[s] {
			t.Fatalf("Retry-After value %d never produced — jitter not spreading the range", s)
		}
	}
}

// TestHTTPScenarioByHash: the canonical-hash views. While the job runs,
// GET /v1/scenarios/{hash} reports it; once done, the stored result
// answers; unknown hashes 404. The stream variant serves a finished
// scenario as a single terminal result event.
func TestHTTPScenarioByHash(t *testing.T) {
	eval := newScriptedEval()
	srv, m := newTestServer(t, Config{Workers: 1, Eval: eval.fn})

	_, ack := postScenario(t, srv, tinyScenarioJSON)
	hash := eval.waitStarted(t)

	var live scenarioResponse
	if resp := getJSON(t, srv.URL+"/v1/scenarios/"+hash, &live); resp.StatusCode != http.StatusOK {
		t.Fatalf("live lookup status %d", resp.StatusCode)
	}
	if live.Status != StatusRunning || live.Job == nil || live.Job.ID != ack.ID {
		t.Fatalf("live lookup %+v, want running job %s", live, ack.ID)
	}

	close(eval.release)
	if _, err := m.Wait(waitCtx(t), ack.ID); err != nil {
		t.Fatal(err)
	}
	var done scenarioResponse
	if resp := getJSON(t, srv.URL+"/v1/scenarios/"+hash, &done); resp.StatusCode != http.StatusOK {
		t.Fatalf("done lookup status %d", resp.StatusCode)
	}
	if done.Status != StatusDone || done.Result == nil || done.Result.ScenarioHash != hash {
		t.Fatalf("done lookup %+v, want stored result for %s", done, hash)
	}

	if resp := getJSON(t, srv.URL+"/v1/scenarios/no-such-hash", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown hash status %d, want 404", resp.StatusCode)
	}

	stream := openStream(t, srv.URL+"/v1/scenarios/"+hash+"/stream")
	events := readAllSSE(t, stream.Body)
	if len(events) != 1 || events[0].name != "result" {
		t.Fatalf("finished-scenario stream events %+v, want one result", events)
	}
}

// TestHTTPStreamResumeAfterDrop is the dropped-connection fault
// schedule for SSE resume: the evaluation publishes a run of numbered
// snapshots, the connection is dropped after a seeded number of them,
// and the reconnect presents Last-Event-ID. The resumed stream must
// deliver exactly the missed snapshots — no replay of what the client
// saw, no gaps — and then the terminal result.
func TestHTTPStreamResumeAfterDrop(t *testing.T) {
	const totalSnaps = 5
	const seed = 0x5EED5

	// The drop point is drawn from the seed, replayable on failure.
	dropAfter := uint64(faultinject.PickHit(seed, "sse-drop", totalSnaps-1))
	t.Logf("sse-resume: seed %#x drops the connection after snapshot %d", seed, dropAfter)

	published := make(chan struct{})
	release := make(chan struct{})
	eval := func(ctx context.Context, sc *config.Scenario, workers int, progress func(done, max uint64)) (*Result, error) {
		hash, _ := sc.Hash()
		snap := snapshotSinkFrom(ctx)
		for i := 1; i <= totalSnaps; i++ {
			snap(&Result{ScenarioHash: hash, Batches: uint64(i * 100)})
		}
		close(published)
		select {
		case <-release:
			return &Result{ScenarioHash: hash, Times: sc.TripHours, Batches: 999, Converged: true}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	srv, _ := newTestServer(t, Config{Workers: 1, Eval: eval})

	_, ack := postScenario(t, srv, tinyScenarioJSON)
	<-published

	// First connection: read snapshots up to the drop point, then sever.
	resp := openStream(t, srv.URL+"/v1/jobs/"+ack.ID+"/stream")
	r := bufio.NewReader(resp.Body)
	var lastSeen uint64
	for lastSeen < dropAfter {
		ev, err := readSSEEvent(r)
		if err != nil {
			t.Fatalf("before drop: %v", err)
		}
		if ev.name != "snapshot" {
			continue
		}
		if ev.id != lastSeen+1 {
			t.Fatalf("snapshot id %d, want %d", ev.id, lastSeen+1)
		}
		lastSeen = ev.id
	}
	resp.Body.Close() // the fault: connection drops mid-stream

	// Reconnect as an SSE client would: Last-Event-ID carries the id of
	// the last event that made it through.
	req, err := http.NewRequest("GET", srv.URL+"/v1/jobs/"+ack.ID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", strconv.FormatUint(lastSeen, 10))
	resumed, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Body.Close()
	close(release)

	r2 := bufio.NewReader(resumed.Body)
	next := lastSeen + 1
	sawResult := false
	for {
		ev, err := readSSEEvent(r2)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("after resume: %v", err)
		}
		switch ev.name {
		case "snapshot":
			if ev.id != next {
				t.Fatalf("seed %#x: resumed snapshot id %d, want %d (duplicate or gap)", seed, ev.id, next)
			}
			var res Result
			if err := json.Unmarshal(ev.data, &res); err != nil {
				t.Fatal(err)
			}
			if res.Batches != ev.id*100 {
				t.Fatalf("snapshot %d payload batches %d, want %d", ev.id, res.Batches, ev.id*100)
			}
			next = ev.id + 1
		case "result":
			sawResult = true
		}
	}
	if next != totalSnaps+1 {
		t.Fatalf("seed %#x: resumed stream ended at snapshot %d, want all %d", seed, next-1, totalSnaps)
	}
	if !sawResult {
		t.Fatal("resumed stream closed without the terminal result")
	}
}

// TestTwoManagersSharedDirExactlyOnce runs the real stack twice over —
// two managers, two fleet nodes, one store directory — and submits the
// same scenario to both. The claims table must confine the evaluation
// to the first instance (the second gets redirected, then served from
// the shared store), and both instances must read back the identical
// result.
func TestTwoManagersSharedDirExactlyOnce(t *testing.T) {
	dir := t.TempDir()

	newInstance := func(owner string, follower bool, eval *scriptedEval) (*httptest.Server, *Manager, *fleet.Node, *resultstore.Store) {
		t.Helper()
		store, err := resultstore.Open(resultstore.Config{
			Dir: dir, Owner: owner, ReadOnly: follower, Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(nil)
		node, err := fleet.New(fleet.Config{
			Dir: dir, Owner: owner, URL: srv.URL, Store: store,
			Heartbeat: 50 * time.Millisecond, ClaimTTL: time.Minute,
			Logf:   t.Logf,
			Submit: func(json.RawMessage) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		m := NewManager(Config{Workers: 1, Eval: eval.fn, Store: store, Fleet: node, Logf: t.Logf})
		srv.Config.Handler = NewHandler(m)
		t.Cleanup(func() {
			srv.Close()
			_ = m.Shutdown(waitCtx(t))
			node.Close()
			store.Close()
		})
		return srv, m, node, store
	}

	evalA, evalB := newScriptedEval(), newScriptedEval()
	srvA, mA, _, _ := newInstance("svc-a", false, evalA)
	_, mB, _, _ := newInstance("svc-b", true, evalB)

	sc := testScenario(42)
	viewA, err := mA.Submit(sc)
	if err != nil {
		t.Fatal(err)
	}
	evalA.waitStarted(t)

	// B's submission must bounce off A's claim, naming A as the holder.
	_, err = mB.Submit(sc)
	var peer *PeerClaimedError
	if !errors.As(err, &peer) {
		t.Fatalf("second instance's submit error %v, want PeerClaimedError", err)
	}
	if peer.URL != srvA.URL {
		t.Fatalf("claim holder URL %q, want %q", peer.URL, srvA.URL)
	}

	close(evalA.release)
	if _, err := mA.Wait(waitCtx(t), viewA.ID); err != nil {
		t.Fatal(err)
	}
	resA, doneA, err := mA.Result(viewA.ID)
	if err != nil || doneA.Status != StatusDone {
		t.Fatalf("A's job ended %v/%v", doneA.Status, err)
	}

	// Now the result is durable and the claim released: B's re-submit
	// must be served from the shared store, never evaluated again.
	viewB, err := mB.Submit(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !viewB.Cached || viewB.CacheTier != "store" {
		t.Fatalf("B's re-submit cached=%v tier=%q, want store hit", viewB.Cached, viewB.CacheTier)
	}
	resB, _, err := mB.Result(viewB.ID)
	if err != nil || resB == nil {
		t.Fatalf("B's result: %v", err)
	}
	if got, want := resultBits(resB), resultBits(resA); got != want {
		t.Fatalf("instances disagree on the stored result:\n A %s\n B %s", want, got)
	}
	if evalA.invoked.Load() != 1 || evalB.invoked.Load() != 0 {
		t.Fatalf("evaluations A=%d B=%d, want exactly one on A",
			evalA.invoked.Load(), evalB.invoked.Load())
	}
}
