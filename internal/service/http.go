package service

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"time"

	"ahs/internal/config"
	"ahs/internal/obs"
	"ahs/internal/telemetry"
)

// maxScenarioBytes bounds the request body of POST /v1/evaluate; scenario
// files are a few hundred bytes, so 1 MiB is generous.
const maxScenarioBytes = 1 << 20

// TenantHeader names the request header carrying the submitting tenant's
// identity for fair-share scheduling and per-tenant quotas; absent or
// empty, the server's default tenant applies.
const TenantHeader = "X-AHS-Tenant"

// evaluateResponse acknowledges a submission.
type evaluateResponse struct {
	ID        string `json:"id"`
	Status    Status `json:"status"`
	Cached    bool   `json:"cached"`
	StatusURL string `json:"statusUrl"`
	ResultURL string `json:"resultUrl"`
	// TraceID names the distributed trace recording this job; empty when
	// tracing is off or the request was head-sampled out.
	TraceID  string `json:"traceId,omitempty"`
	TraceURL string `json:"traceUrl,omitempty"`
}

// errorResponse is the uniform error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// RequestDurationBuckets is the latency layout of
// ahs_http_request_duration_seconds: sub-millisecond to ~half a minute.
var RequestDurationBuckets = telemetry.ExponentialBuckets(0.0005, 4, 9)

// NewHandler exposes the manager over the HTTP JSON API served by
// cmd/ahs-serve; docs/api.md documents the endpoints. Every API route is
// wrapped in a per-endpoint latency histogram on the manager's registry,
// which is itself served at GET /metrics in the Prometheus text format.
// The handler is safe for concurrent use and carries no state beyond the
// manager.
func NewHandler(m *Manager) http.Handler {
	s := &server{m: m}
	reg := m.Registry()
	latency := reg.HistogramVec(telemetry.Opts{
		Name:    "ahs_http_request_duration_seconds",
		Help:    "API request latency by route pattern.",
		Buckets: RequestDurationBuckets,
	}, "endpoint")
	mux := http.NewServeMux()
	tracer := m.cfg.Tracer
	handle := func(pattern string, h http.HandlerFunc) {
		// Eager: the series exists before traffic.
		hist := latency.With(pattern) //ahsvet:ignore locklabel patterns are the compile-time route literals below
		traced := obs.Middleware(tracer, pattern, h)
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			traced.ServeHTTP(w, r)
			hist.Observe(time.Since(start).Seconds())
		})
	}
	handle("POST /v1/evaluate", s.handleEvaluate)
	handle("GET /v1/jobs/{id}", s.handleJob)
	handle("GET /v1/jobs/{id}/stream", s.handleJobStream)
	handle("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	handle("DELETE /v1/jobs/{id}", s.handleCancel)
	handle("GET /v1/results/{id}", s.handleResult)
	handle("GET /healthz", s.handleHealth)
	handle("GET /debug/vars", s.handleVars)
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("GET /debug/traces", obs.DebugHandler(tracer, "/debug/traces"))
	mux.Handle("GET /debug/traces/{id...}", obs.DebugHandler(tracer, "/debug/traces"))
	return mux
}

type server struct {
	m *Manager
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// handleEvaluate accepts a config.Scenario JSON body and answers 200 with
// a done job (cache hit), 202 with a queued job, 400 on a malformed or
// invalid scenario, 429 when the queue is full and 503 during shutdown.
func (s *server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	sc, err := config.Load(http.MaxBytesReader(w, r.Body, maxScenarioBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The tenant rides the submit context; absent header means the
	// manager's default tenant. Admission (quota, fair-share lane) is the
	// manager's call.
	ctx := WithTenant(r.Context(), r.Header.Get(TenantHeader))
	view, err := s.m.SubmitCtx(ctx, sc)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQuota):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if view.Status == StatusDone {
		code = http.StatusOK
	}
	resp := evaluateResponse{
		ID:        view.ID,
		Status:    view.Status,
		Cached:    view.Cached,
		StatusURL: "/v1/jobs/" + view.ID,
		ResultURL: "/v1/results/" + view.ID,
		TraceID:   view.TraceID,
	}
	if resp.TraceID != "" {
		resp.TraceURL = "/v1/jobs/" + view.ID + "/trace"
	}
	writeJSON(w, code, resp)
}

// handleJobTrace serves the job's recorded distributed trace: JSON span
// data by default, Chrome-trace JSON (Perfetto-loadable) with
// ?format=chrome. 404 when the job is unknown, was never traced, or its
// trace has been evicted from the recorder ring.
func (s *server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	view, err := s.m.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if view.TraceID == "" {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: job %s has no recorded trace", view.ID))
		return
	}
	obs.ServeTrace(s.m.cfg.Tracer, view.TraceID)(w, r)
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, err := s.m.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.m.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleResult maps job states to codes: 200 done (the Result), 202 still
// queued/running (the JobView), 410 cancelled, 500 failed, 404 unknown.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, view, err := s.m.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	switch view.Status {
	case StatusDone:
		writeJSON(w, http.StatusOK, res)
	case StatusCancelled:
		writeError(w, http.StatusGone, fmt.Errorf("service: job %s was cancelled", view.ID))
	case StatusFailed:
		writeError(w, http.StatusInternalServerError, fmt.Errorf("service: job %s failed: %s", view.ID, view.Error))
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	met := s.m.Metrics()
	body := map[string]any{
		"status":     "ok",
		"queueDepth": met.QueueDepth.Value(),
		"running":    met.Running.Value(),
		"backend":    s.m.Backend(),
	}
	if s.m.cfg.ExtraHealth != nil {
		for k, v := range s.m.cfg.ExtraHealth() {
			body[k] = v
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleVars renders the expvar format: the process-global vars published
// through expvar (cmdline, memstats, ...) plus this manager's metrics
// under the "ahs_serve" key. The manager's vars are deliberately not
// Publish()ed — see Metrics — so several managers can coexist in one
// process, each handler reporting its own.
func (s *server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n%q: %s", "ahs_serve", s.m.Metrics().Map().String())
	expvar.Do(func(kv expvar.KeyValue) {
		fmt.Fprintf(w, ",\n%q: %s", kv.Key, kv.Value.String())
	})
	fmt.Fprint(w, "\n}\n")
}
