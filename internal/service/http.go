package service

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ahs/internal/config"
	"ahs/internal/obs"
	"ahs/internal/rng"
	"ahs/internal/telemetry"
)

// maxScenarioBytes bounds the request body of POST /v1/evaluate; scenario
// files are a few hundred bytes, so 1 MiB is generous.
const maxScenarioBytes = 1 << 20

// TenantHeader names the request header carrying the submitting tenant's
// identity for fair-share scheduling and per-tenant quotas; absent or
// empty, the server's default tenant applies.
const TenantHeader = "X-AHS-Tenant"

// evaluateResponse acknowledges a submission.
type evaluateResponse struct {
	ID        string `json:"id"`
	Status    Status `json:"status"`
	Cached    bool   `json:"cached"`
	StatusURL string `json:"statusUrl"`
	ResultURL string `json:"resultUrl"`
	// TraceID names the distributed trace recording this job; empty when
	// tracing is off or the request was head-sampled out.
	TraceID  string `json:"traceId,omitempty"`
	TraceURL string `json:"traceUrl,omitempty"`
}

// errorResponse is the uniform error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// maxRetryAfterSeconds caps the jittered Retry-After advice on 429
// responses.
const maxRetryAfterSeconds = 8

// retryAfterSeconds maps one uniform draw u ∈ [0,1) to full-jitter
// Retry-After advice in whole seconds: uniformly 1..maxRetryAfterSeconds
// rather than a constant, so a thundering herd bounced by a quota or a
// full queue respreads instead of returning in lockstep. Pure in u for
// the property test; the handler draws u from its jitter stream.
func retryAfterSeconds(u float64) int {
	s := 1 + int(u*maxRetryAfterSeconds)
	if s < 1 {
		s = 1
	}
	if s > maxRetryAfterSeconds {
		s = maxRetryAfterSeconds
	}
	return s
}

// setRetryAfter stamps the jittered advice on a 429/409. Retry-After is
// operational backoff, not an estimate, so drawing from a wall-clock
// seeded stream does not touch result reproducibility (the simulation's
// randomness all flows through seeded per-trajectory streams).
func (s *server) setRetryAfter(w http.ResponseWriter) {
	s.jitterMu.Lock()
	u := s.jitter.Float64()
	s.jitterMu.Unlock()
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(u)))
}

// RequestDurationBuckets is the latency layout of
// ahs_http_request_duration_seconds: sub-millisecond to ~half a minute.
var RequestDurationBuckets = telemetry.ExponentialBuckets(0.0005, 4, 9)

// NewHandler exposes the manager over the HTTP JSON API served by
// cmd/ahs-serve; docs/api.md documents the endpoints. Every API route is
// wrapped in a per-endpoint latency histogram on the manager's registry,
// which is itself served at GET /metrics in the Prometheus text format.
// The handler is safe for concurrent use and carries no state beyond the
// manager.
func NewHandler(m *Manager) http.Handler {
	s := &server{m: m, jitter: rng.NewStream(uint64(time.Now().UnixNano()))}
	reg := m.Registry()
	latency := reg.HistogramVec(telemetry.Opts{
		Name:    "ahs_http_request_duration_seconds",
		Help:    "API request latency by route pattern.",
		Buckets: RequestDurationBuckets,
	}, "endpoint")
	mux := http.NewServeMux()
	tracer := m.cfg.Tracer
	handle := func(pattern string, h http.HandlerFunc) {
		// Eager: the series exists before traffic.
		hist := latency.With(pattern) //ahsvet:ignore locklabel patterns are the compile-time route literals below
		traced := obs.Middleware(tracer, pattern, h)
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			traced.ServeHTTP(w, r)
			hist.Observe(time.Since(start).Seconds())
		})
	}
	handle("POST /v1/evaluate", s.handleEvaluate)
	handle("GET /v1/jobs/{id}", s.handleJob)
	handle("GET /v1/jobs/{id}/stream", s.handleJobStream)
	handle("GET /v1/scenarios/{hash}", s.handleScenario)
	handle("GET /v1/scenarios/{hash}/stream", s.handleScenarioStream)
	handle("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	handle("DELETE /v1/jobs/{id}", s.handleCancel)
	handle("GET /v1/results/{id}", s.handleResult)
	handle("GET /healthz", s.handleHealth)
	handle("GET /debug/vars", s.handleVars)
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("GET /debug/traces", obs.DebugHandler(tracer, "/debug/traces"))
	mux.Handle("GET /debug/traces/{id...}", obs.DebugHandler(tracer, "/debug/traces"))
	return mux
}

type server struct {
	m *Manager
	// jitter feeds Retry-After advice; mutex-guarded because handlers
	// run concurrently and rng streams are single-goroutine.
	jitterMu sync.Mutex
	jitter   *rng.Stream
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// handleEvaluate accepts a config.Scenario JSON body and answers 200 with
// a done job (cache hit), 202 with a queued job, 400 on a malformed or
// invalid scenario, 429 (with jittered Retry-After) when the queue or the
// tenant's quota is full, 307 when a fleet peer already claimed the
// scenario, and 503 during shutdown.
func (s *server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	sc, err := config.Load(http.MaxBytesReader(w, r.Body, maxScenarioBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The tenant rides the submit context; absent header means the
	// manager's default tenant. Admission (quota, fair-share lane) is the
	// manager's call.
	ctx := WithTenant(r.Context(), r.Header.Get(TenantHeader))
	view, err := s.m.SubmitCtx(ctx, sc)
	var peer *PeerClaimedError
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQuota):
		s.setRetryAfter(w)
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.As(err, &peer):
		// A live peer owns this scenario. 307 preserves the method and
		// body, so a standard client re-POSTs the identical scenario to
		// the owner and lands on the in-flight job there. A holder that
		// advertised no URL cannot be redirected to; advise a retry — by
		// then the claim has either expired or produced a stored result.
		if peer.URL == "" {
			s.setRetryAfter(w)
			writeError(w, http.StatusConflict, err)
			return
		}
		w.Header().Set("Location", peer.URL+"/v1/evaluate")
		writeError(w, http.StatusTemporaryRedirect, err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if view.Status == StatusDone {
		code = http.StatusOK
	}
	resp := evaluateResponse{
		ID:        view.ID,
		Status:    view.Status,
		Cached:    view.Cached,
		StatusURL: "/v1/jobs/" + view.ID,
		ResultURL: "/v1/results/" + view.ID,
		TraceID:   view.TraceID,
	}
	if resp.TraceID != "" {
		resp.TraceURL = "/v1/jobs/" + view.ID + "/trace"
	}
	writeJSON(w, code, resp)
}

// handleJobTrace serves the job's recorded distributed trace: JSON span
// data by default, Chrome-trace JSON (Perfetto-loadable) with
// ?format=chrome. 404 when the job is unknown, was never traced, or its
// trace has been evicted from the recorder ring.
func (s *server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	view, err := s.m.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if view.TraceID == "" {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: job %s has no recorded trace", view.ID))
		return
	}
	obs.ServeTrace(s.m.cfg.Tracer, view.TraceID)(w, r)
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, err := s.m.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.m.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleResult maps job states to codes: 200 done (the Result), 202 still
// queued/running (the JobView), 410 cancelled, 500 failed, 404 unknown.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, view, err := s.m.Result(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	switch view.Status {
	case StatusDone:
		writeJSON(w, http.StatusOK, res)
	case StatusCancelled:
		writeError(w, http.StatusGone, fmt.Errorf("service: job %s was cancelled", view.ID))
	case StatusFailed:
		writeError(w, http.StatusInternalServerError, fmt.Errorf("service: job %s failed: %s", view.ID, view.Error))
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

// scenarioResponse answers the by-hash lookups: the live job when this
// instance is evaluating the scenario, the stored result when any fleet
// member already finished it.
type scenarioResponse struct {
	ScenarioHash string   `json:"scenarioHash"`
	Status       Status   `json:"status"`
	Job          *JobView `json:"job,omitempty"`
	Result       *Result  `json:"result,omitempty"`
}

// handleScenario serves GET /v1/scenarios/{hash}: the canonical-hash
// view of a scenario, independent of which instance ran it. A live
// local job answers with its JobView; otherwise the result tiers
// (memory, then the shared store — where peers' results land) answer
// with the finished Result; otherwise 404. Submitters bounced to a peer
// by a 307 poll here to pick the result up without re-submitting.
func (s *server) handleScenario(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if view, ok := s.m.JobByHash(hash); ok {
		writeJSON(w, http.StatusOK, scenarioResponse{
			ScenarioHash: hash, Status: view.Status, Job: &view,
		})
		return
	}
	if res, ok := s.m.StoredResult(hash); ok {
		writeJSON(w, http.StatusOK, scenarioResponse{
			ScenarioHash: hash, Status: StatusDone, Result: res,
		})
		return
	}
	writeError(w, http.StatusNotFound,
		fmt.Errorf("service: no job or stored result for scenario %s", hash))
}

// handleScenarioStream serves GET /v1/scenarios/{hash}/stream: the SSE
// stream for whatever this instance knows about the scenario. A live
// local job streams exactly like /v1/jobs/{id}/stream (Last-Event-ID
// honored); a stored result streams as a single terminal result event;
// otherwise 404.
func (s *server) handleScenarioStream(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if view, ok := s.m.JobByHash(hash); ok {
		s.streamJob(w, r, view.ID)
		return
	}
	if res, ok := s.m.StoredResult(hash); ok {
		sse, err := NewSSEWriter(w)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		_ = sse.Send("result", res)
		return
	}
	writeError(w, http.StatusNotFound,
		fmt.Errorf("service: no job or stored result for scenario %s", hash))
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	met := s.m.Metrics()
	body := map[string]any{
		"status":     "ok",
		"queueDepth": met.QueueDepth.Value(),
		"running":    met.Running.Value(),
		"backend":    s.m.Backend(),
	}
	if s.m.cfg.ExtraHealth != nil {
		for k, v := range s.m.cfg.ExtraHealth() {
			body[k] = v
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleVars renders the expvar format: the process-global vars published
// through expvar (cmdline, memstats, ...) plus this manager's metrics
// under the "ahs_serve" key. The manager's vars are deliberately not
// Publish()ed — see Metrics — so several managers can coexist in one
// process, each handler reporting its own.
func (s *server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n%q: %s", "ahs_serve", s.m.Metrics().Map().String())
	expvar.Do(func(kv expvar.KeyValue) {
		fmt.Fprintf(w, ",\n%q: %s", kv.Key, kv.Value.String())
	})
	fmt.Fprint(w, "\n}\n")
}
