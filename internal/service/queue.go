package service

import (
	"errors"
	"sync"
)

// ErrTenantQuota rejects a submission whose tenant already has its quota
// of queued jobs; the HTTP layer answers 429 with Retry-After, like a full
// queue, but scoped to the offending tenant.
var ErrTenantQuota = errors.New("service: tenant queue quota exceeded")

// fairQueue replaces the manager's single FIFO with per-tenant FIFOs
// drained by deficit round-robin: every job costs one unit, each active
// tenant earns its weight in credit when its turn comes and dequeues that
// many jobs before the turn passes on. With equal weights the schedule
// degenerates to strict round-robin over active tenants, which is the
// fairness property the tests pin: a tenant flooding the queue cannot push
// another tenant's job more than one cycle back, so waits stay bounded by
// the number of active tenants, not by the flooder's backlog.
//
// The total capacity bound is shared (like the old FIFO channel) and an
// optional per-tenant quota rejects a single tenant monopolizing the
// queue's admission as well as its service order.
type fairQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	capacity int
	quota    int            // per-tenant queued-job cap; 0 = unbounded
	weights  map[string]int // tenant -> DRR weight; missing = 1

	tenants map[string]*tenantFIFO
	ring    []*tenantFIFO // active tenants in arrival order
	next    int           // ring index holding the turn
	size    int           // total queued jobs
	closed  bool
}

// tenantFIFO is one tenant's pending jobs plus its scheduler state.
type tenantFIFO struct {
	name   string
	jobs   []*job
	weight int
	credit int  // remaining dequeues in the current turn
	inRing bool // queued in fairQueue.ring
}

func newFairQueue(capacity, quota int, weights map[string]int) *fairQueue {
	q := &fairQueue{
		capacity: capacity,
		quota:    quota,
		weights:  weights,
		tenants:  make(map[string]*tenantFIFO),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues j for its tenant. It fails with ErrQueueFull when the
// shared capacity is exhausted, ErrTenantQuota when the tenant is over its
// own cap, and ErrShuttingDown after close.
func (q *fairQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrShuttingDown
	}
	if q.size >= q.capacity {
		return ErrQueueFull
	}
	t := q.tenants[j.tenant]
	if t == nil {
		w := q.weights[j.tenant]
		if w <= 0 {
			w = 1
		}
		t = &tenantFIFO{name: j.tenant, weight: w}
		q.tenants[j.tenant] = t
	}
	if q.quota > 0 && len(t.jobs) >= q.quota {
		return ErrTenantQuota
	}
	t.jobs = append(t.jobs, j)
	q.size++
	if !t.inRing {
		t.inRing = true
		q.ring = append(q.ring, t)
	}
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available or the queue is closed and empty;
// the second return mirrors a channel receive. After close the remaining
// backlog still drains in fair order, so shutdown keeps the scheduling
// contract.
func (q *fairQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if j := q.popLocked(); j != nil {
			return j, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// popLocked runs one DRR step; q.mu must be held. Returns nil when empty.
func (q *fairQueue) popLocked() *job {
	for q.size > 0 {
		if q.next >= len(q.ring) {
			q.next = 0
		}
		t := q.ring[q.next]
		if len(t.jobs) == 0 {
			// Drained tenant: retire from the ring (keeping q.next pointing
			// at the element that slid into its slot) and forget its credit
			// so a later burst starts a fresh turn.
			q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
			t.inRing = false
			t.credit = 0
			continue
		}
		if t.credit == 0 {
			t.credit = t.weight
		}
		j := t.jobs[0]
		t.jobs[0] = nil // release the reference for GC
		t.jobs = t.jobs[1:]
		q.size--
		t.credit--
		if t.credit == 0 {
			q.next++ // turn spent: move on
		}
		return j
	}
	return nil
}

// len reports the total queued jobs.
func (q *fairQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// close stops admissions and wakes every blocked pop; queued jobs still
// drain.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
