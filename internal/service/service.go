// Package service turns the one-shot unsafety evaluation of internal/core
// into a long-lived, shareable system: a job manager with a bounded worker
// pool over the Monte-Carlo estimator, request deduplication by canonical
// scenario hash (config.Scenario.Hash), an LRU cache of finished results,
// per-job progress tracking and cancellation, and expvar-style operational
// metrics. cmd/ahs-serve exposes it over an HTTP JSON API.
//
// The design leans on two properties of the underlying estimator:
//
//   - Determinism: for a fixed scenario (seed included) the estimate is
//     bit-identical regardless of worker count, so a cached result is
//     indistinguishable from a re-run and caching is semantically free.
//   - Cancellation: mc checks the job context before every trajectory, so
//     cancelling a job or shutting the manager down stops within one batch.
package service

import (
	"context"
	"fmt"

	"ahs/internal/config"
	"ahs/internal/core"
	"ahs/internal/mc"
	"ahs/internal/telemetry"
	"ahs/internal/trace"
)

// Result is the JSON-serializable outcome of one evaluation job: the
// estimated S(t) curve over the scenario's trip-hour grid.
type Result struct {
	// Name echoes the scenario's cosmetic name, if any.
	Name string `json:"name,omitempty"`
	// ScenarioHash is the canonical hash the result is cached under.
	ScenarioHash string `json:"scenarioHash"`
	// Times is the trip-duration grid in hours.
	Times []float64 `json:"times"`
	// Unsafety is the estimated S(t) at each grid point.
	Unsafety []float64 `json:"unsafety"`
	// CILo and CIHi bound the 95% confidence interval at each point.
	CILo []float64 `json:"ciLo"`
	CIHi []float64 `json:"ciHi"`
	// Batches is the number of simulated trajectories.
	Batches uint64 `json:"batches"`
	// Converged reports whether the stop rule was met (always true
	// without a rule).
	Converged bool `json:"converged"`
	// FailureBias records the importance-sampling forcing factor used
	// (1 means naive simulation).
	FailureBias float64 `json:"failureBias"`
}

// EvalFunc runs one scenario to completion (or cancellation). workers
// bounds the simulation parallelism of this single job; progress, when
// non-nil, receives (batchesDone, maxBatches) updates. Manager uses
// Evaluate unless a Config overrides it (tests inject fakes).
type EvalFunc func(ctx context.Context, sc *config.Scenario, workers int, progress func(done, max uint64)) (*Result, error)

// Evaluate is the production EvalFunc: it builds the composed SAN for the
// scenario and estimates the unsafety curve with the scenario's evaluation
// settings (importance-sampling calibration included). It records no
// telemetry; see EvaluateInto.
func Evaluate(ctx context.Context, sc *config.Scenario, workers int, progress func(done, max uint64)) (*Result, error) {
	return evaluate(ctx, sc, workers, progress, nil)
}

// EvaluateInto returns the production EvalFunc with simulation telemetry
// enabled: each evaluation feeds a strategy-labeled SimCollector on reg
// (activity firings collapsed across replicas via trace.CollapseName,
// maneuver attempts/failures, catastrophic causes, trajectory and
// first-passage histograms). A nil registry yields plain Evaluate. This is
// Manager's default Eval, sharing the registry served at GET /metrics.
func EvaluateInto(reg *telemetry.Registry) EvalFunc {
	if reg == nil {
		return Evaluate
	}
	return func(ctx context.Context, sc *config.Scenario, workers int, progress func(done, max uint64)) (*Result, error) {
		var sink telemetry.Sink
		if p, err := sc.Params(); err == nil {
			// Family registration is idempotent and the collector's label
			// caches are cheap, so a fresh collector per job is fine.
			sink = telemetry.NewSimCollector(reg, p.Strategy.String(), trace.CollapseName)
		}
		return evaluate(ctx, sc, workers, progress, sink)
	}
}

func evaluate(ctx context.Context, sc *config.Scenario, workers int, progress func(done, max uint64), sink telemetry.Sink) (*Result, error) {
	hash, err := sc.Hash()
	if err != nil {
		return nil, err
	}
	p, err := sc.Params()
	if err != nil {
		return nil, err
	}
	sys, err := core.Build(p)
	if err != nil {
		return nil, fmt.Errorf("service: build model: %w", err)
	}
	opts := sc.EvalOptions(sys)
	opts.Context = ctx
	opts.Workers = workers
	opts.Progress = progress
	opts.Telemetry = sink
	bias := opts.FailureBias
	if bias < 1 {
		bias = 1
	}
	if snap := snapshotSinkFrom(ctx); snap != nil {
		// Stream partial Welford state as Result snapshots for the SSE
		// endpoints; each snapshot is a self-contained curve, so a client
		// disconnecting mid-run has a usable (if wide-CI) estimate.
		opts.Snapshot = func(c *mc.Curve) { snap(curveResult(sc.Name, hash, c, bias)) }
	}
	curve, err := sys.UnsafetyCurve(opts)
	if err != nil {
		return nil, err
	}
	return curveResult(sc.Name, hash, curve, bias), nil
}

// curveResult converts an estimated (possibly partial) curve into the
// API's Result shape.
func curveResult(name, hash string, curve *mc.Curve, failureBias float64) *Result {
	res := &Result{
		Name:         name,
		ScenarioHash: hash,
		Times:        curve.Times,
		Unsafety:     curve.Mean,
		CILo:         make([]float64, len(curve.Intervals)),
		CIHi:         make([]float64, len(curve.Intervals)),
		Batches:      curve.Batches,
		Converged:    curve.Converged,
		FailureBias:  failureBias,
	}
	for i, iv := range curve.Intervals {
		res.CILo[i] = iv.Lo
		res.CIHi[i] = iv.Hi
	}
	return res
}
