package service

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"ahs/internal/config"
	"ahs/internal/resultstore"
	"ahs/internal/telemetry"
)

// awkwardEval returns results with floats chosen to expose any lossy
// serialization in the persistent tier: repeating binary fractions, tiny
// magnitudes and values one ULP apart.
func awkwardEval(ctx context.Context, sc *config.Scenario, workers int, progress func(done, max uint64)) (*Result, error) {
	hash, err := sc.Hash()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:         sc.Name,
		ScenarioHash: hash,
		Batches:      12345 + sc.Seed,
		Converged:    true,
		FailureBias:  1,
	}
	for i := 0; i < 4; i++ {
		x := float64(i+1) / 3.0
		u := math.Exp(-x) * 1e-13 * float64(sc.Seed+1)
		res.Times = append(res.Times, x)
		res.Unsafety = append(res.Unsafety, u)
		res.CILo = append(res.CILo, math.Nextafter(u, 0))
		res.CIHi = append(res.CIHi, math.Nextafter(u, 1))
	}
	return res, nil
}

// resultBits renders every float of a Result in %b (exact mantissa·2^exp
// form), so equal strings mean bit-identical curves.
func resultBits(r *Result) string {
	return fmt.Sprintf("%s|%s|%b|%b|%b|%b|%d|%v|%b",
		r.Name, r.ScenarioHash, r.Times, r.Unsafety, r.CILo, r.CIHi,
		r.Batches, r.Converged, r.FailureBias)
}

func openStore(t *testing.T, dir string, readOnly bool) *resultstore.Store {
	t.Helper()
	st, err := resultstore.Open(resultstore.Config{Dir: dir, ReadOnly: readOnly})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st
}

// TestStoreTierServesAcrossManagerRestart is the in-process restart
// contract behind the cross-process e2e in cmd/ahs-serve: a manager dies,
// a fresh manager over the same store directory serves the curve from disk
// bit-identically and never re-evaluates.
func TestStoreTierServesAcrossManagerRestart(t *testing.T) {
	dir := t.TempDir()

	st1 := openStore(t, dir, false)
	m1 := NewManager(Config{Workers: 1, Eval: awkwardEval, Store: st1})
	v1, err := m1.Submit(testScenario(31))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Wait(waitCtx(t), v1.ID); err != nil {
		t.Fatal(err)
	}
	res1, _, err := m1.Result(v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := m1.Metrics().StoreMisses.Value(); got != 1 {
		t.Fatalf("storeMisses = %d, want 1 (first submit consults the store)", got)
	}
	if err := m1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new manager and store handle over the same dir. The
	// eval must never run — a non-zero invocation count fails the contract.
	eval2 := newScriptedEval()
	st2 := openStore(t, dir, false)
	m2 := NewManager(Config{Workers: 1, Eval: eval2.fn, Store: st2})
	defer m2.Shutdown(context.Background())

	v2, err := m2.Submit(testScenario(31))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Status != StatusDone || !v2.Cached || v2.CacheTier != "store" {
		t.Fatalf("restarted submit view %+v, want done/cached from the store tier", v2)
	}
	res2, _, err := m2.Result(v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultBits(res2), resultBits(res1); got != want {
		t.Fatalf("store round-trip not bit-identical:\n got %s\nwant %s", got, want)
	}
	if got := eval2.invoked.Load(); got != 0 {
		t.Fatalf("eval invoked %d times after restart, want 0", got)
	}
	met := m2.Metrics()
	if met.StoreHits.Value() != 1 || met.CacheHits.Value() != 0 {
		t.Fatalf("storeHits=%d cacheHits=%d, want 1/0", met.StoreHits.Value(), met.CacheHits.Value())
	}
}

// TestStoreFollowerServesWriterResults pins the two-instance topology: a
// read-only follower over the writer's directory serves the writer's
// results, and its own write-through failures degrade durability only —
// jobs still finish, the error is logged.
func TestStoreFollowerServesWriterResults(t *testing.T) {
	dir := t.TempDir()

	writerStore := openStore(t, dir, false)
	writer := NewManager(Config{Workers: 1, Eval: awkwardEval, Store: writerStore})
	defer writer.Shutdown(context.Background())

	v1, err := writer.Submit(testScenario(41))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Wait(waitCtx(t), v1.ID); err != nil {
		t.Fatal(err)
	}
	res1, _, err := writer.Result(v1.ID)
	if err != nil {
		t.Fatal(err)
	}

	var logMu sync.Mutex
	var logs []string
	followerStore := openStore(t, dir, true)
	follower := NewManager(Config{
		Workers: 1,
		Eval:    awkwardEval,
		Store:   followerStore,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	defer follower.Shutdown(context.Background())

	// The writer's result, served by the follower from the shared segment.
	v2, err := follower.Submit(testScenario(41))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Status != StatusDone || v2.CacheTier != "store" {
		t.Fatalf("follower view %+v, want done from the store tier", v2)
	}
	res2, _, err := follower.Result(v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resultBits(res2) != resultBits(res1) {
		t.Fatalf("follower result diverged:\n got %s\nwant %s", resultBits(res2), resultBits(res1))
	}

	// A scenario the store lacks: the follower evaluates it, its read-only
	// write-through fails, and the job still completes.
	v3, err := follower.Submit(testScenario(42))
	if err != nil {
		t.Fatal(err)
	}
	view, err := follower.Wait(waitCtx(t), v3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusDone {
		t.Fatalf("follower evaluation %+v, want done despite read-only store", view)
	}
	logMu.Lock()
	defer logMu.Unlock()
	found := false
	for _, l := range logs {
		if strings.Contains(l, "store write") {
			found = true
		}
	}
	if !found {
		t.Fatalf("read-only write-through failure was not logged; logs: %q", logs)
	}
}

// TestStoreBackfillsMemoryTier: a store hit populates the LRU, so the next
// identical submission is served from memory without touching the disk.
func TestStoreBackfillsMemoryTier(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, false)

	sc := testScenario(51)
	hash, err := sc.Hash()
	if err != nil {
		t.Fatal(err)
	}
	seeded := &Result{ScenarioHash: hash, Times: sc.TripHours, Batches: 777, Converged: true, FailureBias: 1}
	if err := st.Put(hash, seeded); err != nil {
		t.Fatal(err)
	}

	eval := newScriptedEval()
	m := NewManager(Config{Workers: 1, Eval: eval.fn, Store: st})
	defer m.Shutdown(context.Background())

	first, err := m.Submit(sc)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheTier != "store" {
		t.Fatalf("first submit tier %q, want store", first.CacheTier)
	}
	second, err := m.Submit(testScenario(51))
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheTier != "memory" {
		t.Fatalf("second submit tier %q, want memory (LRU backfilled)", second.CacheTier)
	}
	met := m.Metrics()
	if met.StoreHits.Value() != 1 || met.CacheHits.Value() != 1 {
		t.Fatalf("storeHits=%d cacheHits=%d, want 1/1", met.StoreHits.Value(), met.CacheHits.Value())
	}
	if got := eval.invoked.Load(); got != 0 {
		t.Fatalf("eval invoked %d times, want 0", got)
	}
}

// TestStoreMetricsExposed pins the tier counters and the derived hit-ratio
// gauge in the Prometheus exposition.
func TestStoreMetricsExposed(t *testing.T) {
	reg := telemetry.NewRegistry()
	st, err := resultstore.Open(resultstore.Config{Dir: t.TempDir(), Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	m := NewManager(Config{Workers: 1, Eval: awkwardEval, Store: st, Telemetry: reg})
	defer m.Shutdown(context.Background())

	v, err := m.Submit(testScenario(61))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(waitCtx(t), v.ID); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := m.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"ahs_service_store_hits_total 0",
		"ahs_service_store_misses_total 1",
		"ahs_service_store_hit_ratio 0",
		"ahs_store_puts_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
}
