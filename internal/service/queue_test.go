package service

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ahs/internal/telemetry"
)

// qjob builds a minimal job record for queue-level tests.
func qjob(id, tenant string) *job {
	return &job{id: id, tenant: tenant, done: make(chan struct{})}
}

// popIDs drains n jobs and returns their ids in service order.
func popIDs(t *testing.T, q *fairQueue, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatalf("queue closed after %d pops, want %d", i, n)
		}
		ids = append(ids, j.id)
	}
	return ids
}

func TestFairQueueRoundRobinAcrossTenants(t *testing.T) {
	q := newFairQueue(16, 0, nil)
	for _, j := range []*job{
		qjob("a1", "A"), qjob("a2", "A"), qjob("a3", "A"), qjob("a4", "A"),
		qjob("b1", "B"), qjob("b2", "B"),
	} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	got := strings.Join(popIDs(t, q, 6), " ")
	// Equal weights: strict alternation while both tenants have backlog,
	// then A's remainder. B's two jobs are never pushed behind A's flood.
	if want := "a1 b1 a2 b2 a3 a4"; got != want {
		t.Fatalf("service order %q, want %q", got, want)
	}
	if q.len() != 0 {
		t.Fatalf("queue len %d after drain", q.len())
	}
}

func TestFairQueueHonorsWeights(t *testing.T) {
	q := newFairQueue(16, 0, map[string]int{"A": 2})
	for _, j := range []*job{
		qjob("a1", "A"), qjob("a2", "A"), qjob("a3", "A"), qjob("a4", "A"),
		qjob("b1", "B"), qjob("b2", "B"),
	} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	got := strings.Join(popIDs(t, q, 6), " ")
	// Weight 2 buys two dequeues per turn.
	if want := "a1 a2 b1 a3 a4 b2"; got != want {
		t.Fatalf("service order %q, want %q", got, want)
	}
}

func TestFairQueueTenantQuota(t *testing.T) {
	q := newFairQueue(16, 2, nil)
	if err := q.push(qjob("a1", "A")); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("a2", "A")); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("a3", "A")); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("third queued job for A: err = %v, want ErrTenantQuota", err)
	}
	// The quota is per tenant: B still has full headroom.
	if err := q.push(qjob("b1", "B")); err != nil {
		t.Fatal(err)
	}
	// Draining one of A's jobs frees a slot.
	popIDs(t, q, 1)
	if err := q.push(qjob("a3", "A")); err != nil {
		t.Fatalf("push after drain: %v", err)
	}
}

func TestFairQueueCapacityAndClose(t *testing.T) {
	q := newFairQueue(2, 0, nil)
	if err := q.push(qjob("a1", "A")); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("b1", "B")); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("c1", "C")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over capacity: err = %v, want ErrQueueFull", err)
	}
	q.close()
	if err := q.push(qjob("d1", "D")); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("push after close: err = %v, want ErrShuttingDown", err)
	}
	// The backlog still drains after close, then pop reports closed.
	if got := strings.Join(popIDs(t, q, 2), " "); got != "a1 b1" {
		t.Fatalf("drained %q, want %q", got, "a1 b1")
	}
	if j, ok := q.pop(); ok {
		t.Fatalf("pop after drain returned %v", j.id)
	}
}

// TestFairShareBoundsSaturatingTenant is the manager-level fairness
// acceptance: a tenant flooding the queue cannot starve another tenant's
// jobs — with round-robin service, a small tenant's work starts within a
// couple of scheduling turns regardless of the flooder's backlog.
func TestFairShareBoundsSaturatingTenant(t *testing.T) {
	eval := newScriptedEval()
	m := NewManager(Config{Workers: 1, Eval: eval.fn})
	defer m.Shutdown(context.Background())

	hogCtx := WithTenant(context.Background(), "hog")
	smallCtx := WithTenant(context.Background(), "small")

	// The hog saturates: one job runs immediately, five more queue up.
	for seed := uint64(100); seed < 106; seed++ {
		if _, err := m.SubmitCtx(hogCtx, testScenario(seed)); err != nil {
			t.Fatal(err)
		}
	}
	smallHashes := make(map[string]bool)
	for seed := uint64(200); seed < 202; seed++ {
		sc := testScenario(seed)
		hash, err := sc.Hash()
		if err != nil {
			t.Fatal(err)
		}
		smallHashes[hash] = true
		if v, err := m.SubmitCtx(smallCtx, sc); err != nil {
			t.Fatal(err)
		} else if v.Tenant != "small" {
			t.Fatalf("job attributed to tenant %q, want small", v.Tenant)
		}
	}

	// Release the single worker one job at a time and record start order.
	starts := []string{eval.waitStarted(t)}
	for len(starts) < 8 {
		eval.release <- struct{}{}
		starts = append(starts, eval.waitStarted(t))
	}
	eval.release <- struct{}{} // let the last job finish

	// FIFO would start the small tenant's jobs 7th and 8th; fair-share
	// interleaves them with the hog's, so both appear in the first five.
	seen := 0
	for _, h := range starts[:5] {
		if smallHashes[h] {
			seen++
		}
	}
	if seen != len(smallHashes) {
		t.Fatalf("only %d/%d small-tenant jobs started in the first 5 of %q",
			seen, len(smallHashes), starts)
	}
}

// TestTenantQuotaRejectsOnlyThatTenant pins per-tenant admission: one
// tenant at its quota bounces with ErrTenantQuota while others keep
// submitting, and the rejection shows up in the per-tenant metrics.
func TestTenantQuotaRejectsOnlyThatTenant(t *testing.T) {
	eval := newScriptedEval()
	m := NewManager(Config{Workers: 1, TenantQuota: 2, Eval: eval.fn})
	defer func() {
		close(eval.release)
		m.Shutdown(context.Background())
	}()

	ctxA := WithTenant(context.Background(), "acme")
	ctxB := WithTenant(context.Background(), "beta")

	if _, err := m.SubmitCtx(ctxA, testScenario(61)); err != nil {
		t.Fatal(err)
	}
	eval.waitStarted(t) // running, not queued: doesn't count toward the quota
	for seed := uint64(62); seed < 64; seed++ {
		if _, err := m.SubmitCtx(ctxA, testScenario(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.SubmitCtx(ctxA, testScenario(64)); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("quota overflow: err = %v, want ErrTenantQuota", err)
	}
	if _, err := m.SubmitCtx(ctxB, testScenario(65)); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	if got := m.Metrics().QueueRejects.Value(); got != 1 {
		t.Fatalf("queueRejects = %d, want 1", got)
	}

	var buf strings.Builder
	if err := m.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`ahs_tenant_rejected_total{tenant="acme"} 1`,
		`ahs_tenant_submitted_total{tenant="acme"} 4`,
		`ahs_tenant_submitted_total{tenant="beta"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
}

// TestTenantLabelCardinalityCapped: metric labels fold into the overflow
// bucket past the cap, while scheduling still tracks every tenant.
func TestTenantLabelCardinalityCapped(t *testing.T) {
	tm := newTenantMetrics(telemetry.NewRegistry())
	for i := 0; i < maxTenantLabels; i++ {
		if got := tm.label(strings.Repeat("t", i+1)); got == tenantOverflowLabel {
			t.Fatalf("tenant %d folded before the cap", i)
		}
	}
	if got := tm.label("one-past-the-cap"); got != tenantOverflowLabel {
		t.Fatalf("tenant past cap labeled %q, want %q", got, tenantOverflowLabel)
	}
	// Known tenants keep their identity label.
	if got := tm.label("t"); got != "t" {
		t.Fatalf("existing tenant relabeled %q", got)
	}
}
