package service

import "expvar"

// Metrics are the manager's operational counters and gauges, held as
// expvar types so they serialize in the standard /debug/vars format. They
// are intentionally not Publish()ed globally — expvar.Publish panics on
// duplicate names, which would forbid more than one Manager per process
// (tests run many). The HTTP layer merges Map() into its /debug/vars view
// under the "ahs_serve" key instead.
//
// Counters are monotonic; queueDepth and running are gauges.
type Metrics struct {
	// Submitted counts accepted evaluation requests, including ones
	// answered from cache or deduplicated onto an in-flight job.
	Submitted expvar.Int
	// Completed / Failed / Cancelled count finished jobs by outcome.
	Completed expvar.Int
	Failed    expvar.Int
	Cancelled expvar.Int
	// CacheHits counts submissions answered from the result cache;
	// CacheMisses counts submissions that had to enqueue work.
	CacheHits   expvar.Int
	CacheMisses expvar.Int
	// DedupHits counts submissions coalesced onto an already queued or
	// running job with the same canonical hash.
	DedupHits expvar.Int
	// QueueRejects counts submissions bounced with a full queue (the
	// HTTP layer's 429s).
	QueueRejects expvar.Int
	// QueueDepth is the current number of queued-but-not-running jobs;
	// Running the number of jobs being evaluated right now.
	QueueDepth expvar.Int
	Running    expvar.Int
	// EvalMillis accumulates wall-clock evaluation time across finished
	// jobs; BatchesSimulated the trajectories they simulated. Their
	// ratio is the service's cost per batch.
	EvalMillis       expvar.Int
	BatchesSimulated expvar.Int
}

// metricNames fixes the exported key order and spelling; docs/api.md
// documents these names.
var metricNames = []string{
	"submitted", "completed", "failed", "cancelled",
	"cacheHits", "cacheMisses", "dedupHits", "queueRejects",
	"queueDepth", "running", "evalMillis", "batchesSimulated",
}

// Map assembles a fresh expvar.Map view over the live counters. The map
// shares the underlying vars, so it always reflects current values.
func (m *Metrics) Map() *expvar.Map {
	vars := map[string]expvar.Var{
		"submitted":        &m.Submitted,
		"completed":        &m.Completed,
		"failed":           &m.Failed,
		"cancelled":        &m.Cancelled,
		"cacheHits":        &m.CacheHits,
		"cacheMisses":      &m.CacheMisses,
		"dedupHits":        &m.DedupHits,
		"queueRejects":     &m.QueueRejects,
		"queueDepth":       &m.QueueDepth,
		"running":          &m.Running,
		"evalMillis":       &m.EvalMillis,
		"batchesSimulated": &m.BatchesSimulated,
	}
	out := new(expvar.Map).Init()
	for _, name := range metricNames {
		out.Set(name, vars[name])
	}
	return out
}
