package service

import (
	"expvar"

	"ahs/internal/telemetry"
)

// Metrics are the manager's operational counters and gauges. They live as
// families in a telemetry.Registry (scraped at GET /metrics in Prometheus
// text format) and are re-exported under the historical expvar names
// through Map(), so the /debug/vars surface documented in docs/api.md is
// unchanged. They are intentionally not expvar.Publish()ed globally —
// Publish panics on duplicate names, which would forbid more than one
// Manager per process (tests run many).
//
// Counters are monotonic; QueueDepth and Running are gauges.
type Metrics struct {
	// Submitted counts accepted evaluation requests, including ones
	// answered from cache or deduplicated onto an in-flight job.
	Submitted *telemetry.Counter
	// Completed / Failed / Cancelled count finished jobs by outcome.
	Completed *telemetry.Counter
	Failed    *telemetry.Counter
	Cancelled *telemetry.Counter
	// CacheHits counts submissions answered from the result cache;
	// CacheMisses counts submissions that had to enqueue work.
	CacheHits   *telemetry.Counter
	CacheMisses *telemetry.Counter
	// StoreHits counts submissions answered from the persistent second
	// tier (and backfilled into the LRU); StoreMisses counts submissions
	// that missed both tiers and evaluated. Both stay zero without a
	// configured store, keeping cache_hit_ratio's meaning unchanged for
	// single-tier deployments.
	StoreHits   *telemetry.Counter
	StoreMisses *telemetry.Counter
	// DedupHits counts submissions coalesced onto an already queued or
	// running job with the same canonical hash.
	DedupHits *telemetry.Counter
	// QueueRejects counts submissions bounced with a full queue (the
	// HTTP layer's 429s).
	QueueRejects *telemetry.Counter
	// QueueDepth is the current number of queued-but-not-running jobs;
	// Running the number of jobs being evaluated right now.
	QueueDepth *telemetry.Gauge
	Running    *telemetry.Gauge
	// EvalMillis accumulates wall-clock evaluation time across finished
	// jobs; BatchesSimulated the trajectories they simulated. Their
	// ratio is the service's cost per batch.
	EvalMillis       *telemetry.Counter
	BatchesSimulated *telemetry.Counter
}

// newMetrics registers the service families on reg. workers sizes the
// derived worker-utilization gauge.
func newMetrics(reg *telemetry.Registry, workers int) Metrics {
	counter := func(name, help string) *telemetry.Counter {
		return reg.Counter(telemetry.Opts{Name: name, Help: help})
	}
	m := Metrics{
		Submitted:        counter("ahs_service_submitted_total", "Accepted evaluation requests (cache and dedup hits included)."),
		Completed:        counter("ahs_service_completed_total", "Jobs finished successfully."),
		Failed:           counter("ahs_service_failed_total", "Jobs finished with an evaluation error."),
		Cancelled:        counter("ahs_service_cancelled_total", "Jobs cancelled by request, timeout or shutdown."),
		CacheHits:        counter("ahs_service_cache_hits_total", "Submissions answered from the in-memory result cache."),
		CacheMisses:      counter("ahs_service_cache_misses_total", "Submissions that missed the in-memory cache."),
		StoreHits:        counter("ahs_service_store_hits_total", "Submissions answered from the persistent result store."),
		StoreMisses:      counter("ahs_service_store_misses_total", "Submissions that missed the persistent store and evaluated."),
		DedupHits:        counter("ahs_service_dedup_hits_total", "Submissions coalesced onto an in-flight twin job."),
		QueueRejects:     counter("ahs_service_queue_rejects_total", "Submissions bounced with a full queue."),
		QueueDepth:       reg.Gauge(telemetry.Opts{Name: "ahs_service_queue_depth", Help: "Jobs queued but not yet running."}),
		Running:          reg.Gauge(telemetry.Opts{Name: "ahs_service_running", Help: "Jobs being evaluated right now."}),
		EvalMillis:       counter("ahs_service_eval_milliseconds_total", "Wall-clock evaluation time across finished jobs."),
		BatchesSimulated: counter("ahs_service_batches_simulated_total", "Monte-Carlo trajectories simulated by finished jobs."),
	}
	reg.GaugeFunc(telemetry.Opts{
		Name: "ahs_service_cache_hit_ratio",
		Help: "Cache hits over cache-deciding submissions (0 before any).",
	}, func() float64 {
		hits, misses := m.CacheHits.Value(), m.CacheMisses.Value()
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	})
	reg.GaugeFunc(telemetry.Opts{
		Name: "ahs_service_store_hit_ratio",
		Help: "Persistent-store hits over store-deciding submissions (0 before any, and always 0 without a store).",
	}, func() float64 {
		hits, misses := m.StoreHits.Value(), m.StoreMisses.Value()
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	})
	reg.GaugeFunc(telemetry.Opts{
		Name: "ahs_service_worker_utilization",
		Help: "Fraction of the worker pool evaluating a job.",
	}, func() float64 {
		if workers <= 0 {
			return 0
		}
		return float64(m.Running.Value()) / float64(workers)
	})
	return m
}

// metricNames fixes the exported key order and spelling; docs/api.md
// documents these names, and TestMetricsMapKeepsExpvarNames pins them.
var metricNames = []string{
	"submitted", "completed", "failed", "cancelled",
	"cacheHits", "cacheMisses", "storeHits", "storeMisses",
	"dedupHits", "queueRejects",
	"queueDepth", "running", "evalMillis", "batchesSimulated",
}

// Map assembles a fresh expvar.Map view over the live counters, keeping the
// pre-registry expvar names. The map holds expvar.Func readers over the
// registry-backed values, so it always reflects current values.
func (m *Metrics) Map() *expvar.Map {
	counter := func(c *telemetry.Counter) expvar.Var {
		return expvar.Func(func() any { return c.Value() })
	}
	gauge := func(g *telemetry.Gauge) expvar.Var {
		return expvar.Func(func() any { return g.Value() })
	}
	vars := map[string]expvar.Var{
		"submitted":        counter(m.Submitted),
		"completed":        counter(m.Completed),
		"failed":           counter(m.Failed),
		"cancelled":        counter(m.Cancelled),
		"cacheHits":        counter(m.CacheHits),
		"cacheMisses":      counter(m.CacheMisses),
		"storeHits":        counter(m.StoreHits),
		"storeMisses":      counter(m.StoreMisses),
		"dedupHits":        counter(m.DedupHits),
		"queueRejects":     counter(m.QueueRejects),
		"queueDepth":       gauge(m.QueueDepth),
		"running":          gauge(m.Running),
		"evalMillis":       counter(m.EvalMillis),
		"batchesSimulated": counter(m.BatchesSimulated),
	}
	out := new(expvar.Map).Init()
	for _, name := range metricNames {
		out.Set(name, vars[name])
	}
	return out
}
