package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ahs/internal/config"
	"ahs/internal/obs"
	"ahs/internal/telemetry"
)

// Sentinel errors surfaced by Submit and the job accessors; the HTTP layer
// maps them to status codes (429, 503, 404).
var (
	ErrQueueFull    = errors.New("service: evaluation queue is full")
	ErrShuttingDown = errors.New("service: manager is shutting down")
	ErrUnknownJob   = errors.New("service: unknown job id")
)

// Status is the lifecycle state of an evaluation job.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Config sizes the manager. The zero value gets sensible defaults.
type Config struct {
	// Workers is the number of jobs evaluated concurrently (default 2).
	Workers int
	// QueueSize bounds the number of jobs waiting for a worker; a full
	// queue rejects submissions with ErrQueueFull (default 64).
	QueueSize int
	// CacheSize is the LRU result-cache capacity in entries; 0 means the
	// default 256, negative disables caching.
	CacheSize int
	// WorkersPerJob bounds the simulation parallelism inside one job so
	// concurrent jobs don't oversubscribe the machine (default
	// GOMAXPROCS / Workers, at least 1).
	WorkersPerJob int
	// JobTimeout caps each job's evaluation wall-clock time; expired
	// jobs finish as cancelled. 0 means no cap.
	JobTimeout time.Duration
	// HistorySize bounds how many finished job records stay pollable
	// before the oldest are forgotten (default 1024).
	HistorySize int
	// Eval runs one scenario; nil means the production evaluation wired
	// to the manager's telemetry registry (see EvaluateInto). Tests
	// inject fakes to script slow, failing or blocking jobs.
	Eval EvalFunc
	// Telemetry is the registry the manager's operational metrics — and,
	// with the default Eval, the simulation's — are registered on. Nil
	// means a fresh private registry, exposed by Manager.Registry and
	// served at GET /metrics by the HTTP handler.
	Telemetry *telemetry.Registry
	// Backend reports the execution backend's readiness for GET /healthz.
	// Nil means the in-process local backend (always ready). Pair
	// ClusterEval with ClusterBackend so health reflects the cluster.
	Backend func() BackendHealth
	// Tracer, when non-nil, records a span per job run and links it to the
	// submitting request's trace, so one trace covers submit → evaluation
	// even though the job outlives the HTTP request.
	Tracer *obs.Tracer
	// ExtraHealth, when non-nil, contributes additional top-level fields to
	// the GET /healthz body — cmd/ahs-serve reports journal directory and
	// last-compaction status through it.
	ExtraHealth func() map[string]any
	// Store, when non-nil, is the persistent second tier under the LRU:
	// submissions missing both tiers evaluate and write through, so a curve
	// computed once is served forever — across restarts and by every
	// instance sharing the store directory (see internal/resultstore).
	Store ResultStore
	// Fleet, when non-nil, coordinates this instance with peers sharing
	// the store directory (see internal/fleet): submissions missing every
	// result tier claim their scenario fleet-wide before evaluating, and
	// finished results persist through the coordinator so the claim is
	// released only once the result is durable. A scenario a live peer
	// already claimed fails submission with *PeerClaimedError carrying
	// the holder's URL.
	Fleet FleetCoordinator
	// Logf, when non-nil, receives operational log lines (store read/write
	// failures); nil discards them.
	Logf func(format string, args ...any)
	// DefaultTenant is attributed submissions that name no tenant (empty =
	// "default"). Tenants arrive via WithTenant on the submit context — the
	// HTTP layer maps the X-AHS-Tenant header onto it.
	DefaultTenant string
	// TenantQuota caps one tenant's queued jobs; a tenant at its quota is
	// rejected with ErrTenantQuota (HTTP 429) while others keep submitting.
	// 0 means no per-tenant cap (the shared QueueSize still applies).
	TenantQuota int
	// TenantWeights sets deficit-round-robin weights per tenant; missing
	// tenants weigh 1. A weight-2 tenant dequeues two jobs per scheduling
	// cycle to every weight-1 tenant's one.
	TenantWeights map[string]int
}

// BackendHealth describes the execution backend behind the manager, as
// surfaced by GET /healthz.
type BackendHealth struct {
	// Mode is "local" (in-process simulation) or "cluster".
	Mode string `json:"mode"`
	// Ready reports whether the backend can run jobs right now. The
	// cluster backend is ready even with zero workers — it falls back to
	// local execution — so this only goes false for future backends with
	// hard dependencies.
	Ready bool `json:"ready"`
	// WorkersRegistered/WorkersLive count cluster workers; both zero in
	// local mode.
	WorkersRegistered int `json:"workersRegistered,omitempty"`
	WorkersLive       int `json:"workersLive,omitempty"`
	// RecoveredJobs counts journal-restored cluster jobs awaiting
	// re-submission of their scenario (see docs/cluster.md, "Failure
	// model & recovery"); always zero in local mode and without -journal-dir.
	RecoveredJobs int `json:"recoveredJobs,omitempty"`
	// Draining reports a coordinator that has stopped leasing ahead of a
	// graceful shutdown.
	Draining bool `json:"draining,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.WorkersPerJob <= 0 {
		c.WorkersPerJob = runtime.GOMAXPROCS(0) / c.Workers
		if c.WorkersPerJob < 1 {
			c.WorkersPerJob = 1
		}
	}
	if c.HistorySize <= 0 {
		c.HistorySize = 1024
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.NewRegistry()
	}
	if c.Eval == nil {
		c.Eval = EvaluateInto(c.Telemetry)
	}
	if c.DefaultTenant == "" {
		c.DefaultTenant = DefaultTenant
	}
	return c
}

// job is the mutable server-side record of one submission.
type job struct {
	id       string
	hash     string
	tenant   string
	scenario *config.Scenario
	// trace is the submitting request's span context; the job's run span
	// parents itself here so the trace survives the request's lifetime.
	trace obs.SpanContext

	ctx    context.Context
	cancel context.CancelFunc
	// done closes exactly once, when the job reaches a terminal status.
	done chan struct{}

	// batchesDone/maxBatches are updated from the estimator's progress
	// hook and read by pollers without locking.
	batchesDone atomic.Uint64
	maxBatches  atomic.Uint64
	// partial holds the latest in-flight curve snapshot (Welford CI state
	// rendered as a Result) for the SSE stream; nil until the first
	// accumulation round, and forever for backends without snapshots.
	partial atomic.Pointer[Result]
	// snaps numbers and retains recent snapshots so a dropped SSE stream
	// can resume from its Last-Event-ID without missing events.
	snaps snapshotLog

	mu        sync.Mutex
	status    Status
	cached    bool
	tier      string // "memory" or "store" when cached
	result    *Result
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Progress is a point-in-time view of a job's batch counter.
type Progress struct {
	BatchesDone uint64 `json:"batchesDone"`
	MaxBatches  uint64 `json:"maxBatches"`
}

// JobView is an immutable snapshot of a job for API responses.
type JobView struct {
	ID           string `json:"id"`
	ScenarioHash string `json:"scenarioHash"`
	Tenant       string `json:"tenant,omitempty"`
	Status       Status `json:"status"`
	Cached       bool   `json:"cached"`
	// CacheTier names the tier a cached result came from: "memory" (the
	// LRU) or "store" (the persistent second tier); empty when evaluated.
	CacheTier string   `json:"cacheTier,omitempty"`
	Progress  Progress `json:"progress"`
	Error     string   `json:"error,omitempty"`
	// TraceID correlates the job with its distributed trace (see
	// GET /v1/jobs/{id}/trace); empty when tracing was off or unsampled
	// at submit time.
	TraceID     string `json:"traceId,omitempty"`
	SubmittedAt string `json:"submittedAt,omitempty"`
	StartedAt   string `json:"startedAt,omitempty"`
	FinishedAt  string `json:"finishedAt,omitempty"`
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:           j.id,
		ScenarioHash: j.hash,
		Tenant:       j.tenant,
		Status:       j.status,
		Cached:       j.cached,
		CacheTier:    j.tier,
		TraceID:      traceIDOf(j.trace),
		Progress: Progress{
			BatchesDone: j.batchesDone.Load(),
			MaxBatches:  j.maxBatches.Load(),
		},
		Error: j.errMsg,
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	v.SubmittedAt = stamp(j.submitted)
	v.StartedAt = stamp(j.started)
	v.FinishedAt = stamp(j.finished)
	return v
}

// Manager owns the worker pool, the deduplication table and the result
// cache. Create with NewManager, stop with Shutdown.
type Manager struct {
	cfg       Config
	metrics   Metrics
	perTenant *tenantMetrics
	cache     *resultCache

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      *fairQueue
	wg         sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	nextID   uint64
	jobs     map[string]*job
	byHash   map[string]*job // queued or running jobs, for deduplication
	finished []string        // terminal job ids, oldest first, for pruning
}

// NewManager starts cfg.Workers worker goroutines and returns the manager.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		metrics:    newMetrics(cfg.Telemetry, cfg.Workers),
		perTenant:  newTenantMetrics(cfg.Telemetry),
		cache:      newResultCache(cfg.CacheSize),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      newFairQueue(cfg.QueueSize, cfg.TenantQuota, cfg.TenantWeights),
		jobs:       make(map[string]*job),
		byHash:     make(map[string]*job),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit registers a scenario for evaluation and returns a snapshot of the
// job that answers it. Identical scenarios (by canonical hash) coalesce:
// a cached result yields an immediately-done job, an in-flight twin is
// returned as-is. A full queue fails with ErrQueueFull; any scenario error
// (unparseable parameters) fails before enqueueing.
func (m *Manager) Submit(sc *config.Scenario) (JobView, error) {
	return m.SubmitCtx(context.Background(), sc)
}

// SubmitCtx is Submit with trace context: the caller's active span (the
// HTTP submit handler's, a sweep point's) becomes the parent of the job's
// run span, and dedup/cache/store verdicts plus the admission decision are
// annotated on it as events. ctx also carries the tenant identity (see
// WithTenant); submission never blocks on it.
func (m *Manager) SubmitCtx(ctx context.Context, sc *config.Scenario) (JobView, error) {
	hash, err := sc.Hash()
	if err != nil {
		return JobView{}, err
	}
	// Validate up front so malformed scenarios never occupy a queue slot
	// and errors surface synchronously.
	if _, err := sc.Params(); err != nil {
		return JobView{}, fmt.Errorf("service: invalid scenario: %w", err)
	}
	tenant := TenantFrom(ctx, m.cfg.DefaultTenant)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobView{}, ErrShuttingDown
	}
	m.metrics.Submitted.Add(1)
	m.perTenant.onSubmit(tenant)

	if twin, ok := m.byHash[hash]; ok {
		m.metrics.DedupHits.Add(1)
		obs.AddEvent(ctx, "service.dedup",
			obs.String("job", twin.id), obs.String("scenario", hash))
		return twin.view(), nil
	}
	if res, ok := m.cache.Get(hash); ok {
		m.metrics.CacheHits.Add(1)
		obs.AddEvent(ctx, "service.cache-hit", obs.String("scenario", hash))
		return m.bornDoneLocked(ctx, sc, hash, tenant, "memory", res), nil
	}
	m.metrics.CacheMisses.Add(1)
	obs.AddEvent(ctx, "service.cache-miss", obs.String("scenario", hash))
	if m.cfg.Store != nil {
		if res, ok := m.storeGet(hash); ok {
			m.metrics.StoreHits.Add(1)
			obs.AddEvent(ctx, "service.store-hit", obs.String("scenario", hash))
			// Backfill the LRU so the next submitter skips the disk read.
			m.cache.Put(hash, res)
			return m.bornDoneLocked(ctx, sc, hash, tenant, "store", res), nil
		}
		m.metrics.StoreMisses.Add(1)
		obs.AddEvent(ctx, "service.store-miss", obs.String("scenario", hash))
	}
	// Every local tier missed: claim the scenario fleet-wide before it
	// occupies a queue slot. A peer-held claim fails the submission with
	// the holder's URL so the HTTP layer can redirect.
	if err := m.fleetClaimLocked(sc, hash); err != nil {
		var peer *PeerClaimedError
		if errors.As(err, &peer) {
			obs.AddEvent(ctx, "service.peer-claimed",
				obs.String("scenario", hash), obs.String("peer", peer.URL))
		}
		return JobView{}, err
	}

	j := m.newJobLocked(ctx, sc, hash)
	j.tenant = tenant
	if err := m.queue.push(j); err != nil {
		m.metrics.QueueRejects.Add(1)
		m.perTenant.onReject(tenant)
		obs.AddEvent(ctx, "service.admission-rejected",
			obs.String("tenant", tenant), obs.String("reason", err.Error()))
		j.cancel()
		// The claim was taken for a job that will never run; free it so a
		// peer with queue headroom can pick the scenario up immediately.
		m.fleetRelease(hash)
		return JobView{}, err
	}
	m.metrics.QueueDepth.Add(1)
	m.perTenant.addDepth(tenant, 1)
	obs.AddEvent(ctx, "service.admitted",
		obs.String("job", j.id), obs.String("tenant", tenant))
	m.jobs[j.id] = j
	m.byHash[hash] = j
	return j.view(), nil
}

// bornDoneLocked materializes an immediately-done job around a result
// served from a cache tier; m.mu must be held. The cache is keyed by the
// canonical hash, which ignores the cosmetic name — a sweep point and a
// direct submission share one entry. Hand each submitter the result under
// its own name so a shared entry never mislabels a point.
func (m *Manager) bornDoneLocked(ctx context.Context, sc *config.Scenario, hash, tenant, tier string, res *Result) JobView {
	if res.Name != sc.Name {
		relabeled := *res
		relabeled.Name = sc.Name
		res = &relabeled
	}
	j := m.newJobLocked(ctx, sc, hash)
	j.tenant = tenant
	j.cached = true
	j.tier = tier
	j.result = res
	j.status = StatusDone
	j.finished = j.submitted
	j.batchesDone.Store(res.Batches)
	j.maxBatches.Store(res.Batches)
	close(j.done)
	j.cancel() // born terminal: release the context immediately
	m.jobs[j.id] = j
	m.rememberFinishedLocked(j.id)
	return j.view()
}

// newJobLocked allocates a job record; m.mu must be held. submitCtx only
// contributes the submitter's trace identity — the job's lifecycle context
// derives from the manager's base context, not the request's.
func (m *Manager) newJobLocked(submitCtx context.Context, sc *config.Scenario, hash string) *job {
	m.nextID++
	ctx, cancel := context.WithCancel(m.baseCtx)
	trace, _ := obs.ContextSpanContext(submitCtx)
	return &job{
		id:        fmt.Sprintf("job-%d", m.nextID),
		hash:      hash,
		scenario:  sc,
		trace:     trace,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		status:    StatusQueued,
		submitted: time.Now(),
	}
}

// Job returns a snapshot of the job, or ErrUnknownJob.
func (m *Manager) Job(id string) (JobView, error) {
	j, err := m.lookup(id)
	if err != nil {
		return JobView{}, err
	}
	return j.view(), nil
}

// Result returns the job's result once it is done. The view carries the
// authoritative status; result is nil unless Status == StatusDone.
func (m *Manager) Result(id string) (*Result, JobView, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, JobView{}, err
	}
	j.mu.Lock()
	res := j.result
	j.mu.Unlock()
	return res, j.view(), nil
}

// Partial returns the job's latest partial-result snapshot (the Welford
// state after the most recent accumulation round), or nil when none has
// been published yet — before the first round, for cached jobs, and for
// backends without a snapshot source.
func (m *Manager) Partial(id string) (*Result, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	return j.partial.Load(), nil
}

// Cancel requests cancellation of a queued or running job. Queued jobs
// settle immediately; running jobs stop within one simulation batch. It is
// a no-op on terminal jobs.
func (m *Manager) Cancel(id string) (JobView, error) {
	j, err := m.lookup(id)
	if err != nil {
		return JobView{}, err
	}
	j.cancel()
	// A queued job has no worker to notice the cancelled context; settle
	// it here so pollers see the terminal state right away. The worker
	// that eventually drains it skips non-queued jobs.
	m.finishIf(j, StatusQueued, StatusCancelled, nil, context.Canceled)
	return j.view(), nil
}

// Wait blocks until the job reaches a terminal status or ctx expires.
func (m *Manager) Wait(ctx context.Context, id string) (JobView, error) {
	j, err := m.lookup(id)
	if err != nil {
		return JobView{}, err
	}
	select {
	case <-j.done:
		return j.view(), nil
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
}

// Metrics exposes the manager's live counters.
func (m *Manager) Metrics() *Metrics { return &m.metrics }

// Registry exposes the telemetry registry the manager's metrics (and, with
// the default evaluation, the simulation engine's) are registered on. The
// HTTP layer serves it at GET /metrics.
func (m *Manager) Registry() *telemetry.Registry { return m.cfg.Telemetry }

// Backend reports the execution backend's health (see Config.Backend).
func (m *Manager) Backend() BackendHealth {
	if m.cfg.Backend == nil {
		return BackendHealth{Mode: "local", Ready: true}
	}
	return m.cfg.Backend()
}

// CacheLen reports the number of cached results.
func (m *Manager) CacheLen() int { return m.cache.Len() }

func (m *Manager) lookup(id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j, nil
}

// Shutdown stops accepting submissions, lets workers drain every queued
// and in-flight job, and returns when they are all terminal. If ctx
// expires first, all remaining jobs are cancelled (they stop within one
// batch) and ctx.Err() is returned after the pool exits.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	alreadyClosed := m.closed
	m.closed = true
	m.mu.Unlock()
	if !alreadyClosed {
		m.queue.close()
	}

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		m.baseCancel()
		<-drained
		return ctx.Err()
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j, ok := m.queue.pop()
		if !ok {
			return
		}
		m.metrics.QueueDepth.Add(-1)
		m.perTenant.addDepth(j.tenant, -1)
		m.runJob(j)
	}
}

func (m *Manager) runJob(j *job) {
	j.mu.Lock()
	if j.status != StatusQueued {
		// Cancelled while queued and already settled.
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()

	m.metrics.Running.Add(1)
	defer m.metrics.Running.Add(-1)

	ctx := j.ctx
	if m.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.cfg.JobTimeout)
		defer cancel()
	}
	// Re-join the submitter's trace: the job context descends from the
	// manager's base context, so the trace identity has to be re-attached
	// explicitly before starting the run span.
	ctx = obs.ContextWithRemote(ctx, m.cfg.Tracer, j.trace)
	ctx, span := obs.Start(ctx, "service.job",
		obs.String("job", j.id), obs.String("scenario", j.hash),
		obs.String("tenant", j.tenant))
	defer span.End()
	progress := func(done, max uint64) {
		j.batchesDone.Store(done)
		j.maxBatches.Store(max)
	}
	// Publish partial-curve snapshots for GET /v1/jobs/{id}/stream. The
	// sink travels by context so EvalFunc's signature is unchanged; the
	// default evaluation feeds it after every accumulation round, while
	// backends without a snapshot source (the cluster) simply never call it
	// and streams carry progress only.
	ctx = withSnapshotSink(ctx, func(r *Result) {
		j.partial.Store(r)
		j.snaps.append(r)
	})

	start := time.Now()
	res, err := m.cfg.Eval(ctx, j.scenario, m.cfg.WorkersPerJob, progress)
	elapsed := time.Since(start)
	span.RecordError(err)

	switch {
	case err == nil:
		m.cache.Put(j.hash, res)
		m.persistResult(j.hash, res)
		m.metrics.EvalMillis.Add(uint64(elapsed.Milliseconds()))
		m.metrics.BatchesSimulated.Add(res.Batches)
		m.finishIf(j, StatusRunning, StatusDone, res, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		m.finishIf(j, StatusRunning, StatusCancelled, nil, err)
	default:
		m.finishIf(j, StatusRunning, StatusFailed, nil, err)
	}
}

// finishIf atomically moves the job from one status to a terminal one; it
// is the only place jobs reach terminal states, so done closes exactly
// once and the outcome counters stay consistent.
func (m *Manager) finishIf(j *job, from, to Status, res *Result, err error) {
	j.mu.Lock()
	if j.status != from {
		j.mu.Unlock()
		return
	}
	j.status = to
	j.result = res
	if err != nil {
		j.errMsg = err.Error()
	}
	j.finished = time.Now()
	close(j.done)
	j.mu.Unlock()
	// Release the job's context registration on the manager's base
	// context; without this every finished job would stay reachable from
	// baseCtx until shutdown — a real leak on a long-lived server.
	j.cancel()

	switch to {
	case StatusDone:
		m.metrics.Completed.Add(1)
		m.perTenant.onComplete(j.tenant)
	case StatusFailed:
		m.metrics.Failed.Add(1)
	case StatusCancelled:
		m.metrics.Cancelled.Add(1)
	}
	// A job that ended without a result still holds its fleet claim
	// (persistResult only releases on success); free it so peers can
	// re-claim now instead of waiting out the TTL. Done jobs released
	// inside PutResult — after the result was durable, never before.
	if to != StatusDone {
		m.fleetRelease(j.hash)
	}

	m.mu.Lock()
	if m.byHash[j.hash] == j {
		delete(m.byHash, j.hash)
	}
	m.rememberFinishedLocked(j.id)
	m.mu.Unlock()
}

// traceIDOf renders a span context's trace ID, or "" for the zero value.
func traceIDOf(sc obs.SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	return sc.TraceID.String()
}

// rememberFinishedLocked records a terminal job for history pruning;
// m.mu must be held.
func (m *Manager) rememberFinishedLocked(id string) {
	m.finished = append(m.finished, id)
	for len(m.finished) > m.cfg.HistorySize {
		delete(m.jobs, m.finished[0])
		m.finished = m.finished[1:]
	}
}
