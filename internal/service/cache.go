package service

import (
	"container/list"
	"sync"
)

// resultCache is a thread-safe LRU of finished evaluation results keyed by
// canonical scenario hash. Results are immutable once stored, so Get hands
// out shared pointers.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached result for key and marks it most recently used.
func (c *resultCache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores the result, evicting the least recently used entry when over
// capacity. A zero or negative capacity disables caching entirely.
func (c *resultCache) Put(key string, res *Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
