package service

import (
	"encoding/json"
	"fmt"

	"ahs/internal/config"
)

// FleetCoordinator is the store-mediated claim layer a multi-instance
// fleet shares (see internal/fleet; *fleet.Node satisfies this
// structurally — the interface is declared here so the service layer
// stays free of the fleet import). With a coordinator configured, the
// submit path's miss order becomes memory → store → claim → evaluate:
// a scenario no tier holds is claimed fleet-wide before any worker
// touches it, so exactly one instance evaluates it no matter how many
// received the submission.
type FleetCoordinator interface {
	// TryClaim records this instance's intent to evaluate the scenario
	// (canonical JSON in scenario, carried for crash adoption). Not
	// acquired means a live peer holds it; holderURL is that peer's
	// advertised base URL when known.
	TryClaim(hash string, scenario []byte) (acquired bool, holderURL string, err error)
	// Release frees a claim without a result — the job failed, was
	// cancelled, or never made it into the queue — so any peer may
	// re-claim immediately instead of waiting out the TTL.
	Release(hash string)
	// PutResult durably persists a finished result (JSON encoding of
	// the Result) and releases the claim; on a follower this forwards
	// to the writer. A fencing rejection surfaces as an error.
	PutResult(hash string, value []byte) error
	// Role reports this instance's current fleet role: "writer",
	// "follower" or "promoting".
	Role() string
}

// PeerClaimedError reports a submission whose scenario a fleet peer is
// already evaluating. The HTTP layer turns it into a 307 redirect to
// the holder (re-POSTing there lands on the instance that owns the
// job), or a retryable 409 when the holder advertised no URL.
type PeerClaimedError struct {
	Hash string // canonical scenario hash
	URL  string // holder's advertised base URL; may be empty
}

func (e *PeerClaimedError) Error() string {
	if e.URL == "" {
		return fmt.Sprintf("service: scenario %s is claimed by a fleet peer", e.Hash)
	}
	return fmt.Sprintf("service: scenario %s is claimed by fleet peer %s", e.Hash, e.URL)
}

// fleetClaimLocked runs the claim step of the submit path; m.mu must be
// held (the flock inside TryClaim is short-lived — microseconds of file
// I/O — which keeps claim-then-enqueue atomic against a racing submit
// of the same hash on this instance). A claim-layer error fails open:
// losing dedup costs a redundant evaluation, failing the submission
// costs availability, and the store put still coalesces at persist
// time.
func (m *Manager) fleetClaimLocked(sc *config.Scenario, hash string) error {
	if m.cfg.Fleet == nil {
		return nil
	}
	payload, err := json.Marshal(sc.Canonical())
	if err != nil {
		return fmt.Errorf("service: encoding scenario for fleet claim: %w", err)
	}
	acquired, holder, err := m.cfg.Fleet.TryClaim(hash, payload)
	if err != nil {
		m.logf("service: fleet claim for %s failed, evaluating locally: %v", hash, err)
		return nil
	}
	if !acquired {
		return &PeerClaimedError{Hash: hash, URL: holder}
	}
	return nil
}

// fleetRelease frees the claim on a job that ended without a result.
func (m *Manager) fleetRelease(hash string) {
	if m.cfg.Fleet != nil {
		m.cfg.Fleet.Release(hash)
	}
}

// persistResult writes a finished Result to the durable tier. With a
// fleet coordinator the write goes through it — PutResult persists (or
// forwards to the writer) and releases the claim only after the result
// is safe, the fleet's exactly-once ledger entry. Without one, the
// plain store write-through applies. Errors are logged, not returned:
// the result is already in memory and served; a fenced put means a peer
// superseded this evaluation and its (bit-identical) result is already
// durable.
func (m *Manager) persistResult(hash string, res *Result) {
	if m.cfg.Fleet == nil {
		m.storePut(hash, res)
		return
	}
	raw, err := json.Marshal(res)
	if err != nil {
		m.logf("service: encoding result %s for fleet put: %v", hash, err)
		m.fleetRelease(hash)
		return
	}
	if err := m.cfg.Fleet.PutResult(hash, raw); err != nil {
		m.logf("service: fleet put for %s: %v", hash, err)
	}
}

// JobByHash returns the live (queued or running) job evaluating the
// canonical scenario hash, if any. Terminal jobs are not indexed by
// hash — their results live in the cache tiers; see StoredResult.
func (m *Manager) JobByHash(hash string) (JobView, bool) {
	m.mu.Lock()
	j, ok := m.byHash[hash]
	m.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// StoredResult looks a canonical scenario hash up in the result tiers:
// the in-memory LRU first, then the persistent store. It backs
// GET /v1/scenarios/{hash}, which must answer for results computed by
// any fleet member, not just jobs this instance ran.
func (m *Manager) StoredResult(hash string) (*Result, bool) {
	if res, ok := m.cache.Get(hash); ok {
		return res, true
	}
	return m.storeGet(hash)
}
