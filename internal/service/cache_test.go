package service

import (
	"fmt"
	"testing"
)

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := newResultCache(2)
	a, b, d := &Result{ScenarioHash: "a"}, &Result{ScenarioHash: "b"}, &Result{ScenarioHash: "d"}
	c.Put("a", a)
	c.Put("b", b)
	if _, ok := c.Get("a"); !ok { // touch "a": "b" is now LRU
		t.Fatal("a missing")
	}
	c.Put("d", d)
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if got, ok := c.Get("a"); !ok || got != a {
		t.Fatal("a lost or replaced")
	}
	if got, ok := c.Get("d"); !ok || got != d {
		t.Fatal("d lost or replaced")
	}
}

func TestCacheReplaceMovesToFront(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", &Result{})
	c.Put("b", &Result{})
	a2 := &Result{Batches: 2}
	c.Put("a", a2) // replace, making "b" the LRU
	c.Put("d", &Result{})
	if got, ok := c.Get("a"); !ok || got != a2 {
		t.Fatal("replacement lost")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestCacheDisabledByNegativeCapacity(t *testing.T) {
	c := newResultCache(-1)
	c.Put("a", &Result{})
	if c.Len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	// Exercised under -race in CI: hammer the cache from several
	// goroutines and rely on the detector for correctness.
	c := newResultCache(8)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%16)
				c.Put(key, &Result{ScenarioHash: key})
				if res, ok := c.Get(key); ok && res.ScenarioHash != key {
					t.Errorf("cache returned wrong entry for %s", key)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if c.Len() > 8 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}
