package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"ahs/internal/config"
	"ahs/internal/obs"
)

// sseEvent is one parsed Server-Sent Event; id is 0 when the event
// carried no id line.
type sseEvent struct {
	name string
	id   uint64
	data []byte
}

// readSSEEvent reads the next event from an open stream, skipping
// heartbeat comments; io.EOF means the server closed the stream.
func readSSEEvent(r *bufio.Reader) (sseEvent, error) {
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			ev.id, _ = strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
		case strings.HasPrefix(line, "data: "):
			ev.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && ev.name != "":
			return ev, nil
		}
	}
}

// readAllSSE drains a stream until the server closes it.
func readAllSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	r := bufio.NewReader(body)
	var events []sseEvent
	for {
		ev, err := readSSEEvent(r)
		if err == io.EOF {
			return events
		}
		if err != nil {
			t.Fatalf("reading stream: %v", err)
		}
		events = append(events, ev)
	}
}

func openStream(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type %q", ct)
	}
	return resp
}

// TestHTTPJobStreamDeliversProgressAndResult: the stream emits monotone
// progress and ends with exactly one terminal "result" event whose payload
// matches the polled GET /v1/results/{id} byte for byte.
func TestHTTPJobStreamDeliversProgressAndResult(t *testing.T) {
	eval := newScriptedEval()
	srv, _ := newTestServer(t, Config{Workers: 1, Eval: eval.fn})

	_, ack := postScenario(t, srv, tinyScenarioJSON)
	eval.waitStarted(t)

	resp := openStream(t, srv.URL+"/v1/jobs/"+ack.ID+"/stream")
	close(eval.release)
	events := readAllSSE(t, resp.Body)

	if len(events) == 0 {
		t.Fatal("empty stream")
	}
	var lastDone uint64
	progressCount, terminalCount := 0, 0
	for _, ev := range events {
		switch ev.name {
		case "progress":
			progressCount++
			var p Progress
			if err := json.Unmarshal(ev.data, &p); err != nil {
				t.Fatalf("progress payload %s: %v", ev.data, err)
			}
			if p.BatchesDone < lastDone {
				t.Fatalf("progress went backwards: %d after %d", p.BatchesDone, lastDone)
			}
			lastDone = p.BatchesDone
		case "result", "status":
			terminalCount++
		}
	}
	if progressCount == 0 {
		t.Fatalf("no progress events in %d events", len(events))
	}
	if terminalCount != 1 {
		t.Fatalf("%d terminal events, want exactly 1", terminalCount)
	}
	last := events[len(events)-1]
	if last.name != "result" {
		t.Fatalf("final event %q, want result", last.name)
	}

	var streamed, polled Result
	if err := json.Unmarshal(last.data, &streamed); err != nil {
		t.Fatal(err)
	}
	getJSON(t, srv.URL+ack.ResultURL, &polled)
	sb, _ := json.Marshal(streamed)
	pb, _ := json.Marshal(polled)
	if string(sb) != string(pb) {
		t.Fatalf("streamed result diverged from polled:\n %s\n %s", sb, pb)
	}
}

// TestHTTPJobStreamSnapshots drives a scripted evaluation that publishes
// partial results through the context sink, and checks the stream delivers
// each snapshot before the terminal result.
func TestHTTPJobStreamSnapshots(t *testing.T) {
	started := make(chan struct{})
	step := make(chan struct{})
	fn := func(ctx context.Context, sc *config.Scenario, workers int, progress func(done, max uint64)) (*Result, error) {
		hash, _ := sc.Hash()
		snap := snapshotSinkFrom(ctx)
		if snap == nil {
			t.Error("no snapshot sink on the evaluation context")
			return nil, context.Canceled
		}
		wait := func() error { // each step gate stays cancellable so a failed
			select { // test's shutdown can still drain the worker
			case <-step:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		snap(&Result{ScenarioHash: hash, Batches: 100})
		close(started)
		if err := wait(); err != nil { // stream observed snapshot 1
			return nil, err
		}
		snap(&Result{ScenarioHash: hash, Batches: 200})
		if err := wait(); err != nil { // stream observed snapshot 2
			return nil, err
		}
		return &Result{ScenarioHash: hash, Times: sc.TripHours, Batches: 400, Converged: true}, nil
	}
	srv, _ := newTestServer(t, Config{Workers: 1, Eval: fn})

	_, ack := postScenario(t, srv, tinyScenarioJSON)
	<-started
	resp := openStream(t, srv.URL+"/v1/jobs/"+ack.ID+"/stream")
	r := bufio.NewReader(resp.Body)

	nextOf := func(name string) Result {
		t.Helper()
		for {
			ev, err := readSSEEvent(r)
			if err != nil {
				t.Fatalf("waiting for %q: %v", name, err)
			}
			if ev.name != name {
				continue
			}
			var res Result
			if err := json.Unmarshal(ev.data, &res); err != nil {
				t.Fatal(err)
			}
			return res
		}
	}
	if got := nextOf("snapshot").Batches; got != 100 {
		t.Fatalf("first snapshot batches %d, want 100", got)
	}
	step <- struct{}{}
	if got := nextOf("snapshot").Batches; got != 200 {
		t.Fatalf("second snapshot batches %d, want 200", got)
	}
	step <- struct{}{}
	if got := nextOf("result").Batches; got != 400 {
		t.Fatalf("terminal result batches %d, want 400", got)
	}
}

// TestHTTPJobStreamCachedJob: a job born done (cache hit) streams its
// result immediately.
func TestHTTPJobStreamCachedJob(t *testing.T) {
	eval := newScriptedEval()
	close(eval.release)
	srv, m := newTestServer(t, Config{Workers: 1, Eval: eval.fn})

	_, first := postScenario(t, srv, tinyScenarioJSON)
	if _, err := m.Wait(waitCtx(t), first.ID); err != nil {
		t.Fatal(err)
	}
	_, second := postScenario(t, srv, tinyScenarioJSON)
	if !second.Cached {
		t.Fatalf("second submission not cached: %+v", second)
	}

	resp := openStream(t, srv.URL+"/v1/jobs/"+second.ID+"/stream")
	events := readAllSSE(t, resp.Body)
	if len(events) == 0 || events[len(events)-1].name != "result" {
		t.Fatalf("cached stream events %+v, want immediate result", events)
	}
}

// TestHTTPJobStreamUnderTracing pins streaming through the tracing
// middleware: obs.Middleware wraps the ResponseWriter to capture the
// status, and without its Unwrap hook http.ResponseController cannot
// reach the Flusher — the production default (tracing on) would 500
// every stream while the untraced unit tests stayed green.
func TestHTTPJobStreamUnderTracing(t *testing.T) {
	eval := newScriptedEval()
	close(eval.release)
	tracer := obs.NewTracer(obs.Config{SampleEvery: 1, MaxTraces: 16, MaxSpans: 64})
	srv, _ := newTestServer(t, Config{Workers: 1, Eval: eval.fn, Tracer: tracer})

	_, ack := postScenario(t, srv, tinyScenarioJSON)
	resp := openStream(t, srv.URL+"/v1/jobs/"+ack.ID+"/stream")
	events := readAllSSE(t, resp.Body)
	if len(events) == 0 || events[len(events)-1].name != "result" {
		t.Fatalf("traced stream events %+v, want a terminal result", events)
	}
}

// TestHTTPJobStreamUnknownJob404s before committing to the event stream.
func TestHTTPJobStreamUnknownJob404s(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/v1/jobs/job-404/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestEvaluateStreamsSnapshots runs the production evaluation with a
// snapshot sink and checks the partial curves converge onto the final
// result: monotone batch counts, and a last snapshot bit-identical to the
// returned curve (both render the same Welford state).
func TestEvaluateStreamsSnapshots(t *testing.T) {
	var snaps []*Result
	ctx := withSnapshotSink(context.Background(), func(r *Result) { snaps = append(snaps, r) })
	res, err := Evaluate(ctx, testScenario(1), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("production evaluation published no snapshots")
	}
	var last uint64
	for i, s := range snaps {
		if s.Batches <= last && i > 0 {
			t.Fatalf("snapshot %d batches %d not increasing past %d", i, s.Batches, last)
		}
		last = s.Batches
		if len(s.Times) != len(res.Times) || len(s.Unsafety) != len(res.Unsafety) {
			t.Fatalf("snapshot %d grid mismatch: %+v", i, s)
		}
	}
	final := snaps[len(snaps)-1]
	if got, want := resultBits(final), resultBits(res); got != want {
		t.Fatalf("final snapshot diverged from the returned result:\n got %s\nwant %s", got, want)
	}
}

// TestHTTPTenantHeaderAttribution: X-AHS-Tenant rides submission into the
// job view; absent, the default tenant applies.
func TestHTTPTenantHeaderAttribution(t *testing.T) {
	eval := newScriptedEval()
	close(eval.release)
	srv, m := newTestServer(t, Config{Workers: 1, Eval: eval.fn})

	req, err := http.NewRequest("POST", srv.URL+"/v1/evaluate", strings.NewReader(tinyScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TenantHeader, "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ack evaluateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	view, err := m.Job(ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view.Tenant != "acme" {
		t.Fatalf("job tenant %q, want acme", view.Tenant)
	}

	// No header: the default tenant. A different scenario avoids dedup.
	_, ack2 := postScenario(t, srv, strings.Replace(tinyScenarioJSON, `"seed": 1`, `"seed": 2`, 1))
	view2, err := m.Job(ack2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if view2.Tenant != DefaultTenant {
		t.Fatalf("headerless job tenant %q, want %q", view2.Tenant, DefaultTenant)
	}
}

// TestHTTPTenantQuota429: a tenant at its quota gets 429 with Retry-After;
// another tenant keeps submitting.
func TestHTTPTenantQuota429(t *testing.T) {
	eval := newScriptedEval()
	srv, _ := newTestServer(t, Config{Workers: 1, TenantQuota: 1, Eval: eval.fn})
	defer close(eval.release)

	post := func(tenant, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("POST", srv.URL+"/v1/evaluate", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(TenantHeader, tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	scenario := func(seed int) string {
		return strings.Replace(tinyScenarioJSON, `"seed": 1`, `"seed": `+strconv.Itoa(seed), 1)
	}

	if resp := post("hog", scenario(1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit %d", resp.StatusCode)
	}
	eval.waitStarted(t) // running: the quota governs queued jobs only
	if resp := post("hog", scenario(2)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit %d", resp.StatusCode)
	}
	resp := post("hog", scenario(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 lacks Retry-After")
	}
	if resp := post("other", scenario(3)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant %d, want 202", resp.StatusCode)
	}
}
