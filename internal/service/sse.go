package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// SSEHeartbeat is how often a quiet stream emits a comment line so
// proxies and clients can distinguish "no news" from a dead connection.
const SSEHeartbeat = 15 * time.Second

// SSEPollInterval paces the stream handlers' checks for new progress; SSE
// events are emitted on change only, so the wire stays quiet between
// accumulation rounds.
const SSEPollInterval = 100 * time.Millisecond

// snapshotLogSize bounds how many numbered snapshots a job retains for
// Last-Event-ID resume. A reconnecting client whose last-seen event has
// already been evicted simply resumes from the oldest retained snapshot —
// snapshots are cumulative (each is the full Welford state), so skipping
// superseded ones loses nothing.
const snapshotLogSize = 32

// snapshotLog is a bounded, monotonically-numbered record of one job's
// partial-result snapshots. Sequence numbers start at 1 and never
// repeat, so they double as SSE event ids: a client that reconnects
// with Last-Event-ID: N is replayed every retained snapshot with seq >
// N, exactly once each.
type snapshotLog struct {
	mu      sync.Mutex
	seq     uint64
	entries []SnapshotEvent
}

// SnapshotEvent is one numbered partial-result snapshot, as replayed to
// resuming SSE clients.
type SnapshotEvent struct {
	Seq    uint64
	Result *Result
}

func (l *snapshotLog) append(r *Result) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	l.entries = append(l.entries, SnapshotEvent{Seq: l.seq, Result: r})
	if len(l.entries) > snapshotLogSize {
		l.entries = l.entries[len(l.entries)-snapshotLogSize:]
	}
}

// since returns the retained snapshots with sequence numbers above
// after, oldest first.
func (l *snapshotLog) since(after uint64) []SnapshotEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := 0
	for i < len(l.entries) && l.entries[i].Seq <= after {
		i++
	}
	if i == len(l.entries) {
		return nil
	}
	out := make([]SnapshotEvent, len(l.entries)-i)
	copy(out, l.entries[i:])
	return out
}

// SnapshotsSince returns the job's retained partial-result snapshots
// with sequence numbers above after, oldest first. It backs the SSE
// stream's Last-Event-ID resume.
func (m *Manager) SnapshotsSince(id string, after uint64) ([]SnapshotEvent, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	return j.snaps.since(after), nil
}

// SSEWriter renders Server-Sent Events (text/event-stream). Each send
// extends the connection's write deadline, so streams outlive the server's
// global write timeout (30s by default in cmd/ahs-serve) for as long as
// events keep flowing.
type SSEWriter struct {
	w  http.ResponseWriter
	rc *http.ResponseController
}

// NewSSEWriter switches the response into event-stream mode. It fails
// (with a plain 500, nothing yet written) when the underlying writer
// cannot flush — SSE without flushing would buffer forever.
func NewSSEWriter(w http.ResponseWriter) (*SSEWriter, error) {
	// Headers must precede the Flush probe: the first successful Flush
	// commits the response. A failed probe writes nothing, so the error
	// path is still free to send a plain JSON 500.
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no") // tell nginx-style proxies not to buffer
	rc := http.NewResponseController(w)
	if err := rc.Flush(); err != nil {
		return nil, fmt.Errorf("service: response writer cannot stream: %w", err)
	}
	return &SSEWriter{w: w, rc: rc}, nil
}

// Send writes one event with a JSON data payload and flushes it.
func (s *SSEWriter) Send(event string, data any) error {
	return s.send(event, 0, data)
}

// SendID writes one event carrying an SSE event id, so clients that
// reconnect can resume from it via the Last-Event-ID request header.
func (s *SSEWriter) SendID(event string, id uint64, data any) error {
	return s.send(event, id, data)
}

func (s *SSEWriter) send(event string, id uint64, data any) error {
	body, err := json.Marshal(data)
	if err != nil {
		return err
	}
	// Each write earns a fresh deadline; an idle or stuck client is cut
	// loose after one heartbeat-scaled grace instead of holding the
	// connection forever.
	_ = s.rc.SetWriteDeadline(time.Now().Add(2 * SSEHeartbeat))
	if id > 0 {
		if _, err := fmt.Fprintf(s.w, "id: %d\n", id); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", event, body); err != nil {
		return err
	}
	return s.rc.Flush()
}

// Heartbeat writes a comment line (ignored by SSE clients) so proxies and
// clients can tell a quiet stream from a dead connection.
func (s *SSEWriter) Heartbeat() error {
	_ = s.rc.SetWriteDeadline(time.Now().Add(2 * SSEHeartbeat))
	if _, err := fmt.Fprint(s.w, ": heartbeat\n\n"); err != nil {
		return err
	}
	return s.rc.Flush()
}

// lastEventID parses the SSE Last-Event-ID request header; absent or
// unparseable means 0, i.e. start from the beginning.
func lastEventID(r *http.Request) uint64 {
	v, err := strconv.ParseUint(r.Header.Get("Last-Event-ID"), 10, 64)
	if err != nil {
		return 0
	}
	return v
}

// handleJobStream serves GET /v1/jobs/{id}/stream: an SSE stream of the
// job's life. Events (all JSON payloads, schema in docs/api.md):
//
//	progress  {"batchesDone":N,"maxBatches":M} — monotone, on change
//	snapshot  partial Result — the CI converging, after accumulation rounds;
//	          carries an "id:" line (the snapshot sequence number)
//	result    terminal Result — identical to GET /v1/results/{id}
//	status    terminal JobView for non-done outcomes (cancelled, failed)
//
// The stream always ends with exactly one terminal event (result or
// status) and then closes. Cached jobs stream their result immediately.
// A client whose connection dropped reconnects with Last-Event-ID set to
// the last snapshot id it saw; the stream resumes with the retained
// snapshots it missed instead of replaying from the start.
func (s *server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.m.Job(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	s.streamJob(w, r, id)
}

// streamJob runs the SSE loop for a known job id, honoring the request's
// Last-Event-ID. Shared by the job stream and the by-hash scenario
// stream.
func (s *server) streamJob(w http.ResponseWriter, r *http.Request, id string) {
	sse, err := NewSSEWriter(w)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	var lastProgress Progress
	sentProgress := false
	// Resume point: snapshots at or below this sequence number were
	// already delivered on a previous connection.
	sentSnap := lastEventID(r)
	heartbeat := time.Now()
	ticker := time.NewTicker(SSEPollInterval)
	defer ticker.Stop()
	for {
		view, err := s.m.Job(id)
		if err != nil {
			// Evicted from history mid-stream (bounded HistorySize): the
			// terminal event is gone; close and let the client re-poll.
			return
		}
		if p := view.Progress; !sentProgress || p != lastProgress {
			if err := sse.Send("progress", p); err != nil {
				return
			}
			lastProgress, sentProgress = p, true
			heartbeat = time.Now()
		}
		snaps, err := s.m.SnapshotsSince(id, sentSnap)
		if err != nil {
			return
		}
		for _, ev := range snaps {
			if err := sse.SendID("snapshot", ev.Seq, ev.Result); err != nil {
				return
			}
			sentSnap = ev.Seq
			heartbeat = time.Now()
		}
		if view.Status.Terminal() {
			res, view, err := s.m.Result(id)
			if err != nil {
				return
			}
			if view.Status == StatusDone && res != nil {
				_ = sse.Send("result", res)
			} else {
				_ = sse.Send("status", view)
			}
			return
		}
		if time.Since(heartbeat) >= SSEHeartbeat {
			if err := sse.Heartbeat(); err != nil {
				return
			}
			heartbeat = time.Now()
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
