package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// SSEHeartbeat is how often a quiet stream emits a comment line so
// proxies and clients can distinguish "no news" from a dead connection.
const SSEHeartbeat = 15 * time.Second

// SSEPollInterval paces the stream handlers' checks for new progress; SSE
// events are emitted on change only, so the wire stays quiet between
// accumulation rounds.
const SSEPollInterval = 100 * time.Millisecond

// SSEWriter renders Server-Sent Events (text/event-stream). Each send
// extends the connection's write deadline, so streams outlive the server's
// global write timeout (30s by default in cmd/ahs-serve) for as long as
// events keep flowing.
type SSEWriter struct {
	w  http.ResponseWriter
	rc *http.ResponseController
}

// NewSSEWriter switches the response into event-stream mode. It fails
// (with a plain 500, nothing yet written) when the underlying writer
// cannot flush — SSE without flushing would buffer forever.
func NewSSEWriter(w http.ResponseWriter) (*SSEWriter, error) {
	// Headers must precede the Flush probe: the first successful Flush
	// commits the response. A failed probe writes nothing, so the error
	// path is still free to send a plain JSON 500.
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no") // tell nginx-style proxies not to buffer
	rc := http.NewResponseController(w)
	if err := rc.Flush(); err != nil {
		return nil, fmt.Errorf("service: response writer cannot stream: %w", err)
	}
	return &SSEWriter{w: w, rc: rc}, nil
}

// Send writes one event with a JSON data payload and flushes it.
func (s *SSEWriter) Send(event string, data any) error {
	body, err := json.Marshal(data)
	if err != nil {
		return err
	}
	// Each write earns a fresh deadline; an idle or stuck client is cut
	// loose after one heartbeat-scaled grace instead of holding the
	// connection forever.
	_ = s.rc.SetWriteDeadline(time.Now().Add(2 * SSEHeartbeat))
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", event, body); err != nil {
		return err
	}
	return s.rc.Flush()
}

// Heartbeat writes a comment line (ignored by SSE clients) so proxies and
// clients can tell a quiet stream from a dead connection.
func (s *SSEWriter) Heartbeat() error {
	_ = s.rc.SetWriteDeadline(time.Now().Add(2 * SSEHeartbeat))
	if _, err := fmt.Fprint(s.w, ": heartbeat\n\n"); err != nil {
		return err
	}
	return s.rc.Flush()
}

// handleJobStream serves GET /v1/jobs/{id}/stream: an SSE stream of the
// job's life. Events (all JSON payloads, schema in docs/api.md):
//
//	progress  {"batchesDone":N,"maxBatches":M} — monotone, on change
//	snapshot  partial Result — the CI converging, after accumulation rounds
//	result    terminal Result — identical to GET /v1/results/{id}
//	status    terminal JobView for non-done outcomes (cancelled, failed)
//
// The stream always ends with exactly one terminal event (result or
// status) and then closes. Cached jobs stream their result immediately.
func (s *server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.m.Job(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	sse, err := NewSSEWriter(w)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	var lastProgress Progress
	var lastPartial *Result
	sentProgress := false
	heartbeat := time.Now()
	ticker := time.NewTicker(SSEPollInterval)
	defer ticker.Stop()
	for {
		view, err := s.m.Job(id)
		if err != nil {
			// Evicted from history mid-stream (bounded HistorySize): the
			// terminal event is gone; close and let the client re-poll.
			return
		}
		if p := view.Progress; !sentProgress || p != lastProgress {
			if err := sse.Send("progress", p); err != nil {
				return
			}
			lastProgress, sentProgress = p, true
			heartbeat = time.Now()
		}
		if partial, err := s.m.Partial(id); err == nil && partial != nil && partial != lastPartial {
			if err := sse.Send("snapshot", partial); err != nil {
				return
			}
			lastPartial = partial
			heartbeat = time.Now()
		}
		if view.Status.Terminal() {
			res, view, err := s.m.Result(id)
			if err != nil {
				return
			}
			if view.Status == StatusDone && res != nil {
				_ = sse.Send("result", res)
			} else {
				_ = sse.Send("status", view)
			}
			return
		}
		if time.Since(heartbeat) >= SSEHeartbeat {
			if err := sse.Heartbeat(); err != nil {
				return
			}
			heartbeat = time.Now()
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
