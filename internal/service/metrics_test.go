package service

import (
	"encoding/json"
	"strings"
	"testing"

	"ahs/internal/telemetry"
)

// TestMetricsMapKeepsExpvarNames pins the /debug/vars compatibility
// contract: after the migration onto the telemetry registry, Map() must
// keep exactly the historical expvar keys, with live numeric values.
func TestMetricsMapKeepsExpvarNames(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := newMetrics(reg, 2)
	m.Submitted.Add(3)
	m.CacheHits.Inc()
	m.QueueDepth.Set(5)
	m.Running.Add(1)
	m.EvalMillis.Add(1234)
	m.BatchesSimulated.Add(99)

	var got map[string]int64
	if err := json.Unmarshal([]byte(m.Map().String()), &got); err != nil {
		t.Fatalf("Map output is not a JSON object: %v", err)
	}
	if len(got) != len(metricNames) {
		t.Fatalf("Map has %d keys, want %d: %v", len(got), len(metricNames), got)
	}
	for _, name := range metricNames {
		if _, ok := got[name]; !ok {
			t.Errorf("Map missing historical expvar key %q", name)
		}
	}
	want := map[string]int64{
		"submitted": 3, "cacheHits": 1, "queueDepth": 5, "running": 1,
		"evalMillis": 1234, "batchesSimulated": 99, "completed": 0,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
}

// TestMetricsRegistryFamilies checks the same counters surface as
// Prometheus families, including the derived ratio gauges.
func TestMetricsRegistryFamilies(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := newMetrics(reg, 4)
	m.CacheHits.Add(3)
	m.CacheMisses.Add(1)
	m.Running.Set(1)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := telemetry.ValidateText(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, want := range []string{
		"ahs_service_cache_hits_total 3",
		"ahs_service_cache_hit_ratio 0.75",
		"ahs_service_worker_utilization 0.25",
		"ahs_service_queue_depth 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
