package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"ahs/internal/obs"
	"ahs/internal/telemetry"
)

// TestMetricsMapKeepsExpvarNames pins the /debug/vars compatibility
// contract: after the migration onto the telemetry registry, Map() must
// keep exactly the historical expvar keys, with live numeric values.
func TestMetricsMapKeepsExpvarNames(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := newMetrics(reg, 2)
	m.Submitted.Add(3)
	m.CacheHits.Inc()
	m.QueueDepth.Set(5)
	m.Running.Add(1)
	m.EvalMillis.Add(1234)
	m.BatchesSimulated.Add(99)

	var got map[string]int64
	if err := json.Unmarshal([]byte(m.Map().String()), &got); err != nil {
		t.Fatalf("Map output is not a JSON object: %v", err)
	}
	if len(got) != len(metricNames) {
		t.Fatalf("Map has %d keys, want %d: %v", len(got), len(metricNames), got)
	}
	for _, name := range metricNames {
		if _, ok := got[name]; !ok {
			t.Errorf("Map missing historical expvar key %q", name)
		}
	}
	want := map[string]int64{
		"submitted": 3, "cacheHits": 1, "queueDepth": 5, "running": 1,
		"evalMillis": 1234, "batchesSimulated": 99, "completed": 0,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
}

// TestMetricsRegistryFamilies checks the same counters surface as
// Prometheus families, including the derived ratio gauges.
func TestMetricsRegistryFamilies(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := newMetrics(reg, 4)
	m.CacheHits.Add(3)
	m.CacheMisses.Add(1)
	m.Running.Set(1)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := telemetry.ValidateText(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, want := range []string{
		"ahs_service_cache_hits_total 3",
		"ahs_service_cache_hit_ratio 0.75",
		"ahs_service_worker_utilization 0.25",
		"ahs_service_queue_depth 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentMetricsScrapes hammers GET /metrics from several
// goroutines while jobs churn the labeled families (job statuses, cache
// hits, trace spans, runtime gauges) and requires every single scrape to
// be well-formed Prometheus 0.0.4 text. Run under -race in CI, this is
// the torn-scrape regression test: a scrape must never observe a family
// mid-mutation.
func TestConcurrentMetricsScrapes(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntime(reg)
	tracer := obs.NewTracer(obs.Config{Telemetry: reg})
	srv, m := newTestServer(t, Config{
		Workers:   2,
		QueueSize: 64,
		Telemetry: reg,
		Tracer:    tracer,
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrapeErr := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					scrapeErr <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					scrapeErr <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					scrapeErr <- fmt.Errorf("scrape status %d", resp.StatusCode)
					return
				}
				if err := telemetry.ValidateText(bytes.NewReader(body)); err != nil {
					scrapeErr <- fmt.Errorf("invalid exposition: %w\n%s", err, body)
					return
				}
			}
		}()
	}

	// Churn the labeled families under the scrapers: distinct scenarios
	// (fresh jobs and statuses), one repeated scenario (cache hits), and
	// traced submissions (ahs_trace_* counters).
	for seed := uint64(1); seed <= 20; seed++ {
		sc := testScenario(seed % 10) // repeats hit the dedup table and cache
		ctx, span := tracer.Start(context.Background(), "scrape-test")
		v, err := m.SubmitCtx(ctx, sc)
		span.End()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Wait(context.Background(), v.ID); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-scrapeErr:
		t.Fatal(err)
	default:
	}
}
