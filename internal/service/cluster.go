package service

import (
	"context"

	"ahs/internal/cluster"
	"ahs/internal/config"
)

// ClusterEval returns an EvalFunc that fans each job out across the
// coordinator's workers instead of simulating in-process. Determinism makes
// the swap invisible to callers: the merged curve is bit-identical to the
// local evaluation of the same scenario, so cached results, dedup by
// scenario hash, and the HTTP API all behave exactly as with the local
// backend. workers bounds the parallelism of any locally executed batches
// (the coordinator's no-worker fallback and mid-job rescue).
func ClusterEval(coord *cluster.Coordinator) EvalFunc {
	return func(ctx context.Context, sc *config.Scenario, workers int, progress func(done, max uint64)) (*Result, error) {
		hash, err := sc.Hash()
		if err != nil {
			return nil, err
		}
		curve, bias, err := coord.UnsafetyCurve(ctx, sc, workers, progress)
		if err != nil {
			return nil, err
		}
		res := &Result{
			Name:         sc.Name,
			ScenarioHash: hash,
			Times:        curve.Times,
			Unsafety:     curve.Mean,
			CILo:         make([]float64, len(curve.Intervals)),
			CIHi:         make([]float64, len(curve.Intervals)),
			Batches:      curve.Batches,
			Converged:    curve.Converged,
			FailureBias:  bias,
		}
		for i, iv := range curve.Intervals {
			res.CILo[i] = iv.Lo
			res.CIHi[i] = iv.Hi
		}
		return res, nil
	}
}

// ClusterBackend returns the health reporter matching ClusterEval, for
// Config.Backend.
func ClusterBackend(coord *cluster.Coordinator) func() BackendHealth {
	return func() BackendHealth {
		st := coord.Status()
		return BackendHealth{
			Mode:              "cluster",
			Ready:             true, // no workers → transparent local fallback
			WorkersRegistered: st.WorkersRegistered,
			WorkersLive:       st.WorkersLive,
			RecoveredJobs:     st.RecoveredJobs,
			Draining:          st.Draining,
		}
	}
}
